// Ablation: dispatch-replicate coordination on/off (Section VI-E lesson 2).
//
// Holds everything else fixed (EDF, selective replication) and toggles the
// Table-3 coordination.  With coordination, the Backup Buffer is pruned and
// recovery is cheap but fault-free operation pays the prune-request cost;
// without it, fault-free operation is cheaper but the full Backup Buffer
// must be drained at recovery, inflating the post-crash latency peak and
// producing duplicate deliveries.
#include <algorithm>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  const std::size_t topics = 7525;
  std::printf("Ablation: dispatch-replicate coordination, workload = %zu, "
              "crash injected (EDF + Proposition 1 held fixed)\n\n", topics);
  std::printf("%-14s %-12s %-14s %-16s %-14s %-12s\n", "coordination",
              "deliveryCPU%", "backup@promo", "peak-c2-latency", "duplicates",
              "loss-ok%");
  print_rule(86);

  for (const bool coordination : {true, false}) {
    OnlineStats cpu;
    OnlineStats live;
    OnlineStats peak_ms;
    OnlineStats dups;
    OnlineStats loss;
    const auto results = run_seeded(
        options, ConfigName::kFrame, topics, /*crash=*/true,
        [coordination](sim::ExperimentConfig& config) {
          BrokerConfig broker = broker_config(ConfigName::kFrame);
          broker.coordination = coordination;
          config.broker_override = broker;
          config.watch_categories = {2};
        });
    for (const auto& result : results) {
      cpu.add(result.cpu.primary_delivery);
      live.add(static_cast<double>(result.backup_live_at_promotion));
      dups.add(static_cast<double>(result.duplicates_discarded));
      Duration peak = 0;
      for (const auto& trace : result.traces) {
        for (const auto& sample : trace.samples) {
          if (sample.created_at >= result.crash_time) {
            peak = std::max(peak, sample.latency);
          }
        }
      }
      peak_ms.add(to_millis(peak));
      double all = 0;
      for (const auto& cat : result.categories) all += cat.loss_success_pct;
      loss.add(all / static_cast<double>(result.categories.size()));
    }
    std::printf("%-14s %-12.1f %-14.0f %-16.1f %-14.0f %-12.1f\n",
                coordination ? "on (FRAME)" : "off", cpu.mean(), live.mean(),
                peak_ms.mean(), dups.mean(), loss.mean());
  }
  std::printf("\nexpected: coordination off -> full backup buffer at "
              "promotion, higher recovery peak, many duplicates\n");
  return 0;
}
