// Bench environment capture and canonical report writing.
//
// Every suite bench_all runs is published as one "frame-bench-v1" JSON
// document whose context block fingerprints the run: git sha, date, CPU
// count, cpufreq governor / scaling state, and — crucially — the build
// type and sanitizer of the *linked frame library* (common/build_info),
// not of the harness TU.  A document is `gated` only when the library is
// a bench-grade build (release, optimized, unsanitized); the differ
// (src/obs/bench_diff) refuses to fail CI on anything else.
#pragma once

#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "obs/bench_diff.hpp"

namespace frame::bench {

struct BenchEnv {
  std::string git_sha = "unknown";  ///< short sha of HEAD, if git works
  std::string date = "unknown";     ///< YYYY-MM-DD (UTC)
  int num_cpus = 0;
  std::string governor = "none";     ///< cpufreq governor, "none" if absent
  std::string cpu_scaling = "none";  ///< "active" | "none" | "unknown"
  BuildInfo build;                   ///< from the linked frame library
  bool gated = false;                ///< bench_grade_build()
};

/// Captures the environment once.  `repo_root` is where git runs (pass
/// the FRAME_REPO_ROOT compile definition).
BenchEnv capture_bench_env(const std::string& repo_root);

/// Renders one canonical frame-bench-v1 document.
std::string bench_report_json(const std::string& suite, const BenchEnv& env,
                              const std::vector<obs::BenchSeries>& series);

/// Writes `content` to `path` atomically enough for a bench artifact
/// (truncate + write).  Returns false on any I/O error.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace frame::bench
