#include "bench_env.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/export.hpp"

namespace frame::bench {

namespace {

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

std::string git_short_sha(const std::string& repo_root) {
  const std::string cmd =
      "git -C '" + repo_root + "' rev-parse --short=12 HEAD 2>/dev/null";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

std::string utc_date() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) == nullptr) return "unknown";
  char buf[16];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

}  // namespace

BenchEnv capture_bench_env(const std::string& repo_root) {
  BenchEnv env;
  env.git_sha = git_short_sha(repo_root);
  env.date = utc_date();
  env.num_cpus = static_cast<int>(std::thread::hardware_concurrency());
  env.build = library_build_info();
  // CPU frequency scaling turns ns/op numbers into governor noise; assert
  // the state into the context so a diff across machines is explainable.
  const std::string governor = read_first_line(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (!governor.empty()) {
    env.governor = governor;
    env.cpu_scaling = governor == "performance" ? "pinned" : "active";
  } else {
    env.governor = "none";
    env.cpu_scaling = "none";  // no cpufreq: containers/VMs, fixed clock
  }
  env.gated = bench_grade_build();
  return env;
}

std::string bench_report_json(const std::string& suite, const BenchEnv& env,
                              const std::vector<obs::BenchSeries>& series) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"frame-bench-v1\",\n  \"suite\": \""
      << obs::json_escape(suite) << "\",\n  \"context\": {\n";
  out << "    \"git_sha\": \"" << obs::json_escape(env.git_sha) << "\",\n";
  out << "    \"date\": \"" << obs::json_escape(env.date) << "\",\n";
  out << "    \"library_build_type\": \""
      << obs::json_escape(env.build.build_type) << "\",\n";
  out << "    \"optimized\": " << (env.build.optimized ? "true" : "false")
      << ",\n";
  out << "    \"sanitizer\": \"" << obs::json_escape(env.build.sanitizer)
      << "\",\n";
  out << "    \"num_cpus\": " << env.num_cpus << ",\n";
  out << "    \"governor\": \"" << obs::json_escape(env.governor) << "\",\n";
  out << "    \"cpu_scaling\": \"" << obs::json_escape(env.cpu_scaling)
      << "\",\n";
  out << "    \"gated\": " << (env.gated ? "true" : "false") << "\n  },\n";
  out << "  \"series\": {";
  bool first = true;
  out.setf(std::ios::fixed);
  out.precision(1);
  for (const auto& s : series) {
    out << (first ? "" : ",") << "\n    \"" << obs::json_escape(s.name)
        << "\": {\"unit\": \"" << obs::json_escape(s.unit)
        << "\", \"value\": " << s.value;
    for (const auto& [p, v] : s.percentiles) {
      out << ", \"" << obs::json_escape(p) << "\": " << v;
    }
    out << ", \"gated\": " << (s.gated ? "true" : "false") << "}";
    first = false;
  }
  out << "\n  }\n}\n";
  return out.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out.flush());
}

}  // namespace frame::bench
