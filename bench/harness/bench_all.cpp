// bench_all: the release-forced bench driver behind scripts/bench.sh.
//
//   bench_all [--suite=micro|tcp|e2e|all] [--out-dir=DIR] [--quick]
//             [--force-ungated]
//
// Runs three suites and writes one canonical frame-bench-v1 document per
// suite (BENCH_micro.json / BENCH_tcp.json / BENCH_e2e.json) into the
// repo root (or --out-dir):
//   micro  hand-rolled steady_clock ns/op loops over the hot paths
//          (EDF job queue, wire codec, engine publish/dispatch)
//   tcp    loopback epoll transport: ping-pong RTT percentiles, fan-in
//          throughput
//   e2e    a live in-process EdgeSystem with observability on; e2e and
//          dispatch-span percentiles measured from stitched traces
//          (src/obs/stitch), queue-delay vs service split from the
//          runtime's per-stage histograms
//
// The harness links frame_release (bench/harness/CMakeLists.txt), whose
// sources are force-compiled -O2 -DNDEBUG whatever the top-level build
// type.  If the linked library still is not bench-grade (sanitizer
// configured), the run refuses to write JSON unless --force-ungated, and
// then tags every document "gated": false so frame_bench_diff cannot
// fail CI on it.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench_env.hpp"
#include "broker/primary_engine.hpp"
#include "common/rng.hpp"
#include "core/job_queue.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/stitch.hpp"
#include "runtime/system.hpp"

namespace frame::bench {
namespace {

struct Options {
  std::string suite = "all";
  std::string out_dir;
  bool quick = false;
  bool force_ungated = false;
};

obs::BenchSeries series(std::string name, std::string unit, double value,
                        bool gated = true) {
  obs::BenchSeries s;
  s.name = std::move(name);
  s.unit = std::move(unit);
  s.value = value;
  s.gated = gated;
  return s;
}

// ------------------------------- micro ----------------------------------

Job make_job(JobKind kind, TopicId topic, SeqNo seq, TimePoint deadline,
             std::uint64_t order) {
  Job job;
  job.kind = kind;
  job.topic = topic;
  job.seq = seq;
  job.deadline = deadline;
  job.order = order;
  return job;
}

PrimaryEngine micro_engine() {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  PrimaryEngine engine(broker_config(ConfigName::kFrame), std::move(specs),
                       params);
  for (TopicId topic = 0; topic < kTable2Categories; ++topic) {
    engine.subscribe(topic, 100);
  }
  return engine;
}

std::vector<obs::BenchSeries> run_micro(const Options& options) {
  const std::size_t batch = options.quick ? 2000 : 20000;
  const std::size_t batches = options.quick ? 5 : 15;
  std::vector<obs::BenchSeries> out;

  {
    Rng rng(1);
    JobQueue queue(SchedulingPolicy::kEdf);
    for (std::size_t i = 0; i < 4096; ++i) {
      queue.push(make_job(JobKind::kDispatch, 0, i,
                          static_cast<TimePoint>(rng.next_below(1 << 20)),
                          i));
    }
    std::uint64_t order = 4096;
    out.push_back(series(
        "job_queue_push_pop_edf_ns", "ns/op",
        time_op_ns(batch, batches, [&] {
          queue.push(make_job(JobKind::kDispatch, 0, order,
                              static_cast<TimePoint>(rng.next_below(1 << 20)),
                              order));
          ++order;
          auto job = queue.pop();
          if (!job.has_value()) std::abort();
        })));
  }

  {
    const Message msg = make_test_message(7, 42, 123456789);
    std::size_t bytes = 0;
    out.push_back(series("wire_encode_message_ns", "ns/op",
                         time_op_ns(batch, batches, [&] {
                           bytes +=
                               encode_message_frame(WireType::kPublish, msg)
                                   .size();
                         })));
    if (bytes == 0) std::abort();
  }

  {
    const auto frame =
        encode_message_frame(WireType::kPublish, make_test_message(7, 42, 1));
    std::size_t decoded = 0;
    out.push_back(series("wire_decode_message_ns", "ns/op",
                         time_op_ns(batch, batches, [&] {
                           if (decode_message_frame(frame)) ++decoded;
                         })));
    if (decoded == 0) std::abort();
  }

  {
    PrimaryEngine engine = micro_engine();
    SeqNo seq = 1;
    TimePoint now = 0;
    out.push_back(series("engine_publish_dispatch_ns", "ns/op",
                         time_op_ns(batch, batches, [&] {
                           engine.on_publish(make_test_message(0, seq, now),
                                             now);
                           const auto job = engine.next_job();
                           (void)engine.execute_dispatch(*job);
                           ++seq;
                           now += 1000;
                         })));
  }

  {
    PrimaryEngine engine = micro_engine();
    SeqNo seq = 1;
    TimePoint now = 0;
    out.push_back(series("engine_publish_replicate_dispatch_ns", "ns/op",
                         time_op_ns(batch, batches, [&] {
                           engine.on_publish(make_test_message(2, seq, now),
                                             now);
                           const auto rep = engine.next_job();
                           (void)engine.execute_replicate(*rep);
                           const auto disp = engine.next_job();
                           (void)engine.execute_dispatch(*disp);
                           ++seq;
                           now += 1000;
                         })));
  }
  return out;
}

// -------------------------------- tcp -----------------------------------

/// Echo/sink server on the epoll transport (the production wire path).
class EchoServer {
 public:
  EchoServer(bool echo, std::atomic<std::uint64_t>* counter)
      : echo_(echo), counter_(counter) {
    auto listener =
        TcpListener::listen(0, [this](std::unique_ptr<TcpConnection> conn) {
          TcpConnection* raw = conn.get();
          raw->start([this, raw](std::vector<std::uint8_t> frame) {
            if (echo_) (void)raw->send_frame(frame);
            if (counter_) counter_->fetch_add(1, std::memory_order_relaxed);
          });
          std::lock_guard<std::mutex> lock(mutex_);
          conns_.push_back(std::move(conn));
        });
    listener_ = std::move(listener.value());
  }

  std::uint16_t port() const { return listener_->port(); }

 private:
  bool echo_;
  std::atomic<std::uint64_t>* counter_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<TcpConnection>> conns_;
  std::unique_ptr<TcpListener> listener_;
};

std::vector<obs::BenchSeries> run_tcp(const Options& options) {
  std::vector<obs::BenchSeries> out;

  {
    // Ping-pong RTT over one connection, one frame in flight.
    EchoServer server(/*echo=*/true, nullptr);
    std::atomic<std::uint64_t> replies{0};
    auto client = TcpConnection::connect("127.0.0.1", server.port());
    if (!client.is_ok()) {
      std::fprintf(stderr, "bench_all: tcp connect failed\n");
      std::exit(2);
    }
    client.value()->start([&replies](std::vector<std::uint8_t>) {
      replies.fetch_add(1, std::memory_order_release);
    });
    const std::vector<std::uint8_t> frame(64, 0xab);
    const int rounds = options.quick ? 400 : 4000;
    SampleSet rtt;
    std::uint64_t expected = 0;
    for (int warm = 0; warm < rounds / 10 + 1; ++warm) {
      (void)client.value()->send_frame(frame);
      ++expected;
      while (replies.load(std::memory_order_acquire) < expected) {
        std::this_thread::yield();
      }
    }
    for (int i = 0; i < rounds; ++i) {
      const std::int64_t t0 = steady_now_ns();
      while (client.value()->send_frame(frame).code() ==
             StatusCode::kCapacity) {
        std::this_thread::yield();
      }
      ++expected;
      while (replies.load(std::memory_order_acquire) < expected) {
        std::this_thread::yield();
      }
      rtt.add(static_cast<double>(steady_now_ns() - t0));
    }
    auto s = series("tcp_pingpong_rtt_ns", "ns", rtt.percentile(50.0));
    s.percentiles = {{"p50", rtt.percentile(50.0)},
                     {"p90", rtt.percentile(90.0)},
                     {"p99", rtt.percentile(99.0)}};
    out.push_back(std::move(s));
  }

  {
    // Fan-in throughput: N publishers burst into one sink.  Best of
    // three repetitions — interference only lowers throughput, so the
    // fastest rep is the stable estimate (mirrors time_op_ns's min).
    constexpr int kPublishers = 16;
    const int frames_each = options.quick ? 500 : 5000;
    const int reps = options.quick ? 1 : 3;
    const std::vector<std::uint8_t> frame(64, 0x5a);
    double best_rate = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      std::atomic<std::uint64_t> received{0};
      EchoServer server(/*echo=*/false, &received);
      std::vector<std::unique_ptr<TcpConnection>> clients;
      for (int i = 0; i < kPublishers; ++i) {
        auto client = TcpConnection::connect("127.0.0.1", server.port());
        if (!client.is_ok()) {
          std::fprintf(stderr, "bench_all: tcp connect failed\n");
          std::exit(2);
        }
        client.value()->start([](std::vector<std::uint8_t>) {});
        clients.push_back(std::move(client.value()));
      }
      const std::uint64_t total =
          static_cast<std::uint64_t>(kPublishers) * frames_each;
      const std::int64_t t0 = steady_now_ns();
      std::vector<std::thread> senders;
      for (const auto& client : clients) {
        TcpConnection* conn = client.get();
        senders.emplace_back([conn, &frame, frames_each] {
          for (int j = 0; j < frames_each; ++j) {
            while (conn->send_frame(frame).code() == StatusCode::kCapacity) {
              std::this_thread::yield();
            }
          }
        });
      }
      for (auto& sender : senders) sender.join();
      while (received.load(std::memory_order_relaxed) < total) {
        std::this_thread::yield();
      }
      const double seconds =
          static_cast<double>(steady_now_ns() - t0) / 1e9;
      const double rate = static_cast<double>(total) / seconds;
      if (rate > best_rate) best_rate = rate;
    }
    out.push_back(
        series("tcp_fanin_throughput_items_per_s", "items/s", best_rate));
  }
  return out;
}

// -------------------------------- e2e -----------------------------------

/// Per-trace firsts needed to measure e2e and dispatch spans exactly from
/// the stitched timeline (percentiles, which StitchReport's OnlineStats
/// cannot provide).
struct TraceTimes {
  std::int64_t publish = -1;
  std::int64_t enqueue = -1;
  std::int64_t dispatch_done = -1;
  std::int64_t delivered = -1;
};

std::vector<obs::BenchSeries> run_e2e(const Options& options) {
  using namespace frame::runtime;
  obs::EnabledScope obs_scope(true);
  obs::reset_all();

  SystemOptions sys;
  sys.config = ConfigName::kFrame;
  sys.timing.delta_pb = milliseconds(5);
  sys.timing.delta_bs_edge = milliseconds(1);
  sys.timing.delta_bs_cloud = milliseconds(20);
  sys.timing.delta_bb = milliseconds(1);
  sys.timing.failover_x = milliseconds(60);
  const TopicSpec zero_loss{0, milliseconds(10), milliseconds(50), 0, 2,
                            Destination::kEdge};
  const TopicSpec loss_tolerant{1, milliseconds(10), milliseconds(50), 3, 0,
                                Destination::kEdge};
  EdgeSystem system(sys,
                    {ProxyGroup{milliseconds(10), {zero_loss, loss_tolerant}}});
  system.start();
  std::this_thread::sleep_for(
      std::chrono::milliseconds(options.quick ? 600 : 2000));
  system.stop();

  const obs::TraceDump dump = system.trace_dump("bench-e2e");
  const obs::StitchReport report = obs::stitch({dump});

  std::map<std::uint64_t, TraceTimes> traces;
  for (const auto& se : report.events) {
    if (se.event.trace_id == 0) continue;
    TraceTimes& t = traces[se.event.trace_id];
    switch (se.event.kind) {
      case obs::SpanKind::kPublish:
        if (t.publish < 0) t.publish = se.wall_at;
        break;
      case obs::SpanKind::kJobEnqueue:
        if (t.enqueue < 0) t.enqueue = se.wall_at;
        break;
      case obs::SpanKind::kDispatchDone:
        if (t.dispatch_done < 0) t.dispatch_done = se.wall_at;
        break;
      case obs::SpanKind::kDelivered:
        if (t.delivered < 0) t.delivered = se.wall_at;
        break;
      default:
        break;
    }
  }
  SampleSet e2e, dispatch_span;
  for (auto& [id, t] : traces) {
    if (t.publish >= 0 && t.delivered >= 0) {
      e2e.add(static_cast<double>(t.delivered - t.publish));
    }
    if (t.enqueue >= 0 && t.dispatch_done >= 0) {
      dispatch_span.add(static_cast<double>(t.dispatch_done - t.enqueue));
    }
  }
  if (e2e.count() < 10) {
    std::fprintf(stderr, "bench_all: e2e run produced only %zu samples\n",
                 e2e.count());
    std::exit(2);
  }

  std::vector<obs::BenchSeries> out;
  {
    auto s = series("e2e_latency_p50_ns", "ns", e2e.percentile(50.0));
    s.percentiles = {{"p50", e2e.percentile(50.0)},
                     {"p90", e2e.percentile(90.0)},
                     {"p99", e2e.percentile(99.0)}};
    out.push_back(std::move(s));
    // Tail is scheduler-dominated on a shared box: informational only.
    out.push_back(series("e2e_latency_p99_ns", "ns", e2e.percentile(99.0),
                         /*gated=*/false));
  }
  {
    // Broker-internal queueing varies ~10% run to run on a loaded box
    // (it is microseconds against the ms-scale delivery period), so the
    // split series inform rather than gate; e2e_latency_p50_ns above is
    // the stable gated number.
    auto s = series("dispatch_span_p50_ns", "ns",
                    dispatch_span.percentile(50.0), /*gated=*/false);
    s.percentiles = {{"p50", dispatch_span.percentile(50.0)},
                     {"p90", dispatch_span.percentile(90.0)},
                     {"p99", dispatch_span.percentile(99.0)}};
    out.push_back(std::move(s));
  }
  // Queue-delay vs service split from the runtime's per-stage histograms;
  // cross-checkable against dispatch_span (delay + service == span).
  const auto snap = obs::collect_snapshot(0);
  for (const auto& [name, latency] : snap.metrics.latencies) {
    if (name == "frame_dispatch_queue_delay_ns") {
      out.push_back(series("dispatch_queue_delay_p50_ns", "ns",
                           latency.p50(), /*gated=*/false));
    } else if (name == "frame_dispatch_service_ns") {
      out.push_back(series("dispatch_service_p50_ns", "ns", latency.p50(),
                           /*gated=*/false));
    }
  }
  out.push_back(series("delta_pb_mean_ns", "ns", report.delta_pb.mean(),
                       /*gated=*/false));
  return out;
}

// --------------------------- e2e: sharded -------------------------------

/// Transport stub for the sharded throughput runs: delivers nothing and
/// never blocks, so the measurement isolates the broker hot path
/// (ring hand-off -> admission -> EDF pop -> dispatch) from transport
/// behaviour.  Dispatched frames are counted via the engines' own stats.
class SinkBus final : public Bus {
 public:
  void register_endpoint(NodeId, Handler) override {}
  void send(NodeId, NodeId, std::vector<std::uint8_t>) override {}
  void crash(NodeId) override {}
  void restore(NodeId) override {}
  bool crashed(NodeId) const override { return false; }
  void shutdown() override {}
};

/// One sharded-vs-global cell: a RuntimeBroker with `shards` partitions
/// dispatching `topics` loss-tolerant topics as fast as producer threads
/// can push pre-encoded publish frames through the event channel's
/// Supplier Proxies.  Returns items/s of executed dispatches, or 0 when
/// the run failed to drain (reported, never silently dropped).
double run_sharded_dispatch_cell(std::size_t shards, std::size_t topics,
                                 std::size_t per_topic) {
  using namespace frame::runtime;
  SinkBus bus;
  MonotonicClock clock;

  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);

  // Loss-tolerant, no retention: FRAME's selective replication skips these
  // topics, so every admitted message costs exactly one dispatch job — the
  // cleanest denominator for a throughput series.
  std::vector<TopicSpec> specs;
  for (TopicId t = 0; t < topics; ++t) {
    specs.push_back(TopicSpec{t, milliseconds(10), milliseconds(50), 3, 0,
                              Destination::kEdge});
  }

  RuntimeBroker::Options bopts;
  bopts.node = 1;
  bopts.peer = kInvalidNode;  // no detector, no replication target
  bopts.start_as_primary = true;
  bopts.broker = broker_config(ConfigName::kFrame);
  bopts.delivery_threads = std::max<std::size_t>(3, shards);
  bopts.shards = shards;
  RuntimeBroker broker(bus, clock, bopts, specs, params);
  for (TopicId t = 0; t < topics; ++t) broker.subscribe(t, 100);
  broker.start();

  // Partition topics across producers so (topic, seq) pairs are unique and
  // the dedup bitmap never suppresses a frame.  Pre-encode outside the
  // timed window: the series measures the broker, not the codec.
  const std::size_t producers = std::min<std::size_t>(
      std::max<std::size_t>(2, shards), topics);
  std::vector<std::vector<std::vector<std::uint8_t>>> frames(producers);
  for (TopicId t = 0; t < topics; ++t) {
    auto& mine = frames[t % producers];
    for (SeqNo seq = 1; seq <= per_topic; ++seq) {
      mine.push_back(encode_message_frame(
          WireType::kPublish, make_test_message(t, seq, 0)));
    }
  }
  // Materialise each producer's Supplier Proxy before the clock starts;
  // pushes themselves are the Fig. 5b multi-producer surface.
  std::vector<eventsvc::ProxyPushConsumer*> proxies;
  for (std::size_t p = 0; p < producers; ++p) {
    proxies.push_back(&broker.channel().obtain_push_consumer(
        static_cast<NodeId>(200 + p)));
  }

  const std::uint64_t total =
      static_cast<std::uint64_t>(topics) * per_topic;
  const std::int64_t t0 = steady_now_ns();
  std::vector<std::thread> pushers;
  for (std::size_t p = 0; p < producers; ++p) {
    pushers.emplace_back([&, p] {
      for (auto& frame : frames[p]) {
        eventsvc::Event event;
        event.header.source = static_cast<NodeId>(200 + p);
        event.header.type = 1;
        event.payload = std::move(frame);
        proxies[p]->push(event);
      }
    });
  }
  for (auto& pusher : pushers) pusher.join();
  // Drain: producers are done once every frame is admitted (arrivals hits
  // total) and every created dispatch job has run.  Jobs can finish
  // "stale" when full-speed pushing overwrites an undelivered copy in the
  // bounded per-topic store — those drained too, they just do not count
  // as dispatch work.
  const std::int64_t deadline = steady_now_ns() + 60ll * 1000000000ll;
  PrimaryEngine::Stats stats;
  for (;;) {
    stats = broker.primary_stats();
    if (stats.arrivals >= total &&
        stats.dispatches_executed + stats.stale_jobs >=
            stats.dispatch_jobs_created) {
      break;
    }
    if (steady_now_ns() > deadline) {
      std::fprintf(stderr,
                   "bench_all: sharded cell (%zu shards, %zu topics) "
                   "stalled at %llu/%llu dispatches\n",
                   shards, topics,
                   static_cast<unsigned long long>(
                       stats.dispatches_executed),
                   static_cast<unsigned long long>(total));
      broker.stop();
      return 0.0;
    }
    std::this_thread::yield();
  }
  const double seconds = static_cast<double>(steady_now_ns() - t0) / 1e9;
  broker.stop();
  return static_cast<double>(stats.dispatches_executed) / seconds;
}

std::vector<obs::BenchSeries> run_e2e_sharded(const Options& options) {
  const std::size_t per_topic = options.quick ? 250 : 2500;
  // 1/2/4 shards plus this machine's auto-resolved count when distinct.
  std::vector<std::size_t> shard_counts = {1, 2, 4};
  const std::size_t natural = resolve_shard_count(0);
  if (std::find(shard_counts.begin(), shard_counts.end(), natural) ==
      shard_counts.end()) {
    shard_counts.push_back(natural);
  }
  std::vector<obs::BenchSeries> out;
  double rate_1shard_16 = 0.0, rate_4shard_16 = 0.0;
  for (const std::size_t topics : {4u, 16u}) {
    for (const std::size_t shards : shard_counts) {
      const double rate = run_sharded_dispatch_cell(shards, topics,
                                                    per_topic);
      char name[96];
      std::snprintf(name, sizeof(name),
                    "e2e_dispatch_throughput_shard%zu_topics%zu_items_per_s",
                    shards, topics);
      // Informational: shard scaling depends on the host's core count, so
      // a cross-machine diff would gate on hardware, not code (the
      // provenance check would catch it, but these series are about the
      // scaling *shape*).  The regression gate for e2e stays on
      // e2e_latency_p50_ns.
      out.push_back(series(name, "items/s", rate, /*gated=*/false));
      std::printf("bench_all:   %-52s %12.0f items/s\n", name, rate);
      if (topics == 16 && shards == 1) rate_1shard_16 = rate;
      if (topics == 16 && shards == 4) rate_4shard_16 = rate;
    }
  }
  if (rate_1shard_16 > 0 && rate_4shard_16 > 0) {
    const double scaling = rate_4shard_16 / rate_1shard_16;
    out.push_back(series("e2e_dispatch_scaling_4shard_over_1shard_ratio",
                         "ratio", scaling, /*gated=*/false));
    std::printf("bench_all:   4-shard/1-shard dispatch scaling: %.2fx "
                "(%u cpus)\n",
                scaling, std::thread::hardware_concurrency());
  }
  return out;
}

// -------------------------------- main ----------------------------------

int run(int argc, char** argv) {
  Options options;
#ifdef FRAME_REPO_ROOT
  const std::string repo_root = FRAME_REPO_ROOT;
#else
  const std::string repo_root = ".";
#endif
  options.out_dir = repo_root;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--suite=", 0) == 0) {
      options.suite = arg.substr(8);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      options.out_dir = arg.substr(10);
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--force-ungated") {
      options.force_ungated = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_all [--suite=micro|tcp|e2e|all] "
                   "[--out-dir=DIR] [--quick] [--force-ungated]\n");
      return 2;
    }
  }

  const BenchEnv env = capture_bench_env(repo_root);
  std::printf("bench_all: build=%s optimized=%s sanitizer=%s cpus=%d "
              "governor=%s sha=%s%s\n",
              env.build.build_type, env.build.optimized ? "yes" : "no",
              env.build.sanitizer, env.num_cpus, env.governor.c_str(),
              env.git_sha.c_str(), env.gated ? "" : " [NOT BENCH-GRADE]");
  if (!env.gated && !options.force_ungated) {
    std::fprintf(stderr,
                 "bench_all: refusing to publish numbers from a non-release "
                 "or sanitized frame library (build=%s, sanitizer=%s).\n"
                 "bench_all: pass --force-ungated to write them tagged "
                 "\"gated\": false.\n",
                 env.build.build_type, env.build.sanitizer);
    return 3;
  }

  const bool all = options.suite == "all";
  int written = 0;
  const auto publish = [&](const std::string& suite,
                           std::vector<obs::BenchSeries> series_list) {
    const std::string path = options.out_dir + "/BENCH_" + suite + ".json";
    const std::string doc = bench_report_json(suite, env, series_list);
    if (!write_text_file(path, doc)) {
      std::fprintf(stderr, "bench_all: cannot write %s\n", path.c_str());
      std::exit(2);
    }
    std::printf("bench_all: wrote %s (%zu series)\n", path.c_str(),
                series_list.size());
    ++written;
  };

  if (all || options.suite == "micro") publish("micro", run_micro(options));
  if (all || options.suite == "tcp") publish("tcp", run_tcp(options));
  if (all || options.suite == "e2e") {
    auto e2e = run_e2e(options);
    auto sharded = run_e2e_sharded(options);
    e2e.insert(e2e.end(), std::make_move_iterator(sharded.begin()),
               std::make_move_iterator(sharded.end()));
    publish("e2e", std::move(e2e));
  }
  if (written == 0) {
    std::fprintf(stderr, "bench_all: unknown suite '%s'\n",
                 options.suite.c_str());
    return 2;
  }
  return 0;
}

}  // namespace
}  // namespace frame::bench

int main(int argc, char** argv) { return frame::bench::run(argc, argv); }
