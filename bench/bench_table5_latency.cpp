// Reproduces Table 5: "Success rate for latency requirement (%)".
//
// Fault-free runs; each cell is the mean over a row's topics of the
// fraction of messages (created inside the measuring window) delivered
// within Di, aggregated over seeds.  Shape: everything healthy at 4525;
// FCFS collapses from 7525 on; FRAME healthy through 10525 and degraded at
// 13525; FRAME+ and FCFS- healthy throughout.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  std::printf("Table 5: success rate for latency requirement (%%)\n");
  std::printf("(fault-free; %d seed(s), %.0f s measure)\n\n", options.seeds,
              options.measure_seconds);

  for (const std::size_t topics : {4525ul, 7525ul, 10525ul, 13525ul}) {
    std::printf("Workload = %zu topics\n", topics);
    std::printf("%-10s|", " Di   Li");
    for (const ConfigName name : kAllConfigs) {
      std::printf(" %-16s|", std::string(to_string(name)).c_str());
    }
    std::printf("\n");
    print_rule(80);

    std::vector<std::vector<sim::ExperimentResult>> per_config;
    for (const ConfigName name : kAllConfigs) {
      per_config.push_back(
          run_seeded(options, name, topics, /*crash=*/false));
    }
    for (int category = 0; category < kTable2Categories; ++category) {
      std::printf("%-10s|", row_label(category));
      for (const auto& results : per_config) {
        const OnlineStats stats =
            aggregate(results, category, [](const sim::CategoryResult& row) {
              return row.latency_success_pct;
            });
        std::printf(" %-16s|", fmt_ci(stats).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("note: 100%% for all configurations with 1525 topics\n");
  return 0;
}
