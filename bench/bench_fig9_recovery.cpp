// Reproduces Fig. 9: end-to-end latency of one topic in categories 0, 2
// and 5 before, upon, and after fault recovery, for all four
// configurations, at the 7525-topic workload.
//
// For each watched topic the bench prints a compact per-sequence latency
// series around the crash plus the summary statistics the paper discusses:
// peak post-crash latency, number of lost messages, duplicates discarded,
// and the Backup Buffer fill at promotion (empty for FRAME thanks to
// dispatch-replicate coordination; full for FCFS-).
#include <algorithm>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  const std::size_t topics = 7525;
  std::string csv_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--csv=", 0) == 0) csv_prefix = arg.substr(6);
  }
  std::printf("Fig. 9: end-to-end latency around fault recovery "
              "(workload = %zu topics, crash mid-run)\n\n", topics);

  for (const ConfigName name : kAllConfigs) {
    sim::ExperimentConfig config = options.base_config();
    config.config = name;
    config.total_topics = topics;
    config.inject_crash = true;
    config.seed = 42;
    config.watch_categories = {0, 2, 5};
    const auto result = run_experiment(config);

    std::printf("=== %s  (backup buffer at promotion: %zu live / %zu "
                "total)\n", std::string(to_string(name)).c_str(),
                result.backup_live_at_promotion,
                result.backup_size_at_promotion);

    if (!csv_prefix.empty()) {
      const std::string path =
          csv_prefix + "_" + std::string(to_string(name)) + ".csv";
      if (std::FILE* csv = std::fopen(path.c_str(), "w")) {
        std::fprintf(csv, "category,seq,latency_ms,recovered\n");
        for (const auto& trace : result.traces) {
          for (const auto& sample : trace.samples) {
            std::fprintf(csv, "%d,%llu,%.3f,%d\n", trace.category,
                         static_cast<unsigned long long>(sample.seq),
                         to_millis(sample.latency),
                         sample.recovered ? 1 : 0);
          }
        }
        std::fclose(csv);
      }
    }

    for (const auto& trace : result.traces) {
      // Peak latency after the crash and the crash-local series.
      Duration peak = 0;
      SeqNo peak_seq = 0;
      for (const auto& sample : trace.samples) {
        if (sample.created_at >= result.crash_time &&
            sample.latency > peak) {
          peak = sample.latency;
          peak_seq = sample.seq;
        }
      }
      std::printf("  category %d (topic %u): delivered=%zu losses=%llu "
                  "post-crash peak=%s at seq %llu\n",
                  trace.category, trace.topic, trace.samples.size(),
                  static_cast<unsigned long long>(trace.losses),
                  format_duration(peak).c_str(),
                  static_cast<unsigned long long>(peak_seq));

      // Series: 8 sequence numbers before the crash through 24 after.
      SeqNo crash_seq = 0;
      for (const auto& sample : trace.samples) {
        if (sample.created_at < result.crash_time) {
          crash_seq = std::max(crash_seq, sample.seq);
        }
      }
      std::printf("    seq:latency(ms) ");
      int printed = 0;
      for (const auto& sample : trace.samples) {
        if (sample.seq + 8 < crash_seq || sample.seq > crash_seq + 24) {
          continue;
        }
        std::printf("%llu:%.1f%s ",
                    static_cast<unsigned long long>(sample.seq),
                    to_millis(sample.latency),
                    sample.recovered ? "*" : "");
        if (++printed % 11 == 0) std::printf("\n                    ");
      }
      std::printf("\n");
    }
    std::printf("  duplicates discarded (recovery re-dispatch): %llu\n\n",
                static_cast<unsigned long long>(result.duplicates_discarded));
  }
  std::printf("* = delivered via retention resend / recovery dispatch\n");
  return 0;
}
