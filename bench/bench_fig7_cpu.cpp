// Reproduces Fig. 7: CPU utilisation per module and configuration.
//
//  (a) Message Delivery module in the Primary (2 dedicated cores)
//  (b) Message Proxy module in the Primary (1 dedicated core)
//  (c) Message Proxy module in the Backup (replica inserts + prunes)
//
// Utilisation is busy-time / (window x module cores), in percent.  Shape:
// FCFS saturates delivery from 7525 topics on; FRAME stays well below it
// (the paper quotes >50% savings at 7525) and FRAME+ below FRAME; the
// Backup proxy load follows the replication volume, vanishing for FRAME+.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  std::printf("Fig. 7: CPU utilisation per module (%%), fault-free runs\n");
  std::printf("(%d seed(s), %.0f s measure)\n\n", options.seeds,
              options.measure_seconds);

  const std::size_t workloads[] = {1525, 4525, 7525, 10525, 13525};

  struct Cell {
    OnlineStats delivery;
    OnlineStats proxy;
    OnlineStats backup_proxy;
  };
  // cells[workload][config]
  std::vector<std::vector<Cell>> cells(std::size(workloads));

  for (std::size_t w = 0; w < std::size(workloads); ++w) {
    for (const ConfigName name : kAllConfigs) {
      Cell cell;
      for (const auto& result :
           run_seeded(options, name, workloads[w], /*crash=*/false)) {
        cell.delivery.add(result.cpu.primary_delivery);
        cell.proxy.add(result.cpu.primary_proxy);
        cell.backup_proxy.add(result.cpu.backup_proxy);
      }
      cells[w].push_back(cell);
    }
  }

  const auto print_panel = [&](const char* title,
                               OnlineStats Cell::*member) {
    std::printf("%s\n", title);
    std::printf("%-8s|", "topics");
    for (const ConfigName name : kAllConfigs) {
      std::printf(" %-8s|", std::string(to_string(name)).c_str());
    }
    std::printf("\n");
    print_rule(52);
    for (std::size_t w = 0; w < std::size(workloads); ++w) {
      std::printf("%-8zu|", workloads[w]);
      for (std::size_t c = 0; c < cells[w].size(); ++c) {
        std::printf(" %7.1f |", (cells[w][c].*member).mean());
      }
      std::printf("\n");
    }
    std::printf("\n");
  };

  print_panel("(a) Message Delivery module in the Primary", &Cell::delivery);
  print_panel("(b) Message Proxy module in the Primary", &Cell::proxy);
  print_panel("(c) Message Proxy module in the Backup", &Cell::backup_proxy);
  return 0;
}
