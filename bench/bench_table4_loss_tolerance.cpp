// Reproduces Table 4: "Success rate for loss-tolerance requirement (%)".
//
// A Primary crash is injected mid-run; each cell reports the percentage of
// topics in the (Di, Li) row whose worst consecutive-loss run stayed within
// Li, aggregated over seed repetitions (mean ± 95% CI).  The paper's shape:
// every configuration is perfect at 1525/4525 topics; FCFS collapses from
// 7525 topics on (except the best-effort row); FRAME degrades only at
// 13525; FRAME+ and FCFS- stay at (or near) 100%.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  std::printf("Table 4: success rate for loss-tolerance requirement (%%)\n");
  std::printf("(crash injected at the middle of the measuring phase; "
              "%d seed(s), %.0f s measure)\n\n",
              options.seeds, options.measure_seconds);

  for (const std::size_t topics : {7525ul, 10525ul, 13525ul}) {
    std::printf("Workload = %zu topics\n", topics);
    std::printf("%-10s|", " Di   Li");
    for (const ConfigName name : kAllConfigs) {
      std::printf(" %-16s|", std::string(to_string(name)).c_str());
    }
    std::printf("\n");
    print_rule(80);

    std::vector<std::vector<sim::ExperimentResult>> per_config;
    for (const ConfigName name : kAllConfigs) {
      per_config.push_back(run_seeded(options, name, topics, /*crash=*/true));
    }
    for (int category = 0; category < kTable2Categories; ++category) {
      std::printf("%-10s|", row_label(category));
      for (const auto& results : per_config) {
        const OnlineStats stats =
            aggregate(results, category, [](const sim::CategoryResult& row) {
              return row.loss_success_pct;
            });
        std::printf(" %-16s|", fmt_ci(stats).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("note: all configurations reach 100%% at 1525 and 4525 topics "
              "(run with --measure/--seeds to vary; see EXPERIMENTS.md)\n");
  return 0;
}
