// Shared helpers for the table/figure reproduction harnesses: CLI parsing,
// seed aggregation (mean ± 95% CI as the paper reports), and row printing.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/experiment.hpp"

namespace frame::bench {

// ---------------------------------------------------------------------------
// Timing helpers for hand-rolled measurement loops (bench/harness).
// All bench timing uses steady_clock, never system_clock: NTP slews and
// wall-clock steps would silently corrupt ns/op samples, and the runtime's
// own MonotonicClock (common/time.hpp) is steady_clock-based, so harness
// numbers stay directly comparable with runtime latency series.
// ---------------------------------------------------------------------------

/// Monotonic nanosecond stamp.
inline std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times `op` in `batches` batches of `batch` calls each (one untimed
/// warmup batch first) and returns the fastest batch's ns/op.  Batching
/// amortizes the two clock reads.  Min-of-batches, not median: scheduler
/// interference is strictly additive, so the fastest batch is the best
/// estimate of the true cost and — unlike the median, which drifts with
/// overall machine load — is reproducible run to run on a shared box.
template <typename Op>
double time_op_ns(std::size_t batch, std::size_t batches, Op&& op) {
  if (batch == 0 || batches == 0) return 0.0;
  for (std::size_t i = 0; i < batch; ++i) op();
  double best = 0.0;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::int64_t t0 = steady_now_ns();
    for (std::size_t i = 0; i < batch; ++i) op();
    const std::int64_t t1 = steady_now_ns();
    const double ns_per_op =
        static_cast<double>(t1 - t0) / static_cast<double>(batch);
    if (b == 0 || ns_per_op < best) best = ns_per_op;
  }
  return best;
}

/// Common knobs; every bench runs with sensible defaults when invoked with
/// no arguments and accepts:
///   --seeds=N       repetitions per cell (default 3; paper uses 10)
///   --measure=SEC   measuring-phase length (default 8; paper uses 60)
///   --fast          1 seed, 4-second measure (CI smoke runs)
///   --full          10 seeds, 60-second measure (paper-faithful; slow)
struct BenchOptions {
  int seeds = 3;
  double measure_seconds = 8.0;
  double warmup_seconds = 1.0;
  double drain_seconds = 2.0;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--seeds=", 0) == 0) {
        options.seeds = std::atoi(arg.c_str() + 8);
      } else if (arg.rfind("--measure=", 0) == 0) {
        options.measure_seconds = std::atof(arg.c_str() + 10);
      } else if (arg == "--fast") {
        options.seeds = 1;
        options.measure_seconds = 4.0;
      } else if (arg == "--full") {
        options.seeds = 10;
        options.measure_seconds = 60.0;
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "options: --seeds=N --measure=SECONDS --fast --full\n");
        std::exit(0);
      }
    }
    if (options.seeds < 1) options.seeds = 1;
    return options;
  }

  sim::ExperimentConfig base_config() const {
    sim::ExperimentConfig config;
    config.warmup = milliseconds_f(warmup_seconds * 1e3);
    config.measure = milliseconds_f(measure_seconds * 1e3);
    config.drain = milliseconds_f(drain_seconds * 1e3);
    return config;
  }
};

inline constexpr ConfigName kAllConfigs[] = {
    ConfigName::kFramePlus, ConfigName::kFrame, ConfigName::kFcfs,
    ConfigName::kFcfsMinus};

/// Runs `seeds` repetitions of `config` varying the seed; returns one
/// result per seed.
template <typename Mutator>
std::vector<sim::ExperimentResult> run_seeded(
    const BenchOptions& options, ConfigName name, std::size_t topics,
    bool crash, Mutator&& mutate) {
  std::vector<sim::ExperimentResult> results;
  for (int rep = 0; rep < options.seeds; ++rep) {
    sim::ExperimentConfig config = options.base_config();
    config.config = name;
    config.total_topics = topics;
    config.inject_crash = crash;
    config.seed = 1000 + static_cast<std::uint64_t>(rep) * 7919;
    mutate(config);
    results.push_back(sim::run_experiment(config));
  }
  return results;
}

inline std::vector<sim::ExperimentResult> run_seeded(
    const BenchOptions& options, ConfigName name, std::size_t topics,
    bool crash) {
  return run_seeded(options, name, topics, crash,
                    [](sim::ExperimentConfig&) {});
}

/// mean ± 95% CI formatted like the paper's tables.
inline std::string fmt_ci(const OnlineStats& stats) {
  char buf[64];
  if (stats.count() <= 1 || stats.ci95_half_width() < 0.05) {
    std::snprintf(buf, sizeof(buf), "%6.1f", stats.mean());
  } else {
    std::snprintf(buf, sizeof(buf), "%6.1f +/- %4.1f", stats.mean(),
                  stats.ci95_half_width());
  }
  return buf;
}

/// Aggregates a per-category metric over seed repetitions.
template <typename Getter>
OnlineStats aggregate(const std::vector<sim::ExperimentResult>& results,
                      int category, Getter&& get) {
  OnlineStats stats;
  for (const auto& result : results) {
    stats.add(get(result.category(category)));
  }
  return stats;
}

inline const char* row_label(int category) {
  // Table rows are labelled by (Di, Li) as in the paper.
  switch (category) {
    case 0:
      return " 50    0 ";
    case 1:
      return " 50    3 ";
    case 2:
      return "100    0 ";
    case 3:
      return "100    3 ";
    case 4:
      return "100  inf ";
    case 5:
      return "500    0 ";
    default:
      return "   ?     ";
  }
}

inline void print_rule(int width = 96) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace frame::bench
