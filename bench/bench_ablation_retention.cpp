// Ablation: publisher retention depth vs replication need (Section
// III-D.3 / VI-E lesson 4).
//
// Sweeps extra retention added to the topics Proposition 1 would replicate
// (0 = FRAME, 1 = FRAME+, 2-3 = beyond) at the 7525-topic workload with a
// crash, reporting replication volume, Message Delivery CPU, and
// loss-tolerance success.  Expected: +1 already removes every replication;
// more retention buys nothing further (the curve is flat after +1).
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  const std::size_t topics = 7525;
  std::printf("Ablation: retention (Ni) vs replication, workload = %zu, "
              "crash injected\n\n", topics);
  std::printf("%-8s %-14s %-14s %-12s %-12s %-12s\n", "extraNi",
              "replications", "prunes", "deliveryCPU%", "loss-ok(c2)%",
              "loss-ok(all)%");
  print_rule(76);

  for (const std::uint32_t extra : {0u, 1u, 2u, 3u}) {
    OnlineStats replications;
    OnlineStats prunes;
    OnlineStats cpu;
    OnlineStats loss_c2;
    OnlineStats loss_all;
    const auto results =
        run_seeded(options, ConfigName::kFrame, topics, /*crash=*/true,
                   [extra](sim::ExperimentConfig& config) {
                     config.extra_retention = extra;
                   });
    for (const auto& result : results) {
      replications.add(
          static_cast<double>(result.primary_stats.replications_executed));
      prunes.add(static_cast<double>(result.primary_stats.prune_requests));
      cpu.add(result.cpu.primary_delivery);
      loss_c2.add(result.category(2).loss_success_pct);
      double all = 0;
      for (const auto& cat : result.categories) all += cat.loss_success_pct;
      loss_all.add(all / static_cast<double>(result.categories.size()));
    }
    std::printf("%-8u %-14.0f %-14.0f %-12.1f %-12.1f %-12.1f\n", extra,
                replications.mean(), prunes.mean(), cpu.mean(),
                loss_c2.mean(), loss_all.mean());
  }
  std::printf("\nexpected: extraNi=1 drives replications to 0 (the FRAME+ "
              "effect) with unchanged 100%% loss success\n");
  return 0;
}
