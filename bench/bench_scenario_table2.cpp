// Reproduces the paper's Table 2 and the Section III-D worked example:
// per-category pseudo relative deadlines, the EDF precedence ordering, the
// Proposition-1 replication decisions, the admission minimum Ni, and the
// FRAME+ retention transformation.
#include <cstdio>
#include <string>

#include "core/differentiation.hpp"

int main() {
  using namespace frame;

  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);

  std::printf("Table 2 topic specifications and Section III-D analysis\n");
  std::printf("(DeltaBS = 1 ms edge / 20 ms cloud, DeltaBB = 0.05 ms, "
              "x = 50 ms)\n\n");
  std::printf("%-4s %-6s %-6s %-5s %-4s %-7s %-10s %-10s %-10s %-10s\n",
              "cat", "Ti", "Di", "Li", "Ni", "dest", "Dd'(ms)", "Dr'(ms)",
              "min-Ni", "replicate?");
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    const TopicSpec spec = table2_spec(cat, static_cast<TopicId>(cat));
    const Duration dd = dispatch_pseudo_deadline(spec, params);
    const Duration dr = replication_pseudo_deadline(spec, params);
    char li[16];
    if (spec.best_effort()) {
      std::snprintf(li, sizeof(li), "inf");
    } else {
      std::snprintf(li, sizeof(li), "%u", spec.loss_tolerance);
    }
    std::printf("%-4d %-6lld %-6lld %-5s %-4u %-7s %-10.2f %-10s %-10u %s\n",
                cat, static_cast<long long>(to_millis(spec.period)),
                static_cast<long long>(to_millis(spec.deadline)), li,
                spec.retention, std::string(to_string(spec.destination)).c_str(),
                to_millis(dd),
                dr == kDurationInfinite
                    ? "inf"
                    : std::to_string(to_millis(dr)).substr(0, 6).c_str(),
                min_retention_for_admission(spec, params),
                needs_replication(spec, params) ? "yes" : "no (Prop. 1)");
  }

  std::printf("\nEDF precedence ordering over pseudo relative deadlines "
              "(Section III-D.2):\n  ");
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  bool first = true;
  for (const auto& entry : deadline_ordering(specs, params)) {
    std::printf("%s%s%u", first ? "" : " < ",
                entry.kind == JobKind::kDispatch ? "Dd" : "Dr", entry.topic);
    first = false;
  }
  std::printf("\n  (paper: Dd0=Dd1 < Dr0=Dr2 < Dd2=Dd3=Dd4 < Dr1 < Dr3 < "
              "Dr5 < Dd5)\n");

  std::printf("\nFRAME+ transformation (Ni + 1 where replication was "
              "needed):\n");
  const auto bumped = with_extra_retention(specs, params, 1);
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    if (bumped[cat].retention != specs[cat].retention) {
      std::printf("  category %d: Ni %u -> %u, replicate? %s\n", cat,
                  specs[cat].retention, bumped[cat].retention,
                  needs_replication(bumped[cat], params) ? "yes" : "no");
    }
  }

  const auto failures = admit_all(specs, params);
  std::printf("\nadmission test: %zu/%zu topics admitted\n",
              specs.size() - failures.size(), specs.size());
  return 0;
}
