// Extension bench: measured job response times versus the Lemma 1/2
// deadlines, per configuration and workload.
//
// These are the quantities the paper's analysis bounds (Rd and Rr); the
// bench shows how much headroom each configuration keeps before the
// overload cells of Tables 4-5, and how deadline misses appear exactly
// where the capacity analysis predicts saturation.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  BenchOptions options = BenchOptions::parse(argc, argv);
  options.seeds = 1;  // distributions, not CIs

  std::printf("Job response times vs lemma deadlines (fault-free)\n\n");
  std::printf("%-8s %-8s | %-22s %-10s | %-22s %-10s\n", "topics", "config",
              "dispatch Rd mean/max(ms)", "misses", "replicate Rr "
              "mean/max(ms)", "misses");
  print_rule(94);

  for (const std::size_t topics : {4525ul, 7525ul, 10525ul, 13525ul}) {
    for (const ConfigName name : kAllConfigs) {
      const auto results = run_seeded(options, name, topics, /*crash=*/false);
      const auto& r = results.front().responses;
      char dispatch_buf[32];
      char replicate_buf[32];
      std::snprintf(dispatch_buf, sizeof(dispatch_buf), "%.3f / %.1f",
                    r.dispatch.mean() / 1e6, r.dispatch.max() / 1e6);
      if (r.replicate_jobs > 0) {
        std::snprintf(replicate_buf, sizeof(replicate_buf), "%.3f / %.1f",
                      r.replicate.mean() / 1e6, r.replicate.max() / 1e6);
      } else {
        std::snprintf(replicate_buf, sizeof(replicate_buf), "(none)");
      }
      std::printf("%-8zu %-8s | %-22s %-10llu | %-22s %-10llu\n", topics,
                  std::string(to_string(name)).c_str(), dispatch_buf,
                  static_cast<unsigned long long>(r.dispatch_misses),
                  replicate_buf,
                  static_cast<unsigned long long>(r.replicate_misses));
    }
    std::printf("\n");
  }
  std::printf("expected: zero misses everywhere except the saturated cells "
              "(FCFS >= 7525; FRAME at 13525 on long runs)\n");
  return 0;
}
