// Extension bench: end-to-end latency distribution per category and
// configuration during fault-free operation.
//
// The paper reports success *rates* against Di (Table 5); this bench adds
// the underlying latency statistics (mean / max, plus the headroom to the
// deadline) so the cost of each policy is visible even where everything
// meets its deadline — e.g. FCFS's FIFO queueing already inflates the
// tail well before it collapses.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  std::printf("Latency distribution per category (fault-free, ms)\n");
  std::printf("(%d seed(s), %.0f s measure)\n\n", options.seeds,
              options.measure_seconds);

  for (const std::size_t topics : {4525ul, 7525ul}) {
    std::printf("Workload = %zu topics\n", topics);
    std::printf("%-8s %-10s | %-10s %-10s %-10s | %-12s\n", "config",
                "category", "mean", "max", "deadline", "headroom(max)");
    print_rule(72);
    for (const ConfigName name : kAllConfigs) {
      const auto results = run_seeded(options, name, topics, /*crash=*/false);
      for (int category = 0; category < kTable2Categories; ++category) {
        OnlineStats merged;
        Duration deadline = 0;
        for (const auto& result : results) {
          merged.merge(result.category(category).latency);
          deadline = result.category(category).deadline;
        }
        if (merged.count() == 0) continue;
        const double max_ms = merged.max() / 1e6;
        std::printf("%-8s cat %-6d | %-10.3f %-10.3f %-10.1f | %+.1f ms\n",
                    std::string(to_string(name)).c_str(), category,
                    merged.mean() / 1e6, max_ms, to_millis(deadline),
                    to_millis(deadline) - max_ms);
      }
      std::printf("\n");
    }
  }
  return 0;
}
