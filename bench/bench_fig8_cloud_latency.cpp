// Reproduces Fig. 8: run-time ΔBS of a category-5 (cloud) topic over a
// 24-hour run with diurnal cloud-latency variation, plus the paper's
// observation that no message is lost despite the variation because the
// configured ΔBS is a measured lower bound (20.7 ms).
//
// The full Table-2 workload over 24 simulated hours would be ~10^10 events,
// so this micro-benchmark publishes the category-5 topics only (the cloud
// path under study) — the edge traffic does not influence the cloud link.
// One +104 ms spike occurs around 8 am, as in the paper's trace.
#include <algorithm>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  BenchOptions options = BenchOptions::parse(argc, argv);

  // 24 simulated hours regardless of --measure (use --fast for 6 hours).
  double hours = 24.0;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") hours = 6.0;
    if (arg.rfind("--csv=", 0) == 0) csv_path = arg.substr(6);
  }

  sim::ExperimentConfig config = options.base_config();
  config.config = ConfigName::kFrame;
  config.warmup = 0;
  config.measure = milliseconds_f(hours * 3600.0 * 1e3);
  config.drain = seconds(2);
  config.seed = 42;
  config.diurnal_cloud = true;
  config.watch_categories = {5};

  sim::Workload workload;
  for (TopicId id = 0; id < 5; ++id) {
    workload.topics.push_back(table2_spec(5, id));
    workload.category.push_back(5);
    workload.proxies.push_back(sim::ProxySpec{milliseconds(500), {id}});
  }
  config.custom_workload = workload;

  std::printf("Fig. 8: run-time DeltaBS of a category-5 topic over %.0f "
              "simulated hours\n", hours);
  std::printf("(configured DeltaBS lower bound: 20.7 ms; spike expected "
              "around 8 am)\n\n");

  const auto result = run_experiment(config);
  const auto& trace = result.traces.at(0);

  if (!csv_path.empty()) {
    if (std::FILE* csv = std::fopen(csv_path.c_str(), "w")) {
      std::fprintf(csv, "hour,delta_bs_ms,e2e_ms\n");
      for (const auto& sample : trace.samples) {
        std::fprintf(csv, "%.5f,%.3f,%.3f\n",
                     to_seconds(sample.created_at) / 3600.0,
                     to_millis(sample.delta_bs), to_millis(sample.latency));
      }
      std::fclose(csv);
      std::printf("(series written to %s)\n\n", csv_path.c_str());
    }
  }

  std::printf("%-6s %-12s %-12s %-12s\n", "hour", "min (ms)", "mean (ms)",
              "max (ms)");
  print_rule(46);
  const int hour_count = static_cast<int>(hours);
  for (int hour = 0; hour < hour_count; ++hour) {
    OnlineStats stats;
    for (const auto& sample : trace.samples) {
      const double h = to_seconds(sample.created_at) / 3600.0;
      if (h >= hour && h < hour + 1) {
        stats.add(to_millis(sample.delta_bs));
      }
    }
    if (stats.count() == 0) continue;
    std::printf("%-6d %-12.2f %-12.2f %-12.2f%s\n", hour, stats.min(),
                stats.mean(), stats.max(),
                stats.max() > 100.0 ? "   <-- latency spike" : "");
  }

  print_rule(46);
  OnlineStats all;
  for (const auto& sample : trace.samples) {
    all.add(to_millis(sample.delta_bs));
  }
  std::printf("samples: %zu  overall min/mean/max: %.2f / %.2f / %.2f ms\n",
              all.count(), all.min(), all.mean(), all.max());
  std::printf("message losses across the run: %llu (paper: 0)\n",
              static_cast<unsigned long long>(result.category(5).total_losses));
  std::printf("deadline success: %.2f %%\n",
              result.category(5).latency_success_pct);
  return 0;
}
