// Validation of the capacity planner: the offered delivery utilisation
// predicted by core/capacity.hpp versus the utilisation measured by the
// simulator, per configuration and workload.  Predictions above 100% pin
// the measured value at ~100% (the module can't run hotter than its
// cores), which is exactly the saturation the paper's Tables 4-5 report.
#include "bench/bench_util.hpp"
#include "core/capacity.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  BenchOptions options = BenchOptions::parse(argc, argv);
  options.seeds = 1;  // utilisation is deterministic; one run per cell

  std::printf("Capacity analysis vs simulation (Message Delivery module, "
              "%% of 2 cores)\n\n");
  std::printf("%-8s %-8s | %-10s %-10s | %-10s\n", "topics", "config",
              "predicted", "measured", "verdict");
  print_rule(58);

  const DeliveryCostModel costs;
  for (const std::size_t topics : {1525ul, 4525ul, 7525ul, 10525ul,
                                   13525ul}) {
    for (const ConfigName name :
         {ConfigName::kFramePlus, ConfigName::kFrame, ConfigName::kFcfs}) {
      const TimingParams timing = sim::paper_timing_params();
      const bool selective = broker_config(name).selective_replication;
      auto workload =
          sim::make_table2_workload(topics, timing, uses_retention_bump(name));
      const CapacityReport report =
          analyze_capacity(workload.topics, timing, costs, selective);

      const auto results = run_seeded(options, name, topics, /*crash=*/false);
      const double measured = results.front().cpu.primary_delivery;
      const double predicted = 100.0 * report.utilization;
      std::printf("%-8zu %-8s | %9.1f%% %9.1f%% | %s\n", topics,
                  std::string(to_string(name)).c_str(), predicted, measured,
                  report.schedulable ? "schedulable" : "OVERLOAD predicted");
    }
  }
  std::printf("\nexpected: predicted == measured below saturation; measured "
              "pegs at ~100%% when the prediction exceeds it\n");
  return 0;
}
