// Microbenchmarks (google-benchmark) for the hot data structures and code
// paths: EDF job queue, ring buffers, wire codec, the Primary engine's
// publish/dispatch/replicate path, and the event-channel stages.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "broker/primary_engine.hpp"
#include "common/build_info.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "core/job_queue.hpp"
#include "eventsvc/correlation.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"

namespace frame {
namespace {

Job make_job(JobKind kind, TopicId topic, SeqNo seq, TimePoint deadline,
             std::uint64_t order) {
  Job job;
  job.kind = kind;
  job.topic = topic;
  job.seq = seq;
  job.deadline = deadline;
  job.order = order;
  return job;
}

void BM_JobQueuePushPopEdf(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  JobQueue queue(SchedulingPolicy::kEdf);
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push(make_job(JobKind::kDispatch, 0, i,
                        static_cast<TimePoint>(rng.next_below(1 << 20)), i));
  }
  std::uint64_t order = depth;
  for (auto _ : state) {
    queue.push(make_job(JobKind::kDispatch, 0, order,
                        static_cast<TimePoint>(rng.next_below(1 << 20)),
                        order));
    ++order;
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_JobQueuePushPopEdf)->Arg(64)->Arg(4096)->Arg(262144);

void BM_JobQueuePushPopFifo(benchmark::State& state) {
  JobQueue queue(SchedulingPolicy::kFifo);
  for (std::size_t i = 0; i < 4096; ++i) {
    queue.push(make_job(JobKind::kDispatch, 0, i, 0, i));
  }
  std::uint64_t order = 4096;
  for (auto _ : state) {
    queue.push(make_job(JobKind::kDispatch, 0, order, 0, order));
    ++order;
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_JobQueuePushPopFifo);

void BM_JobQueueCancellation(benchmark::State& state) {
  // The coordination path: push replicate + dispatch, cancel, pop both.
  JobQueue queue(SchedulingPolicy::kEdf);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    queue.push(make_job(JobKind::kReplicate, 1, seq, 100, 2 * seq));
    queue.push(make_job(JobKind::kDispatch, 1, seq, 200, 2 * seq + 1));
    queue.cancel_replication(1, seq);
    benchmark::DoNotOptimize(queue.pop());  // dispatch; replicate dropped
    ++seq;
  }
}
BENCHMARK(BM_JobQueueCancellation);

void BM_RingBufferPushEvict(benchmark::State& state) {
  RingBuffer<Message> ring(10);
  SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push_back(make_test_message(0, seq++, 0)));
  }
}
BENCHMARK(BM_RingBufferPushEvict);

void BM_WireEncodeMessage(benchmark::State& state) {
  const Message msg = make_test_message(7, 42, 123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encode_message_frame(WireType::kPublish, msg));
  }
}
BENCHMARK(BM_WireEncodeMessage);

void BM_WireDecodeMessage(benchmark::State& state) {
  const auto frame =
      encode_message_frame(WireType::kPublish, make_test_message(7, 42, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message_frame(frame));
  }
}
BENCHMARK(BM_WireDecodeMessage);

PrimaryEngine bench_engine(ConfigName name) {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  PrimaryEngine engine(broker_config(name), std::move(specs), params);
  for (TopicId topic = 0; topic < kTable2Categories; ++topic) {
    engine.subscribe(topic, 100);
  }
  return engine;
}

void BM_EnginePublishDispatch(benchmark::State& state) {
  // The FRAME fast path for a non-replicated topic: publish + dispatch.
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(0, seq, now), now);
    const auto job = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*job));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishDispatch);

void BM_EnginePublishReplicateDispatch(benchmark::State& state) {
  // The replicated-topic path: publish + replicate + dispatch (+ prune).
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(2, seq, now), now);
    const auto rep = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_replicate(*rep));
    const auto disp = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*disp));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishReplicateDispatch);

void BM_EnginePublishDispatchObs(benchmark::State& state) {
  // Same fast path with observability compiled in and toggled by the
  // benchmark argument (0 = obs off, 1 = obs on).  The 0 case bounds the
  // disabled-hook overhead vs BM_EnginePublishDispatch.
  obs::EnabledScope scope(state.range(0) != 0);
  obs::reset_all();
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(0, seq, now), now);
    const auto job = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*job, now));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishDispatchObs)->Arg(0)->Arg(1);

void BM_EnginePublishReplicateDispatchObs(benchmark::State& state) {
  obs::EnabledScope scope(state.range(0) != 0);
  obs::reset_all();
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(2, seq, now), now);
    const auto rep = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_replicate(*rep, now));
    const auto disp = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*disp, now));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishReplicateDispatchObs)->Arg(0)->Arg(1);

// ================== transport: blocking reference vs epoll ==============
//
// Blocking reference = the pre-reactor wire path: one blocking socket per
// connection, one OS thread per reader, recv-exact framing (header then
// payload) and one send() per frame.  It lives here so the epoll transport
// keeps being measured against the design it replaced.

constexpr std::size_t kSmallFrame = 64;
constexpr int kFanInPublishers = 64;
constexpr int kFanInBurst = 16;

int blocking_client_socket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool send_exact(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_exact(int fd, std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool blocking_send_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const auto size = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t header[4] = {
      static_cast<std::uint8_t>(size & 0xff),
      static_cast<std::uint8_t>((size >> 8) & 0xff),
      static_cast<std::uint8_t>((size >> 16) & 0xff),
      static_cast<std::uint8_t>((size >> 24) & 0xff)};
  return send_exact(fd, header, sizeof header) &&
         send_exact(fd, payload.data(), payload.size());
}

bool blocking_recv_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t header[4];
  if (!recv_exact(fd, header, sizeof header)) return false;
  const std::uint32_t size =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  payload.resize(size);
  return recv_exact(fd, payload.data(), size);
}

class BlockingServer {
 public:
  BlockingServer(bool echo, std::atomic<std::uint64_t>* counter)
      : echo_(echo), counter_(counter) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    ::listen(listen_fd_, 128);
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~BlockingServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& reader : readers_) reader.join();
    for (const int fd : conn_fds_) ::close(fd);
    ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  void accept_loop() {
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      std::lock_guard<std::mutex> lock(mutex_);
      conn_fds_.push_back(fd);
      readers_.emplace_back([this, fd] { reader_loop(fd); });
    }
  }

  void reader_loop(int fd) {
    std::vector<std::uint8_t> payload;
    while (blocking_recv_frame(fd, payload)) {
      if (echo_ && !blocking_send_frame(fd, payload)) return;
      if (counter_) counter_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  bool echo_;
  std::atomic<std::uint64_t>* counter_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex mutex_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> readers_;
  std::thread accept_thread_;
};

class EpollServer {
 public:
  EpollServer(bool echo, std::atomic<std::uint64_t>* counter)
      : echo_(echo), counter_(counter) {
    auto listener = TcpListener::listen(
        0, [this](std::unique_ptr<TcpConnection> conn) {
          TcpConnection* raw = conn.get();
          raw->start([this, raw](std::vector<std::uint8_t> frame) {
            if (echo_) (void)raw->send_frame(frame);
            if (counter_) counter_->fetch_add(1, std::memory_order_relaxed);
          });
          std::lock_guard<std::mutex> lock(mutex_);
          conns_.push_back(std::move(conn));
        });
    listener_ = std::move(listener.value());
  }

  std::uint16_t port() const { return listener_->port(); }

 private:
  bool echo_;
  std::atomic<std::uint64_t>* counter_;
  std::mutex mutex_;
  // Destruction order: listener first (no new conns), then connections
  // (deregistered before echo_/counter_ go away).
  std::vector<std::unique_ptr<TcpConnection>> conns_;
  std::unique_ptr<TcpListener> listener_;
};

/// Releases all publisher threads for one burst per benchmark iteration.
class BurstDriver {
 public:
  bool await_release(std::uint64_t& seen) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return false;
    seen = generation_;
    return true;
  }

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++generation_;
    }
    cv_.notify_all();
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

void BM_TcpPingPongBlocking(benchmark::State& state) {
  BlockingServer server(/*echo=*/true, nullptr);
  const int fd = blocking_client_socket(server.port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  const std::vector<std::uint8_t> frame(kSmallFrame, 0xab);
  std::vector<std::uint8_t> reply;
  for (auto _ : state) {
    blocking_send_frame(fd, frame);
    blocking_recv_frame(fd, reply);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}
BENCHMARK(BM_TcpPingPongBlocking)->UseRealTime();

void BM_TcpPingPongEpoll(benchmark::State& state) {
  EpollServer server(/*echo=*/true, nullptr);
  std::atomic<std::uint64_t> replies{0};
  auto client = TcpConnection::connect("127.0.0.1", server.port());
  if (!client.is_ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  client.value()->start([&replies](std::vector<std::uint8_t>) {
    replies.fetch_add(1, std::memory_order_release);
  });
  const std::vector<std::uint8_t> frame(kSmallFrame, 0xab);
  std::uint64_t expected = 0;
  for (auto _ : state) {
    while (client.value()->send_frame(frame).code() == StatusCode::kCapacity) {
      std::this_thread::yield();
    }
    ++expected;
    while (replies.load(std::memory_order_acquire) < expected) {
      std::this_thread::yield();
    }
  }
}
BENCHMARK(BM_TcpPingPongEpoll)->UseRealTime();

void BM_TcpFanInBlocking(benchmark::State& state) {
  std::atomic<std::uint64_t> received{0};
  BlockingServer server(/*echo=*/false, &received);
  BurstDriver driver;
  const std::vector<std::uint8_t> frame(kSmallFrame, 0x5a);
  std::vector<int> fds;
  for (int i = 0; i < kFanInPublishers; ++i) {
    const int fd = blocking_client_socket(server.port());
    if (fd < 0) {
      state.SkipWithError("connect failed");
      for (const int open_fd : fds) ::close(open_fd);
      return;
    }
    fds.push_back(fd);
  }
  std::vector<std::thread> senders;
  for (const int fd : fds) {
    senders.emplace_back([&driver, &frame, fd] {
      std::uint64_t seen = 0;
      while (driver.await_release(seen)) {
        for (int j = 0; j < kFanInBurst; ++j) blocking_send_frame(fd, frame);
      }
    });
  }
  std::uint64_t target = 0;
  for (auto _ : state) {
    target += static_cast<std::uint64_t>(kFanInPublishers) * kFanInBurst;
    driver.release();
    while (received.load(std::memory_order_relaxed) < target) {
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kFanInPublishers * kFanInBurst);
  driver.stop();
  for (auto& sender : senders) sender.join();
  for (const int fd : fds) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}
BENCHMARK(BM_TcpFanInBlocking)->UseRealTime();

void BM_TcpFanInEpoll(benchmark::State& state) {
  std::atomic<std::uint64_t> received{0};
  EpollServer server(/*echo=*/false, &received);
  BurstDriver driver;
  const std::vector<std::uint8_t> frame(kSmallFrame, 0x5a);
  std::vector<std::unique_ptr<TcpConnection>> clients;
  for (int i = 0; i < kFanInPublishers; ++i) {
    auto client = TcpConnection::connect("127.0.0.1", server.port());
    if (!client.is_ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    client.value()->start([](std::vector<std::uint8_t>) {});
    clients.push_back(std::move(client.value()));
  }
  std::vector<std::thread> senders;
  for (const auto& client : clients) {
    TcpConnection* conn = client.get();
    senders.emplace_back([&driver, &frame, conn] {
      std::uint64_t seen = 0;
      while (driver.await_release(seen)) {
        for (int j = 0; j < kFanInBurst; ++j) {
          while (conn->send_frame(frame).code() == StatusCode::kCapacity) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  std::uint64_t target = 0;
  for (auto _ : state) {
    target += static_cast<std::uint64_t>(kFanInPublishers) * kFanInBurst;
    driver.release();
    while (received.load(std::memory_order_relaxed) < target) {
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kFanInPublishers * kFanInBurst);
  driver.stop();
  for (auto& sender : senders) sender.join();
}
BENCHMARK(BM_TcpFanInEpoll)->UseRealTime();

void BM_CorrelatorConjunction(benchmark::State& state) {
  using namespace eventsvc;
  Correlator correlator(CorrelationSpec{
      CorrelationKind::kConjunction,
      {SubscriptionPattern{1, kAnyType}, SubscriptionPattern{2, kAnyType}}});
  Event a;
  a.header = {1, 0, 0};
  Event b;
  b.header = {2, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlator.offer(a));
    benchmark::DoNotOptimize(correlator.offer(b));
  }
}
BENCHMARK(BM_CorrelatorConjunction);

}  // namespace
}  // namespace frame

// Custom main instead of BENCHMARK_MAIN(): unless the caller passed their
// own --benchmark_out, mirror the run as machine-readable JSON to
// FRAME_BENCH_JSON_PATH (build tree, injected by CMake) so regressions
// diff as data, not as console text.  The mirror is only written when the
// linked frame library is a bench-grade build (release, optimized, no
// sanitizer): numbers from anything else must never look publishable.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
#ifdef FRAME_BENCH_JSON_PATH
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=" FRAME_BENCH_JSON_PATH;
  static char format_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    if (frame::bench_grade_build()) {
      args.push_back(out_flag);
      args.push_back(format_flag);
    } else {
      const frame::BuildInfo info = frame::library_build_info();
      std::fprintf(stderr,
                   "bench_micro: frame library is not bench-grade "
                   "(build=%s, sanitizer=%s); refusing to write %s\n",
                   info.build_type, info.sanitizer, FRAME_BENCH_JSON_PATH);
    }
  }
#endif
  int arg_count = static_cast<int>(args.size());
  benchmark::Initialize(&arg_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(arg_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
