// Microbenchmarks (google-benchmark) for the hot data structures and code
// paths: EDF job queue, ring buffers, wire codec, the Primary engine's
// publish/dispatch/replicate path, and the event-channel stages.
#include <benchmark/benchmark.h>

#include "broker/primary_engine.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "core/job_queue.hpp"
#include "eventsvc/correlation.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"

namespace frame {
namespace {

Job make_job(JobKind kind, TopicId topic, SeqNo seq, TimePoint deadline,
             std::uint64_t order) {
  Job job;
  job.kind = kind;
  job.topic = topic;
  job.seq = seq;
  job.deadline = deadline;
  job.order = order;
  return job;
}

void BM_JobQueuePushPopEdf(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  JobQueue queue(SchedulingPolicy::kEdf);
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push(make_job(JobKind::kDispatch, 0, i,
                        static_cast<TimePoint>(rng.next_below(1 << 20)), i));
  }
  std::uint64_t order = depth;
  for (auto _ : state) {
    queue.push(make_job(JobKind::kDispatch, 0, order,
                        static_cast<TimePoint>(rng.next_below(1 << 20)),
                        order));
    ++order;
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_JobQueuePushPopEdf)->Arg(64)->Arg(4096)->Arg(262144);

void BM_JobQueuePushPopFifo(benchmark::State& state) {
  JobQueue queue(SchedulingPolicy::kFifo);
  for (std::size_t i = 0; i < 4096; ++i) {
    queue.push(make_job(JobKind::kDispatch, 0, i, 0, i));
  }
  std::uint64_t order = 4096;
  for (auto _ : state) {
    queue.push(make_job(JobKind::kDispatch, 0, order, 0, order));
    ++order;
    benchmark::DoNotOptimize(queue.pop());
  }
}
BENCHMARK(BM_JobQueuePushPopFifo);

void BM_JobQueueCancellation(benchmark::State& state) {
  // The coordination path: push replicate + dispatch, cancel, pop both.
  JobQueue queue(SchedulingPolicy::kEdf);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    queue.push(make_job(JobKind::kReplicate, 1, seq, 100, 2 * seq));
    queue.push(make_job(JobKind::kDispatch, 1, seq, 200, 2 * seq + 1));
    queue.cancel_replication(1, seq);
    benchmark::DoNotOptimize(queue.pop());  // dispatch; replicate dropped
    ++seq;
  }
}
BENCHMARK(BM_JobQueueCancellation);

void BM_RingBufferPushEvict(benchmark::State& state) {
  RingBuffer<Message> ring(10);
  SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.push_back(make_test_message(0, seq++, 0)));
  }
}
BENCHMARK(BM_RingBufferPushEvict);

void BM_WireEncodeMessage(benchmark::State& state) {
  const Message msg = make_test_message(7, 42, 123456789);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        encode_message_frame(WireType::kPublish, msg));
  }
}
BENCHMARK(BM_WireEncodeMessage);

void BM_WireDecodeMessage(benchmark::State& state) {
  const auto frame =
      encode_message_frame(WireType::kPublish, make_test_message(7, 42, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message_frame(frame));
  }
}
BENCHMARK(BM_WireDecodeMessage);

PrimaryEngine bench_engine(ConfigName name) {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  PrimaryEngine engine(broker_config(name), std::move(specs), params);
  for (TopicId topic = 0; topic < kTable2Categories; ++topic) {
    engine.subscribe(topic, 100);
  }
  return engine;
}

void BM_EnginePublishDispatch(benchmark::State& state) {
  // The FRAME fast path for a non-replicated topic: publish + dispatch.
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(0, seq, now), now);
    const auto job = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*job));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishDispatch);

void BM_EnginePublishReplicateDispatch(benchmark::State& state) {
  // The replicated-topic path: publish + replicate + dispatch (+ prune).
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(2, seq, now), now);
    const auto rep = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_replicate(*rep));
    const auto disp = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*disp));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishReplicateDispatch);

void BM_EnginePublishDispatchObs(benchmark::State& state) {
  // Same fast path with observability compiled in and toggled by the
  // benchmark argument (0 = obs off, 1 = obs on).  The 0 case bounds the
  // disabled-hook overhead vs BM_EnginePublishDispatch.
  obs::EnabledScope scope(state.range(0) != 0);
  obs::reset_all();
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(0, seq, now), now);
    const auto job = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*job, now));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishDispatchObs)->Arg(0)->Arg(1);

void BM_EnginePublishReplicateDispatchObs(benchmark::State& state) {
  obs::EnabledScope scope(state.range(0) != 0);
  obs::reset_all();
  PrimaryEngine engine = bench_engine(ConfigName::kFrame);
  SeqNo seq = 1;
  TimePoint now = 0;
  for (auto _ : state) {
    engine.on_publish(make_test_message(2, seq, now), now);
    const auto rep = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_replicate(*rep, now));
    const auto disp = engine.next_job();
    benchmark::DoNotOptimize(engine.execute_dispatch(*disp, now));
    ++seq;
    now += 1000;
  }
}
BENCHMARK(BM_EnginePublishReplicateDispatchObs)->Arg(0)->Arg(1);

void BM_CorrelatorConjunction(benchmark::State& state) {
  using namespace eventsvc;
  Correlator correlator(CorrelationSpec{
      CorrelationKind::kConjunction,
      {SubscriptionPattern{1, kAnyType}, SubscriptionPattern{2, kAnyType}}});
  Event a;
  a.header = {1, 0, 0};
  Event b;
  b.header = {2, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(correlator.offer(a));
    benchmark::DoNotOptimize(correlator.offer(b));
  }
}
BENCHMARK(BM_CorrelatorConjunction);

}  // namespace
}  // namespace frame

BENCHMARK_MAIN();
