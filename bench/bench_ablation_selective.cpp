// Ablation: Proposition-1 selective replication, isolated from both the
// scheduling policy (EDF held fixed) and the coordination mechanism
// (2 x 2: selective x coordination), fault-free at 7525 and 10525 topics.
//
// This exposes a subtlety the headline FRAME-vs-FCFS comparison hides:
// under EDF *with* coordination, a topic whose dispatch deadline precedes
// its replication deadline gets its replication aborted post-hoc anyway
// (Table 3, Replicate step 1), so Proposition 1's saving there is mostly
// the avoided job churn.  Without coordination there is no post-hoc abort:
// every non-best-effort topic's replication actually executes, and only
// Proposition 1 stands between the delivery module and saturation.
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::bench;
  const BenchOptions options = BenchOptions::parse(argc, argv);

  std::printf("Ablation: selective replication x coordination "
              "(EDF held fixed), fault-free\n\n");
  std::printf("%-8s %-10s %-8s | %-12s %-12s %-12s %-12s\n", "topics",
              "selective", "coord", "deliveryCPU%", "repl-exec",
              "repl-cancel", "lat-ok(c0)%");
  print_rule(84);

  for (const std::size_t topics : {7525ul, 10525ul}) {
    for (const bool selective : {true, false}) {
      for (const bool coordination : {true, false}) {
        OnlineStats cpu;
        OnlineStats executed;
        OnlineStats cancelled;
        OnlineStats lat0;
        const auto results = run_seeded(
            options, ConfigName::kFrame, topics, /*crash=*/false,
            [selective, coordination](sim::ExperimentConfig& config) {
              BrokerConfig broker = broker_config(ConfigName::kFrame);
              broker.selective_replication = selective;
              broker.coordination = coordination;
              config.broker_override = broker;
            });
        for (const auto& result : results) {
          cpu.add(result.cpu.primary_delivery);
          executed.add(static_cast<double>(
              result.primary_stats.replications_executed));
          cancelled.add(static_cast<double>(
              result.primary_stats.replicate_jobs_cancelled +
              result.primary_stats.replications_aborted));
          lat0.add(result.category(0).latency_success_pct);
        }
        std::printf("%-8zu %-10s %-8s | %-12.1f %-12.0f %-12.0f %-12.1f\n",
                    topics, selective ? "on" : "off",
                    coordination ? "on" : "off", cpu.mean(), executed.mean(),
                    cancelled.mean(), lat0.mean());
      }
    }
  }
  std::printf(
      "\nreading the table:\n"
      "  selective on,  coord on   -> FRAME: replicates only cats 2+5.\n"
      "  selective off, coord on   -> the extra replicate jobs (cats 0/1/3)\n"
      "     are cancelled/aborted post-hoc because EDF dispatches first\n"
      "     where Dd' < Dr' -- Proposition 1's saving here is the avoided\n"
      "     job churn, a small CPU delta.\n"
      "  selective off, coord off  -> no post-hoc cancellation exists, so\n"
      "     every replication executes: ~50%% more delivery CPU than\n"
      "     'selective on'.  Under FIFO ordering (the FCFS baselines),\n"
      "     where replication runs *before* dispatch, the penalty grows to\n"
      "     the full replicate+coordination cost and saturates the module\n"
      "     (see bench_table4/5 and bench_analysis_capacity).\n"
      "  selective on,  coord off  -> cheap in fault-free operation but\n"
      "     pays the full Backup-Buffer drain at recovery (see the\n"
      "     coordination ablation).\n");
  return 0;
}
