// Cloud-bridge scenario (Section III-D.5): the same broker serves
// edge-bound traffic (sub-millisecond links, tight deadlines) and
// cloud-bound traffic (tens of milliseconds, relaxed deadlines).  The
// example shows why the configured ΔBS must be a measured *lower bound*:
// it measures the live ΔBS per destination, compares it against the
// configured bounds, and shows the replication decisions staying safe.
//
//   $ ./cloud_bridge
#include <cstdio>
#include <thread>

#include "common/stats.hpp"
#include "runtime/system.hpp"

int main() {
  using namespace frame;
  using namespace frame::runtime;

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = microseconds(300); // configured lower bound
  options.timing.delta_bs_cloud = milliseconds(20); // configured lower bound
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);
  options.edge_latency = microseconds(400);   // actual edge one-way latency
  options.cloud_latency = milliseconds(24);   // actual cloud one-way latency

  const TopicSpec fast_control{0, milliseconds(100), milliseconds(150), 0, 2,
                               Destination::kEdge};
  const TopicSpec cloud_log{1, milliseconds(500), milliseconds(800), 0, 2,
                            Destination::kCloud};

  std::printf("replication decisions (Proposition 1):\n");
  for (const auto& spec : {fast_control, cloud_log}) {
    std::printf("  topic %u (%s): Dd'=%.1f ms Dr'=%.1f ms -> %s\n", spec.id,
                std::string(to_string(spec.destination)).c_str(),
                to_millis(dispatch_pseudo_deadline(spec, options.timing)),
                to_millis(replication_pseudo_deadline(spec, options.timing)),
                needs_replication(spec, options.timing) ? "replicate"
                                                        : "suppress");
  }

  EdgeSystem system(options,
                    {ProxyGroup{milliseconds(100), {fast_control}},
                     ProxyGroup{milliseconds(500), {cloud_log}}});
  system.subscriber(system.subscriber_index_of(0)).watch(0);
  system.subscriber(2).watch(1);

  system.start();
  std::this_thread::sleep_for(std::chrono::seconds(3));
  system.stop();

  const auto report = [&](TopicId topic, const char* label,
                          Duration configured_bound) {
    const auto trace =
        system.subscriber(system.subscriber_index_of(topic)).trace(topic);
    if (trace.empty()) {
      std::printf("  %s: no samples\n", label);
      return;
    }
    OnlineStats delta_bs;
    OnlineStats e2e;
    for (const auto& sample : trace) {
      delta_bs.add(to_millis(sample.delta_bs));
      e2e.add(to_millis(sample.latency));
    }
    std::printf("  %s: %zu msgs, DeltaBS min/mean/max = %.2f/%.2f/%.2f ms "
                "(configured bound %.1f ms %s), e2e mean %.2f ms\n",
                label, delta_bs.count(), delta_bs.min(), delta_bs.mean(),
                delta_bs.max(), to_millis(configured_bound),
                delta_bs.min() >= to_millis(configured_bound) * 0.999
                    ? "holds"
                    : "VIOLATED",
                e2e.mean());
  };

  std::printf("\nmeasured run-time latencies:\n");
  report(0, "edge control topic", options.timing.delta_bs_edge);
  report(1, "cloud logging topic", options.timing.delta_bs_cloud);

  std::printf("\nthe lower-bound rule (Section III-D.5): an occasional "
              "cloud-latency increase\ncannot break loss tolerance, because "
              "suppression decisions used the measured minimum.\n");
  return 0;
}
