// Reintegration demo: the system survives TWO broker crashes.
//
// Timeline: the Primary is crashed (as in the paper's experiment); the
// Backup takes over; the crashed host then restarts as the new Backup,
// receives a state sync, and replication resumes; finally the promoted
// broker is crashed too and the rejoined one takes over again — with the
// zero-loss topics still meeting their requirement end to end.
//
//   $ ./reintegration_demo
#include <cstdio>
#include <thread>

#include "runtime/system.hpp"

int main() {
  using namespace frame;
  using namespace frame::runtime;

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(1);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);

  std::vector<ProxyGroup> proxies{ProxyGroup{
      milliseconds(100),
      {
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},  // zero loss via retention
          TopicSpec{1, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},  // zero loss via replication
      }}};

  EdgeSystem system(options, proxies);
  system.start();
  std::printf("[0.0s] running: Primary serving, Backup replicating\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(800));

  std::printf("[0.8s] >>> crash #1: killing the Primary <<<\n");
  system.crash_primary();
  if (!system.wait_for_failover(seconds(5))) {
    std::printf("failover #1 did not complete\n");
    return 1;
  }
  std::printf("[0.9s] Backup promoted; publishers re-sent retained "
              "messages\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  std::printf("[1.4s] reintegrating the crashed host as the new Backup "
              "(state sync + replication resume)\n");
  system.rejoin_crashed_primary();
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  std::printf("[2.1s] redundancy restored: new Backup holds %llu replicas\n",
              static_cast<unsigned long long>(
                  system.primary().backup_stats().replicas_received));

  std::printf("[2.1s] >>> crash #2: killing the promoted broker <<<\n");
  system.backup().crash();
  const MonotonicClock clock;
  const TimePoint deadline = clock.now() + seconds(5);
  while (clock.now() < deadline && !system.primary().is_primary()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!system.primary().is_primary()) {
    std::printf("failover #2 did not complete\n");
    return 1;
  }
  std::printf("[2.2s] rejoined broker promoted; serving again\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  system.stop();

  std::printf("\n--- results across two crashes ---\n");
  for (const auto& spec : proxies[0].topics) {
    const SeqNo last = system.last_seq(spec.id);
    if (last < 2) continue;
    const auto& sub = system.subscriber(system.subscriber_index_of(spec.id));
    const auto loss = sub.loss_stats(spec.id, 1, last - 1);
    std::printf("topic %u (Li=%u): %llu losses, worst run %llu -> %s\n",
                spec.id, spec.loss_tolerance,
                static_cast<unsigned long long>(loss.total_losses),
                static_cast<unsigned long long>(loss.max_consecutive_losses),
                loss.max_consecutive_losses <= spec.loss_tolerance
                    ? "requirement MET"
                    : "VIOLATED");
  }
  return 0;
}
