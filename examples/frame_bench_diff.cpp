// frame_bench_diff: compares two frame-bench-v1 JSON reports and gates on
// regressions.
//
//   frame_bench_diff OLD.json NEW.json [--threshold PCT]
//
// Prints a per-series table plus one machine-parseable verdict line.
// Exit codes: 0 = no gated regression, 1 = at least one gated series
// regressed past the threshold, 2 = usage or parse error.  An ungated
// input (debug/sanitized build) downgrades the run to informational and
// cannot fail; scripts/bench.sh relies on exactly this contract.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_diff.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s OLD.json NEW.json [--threshold PCT]\n"
               "  compares two frame-bench-v1 reports; exits 1 when a gated\n"
               "  series regressed more than PCT%% (default 10)\n",
               argv0);
  return 2;
}

bool read_file(const char* path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* old_path = nullptr;
  const char* new_path = nullptr;
  frame::obs::BenchDiffOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      options.rel_threshold = std::atof(argv[++i]) / 100.0;
      if (options.rel_threshold <= 0) return usage(argv[0]);
    } else if (old_path == nullptr) {
      old_path = argv[i];
    } else if (new_path == nullptr) {
      new_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (old_path == nullptr || new_path == nullptr) return usage(argv[0]);

  std::string old_text, new_text;
  if (!read_file(old_path, old_text)) {
    std::fprintf(stderr, "frame_bench_diff: cannot read %s\n", old_path);
    return 2;
  }
  if (!read_file(new_path, new_text)) {
    std::fprintf(stderr, "frame_bench_diff: cannot read %s\n", new_path);
    return 2;
  }

  std::string error;
  const auto old_report = frame::obs::parse_bench_report(old_text, &error);
  if (!old_report.has_value()) {
    std::fprintf(stderr, "frame_bench_diff: %s: %s\n", old_path,
                 error.c_str());
    return 2;
  }
  const auto new_report = frame::obs::parse_bench_report(new_text, &error);
  if (!new_report.has_value()) {
    std::fprintf(stderr, "frame_bench_diff: %s: %s\n", new_path,
                 error.c_str());
    return 2;
  }

  const auto diff =
      frame::obs::diff_bench_reports(*old_report, *new_report, options);
  std::printf("old: %s sha=%s build=%s sanitizer=%s%s\n",
              old_report->suite.c_str(), old_report->git_sha.c_str(),
              old_report->build_type.c_str(), old_report->sanitizer.c_str(),
              old_report->gated ? "" : " [UNGATED]");
  std::printf("new: %s sha=%s build=%s sanitizer=%s%s\n",
              new_report->suite.c_str(), new_report->git_sha.c_str(),
              new_report->build_type.c_str(), new_report->sanitizer.c_str(),
              new_report->gated ? "" : " [UNGATED]");
  std::fputs(frame::obs::bench_diff_table(diff).c_str(), stdout);
  if (diff.provenance_mismatch) {
    std::fprintf(stderr,
                 "frame_bench_diff: warning: reports are not comparable "
                 "(%s); regression gating disabled\n",
                 diff.provenance_reason.c_str());
  }
  std::fputs(frame::obs::bench_diff_verdict(diff).c_str(), stdout);
  return diff.regression ? 1 : 0;
}
