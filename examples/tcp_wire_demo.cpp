// TCP transport demo: FRAME wire frames over real sockets on localhost.
//
// A minimal single-topic pipeline: a publisher thread connects to a broker
// listener and streams kPublish frames; the broker runs a PrimaryEngine and
// pushes kDeliver frames to a connected subscriber.  This is the
// cross-process deployment shape (each role could live in its own process);
// the richer in-process examples use the latency-injecting bus instead.
//
//   $ ./tcp_wire_demo
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "broker/primary_engine.hpp"
#include "common/stats.hpp"
#include "broker/subscriber_engine.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"

int main() {
  using namespace frame;

  TimingParams timing;
  timing.delta_pb = milliseconds(5);
  timing.delta_bs_edge = milliseconds(1);
  timing.delta_bs_cloud = milliseconds(20);
  timing.delta_bb = milliseconds(1);
  timing.failover_x = milliseconds(60);

  const TopicSpec topic{0, milliseconds(50), milliseconds(100), 3, 0,
                        Destination::kEdge};

  MonotonicClock clock;

  // --- broker: engine + mutex (single-threaded state machine) ------------
  PrimaryEngine engine(broker_config(ConfigName::kFrame), {topic}, timing);
  engine.subscribe(0, /*subscriber=*/1);
  std::mutex engine_mutex;

  std::mutex subscriber_conn_mutex;
  std::unique_ptr<TcpConnection> to_subscriber;   // subscriber's client end
  TcpConnection* subscriber_peer = nullptr;       // broker's end of that link

  std::vector<std::unique_ptr<TcpConnection>> broker_conns;
  std::mutex broker_conns_mutex;

  auto listener = TcpListener::listen(0, [&](std::unique_ptr<TcpConnection>
                                                 conn) {
    auto* raw = conn.get();
    raw->start([&, raw](std::vector<std::uint8_t> frame) {
      const auto type = peek_type(frame);
      if (type == WireType::kHello) {
        // The subscriber announces itself; deliveries go back over this
        // connection.
        std::lock_guard lock(subscriber_conn_mutex);
        subscriber_peer = raw;
        return;
      }
      if (type != WireType::kPublish) return;
      const auto msg = decode_message_frame(frame);
      if (!msg.has_value()) return;
      std::vector<std::uint8_t> out;
      {
        std::lock_guard lock(engine_mutex);
        engine.on_publish(*msg, clock.now(), /*allow_replication=*/false);
        while (auto job = engine.next_job()) {
          if (job->kind != JobKind::kDispatch) continue;
          auto effect = engine.execute_dispatch(*job);
          if (!effect.executed) continue;
          Message delivered = effect.msg;
          delivered.dispatched_at = clock.now();
          out = encode_message_frame(WireType::kDeliver, delivered);
        }
      }
      if (!out.empty()) {
        std::lock_guard lock(subscriber_conn_mutex);
        if (subscriber_peer != nullptr) {
          (void)subscriber_peer->send_frame(out);
        }
      }
    });
    std::lock_guard lock(broker_conns_mutex);
    broker_conns.push_back(std::move(conn));
  });
  if (!listener.is_ok()) {
    std::printf("cannot bind loopback: %s\n",
                listener.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value()->port();
  std::printf("broker listening on 127.0.0.1:%u\n", port);

  // --- subscriber ---------------------------------------------------------
  SubscriberEngine subscriber(1);
  subscriber.add_topic(topic);
  subscriber.watch(0);
  std::mutex subscriber_mutex;

  auto sub_conn = TcpConnection::connect("127.0.0.1", port);
  if (!sub_conn.is_ok()) {
    std::printf("subscriber connect failed\n");
    return 1;
  }
  {
    std::lock_guard lock(subscriber_conn_mutex);
    to_subscriber = sub_conn.take();
  }
  to_subscriber->start([&](std::vector<std::uint8_t> frame) {
    if (auto msg = decode_message_frame(frame)) {
      std::lock_guard lock(subscriber_mutex);
      subscriber.on_deliver(*msg, clock.now());
    }
  });
  (void)to_subscriber->send_frame(encode_hello_frame(HelloFrame{1, 3}));
  // Hello travels on a different connection than the publishes; give the
  // broker a moment to register the subscriber before traffic starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // --- publisher ----------------------------------------------------------
  auto pub_conn = TcpConnection::connect("127.0.0.1", port);
  if (!pub_conn.is_ok()) {
    std::printf("publisher connect failed\n");
    return 1;
  }
  auto publisher = pub_conn.take();
  publisher->start([](std::vector<std::uint8_t>) {});

  constexpr int kMessages = 40;
  for (SeqNo seq = 1; seq <= kMessages; ++seq) {
    const Message msg = make_test_message(0, seq, clock.now());
    (void)publisher->send_frame(
        encode_message_frame(WireType::kPublish, msg));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // --- results ------------------------------------------------------------
  {
    std::lock_guard lock(subscriber_mutex);
    const auto& trace = subscriber.trace(0);
    OnlineStats latency;
    for (const auto& sample : trace) latency.add(to_millis(sample.latency));
    std::printf("delivered %llu/%d messages over TCP; end-to-end latency "
                "mean %.3f ms, max %.3f ms\n",
                static_cast<unsigned long long>(subscriber.unique_count(0)),
                kMessages, latency.mean(), latency.max());
    const auto loss = subscriber.loss_stats(0, 1, kMessages);
    std::printf("losses: %llu (max consecutive %llu)\n",
                static_cast<unsigned long long>(loss.total_losses),
                static_cast<unsigned long long>(loss.max_consecutive_losses));
  }

  publisher->close();
  {
    std::lock_guard lock(subscriber_conn_mutex);
    to_subscriber->close();
  }
  listener.value()->close();
  return 0;
}
