// frame_stats: runs a scripted failover scenario with full observability
// enabled and prints the collected metrics -- per-topic p50/p99 end-to-end
// latency, dispatch/replication deadline misses, loss streaks vs Li, and
// the measured failover timeline (detection, promotion, retention replay,
// measured x).
//
//   $ ./frame_stats            # human-readable dashboard
//   $ ./frame_stats --json     # machine-readable JSON
//   $ ./frame_stats --prom     # Prometheus text exposition
//   $ ./frame_stats --spans    # also dump the most recent trace spans
//   $ ./frame_stats --serve [--trace-out F] [--perfetto-out F]
//       additionally serves live telemetry on an ephemeral loopback port
//       (printed as TELEMETRY_PORT=N before the scenario starts, so a
//       script can scrape /metrics and /healthz mid-run) and writes the
//       tracer dump / stitched Perfetto JSON on exit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/stitch.hpp"
#include "runtime/system.hpp"

namespace {

enum class Format { kTable, kJson, kProm };

const char* span_kind_name(frame::obs::SpanKind kind) {
  using frame::obs::SpanKind;
  switch (kind) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kProxyAdmit: return "proxy-admit";
    case SpanKind::kJobEnqueue: return "job-enqueue";
    case SpanKind::kDispatchStart: return "dispatch";
    case SpanKind::kDelivered: return "delivered";
    case SpanKind::kReplicated: return "replicated";
    case SpanKind::kDropped: return "dropped";
    case SpanKind::kCrash: return "crash";
    case SpanKind::kFailoverDetected: return "failover-detected";
    case SpanKind::kPromotion: return "promotion";
    case SpanKind::kRetentionReplay: return "retention-replay";
    case SpanKind::kBackupStored: return "backup-stored";
    case SpanKind::kRedirect: return "redirect";
    case SpanKind::kDispatchDone: return "dispatch-done";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace frame;
  using namespace frame::runtime;

  Format format = Format::kTable;
  bool dump_spans = false;
  bool serve = false;
  const char* trace_out = nullptr;
  const char* perfetto_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) format = Format::kJson;
    else if (std::strcmp(argv[i], "--prom") == 0) format = Format::kProm;
    else if (std::strcmp(argv[i], "--spans") == 0) dump_spans = true;
    else if (std::strcmp(argv[i], "--serve") == 0) serve = true;
    else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_out = argv[++i];
    else if (std::strcmp(argv[i], "--perfetto-out") == 0 && i + 1 < argc)
      perfetto_out = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--json|--prom] [--spans] [--serve] "
                   "[--trace-out F] [--perfetto-out F]\n",
                   argv[0]);
      return 2;
    }
  }

  // Observability must be on before the system constructs its engines so
  // the deadline accountant learns the topic table.
  obs::set_enabled(true);

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(1);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);
  options.detector_poll = milliseconds(10);
  options.detector_misses = 3;

  std::vector<ProxyGroup> proxies;
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {
          // Zero loss, retention-covered (category-0 style).
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},
          // Up to 3 consecutive losses tolerated, no retention (cat 1).
          TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                    Destination::kEdge},
          // Zero loss via replication (category-2 style).
          TopicSpec{2, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},
          // Cloud-bound, loose deadline, replicated.
          TopicSpec{3, milliseconds(100), milliseconds(400), 0, 1,
                    Destination::kCloud},
      }});

  if (serve) options.telemetry_port = 0;  // ephemeral
  EdgeSystem system(options, proxies);
  if (serve) {
    if (system.telemetry_port() == 0) {
      std::fprintf(stderr, "telemetry endpoint failed to bind\n");
      return 1;
    }
    // Scripts scrape while the scenario runs: announce the port first and
    // make sure it leaves the stdout buffer before the sleeps below.
    std::printf("TELEMETRY_PORT=%u\n", system.telemetry_port());
    std::printf(
        "ENDPOINTS=/metrics /snapshot.json /healthz /trace /alerts "
        "/slo.json\n");
    std::fflush(stdout);
  }
  system.start();
  if (format == Format::kTable) {
    std::fprintf(stderr, "[frame_stats] running healthy for 1s...\n");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  if (format == Format::kTable) {
    std::fprintf(stderr, "[frame_stats] crashing the Primary broker...\n");
  }
  system.crash_primary();
  if (!system.wait_for_failover(seconds(5))) {
    std::fprintf(stderr, "failover did not complete in time!\n");
    return 1;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  // Snapshot the ring before stop() tears the system down, then write the
  // dump / stitched Perfetto trace the --stitch workflow consumes.
  if (trace_out != nullptr || perfetto_out != nullptr) {
    const obs::TraceDump dump = system.trace_dump("frame-stats");
    if (trace_out != nullptr) {
      std::ofstream out(trace_out);
      out << obs::serialize_dump(dump);
      std::fprintf(stderr, "[frame_stats] wrote %s\n", trace_out);
    }
    if (perfetto_out != nullptr) {
      const obs::StitchReport report = obs::stitch({dump});
      const std::string json = obs::to_perfetto_json(report);
      const Status valid = obs::validate_perfetto_json(json);
      if (!valid.is_ok()) {
        std::fprintf(stderr, "generated Perfetto JSON is invalid: %s\n",
                     valid.to_string().c_str());
        return 1;
      }
      std::ofstream out(perfetto_out);
      out << json;
      std::fprintf(stderr, "[frame_stats] wrote %s\n", perfetto_out);
    }
  }
  system.stop();

  const obs::ObsSnapshot snap = obs::collect_snapshot(dump_spans ? 64 : 0);
  switch (format) {
    case Format::kTable:
      std::fputs(obs::to_table(snap).c_str(), stdout);
      break;
    case Format::kJson:
      std::fputs(obs::to_json(snap).c_str(), stdout);
      std::fputc('\n', stdout);
      break;
    case Format::kProm:
      std::fputs(obs::to_prometheus(snap).c_str(), stdout);
      break;
  }

  if (dump_spans && format == Format::kTable) {
    std::printf("\n-- recent spans (%zu of %llu recorded, %llu dropped) --\n",
                snap.recent_spans.size(),
                static_cast<unsigned long long>(snap.spans_recorded),
                static_cast<unsigned long long>(snap.span_drops));
    for (const auto& span : snap.recent_spans) {
      char node[16] = "-";
      if (span.node != kInvalidNode) {
        std::snprintf(node, sizeof(node), "%u", span.node);
      }
      std::printf("  t=%.6fs %-17s topic=%u seq=%llu node=%s\n",
                  static_cast<double>(span.at) / 1e9,
                  span_kind_name(span.kind), span.topic,
                  static_cast<unsigned long long>(span.seq), node);
    }
  }
  return 0;
}
