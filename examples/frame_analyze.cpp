// frame_analyze: offline analysis tool for deployment configurations.
//
// Reads a deployment description (timing parameters + topics; see
// core/config_file.hpp for the format) and prints the full Section-III
// analysis: per-topic admission, dispatch/replication pseudo deadlines,
// Proposition-1 decisions, the EDF precedence ordering, delivery-capacity
// utilisation, and the effect of the FRAME+ retention bump.
//
//   $ ./frame_analyze deployment.frame
//   $ ./frame_analyze                          # built-in Table-2 set
//   $ ./frame_analyze deployment.frame --simulate [--crash]
//       additionally runs the deployment through the discrete-event
//       simulator (FRAME configuration) and reports per-group results
//   $ ./frame_analyze --stitch dump1.trace [dump2.trace ...]
//                     [--perfetto out.json]
//       merges per-process tracer dumps (GET /trace, or EdgeSystem
//       trace_dump()) into one timeline, prints the per-hop summary and
//       optionally writes validated Perfetto JSON
//   $ ./frame_analyze --postmortem <bundle-dir>
//       renders a flight-recorder bundle (manifest, firing alerts, and a
//       human-readable span timeline) written to FRAME_POSTMORTEM_DIR
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/capacity.hpp"
#include "core/config_file.hpp"
#include "core/differentiation.hpp"
#include "obs/json.hpp"
#include "obs/stitch.hpp"
#include "sim/experiment.hpp"

namespace {

int run_stitch(int argc, char** argv) {
  using namespace frame;

  std::vector<std::string> dump_paths;
  const char* perfetto_path = nullptr;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--perfetto") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--perfetto needs an output path\n");
        return 2;
      }
      perfetto_path = argv[++i];
    } else {
      dump_paths.push_back(arg);
    }
  }
  if (dump_paths.empty()) {
    std::fprintf(stderr,
                 "usage: frame_analyze --stitch <dump>... [--perfetto out]\n");
    return 2;
  }

  std::string text;
  for (const auto& path : dump_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text += buffer.str();
  }

  const auto dumps = obs::parse_dumps(text);
  if (dumps.empty()) {
    std::fprintf(stderr, "error: no 'frame-trace-dump v1' sections found\n");
    return 1;
  }
  for (const auto& dump : dumps) {
    std::printf("dump '%s': %zu spans, anchor %+lld ns, %llu dropped\n",
                dump.process.c_str(), dump.spans.size(),
                static_cast<long long>(dump.wall_anchor),
                static_cast<unsigned long long>(dump.dropped));
  }
  const obs::StitchReport report = obs::stitch(dumps);
  std::fputs(obs::stitch_summary(report).c_str(), stdout);

  if (perfetto_path != nullptr) {
    const std::string json = obs::to_perfetto_json(report);
    const Status valid = obs::validate_perfetto_json(json);
    if (!valid.is_ok()) {
      std::fprintf(stderr, "error: generated Perfetto JSON is invalid: %s\n",
                   valid.to_string().c_str());
      return 1;
    }
    std::ofstream out(perfetto_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", perfetto_path);
      return 1;
    }
    out << json;
    std::printf("wrote %s (open in https://ui.perfetto.dev)\n", perfetto_path);
  }
  return 0;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int run_postmortem(int argc, char** argv) {
  using namespace frame;

  if (argc < 3) {
    std::fprintf(stderr, "usage: frame_analyze --postmortem <bundle-dir>\n");
    return 2;
  }
  const std::string dir = argv[2];

  // ---- manifest ----------------------------------------------------------
  std::string manifest;
  if (!read_file(dir + "/manifest.txt", manifest)) {
    std::fprintf(stderr, "error: cannot read %s/manifest.txt\n", dir.c_str());
    return 1;
  }
  if (manifest.rfind("frame-postmortem v1", 0) != 0) {
    std::fprintf(stderr, "error: %s/manifest.txt is not a frame-postmortem "
                 "v1 bundle\n", dir.c_str());
    return 1;
  }
  std::printf("== post-mortem bundle: %s ==\n", dir.c_str());
  {
    std::istringstream lines(manifest);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) std::printf("  %s\n", line.c_str());
    }
  }

  // ---- firing alerts (slo.json) ------------------------------------------
  std::string slo_text;
  if (read_file(dir + "/slo.json", slo_text)) {
    const auto root = obs::parse_json(slo_text);
    const obs::JsonValue* alerts =
        root.has_value() ? root->find("alerts") : nullptr;
    if (alerts == nullptr ||
        alerts->type != obs::JsonValue::Type::kArray) {
      std::fprintf(stderr, "error: slo.json has no alerts array\n");
      return 1;
    }
    std::printf("\nalert table at trigger time:\n");
    for (const auto& alert : alerts->array) {
      const obs::JsonValue* name = alert.find("name");
      const obs::JsonValue* severity = alert.find("severity");
      const obs::JsonValue* value = alert.find("value");
      const obs::JsonValue* firing = alert.find("firing");
      if (name == nullptr || firing == nullptr) continue;
      std::printf("  [%s] %-28s %-8s value=%.3f\n",
                  firing->type == obs::JsonValue::Type::kBool &&
                          firing->boolean
                      ? "FIRING"
                      : "  ok  ",
                  name->str.c_str(),
                  severity != nullptr ? severity->str.c_str() : "?",
                  value != nullptr ? value->number : 0.0);
    }
  } else {
    std::printf("\n(no slo.json in bundle)\n");
  }

  // ---- span timeline (trace.dump) ----------------------------------------
  std::string trace_text;
  if (!read_file(dir + "/trace.dump", trace_text)) {
    std::fprintf(stderr, "error: cannot read %s/trace.dump\n", dir.c_str());
    return 1;
  }
  const auto dumps = obs::parse_dumps(trace_text);
  const obs::StitchReport report = obs::stitch(dumps);
  std::printf("\n%s", obs::stitch_summary(report).c_str());

  // Human-readable tail of the timeline: the spans closest to the trigger
  // are the ones that explain it.
  constexpr std::size_t kTimelineTail = 40;
  const std::size_t start = report.events.size() > kTimelineTail
                                ? report.events.size() - kTimelineTail
                                : 0;
  if (!report.events.empty()) {
    std::printf("\nlast %zu spans before the trigger:\n",
                report.events.size() - start);
    const std::int64_t origin = report.events[start].wall_at;
    for (std::size_t i = start; i < report.events.size(); ++i) {
      const auto& se = report.events[i];
      std::string detail;
      if (se.event.dd_slack != kDurationInfinite) {
        detail = "  dd_slack=" + std::to_string(to_millis(se.event.dd_slack)) +
                 "ms";
        if (se.event.dd_slack < 0) detail += "  <-- LEMMA 2 MISS";
      }
      if (se.event.dr_slack != kDurationInfinite) {
        detail += "  dr_slack=" +
                  std::to_string(to_millis(se.event.dr_slack)) + "ms";
        if (se.event.dr_slack < 0) detail += "  <-- LEMMA 1 MISS";
      }
      std::printf("  +%10.3fms  %-17s topic=%-3u seq=%-6llu node=%u%s\n",
                  static_cast<double>(se.wall_at - origin) / 1e6,
                  std::string(obs::to_string(se.event.kind)).c_str(),
                  se.event.topic,
                  static_cast<unsigned long long>(se.event.seq),
                  se.event.node, detail.c_str());
    }
  }

  // metrics.json is part of the bundle contract; verify it parses so a
  // truncated bundle fails loudly here rather than in a downstream tool.
  std::string metrics_text;
  if (!read_file(dir + "/metrics.json", metrics_text) ||
      !obs::parse_json(metrics_text).has_value()) {
    std::fprintf(stderr, "error: metrics.json missing or unparsable\n");
    return 1;
  }
  std::printf("\nbundle ok: manifest, slo.json, trace.dump, metrics.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace frame;

  if (argc > 1 && std::string(argv[1]) == "--stitch") {
    return run_stitch(argc, argv);
  }
  if (argc > 1 && std::string(argv[1]) == "--postmortem") {
    return run_postmortem(argc, argv);
  }

  bool simulate = false;
  bool crash = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--simulate") {
      simulate = true;
    } else if (arg == "--crash") {
      crash = true;
    } else if (arg[0] != '-') {
      path = argv[i];
    }
  }

  DeploymentConfig config;
  if (path != nullptr) {
    auto loaded = load_deployment_config(path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().to_string().c_str());
      return 1;
    }
    config = loaded.take();
    std::printf("deployment: %s (%zu topics)\n\n", path,
                config.topics.size());
  } else {
    config.timing.delta_pb = milliseconds(1);
    config.timing.delta_bs_edge = milliseconds(1);
    config.timing.delta_bs_cloud = milliseconds(20);
    config.timing.delta_bb = microseconds(50);
    config.timing.failover_x = milliseconds(50);
    for (int cat = 0; cat < kTable2Categories; ++cat) {
      config.topics.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
      config.groups.push_back(cat);
    }
    std::printf("deployment: built-in Table-2 categories (%zu topics)\n\n",
                config.topics.size());
  }

  // ---- per-topic analysis ------------------------------------------------
  std::printf("%-6s %-8s %-8s %-6s %-4s %-6s %-10s %-10s %-8s %s\n", "topic",
              "Ti(ms)", "Di(ms)", "Li", "Ni", "dest", "Dd'(ms)", "Dr'(ms)",
              "minNi", "verdict");
  std::size_t rejected = 0;
  for (const auto& spec : config.topics) {
    const Status admitted = admission_test(spec, config.timing);
    const Duration dd = dispatch_pseudo_deadline(spec, config.timing);
    const Duration dr = replication_pseudo_deadline(spec, config.timing);
    char li[16];
    if (spec.best_effort()) {
      std::snprintf(li, sizeof(li), "inf");
    } else {
      std::snprintf(li, sizeof(li), "%u", spec.loss_tolerance);
    }
    char drbuf[20];
    if (dr == kDurationInfinite) {
      std::snprintf(drbuf, sizeof(drbuf), "inf");
    } else {
      std::snprintf(drbuf, sizeof(drbuf), "%.2f", to_millis(dr));
    }
    std::string verdict;
    if (!admitted.is_ok()) {
      verdict = "REJECT: " + admitted.to_string();
      ++rejected;
    } else if (needs_replication(spec, config.timing)) {
      verdict = "admit, replicate";
    } else {
      verdict = "admit, no replication (Prop. 1)";
    }
    std::printf("%-6u %-8.1f %-8.1f %-6s %-4u %-6s %-10.2f %-10s %-8u %s\n",
                spec.id, to_millis(spec.period), to_millis(spec.deadline),
                li, spec.retention,
                std::string(to_string(spec.destination)).c_str(),
                to_millis(dd), drbuf,
                min_retention_for_admission(spec, config.timing),
                verdict.c_str());
  }

  // ---- capacity ----------------------------------------------------------
  const DeliveryCostModel costs;
  const CapacityReport frame_report =
      analyze_capacity(config.topics, config.timing, costs, true);
  const CapacityReport fcfs_report =
      analyze_capacity(config.topics, config.timing, costs, false);
  std::printf("\ndelivery capacity (2 cores, calibrated costs):\n");
  std::printf("  message rate: %.0f msg/s\n", frame_report.message_rate);
  std::printf("  FRAME : utilisation %.1f%%, %zu replicated topics (%.0f%% "
              "of traffic) -> %s\n",
              100 * frame_report.utilization, frame_report.replicated_topics,
              100 * frame_report.replicated_share,
              frame_report.schedulable ? "schedulable" : "OVERLOAD");
  std::printf("  FCFS  : utilisation %.1f%%, %zu replicated topics (%.0f%% "
              "of traffic) -> %s\n",
              100 * fcfs_report.utilization, fcfs_report.replicated_topics,
              100 * fcfs_report.replicated_share,
              fcfs_report.schedulable ? "schedulable" : "OVERLOAD");

  const auto bumped =
      with_extra_retention(config.topics, config.timing, 1);
  const CapacityReport plus_report =
      analyze_capacity(bumped, config.timing, costs, true);
  std::printf("  FRAME+: utilisation %.1f%% after the +1 retention bump "
              "(%zu replicated topics)\n",
              100 * plus_report.utilization, plus_report.replicated_topics);

  if (rejected > 0) {
    std::printf("\n%zu topic(s) rejected by the admission test\n", rejected);
    return 2;
  }

  if (simulate) {
    std::printf("\nsimulating the deployment (FRAME configuration%s)...\n",
                crash ? ", Primary crash injected mid-run" : "");
    sim::ExperimentConfig experiment;
    experiment.config = ConfigName::kFrame;
    experiment.timing = config.timing;
    experiment.warmup = seconds(1);
    experiment.measure = seconds(8);
    experiment.drain = seconds(2);
    experiment.inject_crash = crash;
    experiment.seed = 1;
    experiment.custom_workload =
        sim::make_custom_workload(config.topics, config.groups);
    const auto result = sim::run_experiment(experiment);

    std::printf("  %-8s %-8s %-12s %-12s %-10s %-10s\n", "group", "topics",
                "loss-ok(%)", "lat-ok(%)", "losses", "worst-run");
    for (const auto& row : result.categories) {
      std::printf("  %-8d %-8zu %-12.1f %-12.1f %-10llu %-10llu\n",
                  row.category, row.topic_count, row.loss_success_pct,
                  row.latency_success_pct,
                  static_cast<unsigned long long>(row.total_losses),
                  static_cast<unsigned long long>(
                      row.worst_consecutive_losses));
    }
    std::printf("  delivery CPU %.1f%%, proxy CPU %.1f%%, backup proxy "
                "%.1f%%\n",
                result.cpu.primary_delivery, result.cpu.primary_proxy,
                result.cpu.backup_proxy);
  }
  return 0;
}
