// Chaos demo: runs the full FRAME deployment under a scripted, seeded
// fault plan and narrates what the fault-injection layer throws at it and
// how the runtime absorbs each blow:
//
//   act 1 — a loss burst on a publisher->Primary link (ΔPB violated),
//           absorbed by the topic's loss budget Li;
//   act 2 — corrupted publish frames, rejected by the CRC32C frame gate
//           before they can reach an engine;
//   act 3 — the Primary is partitioned from everyone, the Backup promotes
//           within the detector's bound, and the partition then heals.
//
// The run is replayable: every probabilistic decision derives from the
// plan seed printed at startup (override with FRAME_CHAOS_SEED).
//
//   $ ./chaos_demo
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/obs.hpp"
#include "runtime/system.hpp"

namespace {

using namespace frame;
using namespace frame::runtime;

std::uint64_t demo_seed() {
  if (const char* env = std::getenv("FRAME_CHAOS_SEED")) {
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return parsed;
  }
  return 42;
}

void print_injections(FaultyBus& faults) {
  std::printf("[faults] injected so far:");
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    const std::uint64_t n = faults.injected(kind);
    if (n > 0) {
      std::printf(" %s=%llu", to_string(kind),
                  static_cast<unsigned long long>(n));
    }
  }
  std::printf("\n");
}

void print_topic_report(EdgeSystem& system) {
  for (const auto& spec : system.topics()) {
    const SeqNo last = system.last_seq(spec.id);
    if (last < 2) continue;
    const auto& sub = system.subscriber(system.subscriber_index_of(spec.id));
    const auto loss = sub.loss_stats(spec.id, 1, last - 1);
    const auto snap = obs::accountant().snapshot(spec.id);
    const bool met = spec.best_effort() ||
                     loss.max_consecutive_losses <= spec.loss_tolerance;
    std::printf("topic %u: delivered=%llu losses=%llu worst-run=%llu "
                "(budget Li=%u) -> %s%s\n",
                spec.id, static_cast<unsigned long long>(snap.deliveries),
                static_cast<unsigned long long>(loss.total_losses),
                static_cast<unsigned long long>(loss.max_consecutive_losses),
                spec.loss_tolerance, met ? "MET" : "VIOLATED",
                snap.loss_budget_exceeded ? " (accountant flagged!)" : "");
  }
}

}  // namespace

int main() {
  const std::uint64_t seed = demo_seed();
  std::printf("chaos_demo: seed=%llu (set FRAME_CHAOS_SEED to replay a "
              "different universe)\n\n",
              static_cast<unsigned long long>(seed));

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(1);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);
  options.detector_poll = milliseconds(10);
  options.detector_misses = 3;

  std::vector<ProxyGroup> proxies;
  // One single-topic group per topic: each topic gets its own publisher
  // node (100, 101, 102), so faults can target one topic's link.
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                 Destination::kEdge}}});
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                 Destination::kEdge}}});
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {TopicSpec{2, milliseconds(100), milliseconds(200), 0, 1,
                 Destination::kEdge}}});

  FaultPlan plan;
  plan.seed = seed;
  options.fault_plan = plan;

  EdgeSystem system(options, proxies);
  const SystemNodes& nodes = system.nodes();
  FaultyBus& faults = *system.faults();

  obs::set_enabled(true);
  obs::reset_all();
  obs::accountant().configure(system.topics());

  system.start();
  std::printf("[t=0.0s] deployment up: 3 publishers -> Primary (node %u) "
              "-> subscribers, Backup at node %u\n",
              nodes.primary, nodes.backup);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // --- act 1: loss burst on topic 1's publish link ------------------------
  std::printf("\n[t=0.5s] ACT 1: dropping 3 consecutive kPublish frames on "
              "the topic-1 publisher link (Li=3 budget)\n");
  FaultRule burst;
  burst.kind = FaultKind::kDrop;
  burst.from = nodes.first_publisher + 1;  // topic 1's publisher
  burst.to = nodes.primary;
  burst.type_tag = static_cast<std::uint8_t>(WireType::kPublish);
  burst.max_count = 3;
  faults.add_rule(burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // --- act 2: corruption on the publish and replication links -------------
  std::printf("[t=1.1s] ACT 2: corrupting 3 kPublish frames on the topic-1 "
              "link and truncating 3 kReplicate frames on the "
              "Primary->Backup link (CRC32C gates must reject them)\n");
  FaultRule corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.from = nodes.first_publisher + 1;  // stays inside topic 1's budget
  corrupt.to = nodes.primary;
  corrupt.type_tag = static_cast<std::uint8_t>(WireType::kPublish);
  corrupt.max_count = 3;
  faults.add_rule(corrupt);
  FaultRule truncate;
  truncate.kind = FaultKind::kTruncate;
  truncate.from = nodes.primary;
  truncate.to = nodes.backup;
  truncate.type_tag = static_cast<std::uint8_t>(WireType::kReplicate);
  truncate.max_count = 3;
  faults.add_rule(truncate);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  std::printf("[wire ] Primary rejected %llu corrupt frames, Backup "
              "rejected %llu, none reached an engine\n",
              static_cast<unsigned long long>(system.primary().corrupt_frames()),
              static_cast<unsigned long long>(system.backup().corrupt_frames()));

  // --- act 3: partition the Primary, fail over, heal ----------------------
  std::printf("\n[t=1.7s] ACT 3: partitioning the Primary from the world "
              "(detector bound: %.0f ms)\n",
              static_cast<double>(system.detection_bound()) / 1e6);
  FaultRule partition;
  partition.kind = FaultKind::kPartition;
  partition.to = nodes.primary;
  const std::size_t partition_rule = faults.add_rule(partition);

  const MonotonicClock clock;
  const TimePoint cut_at = clock.now();
  if (!system.wait_for_failover(seconds(5))) {
    std::printf("failover did not complete in time!\n");
    return 1;
  }
  std::printf("[t=1.x ] Backup promoted and publishers redirected %.0f ms "
              "after the cut; healing the partition\n",
              static_cast<double>(clock.now() - cut_at) / 1e6);
  faults.retire_rule(partition_rule);
  std::this_thread::sleep_for(std::chrono::milliseconds(700));

  system.stop();
  obs::set_enabled(false);

  std::printf("\n--- post-mortem ---\n");
  print_injections(faults);
  std::printf("new primary: node %u (was backup: %s)\n", nodes.backup,
              system.backup().is_primary() ? "yes" : "no");
  std::printf("messages created: %llu, unique delivered: %llu\n",
              static_cast<unsigned long long>(system.messages_created()),
              static_cast<unsigned long long>(system.messages_delivered()));
  print_topic_report(system);
  return 0;
}
