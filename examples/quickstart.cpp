// Quickstart: the smallest complete FRAME deployment.
//
// One publisher proxy with two topics (one zero-loss with retention, one
// loss-tolerant), a Primary + Backup broker pair, and an edge subscriber,
// all in-process.  Publishes for two seconds and prints delivery stats.
//
//   $ ./quickstart
#include <cstdio>
#include <thread>

#include "runtime/system.hpp"

int main() {
  using namespace frame;
  using namespace frame::runtime;

  // 1. Describe the deployment's timing parameters (Section III):
  //    measured latency bounds and the publisher fail-over time x.
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(1);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);

  // 2. Declare topics with their QoS: period Ti, deadline Di,
  //    loss-tolerance Li, retention Ni.
  const TopicSpec sensor{/*id=*/0, milliseconds(100), milliseconds(150),
                         /*Li=*/0, /*Ni=*/2, Destination::kEdge};
  const TopicSpec telemetry{/*id=*/1, milliseconds(100), milliseconds(150),
                            /*Li=*/3, /*Ni=*/0, Destination::kEdge};

  // Check admissibility first (Lemmas 1-2).
  for (const auto& spec : {sensor, telemetry}) {
    const Status admitted = admission_test(spec, options.timing);
    std::printf("topic %u: admission %s; replication %s\n", spec.id,
                admitted.is_ok() ? "OK" : admitted.to_string().c_str(),
                needs_replication(spec, options.timing)
                    ? "needed"
                    : "suppressed (Proposition 1)");
  }

  // 3. Assemble and start the system: publishers, brokers, subscribers.
  EdgeSystem system(options,
                    {ProxyGroup{milliseconds(100), {sensor, telemetry}}});
  system.start();
  std::this_thread::sleep_for(std::chrono::seconds(2));
  system.stop();

  // 4. Inspect the outcome.
  std::printf("\ncreated:   %llu messages\n",
              static_cast<unsigned long long>(system.messages_created()));
  std::printf("delivered: %llu messages\n",
              static_cast<unsigned long long>(system.messages_delivered()));
  for (const TopicId topic : {0u, 1u}) {
    const SeqNo last = system.last_seq(topic);
    if (last < 2) continue;
    const auto loss = system.subscriber(system.subscriber_index_of(topic))
                          .loss_stats(topic, 1, last - 1);
    std::printf("topic %u: %llu/%llu delivered, max consecutive losses %llu\n",
                topic,
                static_cast<unsigned long long>(loss.expected -
                                                loss.total_losses),
                static_cast<unsigned long long>(loss.expected),
                static_cast<unsigned long long>(loss.max_consecutive_losses));
  }
  return 0;
}
