// IIoT edge-monitoring scenario: a miniature of the paper's Table-2
// deployment (emergency response + monitoring + logging classes) on the
// real-thread runtime, with the Section III-D analysis printed first and
// per-class delivery statistics after a short run.
//
//   $ ./iiot_edge_monitoring
#include <cstdio>
#include <thread>

#include "core/differentiation.hpp"
#include "runtime/system.hpp"

int main() {
  using namespace frame;
  using namespace frame::runtime;

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(2);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);

  // Wall-clock-friendly rescale of Table 2 (same structure, 4x periods so
  // thread scheduling jitter is negligible).
  const struct {
    const char* klass;
    Duration period;
    Duration deadline;
    std::uint32_t li;
    std::uint32_t ni;
    Destination dest;
    std::size_t count;
  } classes[] = {
      {"emergency (L=0)", milliseconds(200), milliseconds(250), 0, 2,
       Destination::kEdge, 2},
      {"emergency (L=3)", milliseconds(200), milliseconds(250), 3, 0,
       Destination::kEdge, 2},
      {"monitoring (L=0)", milliseconds(400), milliseconds(450), 0, 1,
       Destination::kEdge, 4},
      {"monitoring (L=3)", milliseconds(400), milliseconds(450), 3, 0,
       Destination::kEdge, 4},
      {"monitoring (best-effort)", milliseconds(400), milliseconds(450),
       kLossInfinite, 0, Destination::kEdge, 4},
      {"logging (cloud, L=0)", milliseconds(1000), milliseconds(1200), 0, 1,
       Destination::kCloud, 2},
  };

  std::vector<ProxyGroup> proxies;
  std::vector<TopicSpec> all_specs;
  std::vector<const char*> class_of_topic;
  TopicId next_id = 0;
  for (const auto& klass : classes) {
    ProxyGroup proxy;
    proxy.period = klass.period;
    for (std::size_t i = 0; i < klass.count; ++i) {
      const TopicSpec spec{next_id++, klass.period, klass.deadline, klass.li,
                           klass.ni, klass.dest};
      proxy.topics.push_back(spec);
      all_specs.push_back(spec);
      class_of_topic.push_back(klass.klass);
    }
    proxies.push_back(std::move(proxy));
  }

  // --- Section III-D analysis ------------------------------------------
  std::printf("admission + differentiation analysis:\n");
  const auto failures = admit_all(all_specs, options.timing);
  std::printf("  %zu/%zu topics admitted\n", all_specs.size() - failures.size(),
              all_specs.size());
  const auto replicated = replication_set(all_specs, options.timing);
  std::printf("  topics needing replication (Proposition 1): %zu of %zu\n",
              replicated.size(), all_specs.size());
  std::printf("  EDF precedence (first five activities):\n");
  const auto ordering = deadline_ordering(all_specs, options.timing);
  for (std::size_t i = 0; i < 5 && i < ordering.size(); ++i) {
    std::printf("    %zu. %s of topic %u (%.1f ms)\n", i + 1,
                ordering[i].kind == JobKind::kDispatch ? "dispatch"
                                                       : "replication",
                ordering[i].topic, to_millis(ordering[i].pseudo_deadline));
  }

  // --- run ---------------------------------------------------------------
  EdgeSystem system(options, proxies);
  system.start();
  std::printf("\nrunning the edge for 3 seconds...\n");
  std::this_thread::sleep_for(std::chrono::seconds(3));
  system.stop();

  std::printf("\nper-class results:\n");
  std::printf("  %-28s %-10s %-10s %-8s\n", "class", "created", "delivered",
              "losses");
  for (std::size_t c = 0; c < std::size(classes); ++c) {
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t losses = 0;
    for (std::size_t t = 0; t < all_specs.size(); ++t) {
      if (class_of_topic[t] != classes[c].klass) continue;
      const TopicId topic = all_specs[t].id;
      const SeqNo last = system.last_seq(topic);
      if (last < 2) continue;
      const auto& sub =
          system.subscriber(system.subscriber_index_of(topic));
      const auto loss = sub.loss_stats(topic, 1, last - 1);
      created += loss.expected;
      delivered += loss.expected - loss.total_losses;
      losses += loss.total_losses;
    }
    std::printf("  %-28s %-10llu %-10llu %-8llu\n", classes[c].klass,
                static_cast<unsigned long long>(created),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(losses));
  }
  std::printf("\ncloud subscriber received %llu messages (logging class)\n",
              static_cast<unsigned long long>(
                  system.subscriber(2).total_unique()));
  return 0;
}
