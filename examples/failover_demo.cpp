// Failover demo: kills the Primary broker mid-run (the paper's SIGKILL
// experiment, Section VI-C) and narrates the recovery: failure detection,
// Backup promotion, publisher retention resend, and the resulting
// loss/duplicate accounting per topic.
//
//   $ ./failover_demo
#include <cstdio>
#include <thread>

#include "runtime/system.hpp"

int main() {
  using namespace frame;
  using namespace frame::runtime;

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(1);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);
  options.detector_poll = milliseconds(10);
  options.detector_misses = 3;

  std::vector<ProxyGroup> proxies;
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {
          // Zero loss, retention-covered (category-0 style).
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},
          // Up to 3 consecutive losses tolerated, no retention (cat 1).
          TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                    Destination::kEdge},
          // Zero loss via replication (category-2 style).
          TopicSpec{2, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},
      }});

  EdgeSystem system(options, proxies);
  for (const auto& spec : proxies[0].topics) {
    std::printf("topic %u: Li=%u Ni=%u -> %s\n", spec.id,
                spec.loss_tolerance, spec.retention,
                needs_replication(spec, options.timing)
                    ? "replicated to Backup"
                    : "covered by retention/loss budget (Prop. 1)");
  }

  system.start();
  std::printf("\n[t=0.0s] system running: publishers -> Primary -> "
              "subscribers\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  std::printf("[t=1.0s] >>> CRASHING the Primary broker (fail-stop) <<<\n");
  system.crash_primary();

  if (system.wait_for_failover(seconds(5))) {
    std::printf("[t=1.x s] Backup promoted itself; publishers redirected "
                "and re-sent their retention buffers\n");
  } else {
    std::printf("failover did not complete in time!\n");
    return 1;
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  system.stop();

  std::printf("\n--- post-mortem ---\n");
  std::printf("backup is primary: %s\n",
              system.backup().is_primary() ? "yes" : "no");
  std::printf("messages created:   %llu\n",
              static_cast<unsigned long long>(system.messages_created()));
  std::printf("unique delivered:   %llu\n",
              static_cast<unsigned long long>(system.messages_delivered()));

  for (const auto& spec : proxies[0].topics) {
    const SeqNo last = system.last_seq(spec.id);
    if (last < 2) continue;
    const auto& sub = system.subscriber(system.subscriber_index_of(spec.id));
    const auto loss = sub.loss_stats(spec.id, 1, last - 1);
    const bool met = spec.best_effort() ||
                     loss.max_consecutive_losses <= spec.loss_tolerance;
    std::printf("topic %u: losses=%llu, worst run=%llu, requirement Li=%u "
                "-> %s\n",
                spec.id, static_cast<unsigned long long>(loss.total_losses),
                static_cast<unsigned long long>(loss.max_consecutive_losses),
                spec.loss_tolerance, met ? "MET" : "VIOLATED");
  }
  return 0;
}
