// Failover demo: kills the Primary broker mid-run (the paper's SIGKILL
// experiment, Section VI-C) and narrates the recovery: failure detection,
// Backup promotion, publisher retention resend, and the resulting
// loss/duplicate accounting per topic.
//
// Also demonstrates the wire-path guarantee behind fail-over: a publisher
// redirecting to a new broker cannot wedge on a dead address, because
// TcpConnection::connect is bounded by SystemOptions::connect_timeout.
//
//   $ ./failover_demo
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "net/tcp.hpp"
#include "runtime/system.hpp"

namespace {

// Probe the redirect path against a deliberately unreachable "Primary": a
// listener whose accept queue is full silently drops SYNs, exactly like a
// crashed or partitioned host.  Returns false if the connect attempt was
// not bounded.
bool probe_bounded_redirect(frame::Duration timeout) {
  using namespace frame;

  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  ::listen(lfd, 1);
  socklen_t len = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);

  int prefill[8];
  for (int& fd : prefill) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  MonotonicClock clock;
  const TimePoint start = clock.now();
  auto result = TcpConnection::connect("127.0.0.1", ntohs(addr.sin_port),
                                       timeout);
  const Duration elapsed = clock.now() - start;

  for (const int fd : prefill) ::close(fd);
  ::close(lfd);

  std::printf("[wire] redirect to unreachable Primary: %s after %.0f ms "
              "(timeout %.0f ms) -> %s\n",
              result.is_ok() ? "connected?!"
                             : result.status().to_string().c_str(),
              static_cast<double>(elapsed) / 1e6,
              static_cast<double>(timeout) / 1e6,
              elapsed < seconds(2) ? "bounded" : "NOT BOUNDED");
  return !result.is_ok() && elapsed < seconds(2);
}

}  // namespace

int main() {
  using namespace frame;
  using namespace frame::runtime;

  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = milliseconds(1);
  options.timing.delta_bs_cloud = milliseconds(20);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);
  options.detector_poll = milliseconds(10);
  options.detector_misses = 3;

  std::vector<ProxyGroup> proxies;
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {
          // Zero loss, retention-covered (category-0 style).
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},
          // Up to 3 consecutive losses tolerated, no retention (cat 1).
          TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                    Destination::kEdge},
          // Zero loss via replication (category-2 style).
          TopicSpec{2, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},
      }});

  if (!probe_bounded_redirect(options.connect_timeout)) {
    std::printf("publisher redirect is not bounded!\n");
    return 1;
  }

  EdgeSystem system(options, proxies);
  for (const auto& spec : proxies[0].topics) {
    std::printf("topic %u: Li=%u Ni=%u -> %s\n", spec.id,
                spec.loss_tolerance, spec.retention,
                needs_replication(spec, options.timing)
                    ? "replicated to Backup"
                    : "covered by retention/loss budget (Prop. 1)");
  }

  system.start();
  std::printf("\n[t=0.0s] system running: publishers -> Primary -> "
              "subscribers\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));

  std::printf("[t=1.0s] >>> CRASHING the Primary broker (fail-stop) <<<\n");
  system.crash_primary();

  if (system.wait_for_failover(seconds(5))) {
    std::printf("[t=1.x s] Backup promoted itself; publishers redirected "
                "and re-sent their retention buffers\n");
  } else {
    std::printf("failover did not complete in time!\n");
    return 1;
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  system.stop();

  std::printf("\n--- post-mortem ---\n");
  std::printf("backup is primary: %s\n",
              system.backup().is_primary() ? "yes" : "no");
  std::printf("messages created:   %llu\n",
              static_cast<unsigned long long>(system.messages_created()));
  std::printf("unique delivered:   %llu\n",
              static_cast<unsigned long long>(system.messages_delivered()));

  for (const auto& spec : proxies[0].topics) {
    const SeqNo last = system.last_seq(spec.id);
    if (last < 2) continue;
    const auto& sub = system.subscriber(system.subscriber_index_of(spec.id));
    const auto loss = sub.loss_stats(spec.id, 1, last - 1);
    const bool met = spec.best_effort() ||
                     loss.max_consecutive_losses <= spec.loss_tolerance;
    std::printf("topic %u: losses=%llu, worst run=%llu, requirement Li=%u "
                "-> %s\n",
                spec.id, static_cast<unsigned long long>(loss.total_losses),
                static_cast<unsigned long long>(loss.max_consecutive_losses),
                spec.loss_tolerance, met ? "MET" : "VIOLATED");
  }
  return 0;
}
