// End-to-end runtime behaviour with the Primary hot path partitioned into
// several shards: fault-free delivery and per-topic gap-freedom must be
// indistinguishable from the single-queue broker, and failover recovery
// must route through the per-shard dedup bitmaps without loss or
// double-delivery.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

TimingParams sharded_timing() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

std::vector<ProxyGroup> sharded_deployment() {
  // Eight topics so a 4-shard broker exercises several shards at once
  // (splitmix64 spreads dense ids; see test_topic_sharding.cpp).
  std::vector<ProxyGroup> proxies;
  std::vector<TopicSpec> group_a, group_b;
  for (TopicId t = 0; t < 8; ++t) {
    TopicSpec spec{t, milliseconds(100), milliseconds(200), 0, 2,
                   Destination::kEdge};
    if (t % 2 == 0) {
      group_a.push_back(spec);  // zero-loss, replicated
    } else {
      spec.loss_tolerance = 3;
      spec.retention = 0;
      group_b.push_back(spec);  // loss-tolerant, no retention
    }
  }
  proxies.push_back(ProxyGroup{milliseconds(100), group_a});
  proxies.push_back(ProxyGroup{milliseconds(100), group_b});
  return proxies;
}

TEST(ShardedRuntime, BrokerHonoursConfiguredShardCount) {
  SystemOptions options;
  options.timing = sharded_timing();
  options.shards = 4;
  EdgeSystem system(options, sharded_deployment());
  EXPECT_EQ(system.primary().shard_count(), 4u);
  EXPECT_EQ(system.backup().shard_count(), 4u);
}

TEST(ShardedRuntime, ShardsClampedToSupportedRange) {
  SystemOptions options;
  options.timing = sharded_timing();
  options.shards = 10000;
  EdgeSystem system(options, sharded_deployment());
  EXPECT_EQ(system.primary().shard_count(), kMaxShards);
}

TEST(ShardedRuntime, FaultFreeDeliveryMatchesSingleQueueSemantics) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = sharded_timing();
  options.shards = 4;
  EdgeSystem system(options, sharded_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  system.stop();

  const auto created = system.messages_created();
  const auto delivered = system.messages_delivered();
  EXPECT_GT(created, 20u);
  // In-flight messages at shutdown may be unaccounted; allow a small gap.
  EXPECT_GE(delivered + 10, created);
  // No shard may double-deliver: unique deliveries never exceed creations.
  EXPECT_LE(delivered, created);

  // Per-topic gap-freedom for every zero-loss topic, whichever shard owns
  // it.
  for (TopicId topic = 0; topic < 8; topic += 2) {
    const SeqNo last = system.last_seq(topic);
    ASSERT_GT(last, 2u) << "topic " << topic;
    const auto& sub = system.subscriber(system.subscriber_index_of(topic));
    const auto loss = sub.loss_stats(topic, 1, last - 1);
    EXPECT_EQ(loss.total_losses, 0u)
        << "zero-loss topic " << topic << " lost messages";
  }
}

TEST(ShardedRuntime, FailoverRecoversAcrossShards) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = sharded_timing();
  options.shards = 4;
  options.detector_poll = milliseconds(10);
  options.detector_misses = 3;
  EdgeSystem system(options, sharded_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  system.stop();

  EXPECT_TRUE(system.backup().is_primary());

  // Every zero-loss topic survives the failover with no gap — the
  // promotion drained the Backup Buffer into per-shard queues and the
  // per-shard dedup bitmaps suppressed the retention replays.
  for (TopicId topic = 0; topic < 8; topic += 2) {
    const SeqNo last = system.last_seq(topic);
    ASSERT_GT(last, 5u) << "topic " << topic;
    const auto& sub = system.subscriber(system.subscriber_index_of(topic));
    const auto loss = sub.loss_stats(topic, 1, last - 1);
    EXPECT_EQ(loss.total_losses, 0u)
        << "zero-loss topic " << topic << " lost messages across failover";
  }
  // Loss-tolerant topics stay within their bound.
  for (TopicId topic = 1; topic < 8; topic += 2) {
    const SeqNo last = system.last_seq(topic);
    const auto& sub = system.subscriber(system.subscriber_index_of(topic));
    const auto loss = sub.loss_stats(topic, 1, last - 1);
    EXPECT_LE(loss.max_consecutive_losses, 3u) << "topic " << topic;
  }
}

TEST(ShardedRuntime, SingleShardReproducesLegacyBroker) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = sharded_timing();
  options.shards = 1;
  EdgeSystem system(options, sharded_deployment());
  EXPECT_EQ(system.primary().shard_count(), 1u);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();
  const auto created = system.messages_created();
  EXPECT_GT(created, 10u);
  EXPECT_GE(system.messages_delivered() + 10, created);
}

}  // namespace
}  // namespace frame::runtime
