// Real-thread end-to-end tests: fault-free delivery, failover with
// publisher resend, and duplicate suppression — the runtime counterpart of
// the simulator experiments.  Timing margins are generous to stay robust on
// loaded CI machines.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

TimingParams runtime_timing() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

std::vector<ProxyGroup> small_deployment() {
  // Topic 0: zero-loss with retention (category-0-like, slowed to 100 ms
  // so wall-clock jitter cannot starve it).
  // Topic 1: loss-tolerant without retention (category-1-like).
  // Topic 2: replicated zero-loss (category-2-like).
  // Topic 3: best-effort.
  // Topic 4: cloud logging topic (category-5-like).
  std::vector<ProxyGroup> proxies;
  proxies.push_back(ProxyGroup{
      milliseconds(100),
      {
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},
          TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                    Destination::kEdge},
          TopicSpec{2, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},
          TopicSpec{3, milliseconds(100), milliseconds(200), kLossInfinite,
                    0, Destination::kEdge},
      }});
  proxies.push_back(ProxyGroup{
      milliseconds(500),
      {TopicSpec{4, milliseconds(500), milliseconds(800), 0, 2,
                 Destination::kCloud}}});
  return proxies;
}

TEST(RuntimeSystem, FaultFreeDeliversEverything) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = runtime_timing();
  EdgeSystem system(options, small_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  system.stop();

  const auto created = system.messages_created();
  const auto delivered = system.messages_delivered();
  EXPECT_GT(created, 20u);
  // In-flight messages at shutdown may be unaccounted; allow a small gap.
  EXPECT_GE(delivered + 10, created);

  // Per-topic: first..last sequence all delivered for topic 0.
  const SeqNo last = system.last_seq(0);
  ASSERT_GT(last, 2u);
  const auto& sub = system.subscriber(system.subscriber_index_of(0));
  const auto loss = sub.loss_stats(0, 1, last - 1);
  EXPECT_EQ(loss.total_losses, 0u);
}

TEST(RuntimeSystem, CloudTopicRoutedToCloudSubscriber) {
  SystemOptions options;
  options.timing = runtime_timing();
  EdgeSystem system(options, small_deployment());
  EXPECT_EQ(system.subscriber_index_of(4), 2);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  system.stop();
  EXPECT_GT(system.subscriber(2).unique_count(4), 0u);
  EXPECT_EQ(system.subscriber(0).unique_count(4), 0u);
}

TEST(RuntimeSystem, FailoverRecoversRetainedTopics) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = runtime_timing();
  options.detector_poll = milliseconds(10);
  options.detector_misses = 3;
  EdgeSystem system(options, small_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  // Keep publishing through the Backup for a while.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  system.stop();

  EXPECT_TRUE(system.backup().is_primary());

  // Topic 0 (Li = 0, Ni = 2): no loss ever.
  {
    const SeqNo last = system.last_seq(0);
    ASSERT_GT(last, 5u);
    const auto& sub = system.subscriber(system.subscriber_index_of(0));
    const auto loss = sub.loss_stats(0, 1, last - 1);
    EXPECT_EQ(loss.total_losses, 0u) << "zero-loss topic lost messages";
  }
  // Topic 2 (Li = 0, replicated): no loss ever.
  {
    const SeqNo last = system.last_seq(2);
    const auto& sub = system.subscriber(system.subscriber_index_of(2));
    const auto loss = sub.loss_stats(2, 1, last - 1);
    EXPECT_EQ(loss.total_losses, 0u) << "replicated topic lost messages";
  }
  // Topic 1 (Li = 3, no retention): bounded consecutive losses.
  {
    const SeqNo last = system.last_seq(1);
    const auto& sub = system.subscriber(system.subscriber_index_of(1));
    const auto loss = sub.loss_stats(1, 1, last - 1);
    EXPECT_LE(loss.max_consecutive_losses, 3u);
  }
}

TEST(RuntimeSystem, FramePlusNeverReplicates) {
  SystemOptions options;
  options.config = ConfigName::kFramePlus;
  options.timing = runtime_timing();
  // Apply the FRAME+ bump at the workload level, as in the evaluation.
  auto proxies = small_deployment();
  for (auto& proxy : proxies) {
    for (auto& spec : proxy.topics) {
      // Raise Ni until Proposition 1 suppresses replication (the paper's
      // Table-2 set needs exactly +1; this deployment's wider deadlines can
      // need a bit more).
      while (needs_replication(spec, options.timing)) spec.retention += 1;
    }
  }
  EdgeSystem system(options, std::move(proxies));
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();
  EXPECT_EQ(system.primary().primary_stats().replications_executed, 0u);
  EXPECT_EQ(system.backup().backup_stats().replicas_received, 0u);
}

TEST(RuntimeSystem, CoordinationKeepsBackupBufferPruned) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = runtime_timing();
  EdgeSystem system(options, small_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  system.stop();
  const auto backup_stats = system.backup().backup_stats();
  // Replicas arrived (topics 2 and 4 replicate) and prunes followed.
  EXPECT_GT(backup_stats.replicas_received, 0u);
  EXPECT_GT(backup_stats.prunes_applied, 0u);
}

TEST(RuntimeSystem, DuplicatesAreDiscardedNotDoubleCounted) {
  SystemOptions options;
  options.config = ConfigName::kFcfsMinus;  // uncoordinated: recovery dups
  options.timing = runtime_timing();
  EdgeSystem system(options, small_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  system.stop();

  // Unique deliveries never exceed created messages.
  EXPECT_LE(system.messages_delivered(), system.messages_created());
  std::uint64_t dups = 0;
  for (int i = 0; i < 3; ++i) {
    dups += system.subscriber(i).total_duplicates();
  }
  EXPECT_GT(dups, 0u) << "uncoordinated recovery should produce duplicates";
}

}  // namespace
}  // namespace frame::runtime
