// Per-stage dispatch attribution: the runtime's queue-delay and
// service-time histograms must agree with the stitched
// job-enqueue -> dispatch-done span (queue_delay + service == span per
// message by construction — both sides read the same clock values), and
// the new series must be visible through every exporter surface.
#include <gtest/gtest.h>

#include <thread>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/stitch.hpp"
#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

TimingParams attribution_timing() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

/// One zero-loss (replicated) and one loss-tolerant topic, 50 ms period:
/// enough dispatches in a second without risking tracer-ring overflow.
std::vector<ProxyGroup> attribution_deployment() {
  return {ProxyGroup{
      milliseconds(50),
      {TopicSpec{0, milliseconds(50), milliseconds(150), 0, 2,
                 Destination::kEdge},
       TopicSpec{1, milliseconds(50), milliseconds(150), 3, 0,
                 Destination::kEdge}}}};
}

class StageAttributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_all();
  }
  void TearDown() override { obs::set_enabled(false); }
};

TEST_F(StageAttributionTest, HistogramsSumToStitchedDispatchSpan) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = attribution_timing();
  EdgeSystem system(options, attribution_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  system.stop();

  const obs::TraceDump dump = system.trace_dump();
  ASSERT_EQ(dump.dropped, 0u)
      << "tracer ring overflowed; the stitched timeline is incomplete and "
         "the comparison below would be apples-to-oranges";
  const obs::StitchReport report = obs::stitch({dump});
  ASSERT_GT(report.dispatch_span.count(), 10u);
  ASSERT_EQ(report.dispatch_span.count(), report.dispatch_queue_delay.count());

  const auto snap = obs::collect_snapshot(0);
  const obs::LatencyRecorder::Snapshot* queue_delay = nullptr;
  const obs::LatencyRecorder::Snapshot* service = nullptr;
  for (const auto& [name, latency] : snap.metrics.latencies) {
    if (name == "frame_dispatch_queue_delay_ns") queue_delay = &latency;
    if (name == "frame_dispatch_service_ns") service = &latency;
  }
  ASSERT_NE(queue_delay, nullptr);
  ASSERT_NE(service, nullptr);

  // Same population: every executed dispatch recorded one sample in each
  // histogram and one kDispatchDone span.
  EXPECT_EQ(queue_delay->count(), service->count());
  EXPECT_EQ(queue_delay->count(), report.dispatch_span.count());

  // queue_delay + service == span holds exactly per message (identical
  // clock reads on both sides), so the sums must match; the tolerance
  // only absorbs floating-point accumulation across samples.
  const double hist_sum =
      queue_delay->mean() * static_cast<double>(queue_delay->count()) +
      service->mean() * static_cast<double>(service->count());
  const double span_sum = report.dispatch_span.mean() *
                          static_cast<double>(report.dispatch_span.count());
  EXPECT_NEAR(hist_sum, span_sum, span_sum * 0.01 + 1000.0);

  // The stitched split agrees with the registry's split too.
  const double stitched_qd_sum =
      report.dispatch_queue_delay.mean() *
      static_cast<double>(report.dispatch_queue_delay.count());
  const double hist_qd_sum =
      queue_delay->mean() * static_cast<double>(queue_delay->count());
  EXPECT_NEAR(stitched_qd_sum, hist_qd_sum, span_sum * 0.01 + 1000.0);

  // Replicate jobs got the same treatment (topic 0 is replicated).
  bool saw_replicate_stage = false;
  for (const auto& [name, latency] : snap.metrics.latencies) {
    if (name == "frame_replicate_queue_delay_ns" && latency.count() > 0) {
      saw_replicate_stage = true;
    }
  }
  EXPECT_TRUE(saw_replicate_stage);
}

TEST_F(StageAttributionTest, StageSeriesVisibleInExporters) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = attribution_timing();
  EdgeSystem system(options, attribution_deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  system.stop();

  const auto snap = obs::collect_snapshot(0);

  // /metrics: summary quantiles plus the full log-binned histogram with
  // cumulative le buckets for the per-stage series.
  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE frame_dispatch_queue_delay_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE frame_dispatch_queue_delay_ns_hist histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("frame_dispatch_queue_delay_ns_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE frame_dispatch_service_ns_hist histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("frame_replicate_queue_delay_ns"), std::string::npos);

  // /snapshot.json: the same series carry a non-empty "hist" array of
  // [upper-edge-ns, count] pairs.
  const std::string json = obs::to_json(snap);
  const auto qd_pos = json.find("\"frame_dispatch_queue_delay_ns\"");
  ASSERT_NE(qd_pos, std::string::npos);
  const auto hist_pos = json.find("\"hist\":[", qd_pos);
  ASSERT_NE(hist_pos, std::string::npos);
  EXPECT_NE(json[hist_pos + 8], ']') << "histogram exported but empty";
  EXPECT_NE(json.find("\"frame_dispatch_service_ns\""), std::string::npos);
}

}  // namespace
}  // namespace frame::runtime
