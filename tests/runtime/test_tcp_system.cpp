// The full FRAME deployment over real loopback TCP sockets: fault-free
// delivery and crash failover with the same engine code, exercising the
// wire protocol end to end.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

SystemOptions tcp_options() {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.transport = Transport::kTcp;
  options.timing.delta_pb = milliseconds(5);
  options.timing.delta_bs_edge = microseconds(10);  // loopback lower bound
  options.timing.delta_bs_cloud = microseconds(10);
  options.timing.delta_bb = milliseconds(1);
  options.timing.failover_x = milliseconds(60);
  return options;
}

std::vector<ProxyGroup> deployment() {
  return {ProxyGroup{
      milliseconds(100),
      {
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},
          TopicSpec{1, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},
      }}};
}

TEST(TcpSystem, FaultFreeDeliversOverRealSockets) {
  EdgeSystem system(tcp_options(), deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  system.stop();

  EXPECT_GT(system.messages_created(), 8u);
  EXPECT_GE(system.messages_delivered() + 4, system.messages_created());

  const SeqNo last = system.last_seq(0);
  ASSERT_GT(last, 2u);
  const auto loss = system.subscriber(system.subscriber_index_of(0))
                        .loss_stats(0, 1, last - 1);
  EXPECT_EQ(loss.total_losses, 0u);
}

TEST(TcpSystem, FailoverWorksOverRealSockets) {
  EdgeSystem system(tcp_options(), deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();

  EXPECT_TRUE(system.backup().is_primary());
  for (const TopicId topic : {0u, 1u}) {
    const SeqNo last = system.last_seq(topic);
    ASSERT_GT(last, 4u);
    const auto loss = system.subscriber(system.subscriber_index_of(topic))
                          .loss_stats(topic, 1, last - 1);
    EXPECT_EQ(loss.total_losses, 0u) << "topic " << topic;
  }
}

}  // namespace
}  // namespace frame::runtime
