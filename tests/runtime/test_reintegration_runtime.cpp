// Real-thread backup reintegration: the crashed Primary restarts as the
// new Backup, receives a state sync, and the system survives a second
// crash.  Generous margins keep this robust on loaded machines.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

TimingParams runtime_timing() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

std::vector<ProxyGroup> deployment() {
  return {ProxyGroup{
      milliseconds(100),
      {
          TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                    Destination::kEdge},
          TopicSpec{1, milliseconds(100), milliseconds(200), 0, 1,
                    Destination::kEdge},
      }}};
}

TEST(RuntimeReintegration, RejoinRestoresReplication) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = runtime_timing();
  EdgeSystem system(options, deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  const auto before = system.primary().backup_stats().replicas_received;

  system.rejoin_crashed_primary();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  system.stop();

  // The restarted original Primary now acts as Backup and received new
  // replicas from the promoted broker (topic 1 replicates under Prop. 1).
  const auto after = system.primary().backup_stats().replicas_received;
  EXPECT_GT(after, before);
  EXPECT_FALSE(system.primary().is_primary());
  EXPECT_TRUE(system.backup().is_primary());
}

TEST(RuntimeReintegration, SurvivesSecondCrash) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.timing = runtime_timing();
  EdgeSystem system(options, deployment());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // First crash + failover.
  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));

  // Reintegrate the old Primary as the new Backup, let it sync.
  system.rejoin_crashed_primary();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  // Second crash: kill the promoted broker; the rejoined one takes over.
  system.backup().crash();
  const MonotonicClock clock;
  const TimePoint deadline = clock.now() + seconds(5);
  bool second_failover = false;
  while (clock.now() < deadline) {
    bool all = system.primary().is_primary();
    for (std::size_t i = 0; i < system.publisher_count(); ++i) {
      all = all && system.publisher(i).failover_count() >= 2;
    }
    if (all) {
      second_failover = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(second_failover) << "second failover did not complete";

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();

  // Zero-loss topics still met their requirement across BOTH crashes.
  for (const TopicId topic : {0u, 1u}) {
    const SeqNo last = system.last_seq(topic);
    ASSERT_GT(last, 5u);
    const auto& sub = system.subscriber(system.subscriber_index_of(topic));
    const auto loss = sub.loss_stats(topic, 1, last - 1);
    EXPECT_EQ(loss.total_losses, 0u) << "topic " << topic;
  }
}

}  // namespace
}  // namespace frame::runtime
