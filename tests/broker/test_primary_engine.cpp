// PrimaryEngine: Job Generator deadlines, selective replication, and the
// dispatch-replicate coordination algorithm of Table 3.
#include <gtest/gtest.h>

#include "broker/primary_engine.hpp"

namespace frame {
namespace {

TimingParams params_3d() {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  return params;
}

std::vector<TopicSpec> table2_topics() {
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  return specs;
}

Message msg_of(TopicId topic, SeqNo seq, TimePoint created) {
  return make_test_message(topic, seq, created);
}

PrimaryEngine frame_engine() {
  return PrimaryEngine(broker_config(ConfigName::kFrame), table2_topics(),
                       params_3d());
}

TEST(PrimaryEngine, SelectiveReplicationFollowsProposition1) {
  PrimaryEngine engine = frame_engine();
  EXPECT_FALSE(engine.replicates(0));
  EXPECT_FALSE(engine.replicates(1));
  EXPECT_TRUE(engine.replicates(2));
  EXPECT_FALSE(engine.replicates(3));
  EXPECT_FALSE(engine.replicates(4));
  EXPECT_TRUE(engine.replicates(5));
}

TEST(PrimaryEngine, FcfsReplicatesAllButBestEffort) {
  PrimaryEngine engine(broker_config(ConfigName::kFcfs), table2_topics(),
                       params_3d());
  EXPECT_TRUE(engine.replicates(0));
  EXPECT_TRUE(engine.replicates(1));
  EXPECT_TRUE(engine.replicates(2));
  EXPECT_TRUE(engine.replicates(3));
  EXPECT_FALSE(engine.replicates(4));  // Li = inf: never replicated
  EXPECT_TRUE(engine.replicates(5));
}

TEST(PrimaryEngine, PublishCreatesDispatchJobOnly) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(0, 100);
  engine.on_publish(msg_of(0, 1, milliseconds(10)), milliseconds(11));
  const auto job = engine.next_job();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->kind, JobKind::kDispatch);
  EXPECT_FALSE(engine.next_job().has_value());
  EXPECT_EQ(engine.stats().dispatch_jobs_created, 1u);
  EXPECT_EQ(engine.stats().replicate_jobs_created, 0u);
}

TEST(PrimaryEngine, JobDeadlineSubtractsObservedDeltaPb) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(0, 100);
  // tc = 10 ms, tp = 12 ms -> observed dPB = 2 ms.
  // Dd' = 50 - 1 = 49 ms -> absolute deadline = tp + 49 - 2 = 59 ms.
  engine.on_publish(msg_of(0, 1, milliseconds(10)), milliseconds(12));
  const auto job = engine.next_job();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->deadline, milliseconds(59));
  EXPECT_EQ(job->release, milliseconds(12));
}

TEST(PrimaryEngine, ReplicatedTopicGetsBothJobsWithLemmaDeadlines) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(2, 100);
  engine.on_publish(msg_of(2, 1, 0), milliseconds(1));  // dPB = 1 ms
  // EDF order: replicate (Dr' = 49.95 -> 1 + 48.95) before dispatch
  // (Dd' = 99 -> 1 + 98).
  const auto first = engine.next_job();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, JobKind::kReplicate);
  EXPECT_EQ(first->deadline, milliseconds(1) + milliseconds_f(48.95));
  const auto second = engine.next_job();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->kind, JobKind::kDispatch);
  EXPECT_EQ(second->deadline, milliseconds(99));
}

TEST(PrimaryEngine, DispatchDeliversToAllSubscribersOnce) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(0, 100);
  engine.subscribe(0, 101);
  engine.subscribe(0, 101);  // duplicate subscription ignored
  engine.on_publish(msg_of(0, 1, 0), 0);
  const auto job = engine.next_job();
  const auto effect = engine.execute_dispatch(*job);
  ASSERT_TRUE(effect.executed);
  EXPECT_EQ(effect.subscribers, (std::vector<NodeId>{100, 101}));
  EXPECT_EQ(effect.msg.seq, 1u);
}

// Table 3, Replicate step 1: if Dispatched is true, abort.
TEST(PrimaryEngine, ReplicateAfterDispatchAborts) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(2, 100);
  engine.on_publish(msg_of(2, 1, 0), 0);
  auto replicate = engine.next_job();   // EDF: replicate first
  auto dispatch = engine.next_job();
  ASSERT_EQ(dispatch->kind, JobKind::kDispatch);
  engine.execute_dispatch(*dispatch);
  const auto effect = engine.execute_replicate(*replicate);
  EXPECT_FALSE(effect.executed);
  EXPECT_TRUE(effect.aborted_dispatched);
  EXPECT_EQ(engine.stats().replications_aborted, 1u);
}

// Table 3, Dispatch step 3: if Replicated, request the Backup to Discard.
TEST(PrimaryEngine, DispatchAfterReplicationRequestsPrune) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(2, 100);
  engine.on_publish(msg_of(2, 1, 0), 0);
  auto replicate = engine.next_job();
  const auto rep_effect = engine.execute_replicate(*replicate);
  ASSERT_TRUE(rep_effect.executed);
  EXPECT_EQ(rep_effect.msg.seq, 1u);
  auto dispatch = engine.next_job();
  const auto effect = engine.execute_dispatch(*dispatch);
  ASSERT_TRUE(effect.executed);
  EXPECT_TRUE(effect.prune_backup);
  EXPECT_TRUE(effect.coordinated);
  EXPECT_EQ(engine.stats().prune_requests, 1u);
}

// Section IV-B: a dispatch with the replication still pending cancels it.
TEST(PrimaryEngine, DispatchCancelsPendingReplication) {
  // Force dispatch-before-replicate by using a FIFO engine where the
  // dispatch job is popped... FIFO pops replicate first, so instead use
  // FRAME and execute the dispatch job directly.
  PrimaryEngine engine = frame_engine();
  engine.subscribe(2, 100);
  engine.on_publish(msg_of(2, 1, 0), 0);
  auto replicate = engine.next_job();
  auto dispatch = engine.next_job();
  ASSERT_EQ(dispatch->kind, JobKind::kDispatch);
  (void)replicate;
  // Re-queue scenario: pretend the dispatch runs first (multi-worker).
  const auto effect = engine.execute_dispatch(*dispatch);
  ASSERT_TRUE(effect.executed);
  EXPECT_FALSE(effect.prune_backup);
  EXPECT_TRUE(effect.coordinated);
  EXPECT_EQ(engine.stats().replicate_jobs_cancelled, 1u);
}

TEST(PrimaryEngine, FcfsMinusSkipsCoordination) {
  PrimaryEngine engine(broker_config(ConfigName::kFcfsMinus), table2_topics(),
                       params_3d());
  engine.subscribe(2, 100);
  engine.on_publish(msg_of(2, 1, 0), 0);
  auto replicate = engine.next_job();
  ASSERT_EQ(replicate->kind, JobKind::kReplicate);
  engine.execute_replicate(*replicate);
  auto dispatch = engine.next_job();
  const auto effect = engine.execute_dispatch(*dispatch);
  ASSERT_TRUE(effect.executed);
  EXPECT_FALSE(effect.prune_backup);
  EXPECT_FALSE(effect.coordinated);
  // And replicate-after-dispatch executes instead of aborting.
  engine.on_publish(msg_of(2, 2, 0), 0);
  auto rep2 = engine.next_job();
  auto disp2 = engine.next_job();
  ASSERT_EQ(disp2->kind, JobKind::kDispatch);
  engine.execute_dispatch(*disp2);
  const auto effect2 = engine.execute_replicate(*rep2);
  EXPECT_TRUE(effect2.executed);
}

TEST(PrimaryEngine, FifoOrderIsReplicateThenDispatchPerArrival) {
  PrimaryEngine engine(broker_config(ConfigName::kFcfs), table2_topics(),
                       params_3d());
  engine.subscribe(0, 100);
  engine.on_publish(msg_of(0, 1, 0), 0);
  engine.on_publish(msg_of(0, 2, 0), 0);
  const auto j1 = engine.next_job();
  const auto j2 = engine.next_job();
  const auto j3 = engine.next_job();
  const auto j4 = engine.next_job();
  EXPECT_EQ(j1->kind, JobKind::kReplicate);
  EXPECT_EQ(j1->seq, 1u);
  EXPECT_EQ(j2->kind, JobKind::kDispatch);
  EXPECT_EQ(j2->seq, 1u);
  EXPECT_EQ(j3->kind, JobKind::kReplicate);
  EXPECT_EQ(j3->seq, 2u);
  EXPECT_EQ(j4->kind, JobKind::kDispatch);
  EXPECT_EQ(j4->seq, 2u);
}

TEST(PrimaryEngine, StaleJobWhenCopyEvicted) {
  BrokerConfig config = broker_config(ConfigName::kFrame);
  config.message_buffer_capacity = 2;
  PrimaryEngine engine(config, table2_topics(), params_3d());
  engine.subscribe(0, 100);
  engine.on_publish(msg_of(0, 1, 0), 0);
  engine.on_publish(msg_of(0, 2, 0), 0);
  engine.on_publish(msg_of(0, 3, 0), 0);  // evicts seq 1
  const auto job = engine.next_job();     // dispatch for seq 1
  const auto effect = engine.execute_dispatch(*job);
  EXPECT_FALSE(effect.executed);
  EXPECT_EQ(engine.stats().stale_jobs, 1u);
  EXPECT_EQ(engine.stats().overwritten_undelivered, 1u);
}

TEST(PrimaryEngine, RecoveryCopiesNeverReplicate) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(2, 100);
  Message recovered = msg_of(2, 9, 0);
  engine.on_recovery_copy(recovered, milliseconds(60));
  const auto job = engine.next_job();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->kind, JobKind::kDispatch);
  EXPECT_EQ(job->source, JobSource::kBackupBuffer);
  EXPECT_FALSE(engine.next_job().has_value());
  const auto effect = engine.execute_dispatch(*job);
  ASSERT_TRUE(effect.executed);
  EXPECT_TRUE(effect.msg.recovered);
  EXPECT_FALSE(effect.prune_backup);
  EXPECT_EQ(engine.stats().recovery_arrivals, 1u);
}

TEST(PrimaryEngine, DisallowedReplicationSkipsReplicateJob) {
  // A promoted Backup has no Backup of its own.
  PrimaryEngine engine = frame_engine();
  engine.subscribe(2, 100);
  engine.on_publish(msg_of(2, 1, 0), 0, /*allow_replication=*/false);
  const auto job = engine.next_job();
  EXPECT_EQ(job->kind, JobKind::kDispatch);
  EXPECT_FALSE(engine.next_job().has_value());
}

TEST(PrimaryEngine, UnknownTopicIgnored) {
  PrimaryEngine engine = frame_engine();
  engine.on_publish(msg_of(999, 1, 0), 0);
  EXPECT_FALSE(engine.next_job().has_value());
  EXPECT_EQ(engine.stats().arrivals, 0u);
}

TEST(PrimaryEngine, BestEffortTopicStillDispatched) {
  PrimaryEngine engine = frame_engine();
  engine.subscribe(4, 100);
  engine.on_publish(msg_of(4, 1, 0), 0);
  const auto job = engine.next_job();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->kind, JobKind::kDispatch);
  const auto effect = engine.execute_dispatch(*job);
  EXPECT_TRUE(effect.executed);
}

}  // namespace
}  // namespace frame
