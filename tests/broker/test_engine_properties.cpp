// Parameterized property sweeps over the PrimaryEngine across every
// Table-2 category and configuration: the Table-3 state machine must obey
// its invariants whatever the interleaving of dispatch and replicate jobs.
#include <gtest/gtest.h>

#include "broker/primary_engine.hpp"
#include "common/rng.hpp"

namespace frame {
namespace {

TimingParams params_3d() {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  return params;
}

std::vector<TopicSpec> table2_topics() {
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  return specs;
}

struct SweepParam {
  ConfigName config;
  std::uint64_t seed;
};

class EngineSweep : public ::testing::TestWithParam<SweepParam> {};

// Feed 200 random arrivals across all categories, execute jobs in random
// interleavings, and check the global invariants.
TEST_P(EngineSweep, Table3InvariantsUnderRandomInterleaving) {
  const SweepParam& param = GetParam();
  Rng rng(param.seed);
  std::vector<TopicSpec> topics = table2_topics();
  if (uses_retention_bump(param.config)) {
    // FRAME+ is FRAME plus the workload-level +1 retention bump.
    for (auto& spec : topics) {
      if (needs_replication(spec, params_3d())) spec.retention += 1;
    }
  }
  PrimaryEngine engine(broker_config(param.config), std::move(topics),
                       params_3d());
  for (TopicId topic = 0; topic < kTable2Categories; ++topic) {
    engine.subscribe(topic, 100 + topic % 2);
  }

  std::vector<Job> pending;
  SeqNo next_seq[kTable2Categories] = {1, 1, 1, 1, 1, 1};
  std::uint64_t deliveries = 0;
  std::uint64_t replicas = 0;
  std::uint64_t prunes = 0;
  TimePoint now = 0;

  for (int step = 0; step < 1000; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.4 || (pending.empty() && !engine.has_jobs())) {
      // New arrival on a random topic.
      const auto topic = static_cast<TopicId>(rng.next_below(6));
      now += microseconds(500);
      engine.on_publish(
          make_test_message(topic, next_seq[topic]++, now - microseconds(300)),
          now);
    } else if (dice < 0.7 && engine.has_jobs()) {
      // Pull some jobs into the "in flight" set (simulating workers).
      if (auto job = engine.next_job()) pending.push_back(*job);
    } else if (!pending.empty()) {
      // Execute a random in-flight job (models out-of-order completion).
      const std::size_t pick = rng.next_below(pending.size());
      const Job job = pending[pick];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
      if (job.kind == JobKind::kDispatch) {
        const auto effect = engine.execute_dispatch(job);
        if (effect.executed) {
          ++deliveries;
          EXPECT_FALSE(effect.subscribers.empty());
          if (effect.prune_backup) ++prunes;
        }
      } else {
        const auto effect = engine.execute_replicate(job);
        if (effect.executed) ++replicas;
      }
    }
  }

  const auto& stats = engine.stats();
  // Every executed job is accounted; aborts + executions never exceed
  // created replicate jobs.
  EXPECT_EQ(stats.dispatches_executed, deliveries);
  EXPECT_EQ(stats.replications_executed, replicas);
  EXPECT_LE(stats.replications_executed + stats.replications_aborted +
                stats.replicate_jobs_cancelled,
            stats.replicate_jobs_created);
  EXPECT_EQ(stats.prune_requests, prunes);

  // A prune can only follow a replica (paper Table 3: Discard is set on
  // copies that exist in the Backup Buffer).
  EXPECT_LE(stats.prune_requests, stats.replications_executed);

  // Coordination-off configurations never abort or prune.
  if (!broker_config(param.config).coordination) {
    EXPECT_EQ(stats.replications_aborted, 0u);
    EXPECT_EQ(stats.prune_requests, 0u);
    EXPECT_EQ(stats.replicate_jobs_cancelled, 0u);
  }
  // FIFO configurations replicate everything that is not best-effort:
  // twice the arrivals minus best-effort minus dispatch-only jobs.
  if (!broker_config(param.config).selective_replication) {
    EXPECT_GT(stats.replicate_jobs_created, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Values(SweepParam{ConfigName::kFrame, 1},
                      SweepParam{ConfigName::kFrame, 2},
                      SweepParam{ConfigName::kFrame, 3},
                      SweepParam{ConfigName::kFcfs, 1},
                      SweepParam{ConfigName::kFcfs, 2},
                      SweepParam{ConfigName::kFcfsMinus, 1},
                      SweepParam{ConfigName::kFcfsMinus, 2},
                      SweepParam{ConfigName::kFramePlus, 1}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name(to_string(info.param.config));
      for (auto& c : name) {
        if (c == '+') c = 'P';
        if (c == '-') c = 'M';
      }
      return name + "_s" + std::to_string(info.param.seed);
    });

// Deadline-ordering property: for any pair of jobs popped consecutively
// from a FRAME engine with simultaneous arrivals, EDF order holds.
TEST(EngineProperties, SimultaneousArrivalsPopInDeadlineOrder) {
  PrimaryEngine engine(broker_config(ConfigName::kFrame), table2_topics(),
                       params_3d());
  for (TopicId topic = 0; topic < kTable2Categories; ++topic) {
    engine.subscribe(topic, 100);
    engine.on_publish(make_test_message(topic, 1, 0), 0);
  }
  TimePoint last = -1;
  int count = 0;
  while (auto job = engine.next_job()) {
    EXPECT_GE(job->deadline, last);
    last = job->deadline;
    ++count;
  }
  // 6 dispatch jobs + replicate jobs for categories 2 and 5.
  EXPECT_EQ(count, 8);
}

}  // namespace
}  // namespace frame
