// PollingFailureDetector ordering contract (documented in the header):
// start/reply/suspect sequencing, monotone replies, un-suspicion on a
// fresh reply, and the detection_bound() guarantee.
#include <gtest/gtest.h>

#include "broker/failure_detector.hpp"

namespace frame {
namespace {

constexpr Duration kPeriod = milliseconds(10);
constexpr int kMisses = 3;

TEST(FailureDetector, NeverSuspectsBeforeStart) {
  PollingFailureDetector detector(kPeriod, kMisses);
  EXPECT_FALSE(detector.suspected(0));
  EXPECT_FALSE(detector.suspected(seconds(100)));
}

TEST(FailureDetector, StartCountsAsProofOfLife) {
  PollingFailureDetector detector(kPeriod, kMisses);
  detector.start(seconds(1));
  // Exactly at the threshold: not yet suspected (strict inequality).
  EXPECT_FALSE(detector.suspected(seconds(1) + kPeriod * kMisses));
  // One tick past the threshold: suspected.
  EXPECT_TRUE(detector.suspected(seconds(1) + kPeriod * kMisses + 1));
}

TEST(FailureDetector, ReplyBeforeStartDoesNotArm) {
  PollingFailureDetector detector(kPeriod, kMisses);
  detector.on_reply(seconds(1));
  EXPECT_FALSE(detector.suspected(seconds(100)));
  detector.start(seconds(100));
  EXPECT_FALSE(detector.suspected(seconds(100) + kPeriod));
  EXPECT_TRUE(detector.suspected(seconds(101)));
}

TEST(FailureDetector, StaleReplyNeverRegresses) {
  PollingFailureDetector detector(kPeriod, kMisses);
  detector.start(seconds(2));
  // Replaying an old cached reply time (before start) must not pull the
  // proof of life backwards and fabricate a suspicion.
  detector.on_reply(seconds(1));
  EXPECT_FALSE(detector.suspected(seconds(2) + kPeriod * kMisses));
  // Nor may it mask one: the detector still fires on schedule.
  EXPECT_TRUE(detector.suspected(seconds(2) + kPeriod * kMisses + 1));
}

TEST(FailureDetector, FreshReplyUnsuspects) {
  PollingFailureDetector detector(kPeriod, kMisses);
  detector.start(0);
  const TimePoint late = kPeriod * kMisses + milliseconds(5);
  EXPECT_TRUE(detector.suspected(late));
  detector.on_reply(late);  // the peer answered after all (restart)
  EXPECT_FALSE(detector.suspected(late + kPeriod));
}

TEST(FailureDetector, DetectionBoundCoversWorstCaseCrash) {
  PollingFailureDetector detector(kPeriod, kMisses);
  EXPECT_EQ(detector.detection_bound(), kPeriod * (kMisses + 1));

  // Worst case: the peer answers a poll at t, crashes immediately after,
  // and the driver polls every kPeriod.  The last proof of life is t, so
  // by t + detection_bound() the detector must have fired.
  detector.start(0);
  detector.on_reply(milliseconds(10));
  EXPECT_TRUE(detector.suspected(milliseconds(10) + detector.detection_bound()));
}

TEST(FailureDetector, SuspicionIsPersistentWithoutNewReplies) {
  PollingFailureDetector detector(kPeriod, kMisses);
  detector.start(0);
  const TimePoint fired = kPeriod * kMisses + 1;
  ASSERT_TRUE(detector.suspected(fired));
  EXPECT_TRUE(detector.suspected(fired + seconds(10)));
  EXPECT_TRUE(detector.suspected(fired + seconds(100)));
}

}  // namespace
}  // namespace frame
