// BackupEngine promotion/pruning, PublisherEngine batching/retention, and
// SubscriberEngine accounting.
#include <gtest/gtest.h>

#include "broker/backup_engine.hpp"
#include "broker/failure_detector.hpp"
#include "broker/publisher_engine.hpp"
#include "broker/subscriber_engine.hpp"

namespace frame {
namespace {

Message msg_of(TopicId topic, SeqNo seq, TimePoint created = 0) {
  return make_test_message(topic, seq, created);
}

// ------------------------------------------------------------ BackupEngine

TEST(BackupEngine, PromotionReturnsOnlyLiveCopies) {
  BackupEngine backup(broker_config(ConfigName::kFrame));
  backup.configure(3);
  backup.on_replica(msg_of(0, 1), 0);
  backup.on_replica(msg_of(0, 2), 0);
  backup.on_replica(msg_of(1, 1), 0);
  backup.on_prune(0, 1);
  backup.on_prune(2, 7);  // never replicated: no-op

  const auto recovery = backup.promote();
  ASSERT_EQ(recovery.size(), 2u);
  EXPECT_EQ(recovery[0].topic, 0u);
  EXPECT_EQ(recovery[0].seq, 2u);
  EXPECT_EQ(recovery[1].topic, 1u);
  EXPECT_EQ(backup.stats().replicas_received, 3u);
  EXPECT_EQ(backup.stats().prunes_received, 2u);
  EXPECT_EQ(backup.stats().prunes_applied, 1u);
  EXPECT_EQ(backup.stats().recovered, 2u);
  EXPECT_EQ(backup.stats().skipped_discarded, 1u);
  // The store is cleared by promotion.
  EXPECT_EQ(backup.store().size(), 0u);
}

TEST(BackupEngine, FullyPrunedBufferRecoversNothing) {
  BackupEngine backup(broker_config(ConfigName::kFrame));
  backup.configure(1);
  for (SeqNo seq = 1; seq <= 5; ++seq) {
    backup.on_replica(msg_of(0, seq), 0);
    backup.on_prune(0, seq);
  }
  EXPECT_TRUE(backup.promote().empty());
}

// --------------------------------------------------------- PublisherEngine

TEST(PublisherEngine, BatchCreatesOneMessagePerTopic) {
  std::vector<TopicSpec> topics{
      {0, milliseconds(50), milliseconds(50), 0, 2, Destination::kEdge},
      {1, milliseconds(50), milliseconds(50), 3, 0, Destination::kEdge},
  };
  PublisherEngine publisher(1, topics, milliseconds(50));
  const auto batch1 = publisher.create_batch(milliseconds(5));
  ASSERT_EQ(batch1.size(), 2u);
  EXPECT_EQ(batch1[0].topic, 0u);
  EXPECT_EQ(batch1[0].seq, 1u);
  EXPECT_EQ(batch1[0].created_at, milliseconds(5));
  EXPECT_EQ(batch1[1].topic, 1u);

  const auto batch2 = publisher.create_batch(milliseconds(55));
  EXPECT_EQ(batch2[0].seq, 2u);
  EXPECT_EQ(publisher.messages_created(), 4u);
  EXPECT_EQ(publisher.last_seq(0), 2u);
  EXPECT_EQ(publisher.last_seq(99), 0u);
}

TEST(PublisherEngine, FailoverResendsRetainedPerTopicDepth) {
  std::vector<TopicSpec> topics{
      {0, milliseconds(50), milliseconds(50), 0, 2, Destination::kEdge},
      {1, milliseconds(50), milliseconds(50), 3, 0, Destination::kEdge},
  };
  PublisherEngine publisher(1, topics, milliseconds(50));
  for (int i = 0; i < 5; ++i) {
    publisher.create_batch(milliseconds(50) * (i + 1));
  }
  const auto resend = publisher.failover_resend();
  // Topic 0 retains Ni = 2 (seqs 4, 5); topic 1 retains nothing.
  ASSERT_EQ(resend.size(), 2u);
  EXPECT_EQ(resend[0].topic, 0u);
  EXPECT_TRUE(resend[0].recovered);
  EXPECT_TRUE(resend[1].recovered);
  EXPECT_EQ(resend[0].seq, 4u);
  EXPECT_EQ(resend[1].seq, 5u);
}

TEST(PublisherEngine, PayloadSizeConfigurable) {
  std::vector<TopicSpec> topics{
      {0, milliseconds(50), milliseconds(50), 0, 1, Destination::kEdge}};
  PublisherEngine publisher(1, topics, milliseconds(50), 32);
  const auto batch = publisher.create_batch(0);
  EXPECT_EQ(batch[0].payload_size, 32);
}

// -------------------------------------------------------- SubscriberEngine

TopicSpec sub_spec(TopicId id) {
  return TopicSpec{id, milliseconds(100), milliseconds(100), 0, 1,
                   Destination::kEdge};
}

TEST(SubscriberEngine, DeduplicatesBySequence) {
  SubscriberEngine sub(1);
  sub.add_topic(sub_spec(0));
  EXPECT_TRUE(sub.on_deliver(msg_of(0, 1), milliseconds(1)));
  EXPECT_FALSE(sub.on_deliver(msg_of(0, 1), milliseconds(2)));
  EXPECT_TRUE(sub.on_deliver(msg_of(0, 2), milliseconds(3)));
  EXPECT_EQ(sub.unique_count(0), 2u);
  EXPECT_EQ(sub.duplicate_count(0), 1u);
  EXPECT_TRUE(sub.delivered(0, 1));
  EXPECT_FALSE(sub.delivered(0, 3));
}

TEST(SubscriberEngine, UnsubscribedTopicIgnored) {
  SubscriberEngine sub(1);
  EXPECT_FALSE(sub.on_deliver(msg_of(9, 1), 0));
  EXPECT_EQ(sub.total_unique(), 0u);
}

TEST(SubscriberEngine, LossStatsFindConsecutiveRuns) {
  SubscriberEngine sub(1);
  sub.add_topic(sub_spec(0));
  // Deliver 1,2,5,9 of 1..10: losses 3,4 (run 2), 6,7,8 (run 3), 10 (run 1).
  for (const SeqNo seq : {1, 2, 5, 9}) sub.on_deliver(msg_of(0, seq), 0);
  const LossStats stats = sub.loss_stats(0, 1, 10);
  EXPECT_EQ(stats.expected, 10u);
  EXPECT_EQ(stats.total_losses, 6u);
  EXPECT_EQ(stats.max_consecutive_losses, 3u);
}

TEST(SubscriberEngine, LossStatsPerfectDelivery) {
  SubscriberEngine sub(1);
  sub.add_topic(sub_spec(0));
  for (SeqNo seq = 1; seq <= 20; ++seq) sub.on_deliver(msg_of(0, seq), 0);
  const LossStats stats = sub.loss_stats(0, 1, 20);
  EXPECT_EQ(stats.total_losses, 0u);
  EXPECT_EQ(stats.max_consecutive_losses, 0u);
}

TEST(SubscriberEngine, LossStatsEmptyRange) {
  SubscriberEngine sub(1);
  sub.add_topic(sub_spec(0));
  const LossStats stats = sub.loss_stats(0, 5, 4);
  EXPECT_EQ(stats.expected, 0u);
}

TEST(SubscriberEngine, DeadlineAccountingWithinWindow) {
  SubscriberEngine sub(1);
  sub.add_topic(sub_spec(0));  // Di = 100 ms
  sub.set_measure_window(seconds(1), seconds(2));

  // Created before the window: not counted.
  sub.on_deliver(msg_of(0, 1, milliseconds(500)), milliseconds(550));
  // In window, on time.
  sub.on_deliver(msg_of(0, 2, milliseconds(1100)), milliseconds(1150));
  // In window, late (150 ms > 100 ms).
  sub.on_deliver(msg_of(0, 3, milliseconds(1200)), milliseconds(1350));
  // Created after the window end: not counted.
  sub.on_deliver(msg_of(0, 4, seconds(2)), seconds(2) + milliseconds(10));

  EXPECT_EQ(sub.delivered_in_window(0), 2u);
  EXPECT_EQ(sub.on_time_in_window(0), 1u);
}

TEST(SubscriberEngine, WatchedTopicRecordsTrace) {
  SubscriberEngine sub(1);
  sub.add_topic(sub_spec(0));
  sub.add_topic(sub_spec(1));
  sub.watch(0);
  Message watched = msg_of(0, 1, milliseconds(10));
  watched.dispatched_at = milliseconds(14);
  watched.recovered = true;
  sub.on_deliver(watched, milliseconds(15));
  sub.on_deliver(msg_of(1, 1, milliseconds(10)), milliseconds(15));

  const auto& trace = sub.trace(0);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].seq, 1u);
  EXPECT_EQ(trace[0].latency, milliseconds(5));
  EXPECT_EQ(trace[0].delta_bs, milliseconds(1));
  EXPECT_TRUE(trace[0].recovered);
  EXPECT_TRUE(sub.trace(1).empty());
  EXPECT_TRUE(sub.trace(42).empty());
}

// ----------------------------------------------------- PollingFailureDetector

TEST(FailureDetector, SuspectsAfterMissedReplies) {
  PollingFailureDetector detector(milliseconds(10), 3);
  detector.start(0);
  EXPECT_FALSE(detector.suspected(milliseconds(25)));
  EXPECT_FALSE(detector.suspected(milliseconds(30)));
  EXPECT_TRUE(detector.suspected(milliseconds(31)));
}

TEST(FailureDetector, RepliesKeepItQuiet) {
  PollingFailureDetector detector(milliseconds(10), 3);
  detector.start(0);
  detector.on_reply(milliseconds(25));
  EXPECT_FALSE(detector.suspected(milliseconds(50)));
  EXPECT_TRUE(detector.suspected(milliseconds(56)));
}

TEST(FailureDetector, NotStartedNeverSuspects) {
  PollingFailureDetector detector(milliseconds(10), 3);
  EXPECT_FALSE(detector.suspected(seconds(100)));
}

TEST(FailureDetector, StaleReplyIgnored) {
  PollingFailureDetector detector(milliseconds(10), 3);
  detector.start(milliseconds(100));
  detector.on_reply(milliseconds(50));  // older than start
  EXPECT_FALSE(detector.suspected(milliseconds(120)));
  EXPECT_TRUE(detector.suspected(milliseconds(131)));
}

TEST(FailureDetector, DetectionBound) {
  PollingFailureDetector detector(milliseconds(10), 4);
  EXPECT_EQ(detector.detection_bound(), milliseconds(50));
}

}  // namespace
}  // namespace frame
