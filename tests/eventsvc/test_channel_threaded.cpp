// Event channel with the ThreadPoolDispatcher: the classic TAO path under
// real concurrency — many suppliers, many consumers, priority lanes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "eventsvc/event_channel.hpp"

namespace frame::eventsvc {
namespace {

Event make_event(SupplierId source, EventType type) {
  Event event;
  event.header.source = source;
  event.header.type = type;
  return event;
}

TEST(EventChannelThreaded, AllEventsReachAllMatchingConsumers) {
  EventChannel channel(std::make_unique<ThreadPoolDispatcher>(4, 2));
  constexpr int kConsumers = 8;
  constexpr int kSuppliers = 4;
  constexpr int kEventsPerSupplier = 500;

  std::atomic<int> received{0};
  for (NodeId consumer = 0; consumer < kConsumers; ++consumer) {
    channel.subscribe(consumer,
                      Filter({SubscriptionPattern{kAnySupplier, kAnyType}}),
                      consumer % 2);
    channel.obtain_push_supplier(consumer).connect(
        [&](const Event&) { received.fetch_add(1); });
  }

  std::vector<std::thread> suppliers;
  for (SupplierId supplier = 0; supplier < kSuppliers; ++supplier) {
    suppliers.emplace_back([&, supplier] {
      auto& proxy = channel.obtain_push_consumer(supplier + 100);
      for (int i = 0; i < kEventsPerSupplier; ++i) {
        proxy.push(make_event(supplier + 100,
                              static_cast<EventType>(i)));
      }
    });
  }
  for (auto& thread : suppliers) thread.join();
  channel.drain();

  EXPECT_EQ(received.load(), kConsumers * kSuppliers * kEventsPerSupplier);
  EXPECT_EQ(channel.stats().pushed,
            static_cast<std::uint64_t>(kSuppliers * kEventsPerSupplier));
}

TEST(EventChannelThreaded, FilteredConsumersOnlySeeTheirTraffic) {
  EventChannel channel(std::make_unique<ThreadPoolDispatcher>(3, 1));
  std::atomic<int> type_a{0};
  std::atomic<int> type_b{0};
  channel.subscribe(1, Filter({SubscriptionPattern{kAnySupplier, 1}}));
  channel.obtain_push_supplier(1).connect(
      [&](const Event&) { type_a.fetch_add(1); });
  channel.subscribe(2, Filter({SubscriptionPattern{kAnySupplier, 2}}));
  channel.obtain_push_supplier(2).connect(
      [&](const Event&) { type_b.fetch_add(1); });

  auto& proxy = channel.obtain_push_consumer(9);
  for (int i = 0; i < 300; ++i) {
    proxy.push(make_event(9, static_cast<EventType>(1 + (i % 3 == 0))));
  }
  channel.drain();
  EXPECT_EQ(type_a.load() + type_b.load(), 300);
  EXPECT_EQ(type_b.load(), 100);
}

TEST(EventChannelThreaded, IntakeHookUnderConcurrency) {
  // FRAME-mode intake must observe every push exactly once even with
  // concurrent suppliers.
  EventChannel channel(std::make_unique<ThreadPoolDispatcher>(4, 1));
  std::atomic<int> hooked{0};
  channel.set_intake_hook([&](const Event&) { hooked.fetch_add(1); });

  std::vector<std::thread> suppliers;
  for (int s = 0; s < 6; ++s) {
    suppliers.emplace_back([&, s] {
      auto& proxy = channel.obtain_push_consumer(static_cast<SupplierId>(s));
      for (int i = 0; i < 400; ++i) {
        proxy.push(make_event(static_cast<SupplierId>(s), 1));
      }
    });
  }
  for (auto& thread : suppliers) thread.join();
  EXPECT_EQ(hooked.load(), 6 * 400);
}

}  // namespace
}  // namespace frame::eventsvc
