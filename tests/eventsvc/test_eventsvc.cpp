// Event service substrate tests: filtering, correlation, dispatching, and
// the event channel in both Fig. 5 modes.
#include <gtest/gtest.h>

#include <atomic>

#include "eventsvc/correlation.hpp"
#include "eventsvc/dispatching.hpp"
#include "eventsvc/event_channel.hpp"
#include "eventsvc/filtering.hpp"

namespace frame::eventsvc {
namespace {

Event make_event(SupplierId source, EventType type) {
  Event event;
  event.header.source = source;
  event.header.type = type;
  return event;
}

// ---------------------------------------------------------------- Filtering

TEST(Filtering, ExactMatch) {
  Filter filter({SubscriptionPattern{1, 10}});
  EXPECT_TRUE(filter.matches(EventHeader{1, 10, 0}));
  EXPECT_FALSE(filter.matches(EventHeader{1, 11, 0}));
  EXPECT_FALSE(filter.matches(EventHeader{2, 10, 0}));
}

TEST(Filtering, Wildcards) {
  Filter any_source({SubscriptionPattern{kAnySupplier, 10}});
  EXPECT_TRUE(any_source.matches(EventHeader{999, 10, 0}));
  EXPECT_FALSE(any_source.matches(EventHeader{999, 11, 0}));

  Filter any_type({SubscriptionPattern{1, kAnyType}});
  EXPECT_TRUE(any_type.matches(EventHeader{1, 77, 0}));
  EXPECT_FALSE(any_type.matches(EventHeader{2, 77, 0}));

  Filter everything({SubscriptionPattern{}});
  EXPECT_TRUE(everything.matches(EventHeader{3, 4, 0}));
}

TEST(Filtering, EmptyFilterMatchesNothing) {
  Filter filter;
  EXPECT_FALSE(filter.matches(EventHeader{1, 1, 0}));
}

TEST(Filtering, AnyPatternSuffices) {
  Filter filter({SubscriptionPattern{1, 10}, SubscriptionPattern{2, 20}});
  EXPECT_TRUE(filter.matches(EventHeader{2, 20, 0}));
  EXPECT_FALSE(filter.matches(EventHeader{1, 20, 0}));
}

// -------------------------------------------------------------- Correlation

TEST(Correlation, DisjunctionDeliversOnAnyMatch) {
  Correlator correlator(CorrelationSpec{
      CorrelationKind::kDisjunction,
      {SubscriptionPattern{1, kAnyType}, SubscriptionPattern{2, kAnyType}}});
  EXPECT_EQ(correlator.offer(make_event(1, 5)).size(), 1u);
  EXPECT_EQ(correlator.offer(make_event(3, 5)).size(), 0u);
}

TEST(Correlation, ConjunctionWaitsForAllPatterns) {
  Correlator correlator(CorrelationSpec{
      CorrelationKind::kConjunction,
      {SubscriptionPattern{1, kAnyType}, SubscriptionPattern{2, kAnyType}}});
  EXPECT_TRUE(correlator.offer(make_event(1, 5)).empty());
  EXPECT_TRUE(correlator.offer(make_event(1, 6)).empty());  // refresh slot 1
  const auto group = correlator.offer(make_event(2, 7));
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].header.type, 6u);  // latest event per slot
  EXPECT_EQ(group[1].header.source, 2u);
}

TEST(Correlation, ConjunctionResetsAfterFiring) {
  Correlator correlator(CorrelationSpec{
      CorrelationKind::kConjunction,
      {SubscriptionPattern{1, kAnyType}, SubscriptionPattern{2, kAnyType}}});
  correlator.offer(make_event(1, 0));
  EXPECT_EQ(correlator.offer(make_event(2, 0)).size(), 2u);
  // Needs both patterns again.
  EXPECT_TRUE(correlator.offer(make_event(2, 1)).empty());
  EXPECT_EQ(correlator.offer(make_event(1, 1)).size(), 2u);
}

TEST(Correlation, NonMatchingEventIgnored) {
  Correlator correlator(CorrelationSpec{CorrelationKind::kConjunction,
                                        {SubscriptionPattern{1, 1}}});
  EXPECT_TRUE(correlator.offer(make_event(9, 9)).empty());
}

// -------------------------------------------------------------- Dispatching

TEST(Dispatching, SynchronousRunsInline) {
  SynchronousDispatcher dispatcher;
  int runs = 0;
  dispatcher.dispatch(0, [&] { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(Dispatching, ThreadPoolRunsAllWork) {
  ThreadPoolDispatcher dispatcher(4, 2);
  std::atomic<int> runs{0};
  for (int i = 0; i < 200; ++i) {
    dispatcher.dispatch(static_cast<std::size_t>(i % 2), [&] { ++runs; });
  }
  dispatcher.drain();
  EXPECT_EQ(runs.load(), 200);
}

TEST(Dispatching, HigherPriorityLaneServedFirst) {
  // One worker; block it, enqueue low then high, verify high runs first.
  ThreadPoolDispatcher dispatcher(1, 2);
  std::atomic<bool> release{false};
  std::vector<int> order;
  std::mutex order_mutex;
  dispatcher.dispatch(0, [&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  dispatcher.dispatch(1, [&] {
    std::lock_guard lock(order_mutex);
    order.push_back(1);
  });
  dispatcher.dispatch(0, [&] {
    std::lock_guard lock(order_mutex);
    order.push_back(0);
  });
  release.store(true);
  dispatcher.drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);  // lane 0 (highest) first
  EXPECT_EQ(order[1], 1);
}

TEST(Dispatching, ShutdownIsIdempotent) {
  ThreadPoolDispatcher dispatcher(2, 1);
  dispatcher.shutdown();
  dispatcher.shutdown();
  dispatcher.dispatch(0, [] { FAIL() << "work after shutdown"; });
  SUCCEED();
}

// ------------------------------------------------------------ EventChannel

TEST(EventChannel, ClassicPathFiltersAndDelivers) {
  EventChannel channel(std::make_unique<SynchronousDispatcher>());
  std::vector<EventType> received;
  channel.subscribe(7, Filter({SubscriptionPattern{1, kAnyType}}));
  channel.obtain_push_supplier(7).connect(
      [&](const Event& event) { received.push_back(event.header.type); });

  auto& supplier1 = channel.obtain_push_consumer(1);
  auto& supplier2 = channel.obtain_push_consumer(2);
  supplier1.push(make_event(1, 100));
  supplier2.push(make_event(2, 200));  // filtered out
  supplier1.push(make_event(1, 101));

  EXPECT_EQ(received, (std::vector<EventType>{100, 101}));
  EXPECT_EQ(channel.stats().pushed, 3u);
  EXPECT_EQ(channel.stats().delivered, 2u);
  EXPECT_EQ(channel.stats().filtered_out, 1u);
}

TEST(EventChannel, MultipleConsumersEachFiltered) {
  EventChannel channel(std::make_unique<SynchronousDispatcher>());
  int a_count = 0;
  int b_count = 0;
  channel.subscribe(1, Filter({SubscriptionPattern{kAnySupplier, 1}}));
  channel.obtain_push_supplier(1).connect([&](const Event&) { ++a_count; });
  channel.subscribe(2, Filter({SubscriptionPattern{kAnySupplier, kAnyType}}));
  channel.obtain_push_supplier(2).connect([&](const Event&) { ++b_count; });

  channel.obtain_push_consumer(5).push(make_event(5, 1));
  channel.obtain_push_consumer(5).push(make_event(5, 2));
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 2);
}

TEST(EventChannel, CorrelationPathDeliversGroups) {
  EventChannel channel(std::make_unique<SynchronousDispatcher>());
  int groups = 0;
  channel.set_correlation(
      3, CorrelationSpec{CorrelationKind::kConjunction,
                         {SubscriptionPattern{1, kAnyType},
                          SubscriptionPattern{2, kAnyType}}});
  channel.obtain_push_supplier(3).connect([&](const Event&) { ++groups; });
  channel.obtain_push_consumer(1).push(make_event(1, 0));
  EXPECT_EQ(groups, 0);
  channel.obtain_push_consumer(2).push(make_event(2, 0));
  EXPECT_EQ(groups, 2);  // the conjunction group: one push per member event
}

TEST(EventChannel, IntakeHookBypassesClassicPath) {
  // Fig. 5b: with the hook installed, pushes reach FRAME's Message Proxy
  // and no classic delivery happens.
  EventChannel channel(std::make_unique<SynchronousDispatcher>());
  int hooked = 0;
  int classic = 0;
  channel.subscribe(1, Filter({SubscriptionPattern{}}));
  channel.obtain_push_supplier(1).connect([&](const Event&) { ++classic; });
  channel.set_intake_hook([&](const Event&) { ++hooked; });

  channel.obtain_push_consumer(9).push(make_event(9, 1));
  EXPECT_EQ(hooked, 1);
  EXPECT_EQ(classic, 0);
}

TEST(EventChannel, DeliverToPushesThroughConsumerProxy) {
  EventChannel channel(std::make_unique<SynchronousDispatcher>());
  std::vector<EventType> received;
  channel.obtain_push_supplier(4).connect(
      [&](const Event& event) { received.push_back(event.header.type); });
  channel.deliver_to(4, make_event(0, 55));
  channel.deliver_to(99, make_event(0, 56));  // unknown consumer: ignored
  EXPECT_EQ(received, (std::vector<EventType>{55}));
}

TEST(EventChannel, DisconnectedProxyDropsSilently) {
  EventChannel channel(std::make_unique<SynchronousDispatcher>());
  auto& proxy = channel.obtain_push_supplier(4);
  proxy.connect([](const Event&) { FAIL(); });
  proxy.disconnect();
  channel.deliver_to(4, make_event(0, 1));
  SUCCEED();
}

}  // namespace
}  // namespace frame::eventsvc
