// Transport hardening regressions: EINTR survival under a signal storm,
// bounded connect timeouts, oversized-frame protocol errors (both sides),
// partial-frame reassembly across syscalls, send-queue backpressure, and
// the determinism of the jittered reconnect backoff schedule.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/time.hpp"
#include "net/backoff.hpp"
#include "net/tcp.hpp"
#include "obs/obs.hpp"

namespace frame {
namespace {

struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::vector<std::uint8_t>> frames;

  void add(std::vector<std::uint8_t> frame) {
    std::lock_guard lock(mutex);
    frames.push_back(std::move(frame));
    cv.notify_all();
  }
  bool wait_for_count(std::size_t count, Duration timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                       [&] { return frames.size() >= count; });
  }
};

/// Server that keeps every accepted connection alive and collects frames.
/// Member order matters: connections and the listener are declared last so
/// they are destroyed first, while the state their callbacks touch is
/// still alive.
struct EchoServer {
  Collector rx;
  std::mutex mutex;
  Status last_close = Status::ok();
  std::condition_variable close_cv;
  bool closed = false;
  std::vector<std::unique_ptr<TcpConnection>> conns;
  std::unique_ptr<TcpListener> listener;

  bool open(bool start_connections = true) {
    auto result = TcpListener::listen(
        0, [this, start_connections](std::unique_ptr<TcpConnection> conn) {
          TcpConnection* raw = conn.get();
          {
            std::lock_guard lock(mutex);
            conns.push_back(std::move(conn));
          }
          if (start_connections) {
            raw->start(
                [this](std::vector<std::uint8_t> frame) {
                  rx.add(std::move(frame));
                },
                [this](const Status& reason) {
                  std::lock_guard lock(mutex);
                  last_close = reason;
                  closed = true;
                  close_cv.notify_all();
                });
          }
        });
    if (!result.is_ok()) return false;
    listener = result.take();
    return true;
  }

  bool wait_for_close(Duration timeout) {
    std::unique_lock lock(mutex);
    return close_cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                             [&] { return closed; });
  }
};

// ----------------------------------------------------------------- EINTR

std::atomic<std::uint64_t> g_signals{0};
void count_signal(int) { g_signals.fetch_add(1, std::memory_order_relaxed); }

// Regression for the blocking transport treating EINTR as a fatal close in
// read_exact/send_all: a signal storm without SA_RESTART must not abort a
// transfer.
TEST(TcpEdge, TransferSurvivesSignalStorm) {
  struct sigaction action {};
  action.sa_handler = count_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  EchoServer server;
  ASSERT_TRUE(server.open());

  std::atomic<bool> storm_done{false};
  std::thread storm([&] {
    while (!storm_done.load(std::memory_order_acquire)) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kFrames = 200;
  constexpr std::size_t kPayload = 16 * 1024;
  {
    auto client = TcpConnection::connect("127.0.0.1", server.listener->port());
    ASSERT_TRUE(client.is_ok()) << client.status().to_string();
    client.value()->start([](std::vector<std::uint8_t>) {});
    std::vector<std::uint8_t> payload(kPayload);
    for (int i = 0; i < kFrames; ++i) {
      for (std::size_t j = 0; j < kPayload; ++j) {
        payload[j] = static_cast<std::uint8_t>((i + j) & 0xff);
      }
      Status status;
      do {  // kCapacity = transient backpressure, retry
        status = client.value()->send_frame(payload);
      } while (status.code() == StatusCode::kCapacity);
      ASSERT_TRUE(status.is_ok()) << status.to_string();
    }
    ASSERT_TRUE(server.rx.wait_for_count(kFrames, seconds(30)));
    client.value()->close();
  }
  storm_done.store(true, std::memory_order_release);
  storm.join();
  ::sigaction(SIGUSR1, &previous, nullptr);

  EXPECT_GT(g_signals.load(), 0u) << "storm never fired; test is vacuous";
  ASSERT_EQ(server.rx.frames.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    const auto& frame = server.rx.frames[i];
    ASSERT_EQ(frame.size(), kPayload);
    for (std::size_t j = 0; j < kPayload; j += 1024) {
      ASSERT_EQ(frame[j], static_cast<std::uint8_t>((i + j) & 0xff))
          << "frame " << i << " corrupted at offset " << j;
    }
  }
}

// ------------------------------------------------------- connect timeout

// Regression for TcpConnection::connect blocking indefinitely: a
// non-routable address must fail with kUnavailable within the timeout
// (some environments reject instantly with ENETUNREACH; both are bounded).
// A listener whose accept queue is full silently drops further SYNs, so a
// connect to it hangs in SYN_SENT -- the exact condition that used to wedge
// the old blocking connect() forever.  The timeout must fire instead.
TEST(TcpEdge, ConnectTimesOutWhenPeerNeverCompletesHandshake) {
  int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // Fill the (never drained) accept queue so the attempt under test cannot
  // complete its handshake.
  int prefill[8];
  for (int& fd : prefill) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    (void)::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  MonotonicClock clock;
  const TimePoint start = clock.now();
  auto result = TcpConnection::connect("127.0.0.1", port, milliseconds(300));
  const Duration elapsed = clock.now() - start;
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().to_string();
  EXPECT_GE(elapsed, milliseconds(250)) << "timed out suspiciously early";
  EXPECT_LT(elapsed, seconds(3)) << "connect() was not bounded";

  for (const int fd : prefill) ::close(fd);
  ::close(lfd);
}

// ------------------------------------------------------ oversized frames

TEST(TcpEdge, OversizedFrameRejectedAtSendSide) {
  EchoServer server;
  ASSERT_TRUE(server.open());
  auto client = TcpConnection::connect("127.0.0.1", server.listener->port());
  ASSERT_TRUE(client.is_ok());
  client.value()->start([](std::vector<std::uint8_t>) {});

  const std::vector<std::uint8_t> oversized(TcpConnection::kMaxFrame + 1);
  const Status status = client.value()->send_frame(oversized);
  EXPECT_EQ(status.code(), StatusCode::kProtocolError);

  // The connection survives the local rejection.
  EXPECT_FALSE(client.value()->closed());
  ASSERT_TRUE(client.value()->send_frame({0x42}).is_ok());
  ASSERT_TRUE(server.rx.wait_for_count(1, seconds(5)));
  EXPECT_EQ(server.rx.frames[0], (std::vector<std::uint8_t>{0x42}));
}

TEST(TcpEdge, OversizedHeaderSurfacesProtocolErrorOnClose) {
  EchoServer server;
  ASSERT_TRUE(server.open());

  // A raw malicious client: claims a 256 MiB frame.
  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.listener->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::uint8_t bogus_header[4] = {0x00, 0x00, 0x00, 0x10};  // 1 << 28
  ASSERT_EQ(::send(raw, bogus_header, sizeof(bogus_header), MSG_NOSIGNAL), 4);

  ASSERT_TRUE(server.wait_for_close(seconds(5)));
  EXPECT_EQ(server.last_close.code(), StatusCode::kProtocolError)
      << server.last_close.to_string();
  ::close(raw);
}

// --------------------------------------------------- partial-frame reads

TEST(TcpEdge, ReassemblesFramesSplitAcrossSyscalls) {
  EchoServer server;
  ASSERT_TRUE(server.open());

  const int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.listener->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(raw, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  auto frame_bytes = [](std::initializer_list<std::uint8_t> payload) {
    std::vector<std::uint8_t> out;
    const auto size = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
    }
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  };

  // Frame 1 dribbles in one byte per syscall.
  const auto first = frame_bytes({1, 2, 3, 4, 5});
  for (const std::uint8_t byte : first) {
    ASSERT_EQ(::send(raw, &byte, 1, MSG_NOSIGNAL), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Frames 2 and 3 arrive glued together, split mid-header of frame 3.
  const auto second = frame_bytes({6, 7});
  const auto third = frame_bytes({8, 9, 10});
  std::vector<std::uint8_t> glued(second);
  glued.insert(glued.end(), third.begin(), third.begin() + 2);
  ASSERT_EQ(::send(raw, glued.data(), glued.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(glued.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(::send(raw, third.data() + 2, third.size() - 2, MSG_NOSIGNAL),
            static_cast<ssize_t>(third.size() - 2));

  ASSERT_TRUE(server.rx.wait_for_count(3, seconds(5)));
  EXPECT_EQ(server.rx.frames[0], (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(server.rx.frames[1], (std::vector<std::uint8_t>{6, 7}));
  EXPECT_EQ(server.rx.frames[2], (std::vector<std::uint8_t>{8, 9, 10}));
  ::close(raw);
}

// --------------------------------------------------------- backpressure

TEST(TcpEdge, SendQueueOverflowSurfacesCapacity) {
  EchoServer server;
  // Accepted connections are never started: nothing drains the pipe, so
  // kernel buffers fill, then the client's bounded queue fills.
  ASSERT_TRUE(server.open(/*start_connections=*/false));
  auto client = TcpConnection::connect("127.0.0.1", server.listener->port());
  ASSERT_TRUE(client.is_ok());
  client.value()->set_send_queue_limit(64 * 1024);
  client.value()->start([](std::vector<std::uint8_t>) {});

  const std::vector<std::uint8_t> payload(4096, 0xAB);
  bool saw_capacity = false;
  for (int i = 0; i < 200000; ++i) {
    const Status status = client.value()->send_frame(payload);
    if (status.code() == StatusCode::kCapacity) {
      saw_capacity = true;
      break;
    }
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
  ASSERT_TRUE(saw_capacity) << "queue never reported backpressure";
  // Backpressure is not an error: the connection stays up and the queue
  // respects its cap.
  EXPECT_FALSE(client.value()->closed());
  EXPECT_LE(client.value()->send_queue_bytes(), 64u * 1024u);
}

// ------------------------------------------------------------- backoff

TEST(Backoff, ScheduleIsDeterministicGivenSeed) {
  BackoffOptions options;
  options.base = milliseconds(10);
  options.max = milliseconds(500);
  options.multiplier = 2.0;
  options.jitter = 0.2;

  BackoffSchedule a(options, 7);
  BackoffSchedule b(options, 7);
  BackoffSchedule c(options, 8);
  bool differs_from_c = false;
  for (int i = 0; i < 10; ++i) {
    const Duration da = a.next_delay();
    const Duration db = b.next_delay();
    const Duration dc = c.next_delay();
    EXPECT_EQ(da, db) << "same seed diverged at attempt " << i;
    differs_from_c = differs_from_c || (da != dc);
    // Every delay respects the jittered envelope.
    EXPECT_GE(da, static_cast<Duration>(
                      static_cast<double>(options.base) * (1.0 - 0.2)));
    EXPECT_LE(da, options.max);
  }
  EXPECT_TRUE(differs_from_c) << "different seeds produced identical jitter";
  EXPECT_EQ(a.attempts(), 10);
}

TEST(Backoff, GrowsExponentiallyAndResets) {
  BackoffOptions options;
  options.base = milliseconds(10);
  options.max = seconds(10);
  options.multiplier = 2.0;
  options.jitter = 0.0;  // exact nominal values
  BackoffSchedule schedule(options, 1);
  EXPECT_EQ(schedule.next_delay(), milliseconds(10));
  EXPECT_EQ(schedule.next_delay(), milliseconds(20));
  EXPECT_EQ(schedule.next_delay(), milliseconds(40));
  schedule.reset();
  EXPECT_EQ(schedule.attempts(), 0);
  EXPECT_EQ(schedule.next_delay(), milliseconds(10));

  // The cap holds no matter how many attempts accumulate.
  BackoffOptions capped = options;
  capped.max = milliseconds(100);
  BackoffSchedule long_run(capped, 1);
  Duration last = 0;
  for (int i = 0; i < 40; ++i) last = long_run.next_delay();
  EXPECT_EQ(last, milliseconds(100));
}

}  // namespace
}  // namespace frame
