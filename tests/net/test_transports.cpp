// In-process bus (latency injection, crash semantics) and TCP transport.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "net/inproc_bus.hpp"
#include "net/tcp.hpp"
#include "net/wire.hpp"

namespace frame {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> list) {
  return std::vector<std::uint8_t>(list);
}

struct Collector {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::vector<std::uint8_t>> frames;

  void add(std::vector<std::uint8_t> frame) {
    std::lock_guard lock(mutex);
    frames.push_back(std::move(frame));
    cv.notify_all();
  }

  bool wait_for_count(std::size_t count, Duration timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                       [&] { return frames.size() >= count; });
  }

  std::size_t count() {
    std::lock_guard lock(mutex);
    return frames.size();
  }
};

TEST(InprocBus, DeliversFrames) {
  InprocBus bus;
  bus.set_default_latency(microseconds(100));
  Collector collector;
  bus.register_endpoint(2, [&](NodeId from, std::vector<std::uint8_t> frame) {
    EXPECT_EQ(from, 1u);
    collector.add(std::move(frame));
  });
  bus.send(1, 2, bytes({1, 2, 3}));
  ASSERT_TRUE(collector.wait_for_count(1, seconds(2)));
  EXPECT_EQ(collector.frames[0], bytes({1, 2, 3}));
}

TEST(InprocBus, PreservesOrderOnOneLink) {
  InprocBus bus;
  bus.set_default_latency(microseconds(50));
  Collector collector;
  bus.register_endpoint(2, [&](NodeId, std::vector<std::uint8_t> frame) {
    collector.add(std::move(frame));
  });
  for (std::uint8_t i = 0; i < 50; ++i) bus.send(1, 2, bytes({i}));
  ASSERT_TRUE(collector.wait_for_count(50, seconds(2)));
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(collector.frames[i][0], i);
  }
}

TEST(InprocBus, LinkLatencyDelaysDelivery) {
  InprocBus bus;
  bus.set_link_latency(1, 2, milliseconds(40));
  Collector collector;
  bus.register_endpoint(2, [&](NodeId, std::vector<std::uint8_t> frame) {
    collector.add(std::move(frame));
  });
  MonotonicClock clock;
  const TimePoint start = clock.now();
  bus.send(1, 2, bytes({9}));
  ASSERT_TRUE(collector.wait_for_count(1, seconds(2)));
  EXPECT_GE(clock.now() - start, milliseconds(35));
}

TEST(InprocBus, CrashedDestinationDropsFrames) {
  InprocBus bus;
  bus.set_default_latency(microseconds(10));
  Collector collector;
  bus.register_endpoint(2, [&](NodeId, std::vector<std::uint8_t> frame) {
    collector.add(std::move(frame));
  });
  bus.crash(2);
  EXPECT_TRUE(bus.crashed(2));
  bus.send(1, 2, bytes({1}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(collector.count(), 0u);
}

TEST(InprocBus, CrashedSourceCannotSend) {
  InprocBus bus;
  bus.set_default_latency(microseconds(10));
  Collector collector;
  bus.register_endpoint(2, [&](NodeId, std::vector<std::uint8_t> frame) {
    collector.add(std::move(frame));
  });
  bus.crash(1);
  bus.send(1, 2, bytes({1}));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(collector.count(), 0u);
}

TEST(InprocBus, InFlightFramesToCrashedNodeDropped) {
  InprocBus bus;
  bus.set_link_latency(1, 2, milliseconds(50));
  Collector collector;
  bus.register_endpoint(2, [&](NodeId, std::vector<std::uint8_t> frame) {
    collector.add(std::move(frame));
  });
  bus.send(1, 2, bytes({1}));  // in flight for 50 ms
  bus.crash(2);                // crash before delivery
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(collector.count(), 0u);
}

TEST(InprocBus, UnknownDestinationIgnored) {
  InprocBus bus;
  bus.send(1, 77, bytes({1}));  // must not crash
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SUCCEED();
}

// ------------------------------------------------------------------- TCP

TEST(Tcp, ConnectSendReceive) {
  Collector server_rx;
  std::mutex conn_mutex;
  std::unique_ptr<TcpConnection> server_side;
  auto listener = TcpListener::listen(0, [&](std::unique_ptr<TcpConnection> c) {
    std::lock_guard lock(conn_mutex);
    server_side = std::move(c);
    server_side->start(
        [&](std::vector<std::uint8_t> frame) { server_rx.add(std::move(frame)); });
  });
  if (!listener.is_ok()) {
    GTEST_SKIP() << "cannot bind loopback: " << listener.status().to_string();
  }

  auto client = TcpConnection::connect("127.0.0.1", listener.value()->port());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  Collector client_rx;
  client.value()->start(
      [&](std::vector<std::uint8_t> frame) { client_rx.add(std::move(frame)); });

  const Message msg = make_test_message(3, 14, 159);
  ASSERT_TRUE(client.value()
                  ->send_frame(encode_message_frame(WireType::kPublish, msg))
                  .is_ok());
  ASSERT_TRUE(server_rx.wait_for_count(1, seconds(5)));
  const auto decoded = decode_message_frame(server_rx.frames[0]);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->topic, 3u);
  EXPECT_EQ(decoded->seq, 14u);

  // And the reverse direction.
  {
    std::lock_guard lock(conn_mutex);
    ASSERT_TRUE(server_side->send_frame(encode_control_frame(WireType::kPoll))
                    .is_ok());
  }
  ASSERT_TRUE(client_rx.wait_for_count(1, seconds(5)));
  EXPECT_EQ(peek_type(client_rx.frames[0]), WireType::kPoll);
}

TEST(Tcp, ManyFramesKeepOrder) {
  Collector server_rx;
  std::mutex conn_mutex;
  std::unique_ptr<TcpConnection> server_side;
  auto listener = TcpListener::listen(0, [&](std::unique_ptr<TcpConnection> c) {
    std::lock_guard lock(conn_mutex);
    server_side = std::move(c);
    server_side->start(
        [&](std::vector<std::uint8_t> frame) { server_rx.add(std::move(frame)); });
  });
  if (!listener.is_ok()) {
    GTEST_SKIP() << "cannot bind loopback";
  }
  auto client = TcpConnection::connect("127.0.0.1", listener.value()->port());
  ASSERT_TRUE(client.is_ok());
  client.value()->start([](std::vector<std::uint8_t>) {});
  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    std::vector<std::uint8_t> frame{static_cast<std::uint8_t>(i & 0xff),
                                    static_cast<std::uint8_t>(i >> 8)};
    ASSERT_TRUE(client.value()->send_frame(frame).is_ok());
  }
  ASSERT_TRUE(server_rx.wait_for_count(kFrames, seconds(10)));
  for (int i = 0; i < kFrames; ++i) {
    const int got = server_rx.frames[i][0] | (server_rx.frames[i][1] << 8);
    EXPECT_EQ(got, i);
  }
}

TEST(Tcp, SendOnClosedConnectionFails) {
  auto listener = TcpListener::listen(0, [](std::unique_ptr<TcpConnection>) {});
  if (!listener.is_ok()) {
    GTEST_SKIP() << "cannot bind loopback";
  }
  auto client = TcpConnection::connect("127.0.0.1", listener.value()->port());
  ASSERT_TRUE(client.is_ok());
  client.value()->start([](std::vector<std::uint8_t>) {});
  client.value()->close();
  EXPECT_FALSE(client.value()->send_frame(bytes({1})).is_ok());
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Bind a port, learn it, close, then connect: expect failure (racy in
  // theory, reliable on loopback in practice).
  std::uint16_t port = 0;
  {
    auto listener =
        TcpListener::listen(0, [](std::unique_ptr<TcpConnection>) {});
    if (!listener.is_ok()) GTEST_SKIP() << "cannot bind loopback";
    port = listener.value()->port();
  }
  auto client = TcpConnection::connect("127.0.0.1", port);
  EXPECT_FALSE(client.is_ok());
}

TEST(Tcp, BadAddressRejected) {
  auto client = TcpConnection::connect("not-an-ip", 1234);
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalid);
}

}  // namespace
}  // namespace frame
