// TcpBus: the Bus abstraction over real loopback sockets.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <thread>

#include "net/tcp_bus.hpp"
#include "net/wire.hpp"

namespace frame {
namespace {

struct Inbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> frames;

  void add(NodeId from, std::vector<std::uint8_t> frame) {
    std::lock_guard lock(mutex);
    frames.emplace_back(from, std::move(frame));
    cv.notify_all();
  }
  bool wait_for(std::size_t count, Duration timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                       [&] { return frames.size() >= count; });
  }
  std::size_t count() {
    std::lock_guard lock(mutex);
    return frames.size();
  }
};

TEST(TcpBus, DeliversFramesWithSenderIdentity) {
  TcpBus bus;
  Inbox inbox;
  bus.register_endpoint(1, [](NodeId, std::vector<std::uint8_t>) {});
  bus.register_endpoint(2, [&](NodeId from, std::vector<std::uint8_t> f) {
    inbox.add(from, std::move(f));
  });
  ASSERT_NE(bus.port_of(2), 0);

  bus.send(1, 2, {0xAA, 0xBB});
  ASSERT_TRUE(inbox.wait_for(1, seconds(5)));
  EXPECT_EQ(inbox.frames[0].first, 1u);
  EXPECT_EQ(inbox.frames[0].second,
            (std::vector<std::uint8_t>{0xAA, 0xBB}));
}

TEST(TcpBus, ManyFramesInOrderPerLink) {
  TcpBus bus;
  Inbox inbox;
  bus.register_endpoint(1, [](NodeId, std::vector<std::uint8_t>) {});
  bus.register_endpoint(2, [&](NodeId from, std::vector<std::uint8_t> f) {
    inbox.add(from, std::move(f));
  });
  constexpr int kFrames = 300;
  for (int i = 0; i < kFrames; ++i) {
    bus.send(1, 2,
             {static_cast<std::uint8_t>(i & 0xff),
              static_cast<std::uint8_t>(i >> 8)});
  }
  ASSERT_TRUE(inbox.wait_for(kFrames, seconds(10)));
  for (int i = 0; i < kFrames; ++i) {
    const auto& frame = inbox.frames[i].second;
    EXPECT_EQ(frame[0] | (frame[1] << 8), i);
  }
}

TEST(TcpBus, WireFramesSurviveTheBus) {
  TcpBus bus;
  Inbox inbox;
  bus.register_endpoint(7, [](NodeId, std::vector<std::uint8_t>) {});
  bus.register_endpoint(8, [&](NodeId from, std::vector<std::uint8_t> f) {
    inbox.add(from, std::move(f));
  });
  Message msg = make_test_message(3, 99, milliseconds(5));
  bus.send(7, 8, encode_message_frame(WireType::kPublish, msg));
  ASSERT_TRUE(inbox.wait_for(1, seconds(5)));
  const auto decoded = decode_message_frame(inbox.frames[0].second);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->topic, 3u);
  EXPECT_EQ(decoded->seq, 99u);
}

TEST(TcpBus, CrashedNodeStopsSendingAndReceiving) {
  TcpBus bus;
  Inbox inbox;
  bus.register_endpoint(1, [](NodeId, std::vector<std::uint8_t>) {});
  bus.register_endpoint(2, [&](NodeId from, std::vector<std::uint8_t> f) {
    inbox.add(from, std::move(f));
  });
  bus.send(1, 2, {1});
  ASSERT_TRUE(inbox.wait_for(1, seconds(5)));

  bus.crash(2);
  EXPECT_TRUE(bus.crashed(2));
  EXPECT_EQ(bus.port_of(2), 0);
  bus.send(1, 2, {2});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(inbox.count(), 1u);

  bus.crash(1);
  bus.restore(2);
  bus.send(1, 2, {3});  // crashed sender: dropped
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(inbox.count(), 1u);
}

TEST(TcpBus, RestoreRebindsAndReceivesAgain) {
  TcpBus bus;
  Inbox inbox;
  bus.register_endpoint(1, [](NodeId, std::vector<std::uint8_t>) {});
  bus.register_endpoint(2, [&](NodeId from, std::vector<std::uint8_t> f) {
    inbox.add(from, std::move(f));
  });
  bus.send(1, 2, {1});
  ASSERT_TRUE(inbox.wait_for(1, seconds(5)));

  bus.crash(2);
  bus.restore(2);
  EXPECT_FALSE(bus.crashed(2));
  EXPECT_NE(bus.port_of(2), 0);
  bus.send(1, 2, {2});
  ASSERT_TRUE(inbox.wait_for(2, seconds(5)));
  EXPECT_EQ(inbox.frames[1].second, (std::vector<std::uint8_t>{2}));
}

TEST(TcpBus, UnknownDestinationDropped) {
  TcpBus bus;
  bus.register_endpoint(1, [](NodeId, std::vector<std::uint8_t>) {});
  bus.send(1, 99, {1});  // must not crash
  SUCCEED();
}

}  // namespace
}  // namespace frame
