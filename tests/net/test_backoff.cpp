// BackoffSchedule: deterministic per seed, exponential, capped, jitter
// bounded, reset on success.
#include <gtest/gtest.h>

#include <vector>

#include "net/backoff.hpp"

namespace frame {
namespace {

TEST(Backoff, SameSeedSameSchedule) {
  BackoffSchedule a({}, 42);
  BackoffSchedule b({}, 42);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.next_delay(), b.next_delay()) << "attempt " << i;
  }
}

TEST(Backoff, DifferentSeedsDiverge) {
  BackoffSchedule a({}, 1);
  BackoffSchedule b({}, 2);
  bool diverged = false;
  for (int i = 0; i < 8; ++i) {
    if (a.next_delay() != b.next_delay()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Backoff, GrowsExponentiallyWithinJitterBounds) {
  BackoffOptions options;
  options.base = milliseconds(10);
  options.max = seconds(2);
  options.multiplier = 2.0;
  options.jitter = 0.2;
  BackoffSchedule schedule(options, 7);
  double nominal = static_cast<double>(options.base);
  for (int i = 0; i < 6; ++i) {
    const Duration delay = schedule.next_delay();
    EXPECT_GE(static_cast<double>(delay), nominal * 0.8 - 1) << "attempt " << i;
    EXPECT_LE(static_cast<double>(delay), nominal * 1.2 + 1) << "attempt " << i;
    nominal *= options.multiplier;
  }
}

TEST(Backoff, CappedAtMax) {
  BackoffOptions options;
  options.base = milliseconds(10);
  options.max = milliseconds(100);
  BackoffSchedule schedule(options, 3);
  for (int i = 0; i < 30; ++i) {
    EXPECT_LE(schedule.next_delay(), options.max) << "attempt " << i;
  }
  EXPECT_EQ(schedule.attempts(), 30);
}

TEST(Backoff, ResetReturnsToBaseDelay) {
  BackoffOptions options;
  options.jitter = 0.0;  // exact values without jitter
  BackoffSchedule schedule(options, 9);
  const Duration first = schedule.next_delay();
  EXPECT_EQ(first, options.base);
  for (int i = 0; i < 5; ++i) schedule.next_delay();
  EXPECT_EQ(schedule.attempts(), 6);

  schedule.reset();
  EXPECT_EQ(schedule.attempts(), 0);
  EXPECT_EQ(schedule.next_delay(), options.base);
}

TEST(Backoff, ZeroJitterIsExactDoubling) {
  BackoffOptions options;
  options.base = milliseconds(10);
  options.max = seconds(2);
  options.jitter = 0.0;
  BackoffSchedule schedule(options, 1);
  const std::vector<Duration> expected = {
      milliseconds(10), milliseconds(20), milliseconds(40),
      milliseconds(80), milliseconds(160), milliseconds(320)};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(schedule.next_delay(), expected[i]) << "attempt " << i;
  }
}

}  // namespace
}  // namespace frame
