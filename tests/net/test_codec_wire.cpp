// Wire codec and frame protocol tests, including malformed-input safety.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/codec.hpp"
#include "net/crc32c.hpp"
#include "net/wire.hpp"

namespace frame {
namespace {

/// Recomputes the trailing CRC32C after a test deliberately edited the
/// body, so the edit (not the checksum) is what the decoder sees.
void reseal(std::vector<std::uint8_t>& frame) {
  frame.resize(frame.size() - kFrameChecksumSize);
  std::vector<std::uint8_t> tail;
  Writer(tail).u32(crc32c(frame));
  frame.insert(frame.end(), tail.begin(), tail.end());
}

TEST(Codec, PrimitiveRoundTrip) {
  std::vector<std::uint8_t> buf;
  Writer writer(buf);
  writer.u8(0xab);
  writer.u16(0x1234);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefull);
  writer.i64(-42);

  Reader reader(buf);
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.i64(), -42);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Codec, LittleEndianLayout) {
  std::vector<std::uint8_t> buf;
  Writer writer(buf);
  writer.u32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Codec, UnderflowSetsStickyError) {
  const std::vector<std::uint8_t> buf{1, 2};
  Reader reader(buf);
  EXPECT_EQ(reader.u32(), 0u);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u8(), 0u);  // still failed
}

TEST(Codec, Blob16RoundTrip) {
  std::vector<std::uint8_t> buf;
  Writer writer(buf);
  const char payload[] = "hello frame";
  writer.blob16(payload, sizeof(payload));
  Reader reader(buf);
  const auto blob = reader.blob16();
  ASSERT_EQ(blob.size(), sizeof(payload));
  EXPECT_EQ(std::memcmp(blob.data(), payload, sizeof(payload)), 0);
}

TEST(Codec, TruncatedBlobFails) {
  std::vector<std::uint8_t> buf;
  Writer writer(buf);
  writer.u16(100);  // claims 100 bytes, provides none
  Reader reader(buf);
  EXPECT_TRUE(reader.blob16().empty());
  EXPECT_FALSE(reader.ok());
}

TEST(Wire, MessageFrameRoundTrip) {
  Message msg = make_test_message(42, 7, milliseconds(123));
  msg.broker_arrival = milliseconds(124);
  msg.dispatched_at = milliseconds(125);
  msg.recovered = true;
  const auto frame = encode_message_frame(WireType::kPublish, msg);
  EXPECT_EQ(peek_type(frame), WireType::kPublish);
  const auto decoded = decode_message_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->topic, 42u);
  EXPECT_EQ(decoded->seq, 7u);
  EXPECT_EQ(decoded->created_at, milliseconds(123));
  EXPECT_EQ(decoded->broker_arrival, milliseconds(124));
  EXPECT_EQ(decoded->dispatched_at, milliseconds(125));
  EXPECT_TRUE(decoded->recovered);
  EXPECT_EQ(decoded->payload_size, 16);
  EXPECT_EQ(std::memcmp(decoded->payload.data(), msg.payload.data(), 16), 0);
}

TEST(Wire, TraceContextRoundTripsOverEveryMessageType) {
  Message msg = make_test_message(3, 12, milliseconds(50));
  msg.trace_id = 0xfeedfacecafebeefull;
  msg.trace_anchor = -1234567890123456789ll;
  msg.hop = 2;
  for (const WireType type : {WireType::kPublish, WireType::kDeliver,
                              WireType::kReplicate, WireType::kResend}) {
    const auto frame = encode_message_frame(type, msg);
    const auto decoded = decode_message_frame(frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->trace_id, msg.trace_id);
    EXPECT_EQ(decoded->trace_anchor, msg.trace_anchor);
    EXPECT_EQ(decoded->hop, msg.hop);
  }
}

TEST(Wire, UntracedMessageAddsZeroWireBytes) {
  // The trace-context block must cost nothing when tracing is off: an
  // untraced frame is byte-identical in size to the pre-trace encoding.
  Message traced = make_test_message(1, 1, 0);
  Message untraced = traced;
  traced.trace_id = 1;
  const auto traced_frame = encode_message_frame(WireType::kPublish, traced);
  const auto untraced_frame =
      encode_message_frame(WireType::kPublish, untraced);
  EXPECT_EQ(traced_frame.size(),
            untraced_frame.size() + 8 + 8 + 1);  // id + anchor + hop
  const auto decoded = decode_message_frame(untraced_frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->trace_id, 0u);
  EXPECT_EQ(decoded->trace_anchor, 0);
  EXPECT_EQ(decoded->hop, 0);
}

TEST(Wire, TraceFlagWithZeroTraceIdRejected) {
  // A frame claiming a trace block whose trace id is 0 is malformed:
  // encoders never produce it (ids are minted with |1) and accepting it
  // would alias the "no trace" state.
  Message msg = make_test_message(1, 1, 0);
  msg.trace_id = 0x0100;  // one nonzero byte at offset +1 of the id
  auto frame = encode_message_frame(WireType::kPublish, msg);
  // Zero out the trace id (the 17 trace bytes sit just before the seal).
  const std::size_t id_at = frame.size() - kFrameChecksumSize - 17;
  for (std::size_t i = 0; i < 8; ++i) frame[id_at + i] = 0;
  reseal(frame);
  EXPECT_FALSE(decode_message_frame(frame).has_value());
}

TEST(Wire, AllMessageCarryingTypesDecode) {
  const Message msg = make_test_message(1, 1, 0);
  for (const WireType type : {WireType::kPublish, WireType::kDeliver,
                              WireType::kReplicate, WireType::kResend}) {
    const auto frame = encode_message_frame(type, msg);
    EXPECT_TRUE(decode_message_frame(frame).has_value());
  }
}

TEST(Wire, MessageDecoderRejectsControlFrames) {
  const auto frame = encode_control_frame(WireType::kPoll);
  EXPECT_FALSE(decode_message_frame(frame).has_value());
}

TEST(Wire, PruneFrameRoundTrip) {
  const auto frame = encode_prune_frame(PruneFrame{9, 1234});
  const auto decoded = decode_prune_frame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->topic, 9u);
  EXPECT_EQ(decoded->seq, 1234u);
  EXPECT_FALSE(decode_prune_frame(encode_control_frame(WireType::kPoll))
                   .has_value());
}

TEST(Wire, SubscribeAndHelloRoundTrip) {
  const auto sub = decode_subscribe_frame(
      encode_subscribe_frame(SubscribeFrame{11, 22}));
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->subscriber, 11u);
  EXPECT_EQ(sub->topic, 22u);

  const auto hello = decode_hello_frame(encode_hello_frame(HelloFrame{5, 2}));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->node, 5u);
  EXPECT_EQ(hello->role, 2);
}

TEST(Wire, EmptyBufferPeeksNothing) {
  EXPECT_FALSE(peek_type({}).has_value());
}

TEST(Wire, TruncatedMessageFrameRejected) {
  const Message msg = make_test_message(1, 1, 0);
  auto frame = encode_message_frame(WireType::kPublish, msg);
  frame.resize(frame.size() / 2);
  EXPECT_FALSE(decode_message_frame(frame).has_value());
}

TEST(Wire, OversizedPayloadLengthRejected) {
  const Message msg = make_test_message(1, 1, 0);
  auto frame = encode_message_frame(WireType::kPublish, msg);
  // Corrupt the payload length (the two bytes before the payload, which
  // sits ahead of the trailing checksum), then re-seal so the length
  // check — not the CRC — is what rejects the frame.
  const std::size_t len_at =
      frame.size() - kFrameChecksumSize - msg.payload_size - 2;
  frame[len_at] = 0xff;
  frame[len_at + 1] = 0xff;
  reseal(frame);
  EXPECT_FALSE(decode_message_frame(frame).has_value());
}

TEST(Wire, ChecksumAcceptsEveryEncoderOutput) {
  const Message msg = make_test_message(3, 9, milliseconds(7));
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_message_frame(WireType::kPublish, msg),
      encode_prune_frame(PruneFrame{1, 2}),
      encode_subscribe_frame(SubscribeFrame{3, 4}),
      encode_hello_frame(HelloFrame{5, 1}),
      encode_control_frame(WireType::kPoll),
  };
  for (const auto& frame : frames) {
    EXPECT_TRUE(frame_checksum_ok(frame));
    EXPECT_TRUE(validate_frame(frame).is_ok());
  }
}

TEST(Wire, ChecksumDetectsEverySingleByteFlip) {
  const Message msg = make_test_message(7, 11, milliseconds(3));
  const auto clean = encode_message_frame(WireType::kDeliver, msg);
  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    auto frame = clean;
    frame[pos] ^= 0x40;
    EXPECT_FALSE(frame_checksum_ok(frame)) << "flip at " << pos;
    EXPECT_FALSE(decode_message_frame(frame).has_value()) << "flip at " << pos;
    EXPECT_EQ(validate_frame(frame).code(), StatusCode::kProtocolError);
  }
}

TEST(Wire, ChecksumDetectsEveryTruncation) {
  const auto clean = encode_prune_frame(PruneFrame{2, 77});
  for (std::size_t len = 0; len < clean.size(); ++len) {
    const auto frame = std::vector<std::uint8_t>(clean.begin(),
                                                 clean.begin() + len);
    EXPECT_FALSE(frame_checksum_ok(frame)) << "length " << len;
    EXPECT_FALSE(decode_prune_frame(frame).has_value()) << "length " << len;
  }
}

// Property: arbitrary payload sizes round-trip; random garbage never
// crashes the decoders.
class WireProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireProperty, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Message msg = make_test_message(
        static_cast<TopicId>(rng.next_below(100000)),
        rng.next_u64() % (1ull << 40),
        static_cast<TimePoint>(rng.next_below(1u << 30)),
        rng.next_below(kMaxPayload + 1));
    msg.recovered = rng.next_double() < 0.5;
    if (rng.next_double() < 0.5) {
      msg.trace_id = rng.next_u64() | 1;
      msg.trace_anchor = static_cast<std::int64_t>(rng.next_u64());
      msg.hop = static_cast<std::uint8_t>(rng.next_below(4));
    }
    const auto frame = encode_message_frame(WireType::kDeliver, msg);
    const auto decoded = decode_message_frame(frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->topic, msg.topic);
    EXPECT_EQ(decoded->seq, msg.seq);
    EXPECT_EQ(decoded->payload_size, msg.payload_size);
    EXPECT_EQ(decoded->recovered, msg.recovered);
    EXPECT_EQ(decoded->trace_id, msg.trace_id);
    EXPECT_EQ(decoded->trace_anchor, msg.trace_anchor);
    EXPECT_EQ(decoded->hop, msg.hop);
  }
}

TEST_P(WireProperty, RandomGarbageNeverCrashesDecoders) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> garbage(rng.next_below(64));
    for (auto& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.next_u64());
    }
    decode_message_frame(garbage);
    decode_prune_frame(garbage);
    decode_subscribe_frame(garbage);
    decode_hello_frame(garbage);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireProperty,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace frame
