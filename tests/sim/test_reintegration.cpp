// Backup reintegration and second-failure tolerance in the simulator.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace frame::sim {
namespace {

ExperimentConfig rejoin_config(ConfigName name) {
  ExperimentConfig config;
  config.config = name;
  config.total_topics = 145;
  config.warmup = milliseconds(500);
  config.measure = seconds(4);
  config.drain = seconds(1);
  config.inject_crash = true;
  config.crash_fraction = 0.25;          // crash at 1.5 s
  config.backup_rejoin = true;
  config.rejoin_delay = milliseconds(500);
  config.seed = 77;
  config.watch_categories = {0, 2, 5};
  return config;
}

TEST(Reintegration, RejoinedBackupReceivesReplicas) {
  auto config = rejoin_config(ConfigName::kFrame);
  const auto result = run_experiment(config);
  // After the rejoin, the promoted Primary replicates categories 2/5 again.
  EXPECT_GT(result.promoted_stats.replications_executed, 0u);
  // Loss tolerance still holds everywhere.
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0) << "cat " << cat.category;
  }
}

TEST(Reintegration, WithoutRejoinNoFurtherReplication) {
  auto config = rejoin_config(ConfigName::kFrame);
  config.backup_rejoin = false;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.promoted_stats.replications_executed, 0u);
}

TEST(Reintegration, SyncSetCoversUndispatchedReplicatingCopies) {
  // At moderate load the sync set is small (most copies already
  // dispatched) but the mechanism must have fired.
  auto config = rejoin_config(ConfigName::kFrame);
  const auto result = run_experiment(config);
  // The field counts replicas shipped at reintegration; with a fast
  // delivery module it is often zero, so just require the run recorded it.
  EXPECT_LT(result.sync_set_size, 1000u);
}

TEST(Reintegration, SecondCrashStillMeetsLossTolerance) {
  auto config = rejoin_config(ConfigName::kFrame);
  config.inject_second_crash = true;
  config.second_crash_delay = milliseconds(1500);  // 1 s after the rejoin
  const auto result = run_experiment(config);
  EXPECT_GT(result.second_crash_time, result.crash_time);
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0) << "cat " << cat.category;
  }
  // The re-promoted original host served traffic after the second crash.
  EXPECT_GT(result.promoted_stats.arrivals, 0u);
}

TEST(Reintegration, SecondCrashUnderFramePlus) {
  auto config = rejoin_config(ConfigName::kFramePlus);
  config.inject_second_crash = true;
  config.second_crash_delay = milliseconds(1500);
  const auto result = run_experiment(config);
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0) << "cat " << cat.category;
  }
  // FRAME+ never replicates, before or after reintegration.
  EXPECT_EQ(result.promoted_stats.replications_executed, 0u);
}

TEST(Reintegration, DeterministicWithRejoin) {
  auto config = rejoin_config(ConfigName::kFrame);
  config.inject_second_crash = true;
  config.second_crash_delay = milliseconds(1500);
  const auto a = run_experiment(config);
  const auto b = run_experiment(config);
  EXPECT_EQ(a.unique_delivered, b.unique_delivered);
  EXPECT_EQ(a.duplicates_discarded, b.duplicates_discarded);
}

}  // namespace
}  // namespace frame::sim
