// Empirical validation of the paper's theorems in the simulator.
//
// Lemma 1: if every replicating job completes within Dr = (Ni+Li)Ti − ΔPB
// − ΔBB − x, no subscriber sees more than Li consecutive losses across a
// Primary crash.  Lemma 2: if every dispatching job completes within
// Dd = Di − ΔPB − ΔBS, every message meets its end-to-end deadline.
//
// The simulator measures each job's actual response time against its
// absolute lemma deadline, so the implications themselves can be checked
// across configurations and seeds: whenever the premise holds (zero
// deadline misses), the conclusion must hold (loss-tolerance / latency
// success at 100%).
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace frame::sim {
namespace {

struct Case {
  ConfigName config;
  std::size_t topics;
  std::uint64_t seed;
};

class LemmaValidation : public ::testing::TestWithParam<Case> {};

TEST_P(LemmaValidation, Lemma1PremiseImpliesLossTolerance) {
  const Case& param = GetParam();
  ExperimentConfig config;
  config.config = param.config;
  config.total_topics = param.topics;
  config.warmup = milliseconds(500);
  config.measure = seconds(4);
  config.drain = seconds(2);
  config.inject_crash = true;
  config.seed = param.seed;
  const auto result = run_experiment(config);

  // The premise must actually be exercised and hold at these loads.
  EXPECT_GT(result.responses.dispatch_jobs, 0u);
  EXPECT_EQ(result.responses.replicate_misses, 0u)
      << "replication deadline missed at " << param.topics << " topics";

  // Lemma 1's conclusion: every loss-tolerance requirement met.
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0)
        << to_string(param.config) << " cat " << cat.category;
  }
}

TEST_P(LemmaValidation, Lemma2PremiseImpliesDeadlines) {
  const Case& param = GetParam();
  ExperimentConfig config;
  config.config = param.config;
  config.total_topics = param.topics;
  config.warmup = milliseconds(500);
  config.measure = seconds(4);
  config.drain = seconds(2);
  config.inject_crash = false;  // fault-free, as in Table 5
  config.seed = param.seed;
  const auto result = run_experiment(config);

  ASSERT_GT(result.responses.dispatch_jobs, 0u);
  EXPECT_EQ(result.responses.dispatch_misses, 0u);
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.latency_success_pct, 100.0)
        << to_string(param.config) << " cat " << cat.category;
  }
}

// Only non-overloaded cells: the lemma premises are satisfiable there.
INSTANTIATE_TEST_SUITE_P(
    HealthyCells, LemmaValidation,
    ::testing::Values(Case{ConfigName::kFrame, 1525, 3},
                      Case{ConfigName::kFrame, 4525, 5},
                      Case{ConfigName::kFramePlus, 4525, 7},
                      Case{ConfigName::kFcfs, 1525, 11},
                      Case{ConfigName::kFcfsMinus, 4525, 13}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name(to_string(info.param.config));
      for (auto& c : name) {
        if (c == '+') c = 'P';
        if (c == '-') c = 'M';
      }
      return name + "_" + std::to_string(info.param.topics) + "_s" +
             std::to_string(info.param.seed);
    });

// Under overload the premise breaks -- and the simulator shows exactly
// that: misses appear and the conclusions degrade together.
TEST(LemmaValidation, OverloadBreaksPremiseAndConclusionTogether) {
  ExperimentConfig config;
  config.config = ConfigName::kFcfs;
  config.total_topics = 10525;  // 146% offered: deeply overloaded
  config.warmup = milliseconds(500);
  config.measure = seconds(4);
  config.drain = seconds(2);
  config.inject_crash = false;
  config.seed = 17;
  const auto result = run_experiment(config);
  EXPECT_GT(result.responses.dispatch_misses, 0u);
  EXPECT_LT(result.category(0).latency_success_pct, 50.0);
}

// Response-time sanity: samples are positive and bounded by the run span;
// FRAME's replication responses stay far below the category-2 pseudo
// deadline (49.95 ms) at moderate load.
TEST(LemmaValidation, ResponseTimesAreSane) {
  ExperimentConfig config;
  config.config = ConfigName::kFrame;
  config.total_topics = 4525;
  config.warmup = milliseconds(500);
  config.measure = seconds(4);
  config.drain = seconds(1);
  config.seed = 23;
  const auto result = run_experiment(config);
  ASSERT_GT(result.responses.replicate_jobs, 0u);
  EXPECT_GT(result.responses.replicate.min(), 0.0);
  EXPECT_LT(result.responses.replicate.max(),
            static_cast<double>(milliseconds_f(49.95)));
  EXPECT_LT(result.responses.dispatch.mean(),
            static_cast<double>(milliseconds(1)));
}

}  // namespace
}  // namespace frame::sim
