// Property-style invariant tests: for every configuration and a sweep of
// seeds, whole-system conservation and sanity properties must hold in the
// simulator, crash or no crash.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace frame::sim {
namespace {

struct Case {
  ConfigName config;
  bool crash;
  bool rejoin;
  std::uint64_t seed;
};

class SimInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(SimInvariants, ConservationAndSanity) {
  const Case& param = GetParam();
  ExperimentConfig config;
  config.config = param.config;
  config.total_topics = 145;
  config.warmup = milliseconds(400);
  config.measure = seconds(3);
  config.drain = seconds(1);
  config.inject_crash = param.crash;
  config.backup_rejoin = param.rejoin;
  config.rejoin_delay = milliseconds(400);
  config.seed = param.seed;
  config.watch_categories = {0, 2, 5};
  const auto result = run_experiment(config);

  // Conservation: unique deliveries never exceed creations; with no crash
  // they match exactly (drain is long enough at this load).
  EXPECT_LE(result.unique_delivered, result.messages_created);
  if (!param.crash) {
    EXPECT_EQ(result.unique_delivered, result.messages_created);
    EXPECT_EQ(result.duplicates_discarded, 0u);
  }

  // Every delivered sample respects the physical latency floor of its
  // link (>= 0.2 ms edge / >= 20.7 ms cloud one-way, plus processing).
  for (const auto& trace : result.traces) {
    for (const auto& sample : trace.samples) {
      EXPECT_GT(sample.latency, 0);
      const Duration floor = trace.category == 5
                                 ? microseconds(20'700)
                                 : microseconds(200);
      EXPECT_GE(sample.latency, floor);
      // Sequence numbers are positive and the trace is duplicate-free.
    }
    for (std::size_t i = 1; i < trace.samples.size(); ++i) {
      EXPECT_NE(trace.samples[i].seq, trace.samples[i - 1].seq);
    }
  }

  // CPU utilisation is a percentage of module capacity.
  EXPECT_GE(result.cpu.primary_delivery, 0.0);
  EXPECT_LE(result.cpu.primary_delivery, 100.5);
  EXPECT_LE(result.cpu.primary_proxy, 100.5);
  EXPECT_LE(result.cpu.backup_proxy, 100.5);

  // Category accounting covers all six categories with the right counts.
  ASSERT_EQ(result.categories.size(), 6u);
  std::size_t total_topics = 0;
  for (const auto& cat : result.categories) {
    total_topics += cat.topic_count;
    EXPECT_GE(cat.loss_success_pct, 0.0);
    EXPECT_LE(cat.loss_success_pct, 100.0);
    EXPECT_GE(cat.latency_success_pct, 0.0);
    EXPECT_LE(cat.latency_success_pct, 100.0);
  }
  EXPECT_EQ(total_topics, 145u);

  // Engine bookkeeping: executed dispatches need subscribers; replication
  // aborts only happen with coordination enabled.
  const auto& stats = result.primary_stats;
  EXPECT_LE(stats.replications_executed + stats.replications_aborted,
            stats.replicate_jobs_created);
  if (!broker_config(param.config).coordination) {
    EXPECT_EQ(stats.replications_aborted, 0u);
    EXPECT_EQ(stats.prune_requests, 0u);
  }
  // Best-effort (category 4) topics are never replicated.
  if (param.config == ConfigName::kFramePlus) {
    EXPECT_EQ(stats.replicate_jobs_created, 0u);
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const ConfigName config :
       {ConfigName::kFrame, ConfigName::kFramePlus, ConfigName::kFcfs,
        ConfigName::kFcfsMinus}) {
    for (const bool crash : {false, true}) {
      for (const std::uint64_t seed : {11ull, 23ull, 37ull}) {
        cases.push_back(Case{config, crash, crash && seed % 2 == 1, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimInvariants, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name(to_string(info.param.config));
      for (auto& c : name) {
        if (c == '+') c = 'P';
        if (c == '-') c = 'M';
      }
      name += info.param.crash ? "_crash" : "_clean";
      if (info.param.rejoin) name += "_rejoin";
      name += "_s" + std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace frame::sim
