// End-to-end simulator experiments at reduced scale: determinism, fault-free
// delivery, crash recovery per configuration, and the coordination /
// selective-replication behaviours the paper's evaluation hinges on.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace frame::sim {
namespace {

ExperimentConfig small_config(ConfigName name, bool crash) {
  ExperimentConfig config;
  config.config = name;
  config.total_topics = 145;  // 25 + 3*40: fast but structurally complete
  config.warmup = milliseconds(500);
  config.measure = seconds(3);
  config.drain = seconds(1);
  config.inject_crash = crash;
  config.seed = 12345;
  config.watch_categories = {0, 2, 5};
  return config;
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(small_config(ConfigName::kFrame, true));
  const auto b = run_experiment(small_config(ConfigName::kFrame, true));
  EXPECT_EQ(a.messages_created, b.messages_created);
  EXPECT_EQ(a.unique_delivered, b.unique_delivered);
  EXPECT_EQ(a.duplicates_discarded, b.duplicates_discarded);
  EXPECT_EQ(a.cpu.primary_delivery, b.cpu.primary_delivery);
  for (std::size_t i = 0; i < a.categories.size(); ++i) {
    EXPECT_EQ(a.categories[i].total_losses, b.categories[i].total_losses);
  }
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto config = small_config(ConfigName::kFrame, false);
  const auto a = run_experiment(config);
  config.seed = 999;
  const auto b = run_experiment(config);
  // Link jitter is seeded, so per-message latencies differ between seeds.
  ASSERT_FALSE(a.traces.empty());
  ASSERT_FALSE(b.traces.empty());
  ASSERT_FALSE(a.traces[0].samples.empty());
  ASSERT_FALSE(b.traces[0].samples.empty());
  EXPECT_NE(a.traces[0].samples[0].latency, b.traces[0].samples[0].latency);
}

TEST(Experiment, FaultFreeMeetsEverything) {
  for (const ConfigName name :
       {ConfigName::kFrame, ConfigName::kFramePlus, ConfigName::kFcfs,
        ConfigName::kFcfsMinus}) {
    const auto result = run_experiment(small_config(name, false));
    for (const auto& cat : result.categories) {
      EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0)
          << to_string(name) << " cat " << cat.category;
      EXPECT_GT(cat.latency_success_pct, 99.0)
          << to_string(name) << " cat " << cat.category;
      EXPECT_EQ(cat.total_losses, 0u);
    }
    EXPECT_EQ(result.duplicates_discarded, 0u);
    EXPECT_EQ(result.messages_created, result.unique_delivered);
  }
}

TEST(Experiment, CrashMeetsLossToleranceUnderFrame) {
  const auto result = run_experiment(small_config(ConfigName::kFrame, true));
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0) << "cat " << cat.category;
  }
  // Categories with retention-covered or replicated messages lose nothing.
  EXPECT_EQ(result.category(0).total_losses, 0u);
  EXPECT_EQ(result.category(2).total_losses, 0u);
  EXPECT_EQ(result.category(5).total_losses, 0u);
  // Li = 3 categories may lose up to the outage window, never more than 3
  // consecutively.
  EXPECT_LE(result.category(1).worst_consecutive_losses, 3u);
  EXPECT_LE(result.category(3).worst_consecutive_losses, 3u);
}

TEST(Experiment, CrashMeetsLossToleranceUnderFramePlus) {
  const auto result =
      run_experiment(small_config(ConfigName::kFramePlus, true));
  for (const auto& cat : result.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0) << "cat " << cat.category;
  }
  // FRAME+ performs no replication at all (Proposition 1 after the bump).
  EXPECT_EQ(result.primary_stats.replications_executed, 0u);
  EXPECT_EQ(result.backup_stats.replicas_received, 0u);
}

TEST(Experiment, FrameReplicatesOnlyCategories2And5) {
  const auto result = run_experiment(small_config(ConfigName::kFrame, false));
  // Replication jobs exist only for categories 2 and 5; prunes follow
  // dispatches of replicated messages.
  EXPECT_GT(result.primary_stats.replications_executed, 0u);
  EXPECT_GT(result.primary_stats.prune_requests, 0u);
  // cat2 has 40 topics at 10 Hz + cat5 5 topics at 2 Hz over the run.
  // Every replication belongs to those topics; the backup receives them.
  EXPECT_EQ(result.backup_stats.replicas_received,
            result.primary_stats.replications_executed);
}

TEST(Experiment, CoordinationPrunesBackupBuffer) {
  // With coordination (FRAME), the Backup Buffer holds almost nothing at
  // promotion; without it (FCFS-), it is full.
  const auto frame = run_experiment(small_config(ConfigName::kFrame, true));
  const auto fcfs_minus =
      run_experiment(small_config(ConfigName::kFcfsMinus, true));
  EXPECT_LT(frame.backup_live_at_promotion, 20u);
  // FCFS- replicates cats 0,1,2,3,5 (90 topics here) with 10-deep rings.
  EXPECT_GT(fcfs_minus.backup_live_at_promotion, 500u);
  EXPECT_EQ(fcfs_minus.backup_live_at_promotion,
            fcfs_minus.backup_size_at_promotion);
  // The uncoordinated recovery dispatches stale copies: duplicates at the
  // subscriber.
  EXPECT_GT(fcfs_minus.duplicates_discarded, frame.duplicates_discarded);
}

TEST(Experiment, RecoveryTraceShowsFailoverLatencyBump) {
  const auto result = run_experiment(small_config(ConfigName::kFrame, true));
  ASSERT_EQ(result.traces.size(), 3u);
  const auto& cat0 = result.traces[0];
  EXPECT_EQ(cat0.category, 0);
  ASSERT_FALSE(cat0.samples.empty());
  // Some message around the crash was recovered (resent by the publisher).
  bool any_recovered = false;
  for (const auto& sample : cat0.samples) {
    any_recovered = any_recovered || sample.recovered;
  }
  EXPECT_TRUE(any_recovered);
  // And zero losses for the watched zero-loss topic.
  EXPECT_EQ(cat0.losses, 0u);
}

TEST(Experiment, CrashTimeHonoursFraction) {
  auto config = small_config(ConfigName::kFrame, true);
  config.crash_fraction = 0.25;
  EXPECT_EQ(crash_time(config),
            config.warmup + milliseconds(750));
  config.inject_crash = false;
  EXPECT_EQ(crash_time(config), 0);
}

TEST(Experiment, PromotedBackupServesTraffic) {
  const auto result = run_experiment(small_config(ConfigName::kFrame, true));
  EXPECT_GT(result.promoted_stats.arrivals, 0u);
  EXPECT_GT(result.promoted_stats.dispatches_executed, 0u);
  // The new Primary never replicates (no Backup of its own).
  EXPECT_EQ(result.promoted_stats.replications_executed, 0u);
  EXPECT_GT(result.cpu.backup_delivery, 0.0);
}

TEST(Experiment, CustomWorkloadIsUsed) {
  ExperimentConfig config;
  config.config = ConfigName::kFrame;
  config.warmup = milliseconds(200);
  config.measure = seconds(1);
  config.drain = milliseconds(500);
  config.seed = 3;
  Workload workload;
  workload.topics.push_back(table2_spec(5, 0));
  workload.category.push_back(5);
  workload.proxies.push_back(ProxySpec{milliseconds(500), {0}});
  config.custom_workload = workload;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.total_topics, 1u);
  ASSERT_EQ(result.categories.size(), 1u);
  EXPECT_EQ(result.categories[0].category, 5);
  EXPECT_GT(result.messages_created, 0u);
}

TEST(Experiment, DiurnalCloudStillLossless) {
  // Fig. 8 in miniature: cloud latency varies with (virtual) time of day;
  // with the configured lower bound, no message is lost and deadlines hold.
  ExperimentConfig config;
  config.config = ConfigName::kFrame;
  config.warmup = milliseconds(200);
  config.measure = seconds(5);
  config.drain = seconds(1);
  config.seed = 8;
  config.diurnal_cloud = true;
  Workload workload;
  for (TopicId id = 0; id < 5; ++id) {
    workload.topics.push_back(table2_spec(5, id));
    workload.category.push_back(5);
    workload.proxies.push_back(ProxySpec{milliseconds(500), {id}});
  }
  config.custom_workload = workload;
  config.watch_categories = {5};
  const auto result = run_experiment(config);
  EXPECT_EQ(result.category(5).total_losses, 0u);
  EXPECT_DOUBLE_EQ(result.category(5).loss_success_pct, 100.0);
  ASSERT_EQ(result.traces.size(), 1u);
  // Recorded ΔBS reflects the cloud link, not the edge link.
  for (const auto& sample : result.traces[0].samples) {
    EXPECT_GE(sample.delta_bs, microseconds(20'700));
  }
}

}  // namespace
}  // namespace frame::sim
