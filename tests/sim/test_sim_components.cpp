// DES kernel, latency models, and workload generator tests.
#include <gtest/gtest.h>

#include "sim/des.hpp"
#include "sim/latency_model.hpp"
#include "sim/experiment.hpp"
#include "sim/workload.hpp"

namespace frame::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(30, EvKind::kCrash);
  queue.push(10, EvKind::kPublisherBatch);
  queue.push(20, EvKind::kPromote);
  EXPECT_EQ(queue.pop().time, 10);
  EXPECT_EQ(queue.pop().time, 20);
  EXPECT_EQ(queue.pop().time, 30);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  queue.push(5, EvKind::kArrival, 1);
  queue.push(5, EvKind::kArrival, 2);
  queue.push(5, EvKind::kArrival, 3);
  EXPECT_EQ(queue.pop().a, 1u);
  EXPECT_EQ(queue.pop().a, 2u);
  EXPECT_EQ(queue.pop().a, 3u);
}

TEST(EventQueue, CarriesMessagePayload) {
  EventQueue queue;
  queue.push(1, EvKind::kDeliver, 7, 0, make_test_message(3, 9, 42));
  const SimEvent event = queue.pop();
  EXPECT_EQ(event.msg.topic, 3u);
  EXPECT_EQ(event.msg.seq, 9u);
}

TEST(LatencyModels, ConstantAndUniformBounds) {
  Rng rng(1);
  ConstantLatency constant(milliseconds(5));
  EXPECT_EQ(constant.sample(rng, 0), milliseconds(5));
  EXPECT_EQ(constant.lower_bound(), milliseconds(5));

  UniformLatency uniform(microseconds(100), microseconds(200));
  for (int i = 0; i < 1000; ++i) {
    const Duration sample = uniform.sample(rng, 0);
    EXPECT_GE(sample, microseconds(100));
    EXPECT_LT(sample, microseconds(200));
  }
  EXPECT_EQ(uniform.lower_bound(), microseconds(100));
}

TEST(LatencyModels, NormalRespectsFloor) {
  Rng rng(2);
  NormalLatency normal(milliseconds(22), milliseconds(10), milliseconds(20));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(normal.sample(rng, 0), milliseconds(20));
  }
}

TEST(LatencyModels, DiurnalFloorSwellAndSpike) {
  Rng rng(3);
  DiurnalCloudLatency::Profile profile;
  DiurnalCloudLatency diurnal(profile);

  // Floor holds everywhere.
  for (int hour = 0; hour < 24; ++hour) {
    const Duration sample = diurnal.sample(rng, seconds(hour * 3600));
    EXPECT_GE(sample, profile.floor);
  }
  // Night (3 am) is faster than mid-afternoon (3 pm) on average.
  double night = 0;
  double afternoon = 0;
  for (int i = 0; i < 500; ++i) {
    night += static_cast<double>(diurnal.sample(rng, seconds(3 * 3600)));
    afternoon += static_cast<double>(diurnal.sample(rng, seconds(15 * 3600)));
  }
  EXPECT_LT(night, afternoon);
  // The 8 am spike exceeds +100 ms over the floor.
  const Duration spiked =
      diurnal.sample(rng, profile.spike_time_of_day);
  EXPECT_GE(spiked, profile.floor + milliseconds(100));
  // One second outside the spike window: no spike.
  const Duration outside = diurnal.sample(
      rng, profile.spike_time_of_day + profile.spike_width + seconds(1));
  EXPECT_LT(outside, profile.floor + milliseconds(60));
}

TEST(Workload, PaperTotalsDecomposeCorrectly) {
  const TimingParams params = paper_timing_params();
  for (const std::size_t total : kPaperWorkloads) {
    const Workload workload = make_table2_workload(total, params);
    EXPECT_EQ(workload.topic_count(), total);
    EXPECT_EQ(workload.topics_in_category(0).size(), 10u);
    EXPECT_EQ(workload.topics_in_category(1).size(), 10u);
    EXPECT_EQ(workload.topics_in_category(5).size(), 5u);
    const std::size_t bulk = (total - 25) / 3;
    EXPECT_EQ(workload.topics_in_category(2).size(), bulk);
    EXPECT_EQ(workload.topics_in_category(3).size(), bulk);
    EXPECT_EQ(workload.topics_in_category(4).size(), bulk);
  }
}

TEST(Workload, TopicIdsAreDense) {
  const Workload workload = make_table2_workload(1525, paper_timing_params());
  for (std::size_t i = 0; i < workload.topic_count(); ++i) {
    EXPECT_EQ(workload.topics[i].id, static_cast<TopicId>(i));
  }
}

TEST(Workload, ProxyFanoutMatchesPaper) {
  const Workload workload = make_table2_workload(1525, paper_timing_params());
  // 10-topic proxies for cats 0-1, 50-topic proxies for cats 2-4 (500 each
  // at this size), 1-topic proxies for cat 5.
  std::size_t ten = 0;
  std::size_t fifty = 0;
  std::size_t one = 0;
  for (const auto& proxy : workload.proxies) {
    if (proxy.topics.size() == 10) ++ten;
    if (proxy.topics.size() == 50) ++fifty;
    if (proxy.topics.size() == 1) ++one;
  }
  EXPECT_EQ(ten, 2u);
  EXPECT_EQ(fifty, 30u);
  EXPECT_EQ(one, 5u);
  // Every proxy's topics share its period.
  for (const auto& proxy : workload.proxies) {
    for (const TopicId topic : proxy.topics) {
      EXPECT_EQ(workload.topics[topic].period, proxy.period);
    }
  }
}

TEST(Workload, MessageRateMatchesHandComputation) {
  const Workload workload = make_table2_workload(1525, paper_timing_params());
  // cats 0-1: 20 topics at 20 Hz; cats 2-4: 1500 at 10 Hz; cat 5: 5 at 2 Hz.
  EXPECT_NEAR(workload.message_rate(), 20 * 20 + 1500 * 10 + 5 * 2, 1e-6);
}

TEST(Workload, RetentionBumpOnlyTouchesReplicatingCategories) {
  const TimingParams params = paper_timing_params();
  const Workload plain = make_table2_workload(1525, params, false);
  const Workload bumped = make_table2_workload(1525, params, true);
  for (std::size_t i = 0; i < plain.topic_count(); ++i) {
    const int cat = plain.category[i];
    if (cat == 2 || cat == 5) {
      EXPECT_EQ(bumped.topics[i].retention, plain.topics[i].retention + 1);
    } else {
      EXPECT_EQ(bumped.topics[i].retention, plain.topics[i].retention);
    }
  }
}

TEST(Workload, RepresentativeTopics) {
  const Workload workload = make_table2_workload(1525, paper_timing_params());
  EXPECT_EQ(workload.representative(0), 0u);
  EXPECT_EQ(workload.category[workload.representative(2)], 2);
  EXPECT_EQ(workload.category[workload.representative(5)], 5);
}

}  // namespace
}  // namespace frame::sim
