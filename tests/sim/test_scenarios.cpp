// Scenario tests beyond the Table-2 mix: the Section III-D.4 corner cases
// (Di < Ti rare time-critical topics; Di > Ti streaming topics), custom
// workload construction from deployment configs, and multi-group result
// accounting.
#include <gtest/gtest.h>

#include "core/config_file.hpp"
#include "sim/experiment.hpp"

namespace frame::sim {
namespace {

TimingParams timing_3d() { return paper_timing_params(); }

ExperimentConfig base_config(Workload workload, bool crash) {
  ExperimentConfig config;
  config.config = ConfigName::kFrame;
  config.warmup = milliseconds(500);
  config.measure = seconds(4);
  config.drain = seconds(1);
  config.inject_crash = crash;
  config.seed = 99;
  config.custom_workload = std::move(workload);
  return config;
}

// Section III-D.4, Di < Ti: a rare, time-critical topic (slow period,
// tight deadline).  Proposition 1 suppresses replication; retention covers
// the crash; the deadline holds for every delivered message.
TEST(Scenarios, RareTimeCriticalTopicSurvivesCrashWithoutReplication) {
  TopicSpec rare{0, seconds(1), milliseconds(100), 0, 1, Destination::kEdge};
  ASSERT_TRUE(admission_test(rare, timing_3d()).is_ok());
  ASSERT_FALSE(needs_replication(rare, timing_3d()));

  Workload workload = make_custom_workload({rare}, {0});
  auto config = base_config(std::move(workload), /*crash=*/true);
  config.watch_categories = {0};
  const auto result = run_experiment(config);

  EXPECT_EQ(result.primary_stats.replications_executed, 0u);
  EXPECT_EQ(result.category(0).total_losses, 0u);
  EXPECT_DOUBLE_EQ(result.category(0).loss_success_pct, 100.0);
}

// Section III-D.4, Di > Ti: a streaming topic whose messages outlive their
// period.  Admission demands a deep retention (Dr >= 0) and Proposition 1
// keeps replication on.
TEST(Scenarios, StreamingTopicNeedsDeepRetentionAndReplication) {
  TopicSpec streaming{0, milliseconds(10), milliseconds(200), 0, 0,
                      Destination::kEdge};
  // Ni = 0 is inadmissible; the minimum fixes it.
  ASSERT_FALSE(admission_test(streaming, timing_3d()).is_ok());
  streaming.retention = min_retention_for_admission(streaming, timing_3d());
  ASSERT_GE(streaming.retention, 6u);
  ASSERT_TRUE(admission_test(streaming, timing_3d()).is_ok());
  ASSERT_TRUE(needs_replication(streaming, timing_3d()));

  Workload workload = make_custom_workload({streaming}, {0});
  auto config = base_config(std::move(workload), /*crash=*/true);
  const auto result = run_experiment(config);

  EXPECT_GT(result.primary_stats.replications_executed, 0u);
  EXPECT_EQ(result.category(0).total_losses, 0u);
}

// Multiple subscribers per topic: one dispatch job serves them all
// (Section IV-A) and each gets every message exactly once.  Exercised at
// the engine level here; the sim wires one subscriber per topic.
TEST(Scenarios, CustomWorkloadGroupsSurviveToResults) {
  // Seven groups exceed the six Table-2 categories.
  std::vector<TopicSpec> topics;
  std::vector<int> groups;
  for (TopicId id = 0; id < 7; ++id) {
    topics.push_back(TopicSpec{id, milliseconds(100), milliseconds(150), 1,
                               1, Destination::kEdge});
    groups.push_back(static_cast<int>(id));
  }
  auto config =
      base_config(make_custom_workload(topics, groups), /*crash=*/false);
  const auto result = run_experiment(config);
  ASSERT_EQ(result.categories.size(), 7u);
  for (const auto& row : result.categories) {
    EXPECT_EQ(row.topic_count, 1u);
    EXPECT_DOUBLE_EQ(row.latency_success_pct, 100.0);
  }
}

TEST(Scenarios, CustomWorkloadProxyGrouping) {
  // 120 same-period topics pack into proxies of <= 50.
  std::vector<TopicSpec> topics;
  std::vector<int> groups;
  for (TopicId id = 0; id < 120; ++id) {
    topics.push_back(TopicSpec{id, milliseconds(100), milliseconds(150), 3,
                               0, Destination::kEdge});
    groups.push_back(0);
  }
  // A period change forces a proxy break.
  topics.push_back(TopicSpec{120, milliseconds(500), milliseconds(800), 0,
                             1, Destination::kCloud});
  groups.push_back(1);
  const Workload workload = make_custom_workload(topics, groups);
  ASSERT_EQ(workload.proxies.size(), 4u);  // 50 + 50 + 20 + 1
  EXPECT_EQ(workload.proxies[0].topics.size(), 50u);
  EXPECT_EQ(workload.proxies[2].topics.size(), 20u);
  EXPECT_EQ(workload.proxies[3].period, milliseconds(500));
}

TEST(Scenarios, DeploymentConfigRoundTripsIntoSimulation) {
  constexpr std::string_view kConfig = R"(
[timing]
delta_pb_ms       = 1
delta_bs_edge_ms  = 1
delta_bs_cloud_ms = 20
delta_bb_ms       = 0.05
failover_x_ms     = 50

[topic]
period_ms      = 100
deadline_ms    = 150
loss_tolerance = 0
retention      = 2
count          = 4

[topic]
period_ms      = 500
deadline_ms    = 800
loss_tolerance = 0
retention      = 1
destination    = cloud
)";
  auto parsed = parse_deployment_config(kConfig);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed.value().groups.size(), 5u);
  EXPECT_EQ(parsed.value().groups[3], 0);
  EXPECT_EQ(parsed.value().groups[4], 1);

  ExperimentConfig config;
  config.config = ConfigName::kFrame;
  config.timing = parsed.value().timing;
  config.warmup = milliseconds(300);
  config.measure = seconds(2);
  config.drain = seconds(1);
  config.inject_crash = true;
  config.seed = 4;
  config.custom_workload =
      make_custom_workload(parsed.value().topics, parsed.value().groups);
  const auto result = run_experiment(config);
  ASSERT_EQ(result.categories.size(), 2u);
  EXPECT_DOUBLE_EQ(result.category(0).loss_success_pct, 100.0);
  EXPECT_DOUBLE_EQ(result.category(1).loss_success_pct, 100.0);
}

}  // namespace
}  // namespace frame::sim
