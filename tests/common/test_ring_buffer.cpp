#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "common/ring_buffer.hpp"
#include "common/rng.hpp"

namespace frame {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_FALSE(ring.pop_front().has_value());
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> ring(4);
  for (int i = 1; i <= 3; ++i) EXPECT_FALSE(ring.push_back(i).has_value());
  EXPECT_EQ(*ring.pop_front(), 1);
  EXPECT_EQ(*ring.pop_front(), 2);
  EXPECT_EQ(*ring.pop_front(), 3);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, OverwriteEvictsOldest) {
  RingBuffer<int> ring(3);
  ring.push_back(1);
  ring.push_back(2);
  ring.push_back(3);
  EXPECT_TRUE(ring.full());
  const auto evicted = ring.push_back(4);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
  EXPECT_EQ(ring.front(), 2);
  EXPECT_EQ(ring.back(), 4);
  EXPECT_EQ(ring.size(), 3u);
}

TEST(RingBuffer, ZeroCapacityEvictsEverything) {
  RingBuffer<int> ring(0);
  const auto evicted = ring.push_back(7);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 7);
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, IndexedAccessOldestFirst) {
  RingBuffer<int> ring(3);
  ring.push_back(10);
  ring.push_back(20);
  ring.push_back(30);
  ring.push_back(40);  // evicts 10
  EXPECT_EQ(ring.at(0), 20);
  EXPECT_EQ(ring.at(1), 30);
  EXPECT_EQ(ring.at(2), 40);
}

TEST(RingBuffer, ForEachVisitsInOrder) {
  RingBuffer<int> ring(4);
  for (int i = 0; i < 6; ++i) ring.push_back(i);
  std::vector<int> seen;
  ring.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{2, 3, 4, 5}));
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<std::string> ring(2);
  ring.push_back("a");
  ring.clear();
  EXPECT_TRUE(ring.empty());
  ring.push_back("b");
  EXPECT_EQ(ring.front(), "b");
}

TEST(RingBuffer, MoveOnlyTypesWork) {
  RingBuffer<std::unique_ptr<int>> ring(2);
  ring.push_back(std::make_unique<int>(1));
  ring.push_back(std::make_unique<int>(2));
  auto evicted = ring.push_back(std::make_unique<int>(3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(**evicted, 1);
  EXPECT_EQ(*ring.front(), 2);
}

// Property: the ring behaves exactly like a size-bounded deque model under
// random interleavings of push/pop.
class RingBufferModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingBufferModel, MatchesBoundedDeque) {
  Rng rng(GetParam());
  const std::size_t capacity = 1 + rng.next_below(8);
  RingBuffer<int> ring(capacity);
  std::deque<int> model;
  for (int step = 0; step < 2000; ++step) {
    if (rng.next_double() < 0.6) {
      const int value = static_cast<int>(rng.next_below(1000));
      const auto evicted = ring.push_back(value);
      model.push_back(value);
      if (model.size() > capacity) {
        ASSERT_TRUE(evicted.has_value());
        EXPECT_EQ(*evicted, model.front());
        model.pop_front();
      } else {
        EXPECT_FALSE(evicted.has_value());
      }
    } else {
      const auto popped = ring.pop_front();
      if (model.empty()) {
        EXPECT_FALSE(popped.has_value());
      } else {
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(*popped, model.front());
        model.pop_front();
      }
    }
    ASSERT_EQ(ring.size(), model.size());
    for (std::size_t i = 0; i < model.size(); ++i) {
      ASSERT_EQ(ring.at(i), model[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingBufferModel,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace frame
