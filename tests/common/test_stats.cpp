#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace frame {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95_half_width(), 0.0);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  OnlineStats small;
  OnlineStats large;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0, 1));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  Rng rng(17);
  OnlineStats a;
  OnlineStats b;
  OnlineStats combined;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3, 9);
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  OnlineStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_NEAR(merged.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), combined.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), combined.min());
  EXPECT_DOUBLE_EQ(merged.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats empty;
  a.add(1.0);
  a.add(3.0);
  OnlineStats merged = a;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  OnlineStats other;
  other.merge(a);
  EXPECT_DOUBLE_EQ(other.mean(), 2.0);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet samples;
  for (int i = 100; i >= 1; --i) samples.add(i);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 100.0);
  EXPECT_NEAR(samples.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(samples.percentile(99), 99.01, 1e-9);
  EXPECT_NEAR(samples.mean(), 50.5, 1e-9);
}

TEST(SampleSet, PercentileOfEmptyIsZero) {
  SampleSet samples;
  EXPECT_DOUBLE_EQ(samples.percentile(99), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(0.5);    // bin 0
  histogram.add(9.99);   // bin 9
  histogram.add(-5.0);   // clamps to bin 0
  histogram.add(42.0);   // clamps to bin 9
  EXPECT_EQ(histogram.bin(0), 2u);
  EXPECT_EQ(histogram.bin(9), 2u);
  EXPECT_EQ(histogram.total(), 4u);
  EXPECT_DOUBLE_EQ(histogram.bin_low(5), 5.0);
}

TEST(Histogram, DegenerateRangeCountsInBinZero) {
  // lo == hi used to divide by zero and cast NaN to an integer (UB).
  Histogram histogram(3.0, 3.0, 4);
  histogram.add(3.0);
  histogram.add(-100.0);
  histogram.add(100.0);
  EXPECT_EQ(histogram.bin(0), 3u);
  EXPECT_EQ(histogram.total(), 3u);
}

TEST(Histogram, NanSampleIsDropped) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(std::nan(""));
  EXPECT_EQ(histogram.total(), 0u);
  histogram.add(5.0);
  EXPECT_EQ(histogram.total(), 1u);
  EXPECT_EQ(histogram.bin(5), 1u);
}

TEST(Histogram, InfinitySamplesClampToEdgeBins) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(std::numeric_limits<double>::infinity());
  histogram.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.bin(9), 1u);
  EXPECT_EQ(histogram.bin(0), 1u);
}

TEST(SampleSet, PercentileClampsOutOfRangeP) {
  SampleSet samples;
  for (int i = 1; i <= 10; ++i) samples.add(i);
  // p outside [0, 100] used to index out of bounds.
  EXPECT_DOUBLE_EQ(samples.percentile(-50.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(150.0), 10.0);
  EXPECT_DOUBLE_EQ(samples.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(samples.percentile(std::nan("")), 1.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(7);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialRoughMean) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.2);
}

}  // namespace
}  // namespace frame
