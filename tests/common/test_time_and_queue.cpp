#include <gtest/gtest.h>

#include <thread>

#include "common/bounded_queue.hpp"
#include "common/result.hpp"
#include "common/time.hpp"

namespace frame {
namespace {

TEST(Time, ConversionsRoundTrip) {
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_EQ(microseconds(3), 3'000);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(9)), 9.0);
  EXPECT_EQ(milliseconds_f(0.05), microseconds(50));
}

TEST(Time, SaturatingAdd) {
  EXPECT_EQ(time_add(100, 50), 150);
  EXPECT_EQ(time_add(kTimeNever, 50), kTimeNever);
  EXPECT_EQ(time_add(100, kDurationInfinite), kTimeNever);
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration(milliseconds(12) + microseconds(500)),
            "12.500ms");
  EXPECT_EQ(format_duration(seconds(3)), "3.000s");
  EXPECT_EQ(format_duration(nanoseconds(10)), "10ns");
  EXPECT_EQ(format_duration(kDurationInfinite), "inf");
}

TEST(Time, MonotonicClockAdvances) {
  MonotonicClock clock;
  const TimePoint a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const TimePoint b = clock.now();
  EXPECT_GT(b, a);
  EXPECT_GE(b - a, milliseconds(1));
}

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::ok().is_ok());
  const Status status(StatusCode::kCapacity, "ring full");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.to_string(), "capacity: ring full");
  EXPECT_EQ(to_string(StatusCode::kRejected), "rejected");
}

TEST(Result, ValueAndError) {
  Result<int> good(7);
  ASSERT_TRUE(good.is_ok());
  EXPECT_EQ(good.value(), 7);
  Result<int> bad(Status(StatusCode::kNotFound, "nope"));
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue(8);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(*queue.pop(), 1);
  EXPECT_EQ(*queue.pop(), 2);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_FALSE(queue.try_push(2));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedQueue, CloseWakesConsumers) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] {
    const auto item = queue.pop();
    EXPECT_FALSE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_FALSE(queue.push(1));
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_EQ(*queue.pop(), 1);
  EXPECT_EQ(*queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> queue(4);
  const auto item = queue.pop_for(milliseconds(5));
  EXPECT_FALSE(item.has_value());
}

TEST(BoundedQueue, ProducerConsumerStress) {
  BoundedQueue<int> queue(16);
  constexpr int kItems = 5000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    while (auto item = queue.pop()) sum += *item;
  });
  std::thread producer([&] {
    for (int i = 1; i <= kItems; ++i) queue.push(i);
    queue.close();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kItems) * (kItems + 1) / 2);
}

}  // namespace
}  // namespace frame
