// MpscRing: the bounded lock-free hand-off between frame producers and a
// shard's lanes.  Covers single-thread semantics (FIFO, full-ring reject,
// wraparound, payload release) and a multi-producer stress run that TSan
// must pass cleanly — it is the concurrency contract of the shard inbox.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/mpsc_ring.hpp"

namespace frame {
namespace {

TEST(MpscRing, PushPopFifoOrder) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
  }
  EXPECT_EQ(ring.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(9).capacity(), 16u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
}

TEST(MpscRing, FullRingRejectsAndPreservesTheValue) {
  MpscRing<std::vector<int>> ring(2);
  std::vector<int> a{1}, b{2}, c{3, 4, 5};
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_TRUE(ring.try_push(b));
  // The lvalue overload must leave a rejected value intact so the caller
  // can retry under backpressure instead of losing an accepted publish.
  EXPECT_FALSE(ring.try_push(c));
  EXPECT_EQ(c, (std::vector<int>{3, 4, 5}));
  ASSERT_TRUE(ring.try_pop().has_value());
  EXPECT_TRUE(ring.try_push(c));
}

TEST(MpscRing, WraparoundManyTimesOverASmallRing) {
  MpscRing<int> ring(4);
  int next_out = 0;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.try_push(int(i)));
    if (i % 3 == 2) {
      // Drain in bursts so head and tail wrap at different phases.
      for (int k = 0; k < 3; ++k) {
        const auto v = ring.try_pop();
        ASSERT_TRUE(v.has_value());
        ASSERT_EQ(*v, next_out++);
      }
    }
  }
  while (auto v = ring.try_pop()) {
    ASSERT_EQ(*v, next_out++);
  }
  EXPECT_EQ(next_out, 10000);
}

TEST(MpscRing, PopReleasesHeapPayloadBeforeSlotReuse) {
  MpscRing<std::shared_ptr<int>> ring(4);
  auto payload = std::make_shared<int>(42);
  std::weak_ptr<int> watch = payload;
  ASSERT_TRUE(ring.try_push(std::move(payload)));
  {
    const auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, 42);
  }
  // The cell must not keep a copy alive after the pop returned.
  EXPECT_TRUE(watch.expired());
}

// The shard-inbox contract under contention: N producers race pushes
// (spinning on backpressure, as route_to_shard does), one consumer drains.
// Every value must arrive exactly once and per-producer FIFO order must
// hold.  Run under TSan to certify the memory ordering.
TEST(MpscRing, MultiProducerStressWithWraparoundAndShutdown) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  constexpr std::uint64_t kStride = 1u << 20;
  MpscRing<std::uint64_t> ring(64);  // small: forces constant wraparound

  std::atomic<bool> start{false};
  std::atomic<int> done_producers{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t value = static_cast<std::uint64_t>(p) * kStride +
                              static_cast<std::uint64_t>(i);
        while (!ring.try_push(value)) {
          std::this_thread::yield();
        }
      }
      done_producers.fetch_add(1, std::memory_order_release);
    });
  }

  std::vector<std::uint64_t> next_from(kProducers, 0);
  std::uint64_t received = 0;
  start.store(true, std::memory_order_release);
  // Consumer: drain until all producers finished AND the ring is empty
  // (the shutdown shape restart_as_backup uses).
  for (;;) {
    const auto v = ring.try_pop();
    if (!v.has_value()) {
      if (done_producers.load(std::memory_order_acquire) == kProducers &&
          ring.empty()) {
        break;
      }
      std::this_thread::yield();
      continue;
    }
    const int p = static_cast<int>(*v / kStride);
    const std::uint64_t i = *v % kStride;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(i, next_from[p]) << "per-producer FIFO order violated";
    ++next_from[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(received,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_FALSE(ring.try_pop().has_value());
}

}  // namespace
}  // namespace frame
