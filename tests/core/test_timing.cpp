// Tests for the paper's timing model (Lemmas 1-2, Proposition 1, admission)
// including the exact worked example of Section III-D.
#include <gtest/gtest.h>

#include "core/timing.hpp"
#include "core/topic.hpp"

namespace frame {
namespace {

/// Section III-D parameters: ΔBS = 1 ms (edge) / 20 ms (cloud),
/// ΔBB = 0.05 ms, x = 50 ms.  ΔPB = 0 so pseudo and lemma deadlines agree,
/// as in the paper's worked ordering.
TimingParams section3d_params() {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  return params;
}

TEST(Timing, Lemma1MatchesHandComputation) {
  // Dr = (Ni + Li) Ti - dPB - dBB - x, all in nanoseconds.
  TopicSpec spec{0, milliseconds(100), milliseconds(100), 2, 3,
                 Destination::kEdge};
  TimingParams params = section3d_params();
  params.delta_pb = milliseconds(1);
  // (3 + 2) * 100 - 1 - 0.05 - 50 = 448.95 ms
  EXPECT_EQ(replication_deadline(spec, params), milliseconds_f(448.95));
}

TEST(Timing, Lemma2MatchesHandComputation) {
  TopicSpec spec{0, milliseconds(100), milliseconds(80), 0, 1,
                 Destination::kCloud};
  TimingParams params = section3d_params();
  params.delta_pb = milliseconds(2);
  // Dd = Di - dPB - dBS = 80 - 2 - 20 = 58 ms.
  EXPECT_EQ(dispatch_deadline(spec, params), milliseconds(58));
}

TEST(Timing, BestEffortTopicsHaveInfiniteReplicationDeadline) {
  TopicSpec spec = table2_spec(4, 0);
  const TimingParams params = section3d_params();
  EXPECT_EQ(replication_pseudo_deadline(spec, params), kDurationInfinite);
  EXPECT_FALSE(needs_replication(spec, params));
}

TEST(Timing, Table2PseudoDeadlines) {
  const TimingParams params = section3d_params();
  // Values from Section III-D.2 (ms).
  const TopicSpec cat0 = table2_spec(0, 0);
  const TopicSpec cat1 = table2_spec(1, 1);
  const TopicSpec cat2 = table2_spec(2, 2);
  const TopicSpec cat3 = table2_spec(3, 3);
  const TopicSpec cat5 = table2_spec(5, 5);

  EXPECT_EQ(dispatch_pseudo_deadline(cat0, params), milliseconds(49));
  EXPECT_EQ(dispatch_pseudo_deadline(cat1, params), milliseconds(49));
  EXPECT_EQ(dispatch_pseudo_deadline(cat2, params), milliseconds(99));
  EXPECT_EQ(dispatch_pseudo_deadline(cat5, params), milliseconds(480));

  EXPECT_EQ(replication_pseudo_deadline(cat0, params), milliseconds_f(49.95));
  EXPECT_EQ(replication_pseudo_deadline(cat1, params), milliseconds_f(99.95));
  EXPECT_EQ(replication_pseudo_deadline(cat2, params), milliseconds_f(49.95));
  EXPECT_EQ(replication_pseudo_deadline(cat3, params),
            milliseconds_f(249.95));
  EXPECT_EQ(replication_pseudo_deadline(cat5, params),
            milliseconds_f(449.95));
}

// The paper's ordering: Dd0 = Dd1 < Dr0 = Dr2 < Dd2 = Dd3 = Dd4 < Dr1 <
// Dr3 < Dr5 < Dd5 (Section III-D.2).
TEST(Timing, Section3DOrderingHolds) {
  const TimingParams params = section3d_params();
  const auto dd = [&](int cat) {
    return dispatch_pseudo_deadline(table2_spec(cat, 0), params);
  };
  const auto dr = [&](int cat) {
    return replication_pseudo_deadline(table2_spec(cat, 0), params);
  };
  EXPECT_EQ(dd(0), dd(1));
  EXPECT_LT(dd(0), dr(0));
  EXPECT_EQ(dr(0), dr(2));
  EXPECT_LT(dr(0), dd(2));
  EXPECT_EQ(dd(2), dd(3));
  EXPECT_EQ(dd(3), dd(4));
  EXPECT_LT(dd(2), dr(1));
  EXPECT_LT(dr(1), dr(3));
  EXPECT_LT(dr(3), dr(5));
  EXPECT_LT(dr(5), dd(5));
}

// Proposition 1 applied to Table 2: replication needed only for
// categories 2 and 5 (Section III-D.2).
TEST(Timing, Proposition1SelectsCategories2And5) {
  const TimingParams params = section3d_params();
  EXPECT_FALSE(needs_replication(table2_spec(0, 0), params));
  EXPECT_FALSE(needs_replication(table2_spec(1, 0), params));
  EXPECT_TRUE(needs_replication(table2_spec(2, 0), params));
  EXPECT_FALSE(needs_replication(table2_spec(3, 0), params));
  EXPECT_FALSE(needs_replication(table2_spec(4, 0), params));
  EXPECT_TRUE(needs_replication(table2_spec(5, 0), params));
}

// Section III-D.3: raising Ni by one for categories 2 and 5 removes the
// need for replication entirely (the FRAME+ configuration).
TEST(Timing, RetentionBumpRemovesAllReplication) {
  const TimingParams params = section3d_params();
  TopicSpec cat2 = table2_spec(2, 0);
  TopicSpec cat5 = table2_spec(5, 0);
  cat2.retention += 1;
  cat5.retention += 1;
  EXPECT_FALSE(needs_replication(cat2, params));
  EXPECT_FALSE(needs_replication(cat5, params));
}

TEST(Timing, AdmissionRejectsNegativeDispatchDeadline) {
  // Di smaller than DeltaPB + DeltaBS can never be met.
  TopicSpec spec{0, milliseconds(100), milliseconds(10), 0, 5,
                 Destination::kCloud};
  TimingParams params = section3d_params();
  params.delta_pb = milliseconds(1);  // Dd = 10 - 1 - 20 < 0
  const Status status = admission_test(spec, params);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kRejected);
}

// Section III-D.1: Li = 0 requires publisher retention; otherwise the
// message is lost if the Primary crashes right after its arrival.
TEST(Timing, AdmissionRejectsZeroLossZeroRetention) {
  TopicSpec spec{0, milliseconds(50), milliseconds(50), 0, 0,
                 Destination::kEdge};
  const Status status = admission_test(spec, section3d_params());
  EXPECT_FALSE(status.is_ok());
}

TEST(Timing, AdmissionAcceptsEveryTable2Category) {
  TimingParams params = section3d_params();
  params.delta_pb = microseconds(500);
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    const Status status = admission_test(table2_spec(cat, 0), params);
    EXPECT_TRUE(status.is_ok()) << "category " << cat << ": "
                                << status.to_string();
  }
}

TEST(Timing, AdmissionRejectsNonPositivePeriod) {
  TopicSpec spec{0, 0, milliseconds(50), 1, 0, Destination::kEdge};
  EXPECT_EQ(admission_test(spec, section3d_params()).code(),
            StatusCode::kInvalid);
}

// Table 2's Ni column is the minimum retention making Dr non-negative.
TEST(Timing, MinRetentionReproducesTable2Column) {
  const TimingParams params = section3d_params();
  EXPECT_EQ(min_retention_for_admission(table2_spec(0, 0), params), 2u);
  EXPECT_EQ(min_retention_for_admission(table2_spec(1, 0), params), 0u);
  EXPECT_EQ(min_retention_for_admission(table2_spec(2, 0), params), 1u);
  EXPECT_EQ(min_retention_for_admission(table2_spec(3, 0), params), 0u);
  EXPECT_EQ(min_retention_for_admission(table2_spec(4, 0), params), 0u);
  EXPECT_EQ(min_retention_for_admission(table2_spec(5, 0), params), 1u);
}

TEST(Timing, ObservedDeltaPbShiftsDeadline) {
  EXPECT_EQ(apply_observed_delta_pb(milliseconds(100), milliseconds(3)),
            milliseconds(97));
  EXPECT_EQ(apply_observed_delta_pb(kDurationInfinite, milliseconds(3)),
            kDurationInfinite);
}

// Section III-D.4, case Di < Ti (rare, time-critical messages): with
// Ti = "infinity" and Li = 0, Proposition 1 suppresses replication as long
// as a positive Ni is admissible.
TEST(Timing, RareTimeCriticalTopicNeedsNoReplication) {
  TopicSpec spec{0, seconds(3600), milliseconds(20), 0, 1,
                 Destination::kEdge};
  const TimingParams params = section3d_params();
  EXPECT_TRUE(admission_test(spec, params).is_ok());
  EXPECT_FALSE(needs_replication(spec, params));
}

// Section III-D.4, case Di > Ti (streaming): replication is likely needed
// unless DeltaBS is small.
TEST(Timing, StreamingTopicNeedsReplication) {
  TopicSpec spec{0, milliseconds(10), milliseconds(200), 0, 1,
                 Destination::kCloud};
  const TimingParams params = section3d_params();
  // Dr' = 10 - 0.05 - 50 < 0 < Dd' -> replication needed (and Ni must rise
  // for admission).
  EXPECT_TRUE(needs_replication(spec, params));
  EXPECT_FALSE(admission_test(spec, params).is_ok());
  TopicSpec fixed = spec;
  fixed.retention = min_retention_for_admission(spec, params);
  EXPECT_TRUE(admission_test(fixed, params).is_ok());
}

// Property sweep: the replication deadline is monotone in Ni, Li, Ti and
// antitone in x, as Equation (1) dictates.
class TimingMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(TimingMonotonicity, ReplicationDeadlineMonotoneInRetention) {
  const int step = GetParam();
  const TimingParams params = section3d_params();
  TopicSpec lo{0, milliseconds(40), milliseconds(40),
               static_cast<std::uint32_t>(step), 1, Destination::kEdge};
  TopicSpec hi = lo;
  hi.retention += 1;
  EXPECT_LT(replication_pseudo_deadline(lo, params),
            replication_pseudo_deadline(hi, params));
}

TEST_P(TimingMonotonicity, ReplicationDeadlineAntitoneInFailover) {
  const int step = GetParam();
  TopicSpec spec{0, milliseconds(40), milliseconds(40), 2, 1,
                 Destination::kEdge};
  TimingParams fast = section3d_params();
  fast.failover_x = milliseconds(step);
  TimingParams slow = fast;
  slow.failover_x += milliseconds(5);
  EXPECT_GT(replication_pseudo_deadline(spec, fast),
            replication_pseudo_deadline(spec, slow));
}

TEST_P(TimingMonotonicity, MinRetentionDecreasesWithLossTolerance) {
  const int step = GetParam();
  const TimingParams params = section3d_params();
  TopicSpec strict{0, milliseconds(10), milliseconds(10), 0, 0,
                   Destination::kEdge};
  TopicSpec lax = strict;
  lax.loss_tolerance = static_cast<std::uint32_t>(step + 1);
  EXPECT_GE(min_retention_for_admission(strict, params),
            min_retention_for_admission(lax, params));
}

INSTANTIATE_TEST_SUITE_P(Sweep, TimingMonotonicity,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

// The paper's equivalent formulation of Proposition 1:
// replication needed iff x + dBB - dBS > (Ni + Li) Ti - Di.
TEST(Timing, Proposition1EquivalentFormulation) {
  const TimingParams params = section3d_params();
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    const TopicSpec spec = table2_spec(cat, 0);
    if (spec.best_effort()) continue;
    const Duration lhs = params.failover_x + params.delta_bb -
                         params.delta_bs(spec.destination);
    const Duration window =
        static_cast<Duration>(spec.retention + spec.loss_tolerance) *
        spec.period;
    const bool expected = lhs > window - spec.deadline;
    EXPECT_EQ(needs_replication(spec, params), expected) << "category " << cat;
  }
}

}  // namespace
}  // namespace frame
