// Deployment configuration parser tests.
#include <gtest/gtest.h>

#include "core/config_file.hpp"

namespace frame {
namespace {

constexpr std::string_view kValid = R"(
# a deployment
[timing]
delta_pb_ms       = 1
delta_bs_edge_ms  = 1
delta_bs_cloud_ms = 20
delta_bb_ms       = 0.05
failover_x_ms     = 50

[topic]            ; two sensors
period_ms      = 50
deadline_ms    = 60
loss_tolerance = 0
retention      = 2
destination    = edge
count          = 2

[topic]
period_ms      = 500
deadline_ms    = 800
loss_tolerance = inf
destination    = cloud
)";

TEST(ConfigFile, ParsesTimingAndTopics) {
  auto result = parse_deployment_config(kValid);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const DeploymentConfig& config = result.value();
  EXPECT_EQ(config.timing.delta_pb, milliseconds(1));
  EXPECT_EQ(config.timing.delta_bs_cloud, milliseconds(20));
  EXPECT_EQ(config.timing.delta_bb, microseconds(50));
  EXPECT_EQ(config.timing.failover_x, milliseconds(50));

  ASSERT_EQ(config.topics.size(), 3u);
  EXPECT_EQ(config.topics[0].id, 0u);
  EXPECT_EQ(config.topics[1].id, 1u);
  EXPECT_EQ(config.topics[0].period, milliseconds(50));
  EXPECT_EQ(config.topics[0].deadline, milliseconds(60));
  EXPECT_EQ(config.topics[0].retention, 2u);
  EXPECT_EQ(config.topics[1].loss_tolerance, 0u);
  EXPECT_EQ(config.topics[2].id, 2u);
  EXPECT_TRUE(config.topics[2].best_effort());
  EXPECT_EQ(config.topics[2].destination, Destination::kCloud);
}

TEST(ConfigFile, RoundTripsThroughFormatter) {
  auto first = parse_deployment_config(kValid);
  ASSERT_TRUE(first.is_ok());
  const std::string text = format_deployment_config(first.value());
  auto second = parse_deployment_config(text);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  ASSERT_EQ(second.value().topics.size(), first.value().topics.size());
  for (std::size_t i = 0; i < first.value().topics.size(); ++i) {
    const auto& a = first.value().topics[i];
    const auto& b = second.value().topics[i];
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.deadline, b.deadline);
    EXPECT_EQ(a.loss_tolerance, b.loss_tolerance);
    EXPECT_EQ(a.retention, b.retention);
    EXPECT_EQ(a.destination, b.destination);
  }
  EXPECT_EQ(first.value().timing.failover_x,
            second.value().timing.failover_x);
}

TEST(ConfigFile, RejectsUnknownTimingKey) {
  const auto result =
      parse_deployment_config("[timing]\ndelta_qq_ms = 1\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ConfigFile, RejectsUnknownSection) {
  EXPECT_FALSE(parse_deployment_config("[nonsense]\n").is_ok());
}

TEST(ConfigFile, RejectsKeyOutsideSection) {
  EXPECT_FALSE(parse_deployment_config("period_ms = 50\n").is_ok());
}

TEST(ConfigFile, RejectsTopicWithoutPeriod) {
  const auto result = parse_deployment_config(
      "[topic]\ndeadline_ms = 50\nloss_tolerance = 0\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("period"), std::string::npos);
}

TEST(ConfigFile, RejectsTopicWithoutLossTolerance) {
  EXPECT_FALSE(parse_deployment_config(
                   "[topic]\nperiod_ms = 50\ndeadline_ms = 50\n")
                   .is_ok());
}

TEST(ConfigFile, RejectsBadNumber) {
  EXPECT_FALSE(parse_deployment_config(
                   "[topic]\nperiod_ms = fifty\n").is_ok());
}

TEST(ConfigFile, RejectsBadDestination) {
  EXPECT_FALSE(
      parse_deployment_config("[topic]\ndestination = mars\n").is_ok());
}

TEST(ConfigFile, RejectsMissingEquals) {
  EXPECT_FALSE(parse_deployment_config("[timing]\ndelta_pb_ms 1\n").is_ok());
}

TEST(ConfigFile, CountExpandsTopicsWithDenseIds) {
  const auto result = parse_deployment_config(
      "[topic]\nperiod_ms = 10\ndeadline_ms = 20\nloss_tolerance = 1\n"
      "count = 5\n");
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result.value().topics.size(), 5u);
  for (TopicId id = 0; id < 5; ++id) {
    EXPECT_EQ(result.value().topics[id].id, id);
  }
}

TEST(ConfigFile, CommentsAndBlankLinesIgnored) {
  const auto result = parse_deployment_config(
      "# header\n\n[timing]   ; inline\ndelta_pb_ms = 2   # trailing\n");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().timing.delta_pb, milliseconds(2));
}

TEST(ConfigFile, MissingFileReported) {
  const auto result = load_deployment_config("/nonexistent/path.frame");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace frame
