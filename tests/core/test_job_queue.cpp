// EDF Job Queue tests: ordering under both policies, tie-breaking, and the
// lazy cancellation used by dispatch-replicate coordination.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/job_queue.hpp"
#include "obs/obs.hpp"

namespace frame {
namespace {

Job make_job(JobKind kind, TopicId topic, SeqNo seq, TimePoint deadline,
             std::uint64_t order) {
  Job job;
  job.kind = kind;
  job.topic = topic;
  job.seq = seq;
  job.release = 0;
  job.deadline = deadline;
  job.order = order;
  return job;
}

TEST(JobQueue, EdfPopsEarliestDeadlineFirst) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kDispatch, 1, 1, milliseconds(30), 0));
  queue.push(make_job(JobKind::kDispatch, 2, 1, milliseconds(10), 1));
  queue.push(make_job(JobKind::kDispatch, 3, 1, milliseconds(20), 2));
  EXPECT_EQ(queue.pop()->topic, 2u);
  EXPECT_EQ(queue.pop()->topic, 3u);
  EXPECT_EQ(queue.pop()->topic, 1u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(JobQueue, EdfBreaksTiesByArrivalOrder) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kDispatch, 7, 1, milliseconds(10), 5));
  queue.push(make_job(JobKind::kDispatch, 8, 1, milliseconds(10), 4));
  EXPECT_EQ(queue.pop()->topic, 8u);
  EXPECT_EQ(queue.pop()->topic, 7u);
}

TEST(JobQueue, FifoIgnoresDeadlines) {
  JobQueue queue(SchedulingPolicy::kFifo);
  queue.push(make_job(JobKind::kDispatch, 1, 1, milliseconds(99), 0));
  queue.push(make_job(JobKind::kDispatch, 2, 1, milliseconds(1), 1));
  EXPECT_EQ(queue.pop()->topic, 1u);
  EXPECT_EQ(queue.pop()->topic, 2u);
}

TEST(JobQueue, CancelledReplicationIsSkipped) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kReplicate, 1, 5, milliseconds(1), 0));
  queue.push(make_job(JobKind::kDispatch, 1, 5, milliseconds(2), 1));
  queue.cancel_replication(1, 5);
  const auto job = queue.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->kind, JobKind::kDispatch);
  EXPECT_EQ(queue.cancelled_drops(), 1u);
}

TEST(JobQueue, CancellationDoesNotAffectDispatchJobs) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kDispatch, 1, 5, milliseconds(1), 0));
  queue.cancel_replication(1, 5);
  EXPECT_TRUE(queue.pop().has_value());
  EXPECT_EQ(queue.cancelled_drops(), 0u);
}

TEST(JobQueue, CancellationOnlyHitsMatchingSeq) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kReplicate, 1, 5, milliseconds(1), 0));
  queue.push(make_job(JobKind::kReplicate, 1, 6, milliseconds(2), 1));
  queue.cancel_replication(1, 5);
  const auto job = queue.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->seq, 6u);
}

TEST(JobQueue, PeekSkipsCancelledWithoutRemovingRunnable) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kReplicate, 1, 1, milliseconds(1), 0));
  queue.push(make_job(JobKind::kDispatch, 2, 1, milliseconds(5), 1));
  queue.cancel_replication(1, 1);
  const auto peeked = queue.peek();
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->topic, 2u);
  EXPECT_EQ(queue.pop()->topic, 2u);
}

TEST(JobQueue, EmptyAccountsForCancelled) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kReplicate, 3, 9, milliseconds(1), 0));
  queue.cancel_replication(3, 9);
  EXPECT_TRUE(queue.empty());
}

TEST(JobQueue, ClearRemovesEverything) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kDispatch, 1, 1, milliseconds(1), 0));
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.raw_size(), 0u);
}

// Property: popping everything from an EDF queue yields deadlines in
// non-decreasing order, whatever the insertion order.
class JobQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JobQueueProperty, EdfDrainIsSortedByDeadline) {
  Rng rng(GetParam());
  JobQueue queue(SchedulingPolicy::kEdf);
  for (std::uint64_t i = 0; i < 500; ++i) {
    queue.push(make_job(JobKind::kDispatch, static_cast<TopicId>(i % 17),
                        i, static_cast<TimePoint>(rng.next_below(1000000)),
                        i));
  }
  TimePoint last = -1;
  while (auto job = queue.pop()) {
    EXPECT_GE(job->deadline, last);
    last = job->deadline;
  }
}

TEST_P(JobQueueProperty, FifoDrainIsSortedByOrder) {
  Rng rng(GetParam());
  JobQueue queue(SchedulingPolicy::kFifo);
  for (std::uint64_t i = 0; i < 500; ++i) {
    queue.push(make_job(JobKind::kDispatch, 0, i,
                        static_cast<TimePoint>(rng.next_below(1000000)), i));
  }
  std::uint64_t expected = 0;
  while (auto job = queue.pop()) {
    EXPECT_EQ(job->order, expected++);
  }
}

TEST_P(JobQueueProperty, RandomCancellationsDropExactlyMatchingReplicas) {
  Rng rng(GetParam());
  JobQueue queue(SchedulingPolicy::kEdf);
  std::vector<SeqNo> cancelled;
  for (SeqNo seq = 1; seq <= 200; ++seq) {
    queue.push(make_job(JobKind::kReplicate, 1, seq,
                        static_cast<TimePoint>(rng.next_below(1000)), seq));
    if (rng.next_double() < 0.3) cancelled.push_back(seq);
  }
  for (const SeqNo seq : cancelled) queue.cancel_replication(1, seq);
  std::vector<SeqNo> popped;
  while (auto job = queue.pop()) popped.push_back(job->seq);
  EXPECT_EQ(popped.size(), 200 - cancelled.size());
  for (const SeqNo seq : cancelled) {
    EXPECT_EQ(std::count(popped.begin(), popped.end(), seq), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JobQueueProperty,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

// Regression: cancelled-replication drops (and clear()) used to bypass the
// depth hook, so frame_job_queue_depth went stale until the next push/pop.
TEST(JobQueue, DepthGaugeTracksCancelledDropsAndClear) {
  obs::EnabledScope scope(true);
  obs::reset_all();
  auto& gauge = obs::registry().gauge("frame_job_queue_depth");

  JobQueue queue(SchedulingPolicy::kEdf);
  for (SeqNo seq = 1; seq <= 3; ++seq) {
    queue.push(make_job(JobKind::kReplicate, 1, seq, milliseconds(seq), seq));
  }
  queue.push(make_job(JobKind::kDispatch, 1, 4, milliseconds(4), 4));
  EXPECT_EQ(gauge.value(), 4);

  // Two cancelled replicate jobs are dropped lazily by the next pop; the
  // gauge must follow the heap through every drop.
  queue.cancel_replication(1, 1);
  queue.cancel_replication(1, 2);
  const auto job = queue.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->seq, 3u);
  EXPECT_EQ(queue.raw_size(), 1u);
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(queue.raw_size()));

  queue.clear();
  EXPECT_EQ(gauge.value(), 0);
}

// Regression: cancel_replication used to insert its key unconditionally,
// so cancelling after the replicate job had already been popped (the
// worker-pool race: one lane pops the replicate job while another lane's
// dispatch still sees it as pending) grew cancelled_ forever.  Under a
// dispatch-then-cancel churn loop the set must stay bounded by the
// replicate jobs actually still queued.
TEST(JobQueue, CancelledSetStaysBoundedUnderDispatchThenCancelChurn) {
  JobQueue queue(SchedulingPolicy::kEdf);
  for (SeqNo seq = 1; seq <= 10000; ++seq) {
    queue.push(make_job(JobKind::kReplicate, 1, seq, milliseconds(1), 2 * seq));
    queue.push(make_job(JobKind::kDispatch, 1, seq, milliseconds(2),
                        2 * seq + 1));
    // Drain both jobs first (the replicate job was "executed"), THEN the
    // dispatch path cancels — exactly the ordering that leaked.
    ASSERT_TRUE(queue.pop().has_value());
    ASSERT_TRUE(queue.pop().has_value());
    queue.cancel_replication(1, seq);
    EXPECT_EQ(queue.cancelled_size(), 0u);
    EXPECT_EQ(queue.pending_replicate_keys(), 0u);
  }
}

// Cancelling a key that never had a replicate job (selective replication
// suppressed it at generation time) must not grow the set either.
TEST(JobQueue, CancelWithoutReplicateJobIsANoOp) {
  JobQueue queue(SchedulingPolicy::kEdf);
  for (SeqNo seq = 1; seq <= 100; ++seq) {
    queue.cancel_replication(7, seq);
  }
  EXPECT_EQ(queue.cancelled_size(), 0u);

  // ...and a real pending replicate job still cancels exactly as before.
  queue.push(make_job(JobKind::kReplicate, 7, 1, milliseconds(1), 0));
  queue.cancel_replication(7, 1);
  EXPECT_EQ(queue.cancelled_size(), 1u);
  EXPECT_TRUE(queue.empty());  // lazy drop via peek
  EXPECT_EQ(queue.cancelled_size(), 0u);
  EXPECT_EQ(queue.cancelled_drops(), 1u);
}

// clear() purges the cancelled set and the pending-replicate index along
// with the heap, so a restarted queue starts from zero state.
TEST(JobQueue, ClearPurgesCancelledAndPendingState) {
  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kReplicate, 3, 1, milliseconds(1), 0));
  queue.push(make_job(JobKind::kReplicate, 3, 2, milliseconds(2), 1));
  queue.cancel_replication(3, 1);
  EXPECT_EQ(queue.cancelled_size(), 1u);
  EXPECT_EQ(queue.pending_replicate_keys(), 2u);
  queue.clear();
  EXPECT_EQ(queue.cancelled_size(), 0u);
  EXPECT_EQ(queue.pending_replicate_keys(), 0u);
  // A post-clear cancel for a pre-clear key is a no-op, not a leak.
  queue.cancel_replication(3, 2);
  EXPECT_EQ(queue.cancelled_size(), 0u);
}

// peek() also performs lazy drops; a fully-cancelled queue must report
// depth 0 after a peek even though no pop ever ran.
TEST(JobQueue, DepthGaugeTracksDropsDuringPeek) {
  obs::EnabledScope scope(true);
  obs::reset_all();
  auto& gauge = obs::registry().gauge("frame_job_queue_depth");

  JobQueue queue(SchedulingPolicy::kEdf);
  queue.push(make_job(JobKind::kReplicate, 2, 9, milliseconds(1), 1));
  EXPECT_EQ(gauge.value(), 1);
  queue.cancel_replication(2, 9);
  EXPECT_FALSE(queue.peek().has_value());
  EXPECT_EQ(queue.raw_size(), 0u);
  EXPECT_EQ(gauge.value(), 0);
}

}  // namespace
}  // namespace frame
