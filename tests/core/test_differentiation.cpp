// Section III-D differentiation helpers over whole topic sets.
#include <gtest/gtest.h>

#include "core/differentiation.hpp"

namespace frame {
namespace {

TimingParams params_3d() {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  return params;
}

std::vector<TopicSpec> table2_set() {
  std::vector<TopicSpec> specs;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    specs.push_back(table2_spec(cat, static_cast<TopicId>(cat)));
  }
  return specs;
}

TEST(Differentiation, OrderingIsSortedAndComplete) {
  const auto entries = deadline_ordering(table2_set(), params_3d());
  // 6 dispatch entries + 5 replication entries (category 4 is best-effort).
  ASSERT_EQ(entries.size(), 11u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].pseudo_deadline, entries[i].pseudo_deadline);
  }
}

TEST(Differentiation, OrderingMatchesPaperSequence) {
  const auto entries = deadline_ordering(table2_set(), params_3d());
  // Expected (Section III-D.2): Dd0=Dd1 < Dr0=Dr2 < Dd2=Dd3=Dd4 < Dr1 <
  // Dr3 < Dr5 < Dd5.  Compare the (topic, kind) sequence, allowing the
  // order within equal-deadline groups to be the stable input order.
  const auto kind_at = [&](std::size_t i) { return entries[i].kind; };
  const auto topic_at = [&](std::size_t i) { return entries[i].topic; };
  EXPECT_EQ(topic_at(0), 0u);
  EXPECT_EQ(kind_at(0), JobKind::kDispatch);
  EXPECT_EQ(topic_at(1), 1u);
  EXPECT_EQ(kind_at(1), JobKind::kDispatch);
  EXPECT_EQ(topic_at(2), 0u);
  EXPECT_EQ(kind_at(2), JobKind::kReplicate);
  EXPECT_EQ(topic_at(3), 2u);
  EXPECT_EQ(kind_at(3), JobKind::kReplicate);
  // Positions 4-6: dispatch of categories 2, 3, 4.
  for (std::size_t i = 4; i <= 6; ++i) {
    EXPECT_EQ(kind_at(i), JobKind::kDispatch);
  }
  EXPECT_EQ(topic_at(7), 1u);
  EXPECT_EQ(kind_at(7), JobKind::kReplicate);
  EXPECT_EQ(topic_at(8), 3u);
  EXPECT_EQ(kind_at(8), JobKind::kReplicate);
  EXPECT_EQ(topic_at(9), 5u);
  EXPECT_EQ(kind_at(9), JobKind::kReplicate);
  EXPECT_EQ(topic_at(10), 5u);
  EXPECT_EQ(kind_at(10), JobKind::kDispatch);
}

TEST(Differentiation, ReplicationSetIsCategories2And5) {
  const auto set = replication_set(table2_set(), params_3d());
  EXPECT_EQ(set, (std::vector<TopicId>{2, 5}));
}

TEST(Differentiation, ExtraRetentionClearsReplicationSet) {
  const auto bumped = with_extra_retention(table2_set(), params_3d(), 1);
  EXPECT_TRUE(replication_set(bumped, params_3d()).empty());
  // Only the replicating categories changed.
  EXPECT_EQ(bumped[0].retention, table2_spec(0, 0).retention);
  EXPECT_EQ(bumped[2].retention, table2_spec(2, 0).retention + 1);
  EXPECT_EQ(bumped[5].retention, table2_spec(5, 0).retention + 1);
}

TEST(Differentiation, AdmitAllFlagsOnlyBrokenTopics) {
  auto specs = table2_set();
  specs.push_back(TopicSpec{6, milliseconds(100), milliseconds(5), 0, 1,
                            Destination::kCloud});  // Dd < 0
  const auto failures = admit_all(specs, params_3d());
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].topic, 6u);
}

}  // namespace
}  // namespace frame
