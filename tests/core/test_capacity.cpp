// Capacity planning and admission control tests, including the prediction
// of the paper's overload crossovers from first principles.
#include <gtest/gtest.h>

#include "core/capacity.hpp"
#include "core/differentiation.hpp"

namespace frame {
namespace {

TimingParams params_3d() {
  TimingParams params;
  params.delta_pb = 0;
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);
  params.failover_x = milliseconds(50);
  return params;
}

std::vector<TopicSpec> table2_workload(std::size_t total) {
  // Mirrors sim::make_table2_workload's counts without the proxy grouping.
  const std::size_t bulk = (total - 25) / 3;
  const std::size_t counts[6] = {10, 10, bulk, bulk, bulk, 5};
  std::vector<TopicSpec> specs;
  TopicId id = 0;
  for (int cat = 0; cat < 6; ++cat) {
    for (std::size_t i = 0; i < counts[cat]; ++i) {
      specs.push_back(table2_spec(cat, id++));
    }
  }
  return specs;
}

TEST(Capacity, TopicUtilizationReflectsReplicationDecision) {
  const TimingParams params = params_3d();
  const DeliveryCostModel costs;
  // Category 0 is not replicated under Proposition 1: dispatch only.
  const double cat0 =
      topic_utilization(table2_spec(0, 0), params, costs, true);
  EXPECT_NEAR(cat0, 20.0 * to_seconds(costs.dispatch), 1e-12);
  // Category 2 is replicated: dispatch + replicate + coordination.
  const double cat2 =
      topic_utilization(table2_spec(2, 0), params, costs, true);
  EXPECT_NEAR(cat2,
              10.0 * to_seconds(costs.dispatch + costs.replicate +
                                costs.coordination),
              1e-12);
  // Without selective replication, category 0 pays the full cost too.
  const double cat0_fcfs =
      topic_utilization(table2_spec(0, 0), params, costs, false);
  EXPECT_GT(cat0_fcfs, cat0 * 10);
  // Best-effort never replicates under either policy.
  EXPECT_DOUBLE_EQ(topic_utilization(table2_spec(4, 0), params, costs, true),
                   topic_utilization(table2_spec(4, 0), params, costs,
                                     false));
}

// The analysis predicts the evaluation's crossovers: FCFS saturates at
// 7525 topics while FRAME stays schedulable through 10525 and sits at the
// edge at 13525 (Tables 4-5).
TEST(Capacity, PredictsPaperCrossovers) {
  const TimingParams params = params_3d();
  const DeliveryCostModel costs;

  const auto frame_util = [&](std::size_t total) {
    return analyze_capacity(table2_workload(total), params, costs, true)
        .utilization;
  };
  const auto fcfs_util = [&](std::size_t total) {
    return analyze_capacity(table2_workload(total), params, costs, false)
        .utilization;
  };

  EXPECT_LT(fcfs_util(4525), 1.0);
  EXPECT_GT(fcfs_util(7525), 1.0);   // FCFS collapses from 7525 on
  EXPECT_LT(frame_util(10525), 1.0); // FRAME healthy through 10525
  EXPECT_GT(frame_util(13525), 0.95);
  EXPECT_LT(frame_util(13525), 1.10);  // marginal at 13525
}

TEST(Capacity, FramePlusHasLargeHeadroom) {
  const TimingParams params = params_3d();
  const DeliveryCostModel costs;
  const auto bumped = with_extra_retention(table2_workload(13525), params, 1);
  const CapacityReport report = analyze_capacity(bumped, params, costs, true);
  EXPECT_EQ(report.replicated_topics, 0u);
  EXPECT_LT(report.utilization, 0.25);
  EXPECT_TRUE(report.schedulable);
}

TEST(Capacity, ReportFieldsConsistent) {
  const TimingParams params = params_3d();
  const DeliveryCostModel costs;
  const auto specs = table2_workload(1525);
  const CapacityReport report = analyze_capacity(specs, params, costs, true);
  EXPECT_NEAR(report.message_rate, 15410.0, 1e-6);
  // Categories 2 and 5 replicate: 500 + 5 topics.
  EXPECT_EQ(report.replicated_topics, 505u);
  EXPECT_NEAR(report.replicated_share, (500 * 10.0 + 5 * 2.0) / 15410.0,
              1e-9);
}

TEST(Admission, AdmitsUntilCapacityExhausted) {
  AdmissionController controller(params_3d(), DeliveryCostModel{}, true);
  TopicId id = 0;
  // Each category-2-style topic costs 10 msg/s * 40.25 us / 2 cores.
  std::size_t admitted = 0;
  while (admitted < 20000) {
    const Status status = controller.admit(table2_spec(2, id++));
    if (!status.is_ok()) {
      EXPECT_EQ(status.code(), StatusCode::kRejected);
      break;
    }
    ++admitted;
  }
  EXPECT_GT(admitted, 4000u);
  EXPECT_LT(admitted, 20000u);
  EXPECT_LE(controller.utilization(), 1.0);
  EXPECT_EQ(controller.admitted_count(), admitted);
}

TEST(Admission, RejectsTimingInfeasibleTopics) {
  AdmissionController controller(params_3d(), DeliveryCostModel{}, true);
  TopicSpec bad{0, milliseconds(50), milliseconds(50), 0, 0,
                Destination::kEdge};  // Li=0, Ni=0: Dr < 0
  EXPECT_FALSE(controller.admit(bad).is_ok());
  EXPECT_EQ(controller.admitted_count(), 0u);
}

TEST(Admission, RejectsDuplicateIds) {
  AdmissionController controller(params_3d(), DeliveryCostModel{}, true);
  EXPECT_TRUE(controller.admit(table2_spec(0, 7)).is_ok());
  EXPECT_EQ(controller.admit(table2_spec(1, 7)).code(),
            StatusCode::kInvalid);
}

TEST(Admission, ReleaseRestoresBudget) {
  AdmissionController controller(params_3d(), DeliveryCostModel{}, true);
  ASSERT_TRUE(controller.admit(table2_spec(2, 1)).is_ok());
  const double with_topic = controller.utilization();
  ASSERT_TRUE(controller.release(1).is_ok());
  EXPECT_NEAR(controller.utilization(), 0.0, 1e-12);
  EXPECT_LT(controller.utilization(), with_topic);
  EXPECT_EQ(controller.release(1).code(), StatusCode::kNotFound);
}

TEST(Admission, HeadroomCountsWholeUnits) {
  AdmissionController controller(params_3d(), DeliveryCostModel{}, true);
  // A "unit" of one replicated + two plain topics.
  const std::vector<TopicSpec> unit{table2_spec(2, 100), table2_spec(3, 101),
                                    table2_spec(4, 102)};
  const std::size_t before = controller.headroom(unit);
  EXPECT_GT(before, 0u);
  ASSERT_TRUE(controller.admit(table2_spec(2, 0)).is_ok());
  EXPECT_LE(controller.headroom(unit), before);
  // A unit containing an inadmissible topic has zero headroom.
  const std::vector<TopicSpec> bad_unit{
      TopicSpec{200, milliseconds(50), milliseconds(50), 0, 0,
                Destination::kEdge}};
  EXPECT_EQ(controller.headroom(bad_unit), 0u);
}

}  // namespace
}  // namespace frame
