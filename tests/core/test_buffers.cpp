// Message Buffer / Backup Buffer / Retention Buffer tests.
#include <gtest/gtest.h>

#include "core/backup_store.hpp"
#include "core/message_store.hpp"
#include "core/retention_buffer.hpp"

namespace frame {
namespace {

Message msg_of(TopicId topic, SeqNo seq) {
  return make_test_message(topic, seq, static_cast<TimePoint>(seq) * 1000);
}

// ------------------------------------------------------------ MessageStore

TEST(MessageStore, InsertAndFind) {
  MessageStore store(8);
  store.configure(3);
  store.insert(msg_of(1, 1));
  store.insert(msg_of(1, 2));
  ASSERT_NE(store.find(1, 1), nullptr);
  ASSERT_NE(store.find(1, 2), nullptr);
  EXPECT_EQ(store.find(1, 3), nullptr);
  EXPECT_EQ(store.find(2, 1), nullptr);
  EXPECT_EQ(store.find(9, 1), nullptr);  // unknown topic
  EXPECT_EQ(store.size(), 2u);
}

TEST(MessageStore, FlagsPersistAcrossLookups) {
  MessageStore store(8);
  store.configure(1);
  store.insert(msg_of(0, 1));
  store.find(0, 1)->dispatched = true;
  EXPECT_TRUE(store.find(0, 1)->dispatched);
  EXPECT_FALSE(store.find(0, 1)->replicated);
}

TEST(MessageStore, EvictionReportsOldestEntry) {
  MessageStore store(2);
  store.configure(1);
  store.insert(msg_of(0, 1));
  store.insert(msg_of(0, 2));
  const auto evicted = store.insert(msg_of(0, 3));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->msg.seq, 1u);
  EXPECT_EQ(store.find(0, 1), nullptr);
  EXPECT_NE(store.find(0, 3), nullptr);
}

TEST(MessageStore, FindHandlesGappedSequences) {
  // Retention resends after failover can skip sequence numbers.
  MessageStore store(8);
  store.configure(1);
  store.insert(msg_of(0, 10));
  store.insert(msg_of(0, 14));
  store.insert(msg_of(0, 15));
  EXPECT_NE(store.find(0, 10), nullptr);
  EXPECT_NE(store.find(0, 14), nullptr);
  EXPECT_EQ(store.find(0, 12), nullptr);
}

TEST(MessageStore, ClearEmptiesAllTopics) {
  MessageStore store(4);
  store.configure(2);
  store.insert(msg_of(0, 1));
  store.insert(msg_of(1, 1));
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find(0, 1), nullptr);
}

// ------------------------------------------------------------- BackupStore

TEST(BackupStore, InsertPruneAndLiveSet) {
  BackupStore store(10);
  store.configure(2);
  store.insert(msg_of(0, 1), 100);
  store.insert(msg_of(0, 2), 200);
  store.insert(msg_of(1, 1), 300);
  EXPECT_EQ(store.live_count(), 3u);

  EXPECT_TRUE(store.prune(0, 1));
  EXPECT_EQ(store.live_count(), 2u);
  EXPECT_EQ(store.live_count(0), 1u);

  std::vector<SeqNo> live;
  store.for_each_live(
      [&](const BackupEntry& entry) { live.push_back(entry.msg.seq); });
  EXPECT_EQ(live.size(), 2u);
}

TEST(BackupStore, PruneUnknownEntryIsNoop) {
  BackupStore store(4);
  store.configure(1);
  EXPECT_FALSE(store.prune(0, 7));
  store.insert(msg_of(0, 1), 0);
  EXPECT_FALSE(store.prune(0, 2));
  EXPECT_FALSE(store.prune(5, 1));  // unknown topic
  EXPECT_EQ(store.live_count(), 1u);
}

TEST(BackupStore, RingEvictsOldestReplica) {
  // The paper sizes the Backup Buffer at ten entries per topic.
  BackupStore store(BackupStore::kDefaultPerTopicCapacity);
  store.configure(1);
  for (SeqNo seq = 1; seq <= 15; ++seq) store.insert(msg_of(0, seq), 0);
  EXPECT_EQ(store.size(), 10u);
  std::vector<SeqNo> live;
  store.for_each_live(
      [&](const BackupEntry& entry) { live.push_back(entry.msg.seq); });
  ASSERT_EQ(live.size(), 10u);
  EXPECT_EQ(live.front(), 6u);
  EXPECT_EQ(live.back(), 15u);
}

TEST(BackupStore, DiscardedEntriesSkippedAfterEviction) {
  BackupStore store(3);
  store.configure(1);
  store.insert(msg_of(0, 1), 0);
  store.insert(msg_of(0, 2), 0);
  store.prune(0, 2);
  store.insert(msg_of(0, 3), 0);
  store.insert(msg_of(0, 4), 0);  // evicts seq 1
  std::vector<SeqNo> live;
  store.for_each_live(
      [&](const BackupEntry& entry) { live.push_back(entry.msg.seq); });
  EXPECT_EQ(live, (std::vector<SeqNo>{3, 4}));
}

TEST(BackupStore, ClearDropsEverything) {
  BackupStore store(4);
  store.configure(1);
  store.insert(msg_of(0, 1), 0);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.live_count(), 0u);
}

// --------------------------------------------------------- RetentionBuffer

TEST(RetentionBuffer, KeepsOnlyLatestN) {
  RetentionBuffer retention;
  retention.add_topic(0, 2);
  for (SeqNo seq = 1; seq <= 5; ++seq) retention.retain(msg_of(0, seq));
  const auto kept = retention.retained(0);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].seq, 4u);
  EXPECT_EQ(kept[1].seq, 5u);
}

TEST(RetentionBuffer, ZeroRetentionKeepsNothing) {
  RetentionBuffer retention;
  retention.add_topic(0, 0);
  retention.retain(msg_of(0, 1));
  EXPECT_TRUE(retention.retained(0).empty());
}

TEST(RetentionBuffer, UnregisteredTopicIgnored) {
  RetentionBuffer retention;
  retention.retain(msg_of(3, 1));
  EXPECT_TRUE(retention.retained(3).empty());
}

TEST(RetentionBuffer, AllRetainedSpansTopics) {
  RetentionBuffer retention;
  retention.add_topic(0, 1);
  retention.add_topic(1, 2);
  retention.retain(msg_of(0, 1));
  retention.retain(msg_of(1, 1));
  retention.retain(msg_of(1, 2));
  EXPECT_EQ(retention.all_retained().size(), 3u);
}

}  // namespace
}  // namespace frame
