// Topic -> shard mapping and the ordering property that makes sharding
// safe: for any topic, the EDF pop order of its shard's queue equals the
// single global queue's pop order restricted to that topic — the only
// ordering Lemmas 1 and 2 depend on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "core/job_queue.hpp"
#include "core/topic_sharding.hpp"

namespace frame {
namespace {

TEST(TopicSharding, SingleShardMapsEverythingToZero) {
  for (TopicId t = 0; t < 100; ++t) {
    EXPECT_EQ(shard_of_topic(t, 1), 0u);
    EXPECT_EQ(shard_of_topic(t, 0), 0u);
  }
}

TEST(TopicSharding, MappingIsStableAndInRange) {
  for (std::size_t shards : {2u, 3u, 4u, 8u, 32u}) {
    for (TopicId t = 0; t < 200; ++t) {
      const std::size_t s = shard_of_topic(t, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of_topic(t, shards)) << "mapping must be pure";
    }
  }
}

TEST(TopicSharding, DenseTopicIdsSpreadAcrossShards) {
  // splitmix64 avalanche: 64 dense ids over 4 shards must not pile onto
  // one shard (plain modulo would stripe them; a broken hash could not).
  constexpr std::size_t kShards = 4;
  std::vector<int> load(kShards, 0);
  for (TopicId t = 0; t < 64; ++t) {
    ++load[shard_of_topic(t, kShards)];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GE(load[s], 4) << "shard " << s << " nearly empty";
    EXPECT_LE(load[s], 40) << "shard " << s << " overloaded";
  }
}

TEST(TopicSharding, ResolveClampsExplicitRequests) {
  EXPECT_EQ(resolve_shard_count(1), 1u);
  EXPECT_EQ(resolve_shard_count(4), 4u);
  EXPECT_EQ(resolve_shard_count(kMaxShards), kMaxShards);
  EXPECT_EQ(resolve_shard_count(kMaxShards + 50), kMaxShards);
}

TEST(TopicSharding, ResolveAutoHonoursEnvironmentOverride) {
  ::setenv("FRAME_SHARDS", "3", 1);
  EXPECT_EQ(resolve_shard_count(0), 3u);
  ::setenv("FRAME_SHARDS", "100", 1);
  EXPECT_EQ(resolve_shard_count(0), kMaxShards);
  ::setenv("FRAME_SHARDS", "garbage", 1);
  const std::size_t fallback = resolve_shard_count(0);
  EXPECT_GE(fallback, 1u);
  EXPECT_LE(fallback, 8u);  // hardware_concurrency capped at 8
  ::unsetenv("FRAME_SHARDS");
  // An explicit request always wins over the environment.
  ::setenv("FRAME_SHARDS", "7", 1);
  EXPECT_EQ(resolve_shard_count(2), 2u);
  ::unsetenv("FRAME_SHARDS");
}

// ---------------------------------------------------------------------------
// Property: per-topic EDF order is shard-invariant.

std::vector<Job> make_workload() {
  // 8 topics x 40 seqs with pseudo-random deadlines (deterministic via
  // shard_hash) and interleaved arrival order, both job kinds.
  std::vector<Job> jobs;
  std::uint64_t order = 0;
  for (SeqNo seq = 1; seq <= 40; ++seq) {
    for (TopicId topic = 0; topic < 8; ++topic) {
      Job job;
      job.topic = topic;
      job.seq = seq;
      job.order = order++;
      job.release = static_cast<TimePoint>(seq * 100);
      job.deadline = static_cast<TimePoint>(
          shard_hash(topic * 1000 + seq) % 5000);  // heavy deadline ties too
      job.kind = (shard_hash(seq * 8 + topic) % 3 == 0) ? JobKind::kReplicate
                                                        : JobKind::kDispatch;
      jobs.push_back(job);
    }
  }
  return jobs;
}

using PoppedByTopic = std::map<TopicId, std::vector<std::pair<SeqNo, JobKind>>>;

PoppedByTopic drain(JobQueue& queue) {
  PoppedByTopic out;
  while (auto job = queue.pop()) {
    out[job->topic].emplace_back(job->seq, job->kind);
  }
  return out;
}

TEST(TopicSharding, PerTopicEdfOrderMatchesSingleQueueUnderAnyShardCount) {
  const std::vector<Job> workload = make_workload();

  JobQueue global(SchedulingPolicy::kEdf);
  for (const Job& job : workload) global.push(job);
  const PoppedByTopic reference = drain(global);

  for (std::size_t shards : {2u, 3u, 4u, 8u}) {
    std::vector<JobQueue> queues(shards);
    for (const Job& job : workload) {
      queues[shard_of_topic(job.topic, shards)].push(job);
    }
    PoppedByTopic sharded;
    for (auto& queue : queues) {
      for (auto& [topic, popped] : drain(queue)) {
        // Each topic lives in exactly one shard, so no interleaving to
        // worry about when collecting.
        ASSERT_TRUE(sharded[topic].empty());
        sharded[topic] = std::move(popped);
      }
    }
    EXPECT_EQ(sharded, reference)
        << "per-topic pop order diverged at " << shards << " shards";
  }
}

TEST(TopicSharding, CancellationIsShardLocalAndOrderPreserving) {
  // Cancelling replications for one topic in its shard drops exactly the
  // jobs the single-queue broker would drop, and leaves other topics'
  // order untouched.
  const std::vector<Job> workload = make_workload();

  JobQueue global(SchedulingPolicy::kEdf);
  for (const Job& job : workload) global.push(job);
  for (SeqNo seq = 1; seq <= 40; ++seq) global.cancel_replication(3, seq);
  const PoppedByTopic reference = drain(global);

  constexpr std::size_t kShards = 4;
  std::vector<JobQueue> queues(kShards);
  for (const Job& job : workload) {
    queues[shard_of_topic(job.topic, kShards)].push(job);
  }
  for (SeqNo seq = 1; seq <= 40; ++seq) {
    queues[shard_of_topic(3, kShards)].cancel_replication(3, seq);
  }
  PoppedByTopic sharded;
  for (auto& queue : queues) {
    for (auto& [topic, popped] : drain(queue)) {
      sharded[topic] = std::move(popped);
    }
    EXPECT_EQ(queue.cancelled_size(), 0u) << "cancelled set must drain";
  }
  EXPECT_EQ(sharded, reference);
  for (const auto& [seq, kind] : sharded[3]) {
    EXPECT_EQ(kind, JobKind::kDispatch) << "cancelled replicate survived";
  }
}

}  // namespace
}  // namespace frame
