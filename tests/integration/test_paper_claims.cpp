// Integration tests that pin the paper's qualitative claims on the
// simulated testbed at the smallest paper workload (1525 topics) plus a
// scaled overload check of the FCFS collapse.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace frame::sim {
namespace {

ExperimentConfig paper_config(ConfigName name, std::size_t topics,
                              bool crash) {
  ExperimentConfig config;
  config.config = name;
  config.total_topics = topics;
  config.warmup = seconds(1);
  config.measure = seconds(4);
  config.drain = seconds(2);
  config.inject_crash = crash;
  config.seed = 2026;
  config.watch_categories = {0, 2, 5};
  return config;
}

// "All four configurations had 100% success rate for 1525 topics"
// (Section VI-B, Table 4 note), with fault injection.
TEST(PaperClaims, AllConfigsPerfectAt1525WithCrash) {
  for (const ConfigName name :
       {ConfigName::kFrame, ConfigName::kFramePlus, ConfigName::kFcfs,
        ConfigName::kFcfsMinus}) {
    const auto result = run_experiment(paper_config(name, 1525, true));
    for (const auto& cat : result.categories) {
      EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0)
          << to_string(name) << " cat " << cat.category;
    }
  }
}

// Table 4 at 7525: FRAME/FRAME+/FCFS- meet every loss requirement; FCFS
// fails the zero-loss and bounded-loss rows (only best-effort survives).
TEST(PaperClaims, Table4ShapeAt7525) {
  const auto frame = run_experiment(paper_config(ConfigName::kFrame, 7525,
                                                 true));
  for (const auto& cat : frame.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0)
        << "FRAME cat " << cat.category;
  }

  const auto fcfs = run_experiment(paper_config(ConfigName::kFcfs, 7525,
                                                true));
  // Overloaded: the loss-constrained categories blow their budgets.
  EXPECT_LT(fcfs.category(0).loss_success_pct, 50.0);
  EXPECT_LT(fcfs.category(2).loss_success_pct, 50.0);
  // Best-effort (Li = inf) is always "met".
  EXPECT_DOUBLE_EQ(fcfs.category(4).loss_success_pct, 100.0);
}

// Section VI-B: FRAME saves a large share of Message Delivery CPU at 7525
// versus FCFS, thanks to Proposition-1 replication removal; FRAME+ saves
// even more.
TEST(PaperClaims, Fig7CpuOrderingAt7525) {
  const auto frame =
      run_experiment(paper_config(ConfigName::kFrame, 7525, false));
  const auto frame_plus =
      run_experiment(paper_config(ConfigName::kFramePlus, 7525, false));
  const auto fcfs =
      run_experiment(paper_config(ConfigName::kFcfs, 7525, false));
  EXPECT_LT(frame.cpu.primary_delivery, 0.70 * fcfs.cpu.primary_delivery);
  EXPECT_LT(frame_plus.cpu.primary_delivery, frame.cpu.primary_delivery);
  // Backup proxy load also drops when replication is removed (Fig. 7c).
  EXPECT_LT(frame.cpu.backup_proxy, fcfs.cpu.backup_proxy);
  EXPECT_LT(frame_plus.cpu.backup_proxy, 0.01);
}

// Section VI-C / Fig. 9: with coordination the Backup Buffer is (nearly)
// empty at promotion; without it the buffer is full and recovery floods the
// system with outdated copies, inflating the post-crash peak latency.
TEST(PaperClaims, Fig9RecoveryPenaltyShape) {
  const auto frame = run_experiment(paper_config(ConfigName::kFrame, 1525,
                                                 true));
  const auto fcfs_minus =
      run_experiment(paper_config(ConfigName::kFcfsMinus, 1525, true));

  EXPECT_LT(frame.backup_live_at_promotion, 50u);
  EXPECT_GT(fcfs_minus.backup_live_at_promotion, 5000u);

  const auto peak_after_crash = [](const ExperimentResult& result,
                                   int category) {
    Duration peak = 0;
    for (const auto& trace : result.traces) {
      if (trace.category != category) continue;
      for (const auto& sample : trace.samples) {
        if (sample.created_at >= result.crash_time) {
          peak = std::max(peak, sample.latency);
        }
      }
    }
    return peak;
  };
  // The uncoordinated configuration pays a visibly larger recovery peak on
  // the category-2 topic (its copies sit behind the full Backup Buffer).
  EXPECT_GT(peak_after_crash(fcfs_minus, 2), peak_after_crash(frame, 2));
}

// Lesson 4 (Section VI-E): a small retention increase removes replication
// and its CPU cost entirely while keeping zero loss.
TEST(PaperClaims, RetentionBumpTradesMemoryForCpu) {
  const auto frame =
      run_experiment(paper_config(ConfigName::kFrame, 4525, true));
  const auto frame_plus =
      run_experiment(paper_config(ConfigName::kFramePlus, 4525, true));
  EXPECT_EQ(frame_plus.primary_stats.replications_executed, 0u);
  EXPECT_GT(frame.primary_stats.replications_executed, 0u);
  EXPECT_LT(frame_plus.cpu.primary_delivery, frame.cpu.primary_delivery);
  for (const auto& cat : frame_plus.categories) {
    EXPECT_DOUBLE_EQ(cat.loss_success_pct, 100.0);
  }
}

// Latency success during fault-free operation (Table 5 shape at 4525: all
// configurations fine when nothing is overloaded).
TEST(PaperClaims, Table5AllHealthyAt4525) {
  for (const ConfigName name :
       {ConfigName::kFrame, ConfigName::kFramePlus, ConfigName::kFcfs,
        ConfigName::kFcfsMinus}) {
    const auto result = run_experiment(paper_config(name, 4525, false));
    for (const auto& cat : result.categories) {
      EXPECT_GT(cat.latency_success_pct, 99.0)
          << to_string(name) << " cat " << cat.category;
    }
  }
}

}  // namespace
}  // namespace frame::sim
