#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace frame::obs {
namespace {

SpanEvent make_event(SeqNo seq) {
  SpanEvent event;
  event.kind = SpanKind::kDelivered;
  event.topic = 1;
  event.seq = seq;
  event.at = static_cast<TimePoint>(seq * 100);
  return event;
}

TEST(Tracer, RetainsEverythingBelowCapacity) {
  Tracer tracer(/*capacity=*/8);
  for (SeqNo seq = 0; seq < 5; ++seq) tracer.record(make_event(seq));
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (SeqNo seq = 0; seq < 5; ++seq) EXPECT_EQ(events[seq].seq, seq);
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.contention_drops(), 0u);
}

TEST(Tracer, WraparoundKeepsNewestOldestFirst) {
  Tracer tracer(/*capacity=*/8);
  for (SeqNo seq = 0; seq < 20; ++seq) tracer.record(make_event(seq));
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring retains the last 8 events (12..19), oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12u + i);
  }
  EXPECT_EQ(tracer.recorded(), 20u);
}

TEST(Tracer, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(/*capacity=*/5);
  EXPECT_GE(tracer.capacity(), 5u);
  EXPECT_EQ(tracer.capacity() & (tracer.capacity() - 1), 0u);
}

TEST(Tracer, ClearEmptiesTheRing) {
  Tracer tracer(/*capacity=*/8);
  for (SeqNo seq = 0; seq < 6; ++seq) tracer.record(make_event(seq));
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  tracer.record(make_event(42));
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 42u);
}

TEST(Tracer, ConcurrentWritersNeverBlockOrTear) {
  Tracer tracer(/*capacity=*/64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record(make_event(static_cast<SeqNo>(t) * kPerThread + i));
      }
    });
  }
  for (auto& w : writers) w.join();
  // Every submission is accounted for: either retained, overwritten, or
  // counted as a contention drop.
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto events = tracer.snapshot();
  EXPECT_LE(events.size(), tracer.capacity());
  for (const auto& event : events) {
    // No torn slot: every retained event is one that was actually written.
    EXPECT_EQ(event.kind, SpanKind::kDelivered);
    EXPECT_EQ(event.topic, 1u);
    EXPECT_EQ(event.at, static_cast<TimePoint>(event.seq * 100));
  }
}

}  // namespace
}  // namespace frame::obs
