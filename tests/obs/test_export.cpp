// Exporter golden checks: drive the global instruments to known values and
// assert the exact lines/fragments each format must contain.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace frame::obs {
namespace {

/// Seeds the global registry/accountant/tracer with a small known state.
ObsSnapshot known_snapshot() {
  reset_all();
  registry().counter("test_export_events_total").add(42);
  registry().gauge("test_export_depth").set(-3);
  LatencyRecorder& lat = registry().latency("test_export_latency_ns");
  lat.record(1e6);  // 1 ms

  TopicSpec spec{0, milliseconds(100), milliseconds(150), 2, 1,
                 Destination::kEdge};
  accountant().configure({spec});
  accountant().on_dispatch_executed(0, milliseconds(10));
  accountant().on_dispatch_executed(0, milliseconds(-1));
  accountant().on_replication_executed(0, milliseconds(5));
  accountant().on_delivery(0, 1, milliseconds(120));
  accountant().on_delivery(0, 4, milliseconds(160));  // late; streak of 2

  SpanEvent event;
  event.kind = SpanKind::kDelivered;
  event.topic = 0;
  event.seq = 1;
  tracer().record(event);
  return collect_snapshot(/*max_spans=*/16);
}

TEST(Export, JsonContainsInstrumentsAndTopicAccount) {
  const std::string json = to_json(known_snapshot());
  EXPECT_NE(json.find("\"test_export_events_total\": 42"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test_export_depth\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"test_export_latency_ns\": {\"count\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"topic\":0,\"li\":2,\"di_ms\":150.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"dispatches\":2,\"dispatch_misses\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"deliveries\":2,\"e2e_misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"losses_total\":2,\"max_loss_streak\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"loss_budget_exceeded\":false"), std::string::npos);
  EXPECT_NE(json.find("\"tracer\": {\"recorded\": 1, \"contention_drops\": 0, "
                      "\"dropped_total\": 0}"),
            std::string::npos);
}

TEST(Export, PrometheusTypesAndSeries) {
  const std::string prom = to_prometheus(known_snapshot());
  EXPECT_NE(prom.find("# TYPE test_export_events_total counter\n"
                      "test_export_events_total 42\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE test_export_depth gauge\n"
                      "test_export_depth -3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE test_export_latency_ns summary\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_latency_ns{quantile=\"0.5\"} 1000000.0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_latency_ns_count 1\n"), std::string::npos);
  EXPECT_NE(prom.find("frame_topic_dispatch_misses_total{topic=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("frame_topic_max_loss_streak{topic=\"0\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("frame_topic_e2e_latency_ns{topic=\"0\",quantile="),
            std::string::npos);
}

TEST(Export, TableShowsTopicRowAndTracerLine) {
  const std::string table = to_table(known_snapshot());
  EXPECT_NE(table.find("== per-topic deadline & latency accounting =="),
            std::string::npos);
  // Topic row: id 0, Li 2, Di 150.0, 2 deliveries, within the loss budget.
  EXPECT_NE(table.find("0      2      150.0"), std::string::npos) << table;
  EXPECT_NE(table.find("ok"), std::string::npos);
  EXPECT_NE(table.find("test_export_events_total"), std::string::npos);
  EXPECT_NE(table.find("spans recorded 1 (dropped 0: contention 0"),
            std::string::npos);
  // No crash gauge was set: the failover timeline is omitted.
  EXPECT_EQ(table.find("failover timeline"), std::string::npos);
}

TEST(Export, FailoverTimelineAppearsWithCrashGauges) {
  reset_all();
  registry().gauge("frame_failover_crash_at_ns").set(1000000000);
  registry().gauge("frame_failover_detected_at_ns").set(1030000000);
  registry().gauge("frame_failover_promotion_at_ns").set(1031000000);
  registry().gauge("frame_failover_redirect_at_ns").set(1040000000);
  const std::string table = to_table(collect_snapshot(0));
  EXPECT_NE(table.find("== failover timeline =="), std::string::npos);
  EXPECT_NE(table.find("crash injected        t=1000.000 ms"),
            std::string::npos)
      << table;
  EXPECT_NE(table.find("failure detected      t=1030.000 ms  (+30.000 ms)"),
            std::string::npos);
  EXPECT_NE(
      table.find(
          "publishers redirected t=1040.000 ms  (+40.000 ms)  <- measured x"),
      std::string::npos);
}

TEST(Export, StageSeriesCarryLogBinnedHistograms) {
  reset_all();
  // Per-stage attribution series (suffix _queue_delay_ns/_service_ns) get
  // their full log-binned shape exported; ordinary latency series stay as
  // compact summaries.
  LatencyRecorder& stage = registry().latency("test_stage_service_ns");
  stage.record(1000.0);  // 1 us, twice: both land in the same log bin
  stage.record(1000.0);
  stage.record(1e6);  // 1 ms: a later bin
  registry().latency("test_plain_latency_ns").record(1000.0);
  const ObsSnapshot snap = collect_snapshot(0);

  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE test_stage_service_ns_hist histogram\n"),
            std::string::npos)
      << prom;
  // Cumulative le buckets: the first non-empty bucket holds the two 1 us
  // samples, +Inf closes at the full count.
  const auto first_bucket = prom.find("test_stage_service_ns_hist_bucket{le=");
  ASSERT_NE(first_bucket, std::string::npos);
  const auto line_end = prom.find('\n', first_bucket);
  EXPECT_EQ(prom.substr(line_end - 2, 2), " 2")
      << prom.substr(first_bucket, line_end - first_bucket);
  EXPECT_NE(prom.find("test_stage_service_ns_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_stage_service_ns_hist_sum 1002000.0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("test_stage_service_ns_hist_count 3\n"),
            std::string::npos);
  // The plain series exports a summary only — no histogram TYPE line.
  EXPECT_NE(prom.find("# TYPE test_plain_latency_ns summary\n"),
            std::string::npos);
  EXPECT_EQ(prom.find("test_plain_latency_ns_hist"), std::string::npos);

  const std::string json = to_json(snap);
  const auto stage_pos = json.find("\"test_stage_service_ns\"");
  ASSERT_NE(stage_pos, std::string::npos);
  const auto hist_pos = json.find("\"hist\":[[", stage_pos);
  ASSERT_NE(hist_pos, std::string::npos) << json;
  // Two non-empty bins: [edge, 2] then [edge, 1].
  const auto hist_end = json.find("]]", hist_pos) + 2;
  const std::string hist = json.substr(hist_pos, hist_end - hist_pos);
  EXPECT_NE(hist.find(",2],["), std::string::npos) << hist;
  EXPECT_NE(hist.find(",1]"), std::string::npos) << hist;
  // Plain latency series carry no "hist" member.
  const auto plain_pos = json.find("\"test_plain_latency_ns\"");
  ASSERT_NE(plain_pos, std::string::npos);
  const auto plain_end = json.find('}', plain_pos);
  EXPECT_EQ(json.substr(plain_pos, plain_end - plain_pos).find("\"hist\""),
            std::string::npos);
}

TEST(Export, PrometheusEmitsTraceCounters) {
  const std::string prom = to_prometheus(known_snapshot());
  EXPECT_NE(prom.find("# TYPE frame_trace_recorded_total counter\n"
                      "frame_trace_recorded_total 1\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE frame_trace_dropped_total counter\n"
                      "frame_trace_dropped_total 0\n"),
            std::string::npos);
}

TEST(Export, PrometheusNameSanitization) {
  EXPECT_EQ(prometheus_sanitize_name("frame_events_total"),
            "frame_events_total");
  EXPECT_EQ(prometheus_sanitize_name("queue depth:now"), "queue_depth:now");
  EXPECT_EQ(prometheus_sanitize_name("9lives"), "_lives");
  EXPECT_EQ(prometheus_sanitize_name("bad\nname\"with\\stuff"),
            "bad_name_with_stuff");
  EXPECT_EQ(prometheus_sanitize_name("d\xC3\xA9j\xC3\xA0_vu"), "d__j___vu");
  EXPECT_EQ(prometheus_sanitize_name(""), "_");
}

TEST(Export, PrometheusLabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("quote\"back\\slash"),
            "quote\\\"back\\\\slash");
  EXPECT_EQ(prometheus_escape_label("line\nbreak"), "line\\nbreak");
  // UTF-8 passes through untouched: label values are opaque strings.
  EXPECT_EQ(prometheus_escape_label("d\xC3\xA9j\xC3\xA0"), "d\xC3\xA9j\xC3\xA0");
}

TEST(Export, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there\nnewline\rret"),
            "tab\\there\\nnewline\\rret");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(Export, HostileInstrumentNamesProduceValidExposition) {
  reset_all();
  registry().counter("bad name\nwith \"quotes\"").add(7);
  const std::string prom = to_prometheus(collect_snapshot(0));
  // No raw newline inside a metric name: every line starts with a comment
  // marker or a [a-zA-Z_:] name byte.
  EXPECT_NE(prom.find("# TYPE bad_name_with__quotes_ counter\n"
                      "bad_name_with__quotes_ 7\n"),
            std::string::npos)
      << prom;
  const std::string json = to_json(collect_snapshot(0));
  EXPECT_NE(json.find("\"bad name\\nwith \\\"quotes\\\"\": 7"),
            std::string::npos)
      << json;
}

TEST(Export, RingOverflowSurfacesAsDroppedTotal) {
  reset_all();
  SpanEvent event;
  event.kind = SpanKind::kPublish;
  const std::size_t capacity = tracer().capacity();
  for (std::size_t i = 0; i < capacity + 5; ++i) {
    event.seq = i;
    tracer().record(event);
  }
  EXPECT_EQ(tracer().overflow_drops(), 5u);
  EXPECT_EQ(tracer().dropped_total(), 5u + tracer().contention_drops());
  const std::string prom = to_prometheus(collect_snapshot(0));
  EXPECT_NE(prom.find("frame_trace_dropped_total 5\n"), std::string::npos)
      << prom;
  reset_all();  // don't leak a saturated ring into other tests
}

TEST(Export, HooksAreInertWhenDisabledAndRecordWhenEnabled) {
  if (!kCompiled) GTEST_SKIP() << "built with FRAME_OBS=OFF";
  reset_all();
  ASSERT_FALSE(enabled());
  hooks::publish(0, 1, milliseconds(1));
  EXPECT_EQ(registry().counter("frame_publisher_created_total").value(), 0u);
  {
    EnabledScope scope(true);
    hooks::publish(0, 2, milliseconds(2));
  }
  EXPECT_EQ(registry().counter("frame_publisher_created_total").value(), 1u);
}

}  // namespace
}  // namespace frame::obs
