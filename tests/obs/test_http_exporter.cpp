// Telemetry endpoint tests: a real loopback client scrapes the server that
// runs on the epoll reactor.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/http_exporter.hpp"
#include "obs/obs.hpp"
#include "obs/stitch.hpp"

namespace frame::obs {
namespace {

/// Blocking one-shot HTTP client: sends `request`, reads until EOF.
std::string fetch(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    return {};
  }
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& path) {
  return fetch(port, "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n");
}

TEST(HttpExporter, ServesMetricsSnapshotHealthzAndTrace) {
  reset_all();
  registry().counter("http_test_hits_total").add(9);
  HttpExporter::Options options;
  options.port = 0;  // ephemeral
  options.healthz = [](int& status) {
    status = 200;
    return std::string("{\"status\":\"testing\"}\n");
  };
  auto server = HttpExporter::create(std::move(options));
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();
  ASSERT_NE(port, 0);

  const std::string metrics = get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("http_test_hits_total 9\n"), std::string::npos);
  EXPECT_NE(metrics.find("frame_trace_dropped_total"), std::string::npos);

  const std::string snapshot = get(port, "/snapshot.json");
  EXPECT_NE(snapshot.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(snapshot.find("\"http_test_hits_total\": 9"), std::string::npos)
      << snapshot;

  const std::string healthz = get(port, "/healthz");
  EXPECT_NE(healthz.find("{\"status\":\"testing\"}"), std::string::npos)
      << healthz;

  const std::string trace = get(port, "/trace");
  EXPECT_NE(trace.find("frame-trace-dump v1"), std::string::npos) << trace;
  reset_all();
}

TEST(HttpExporter, RejectsUnknownPathsMethodsAndGarbage) {
  auto server = HttpExporter::create({});
  ASSERT_TRUE(server.is_ok());
  const std::uint16_t port = server.value()->port();

  EXPECT_NE(get(port, "/nope").find("HTTP/1.0 404"), std::string::npos);
  EXPECT_NE(fetch(port, "POST /metrics HTTP/1.0\r\n\r\n")
                .find("HTTP/1.0 405"),
            std::string::npos);
  EXPECT_NE(fetch(port, "garbage-without-spaces\r\n\r\n")
                .find("HTTP/1.0 400"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(get(port, "/healthz?verbose=1").find("HTTP/1.0 200"),
            std::string::npos);
}

TEST(HttpExporter, HandleRoutesInProcessWithoutASocket) {
  auto server = HttpExporter::create({});
  ASSERT_TRUE(server.is_ok());
  int status = 0;
  const std::string body = server.value()->handle("/metrics", status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("frame_trace_recorded_total"), std::string::npos);
  server.value()->handle("/bogus", status);
  EXPECT_EQ(status, 404);
}

TEST(HttpExporter, FixedPortAndBindConflictSurfaceAsStatus) {
  auto first = HttpExporter::create({});
  ASSERT_TRUE(first.is_ok());
  HttpExporter::Options clash;
  clash.port = first.value()->port();
  auto second = HttpExporter::create(std::move(clash));
  EXPECT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace frame::obs
