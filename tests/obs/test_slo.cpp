// SLO monitor + flight recorder tests: windowed burn-rate accounting,
// declarative alert evaluation, the /alerts and 503 /healthz endpoints,
// and the once-per-process post-mortem bundle.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/http_exporter.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/stitch.hpp"

namespace frame::obs {
namespace {

std::vector<TopicSpec> two_topics() {
  return {
      // Hard topic: Li = 2, Di = 150ms.
      TopicSpec{0, milliseconds(100), milliseconds(150), 2, 0,
                Destination::kEdge},
      // Best-effort topic: infinite loss tolerance.
      TopicSpec{1, milliseconds(100), milliseconds(150), kLossInfinite, 0,
                Destination::kEdge},
  };
}

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    slo().configure(two_topics());
    slo().set_rules(SloMonitor::default_rules());
  }
  void TearDown() override { reset_all(); }
};

TEST_F(SloTest, BurnRateIsMissFractionOverBudget) {
  // 100 dispatches, 10 misses (laxity < 0), budget 0.001 -> burn 100.
  const TimePoint t0 = seconds(10);
  for (int i = 0; i < 100; ++i) {
    const Duration laxity = i < 10 ? -milliseconds(1) : milliseconds(20);
    slo().on_dispatch_executed(0, laxity, t0 + i * microseconds(100));
  }
  const TopicSloSnapshot snap = slo().snapshot(0, slo().latest_now());
  EXPECT_EQ(snap.dispatches_short, 100u);
  EXPECT_EQ(snap.dispatch_misses_short, 10u);
  EXPECT_NEAR(snap.dispatch_burn_short, 0.1 / 0.001, 1e-9);
  EXPECT_EQ(snap.dispatch_headroom_min, -milliseconds(1));
  EXPECT_EQ(snap.dispatch_headroom.count(), 100u);
}

TEST_F(SloTest, ShortWindowForgetsOldMisses) {
  const TimePoint t0 = seconds(10);
  for (int i = 0; i < 8; ++i) {
    slo().on_dispatch_executed(0, -milliseconds(1), t0 + i);
  }
  // Two short windows later the misses have rolled out of the short view
  // but remain visible in the long window.
  const TimePoint later = t0 + 3 * slo().config().short_window;
  slo().on_dispatch_executed(0, milliseconds(20), later);
  const TopicSloSnapshot snap = slo().snapshot(0, later);
  EXPECT_EQ(snap.dispatch_misses_short, 0u) << "short window did not roll";
  EXPECT_EQ(snap.dispatches_short, 1u);
  EXPECT_EQ(snap.dispatch_misses_long, 8u);
  EXPECT_GT(snap.dispatch_burn_long, 0.0);
  EXPECT_EQ(snap.dispatch_burn_short, 0.0);
}

TEST_F(SloTest, DefaultRulesFireCriticalOnSustainedLemma2Misses) {
  const TimePoint t0 = seconds(5);
  // 50% miss rate >> 14.4 * budget: the fast-burn critical rule fires.
  for (int i = 0; i < 40; ++i) {
    const Duration laxity = (i % 2) != 0 ? -milliseconds(2) : milliseconds(5);
    slo().on_dispatch_executed(0, laxity, t0 + i * microseconds(100));
  }
  const auto states = slo().evaluate(slo().latest_now());
  ASSERT_FALSE(states.empty());
  bool fast_burn_firing = false;
  for (const auto& state : states) {
    if (state.rule.name == "lemma2-burn-fast") {
      fast_burn_firing = state.firing;
      EXPECT_EQ(state.rule.severity, Severity::kCritical);
      EXPECT_GT(state.value, 14.4);
      EXPECT_GT(state.since, 0);
    }
  }
  EXPECT_TRUE(fast_burn_firing);
  EXPECT_TRUE(slo().critical_firing());

  // A quiet recovery clears it: 2000 clean dispatches in a later window.
  const TimePoint t1 = t0 + 4 * slo().config().short_window;
  for (int i = 0; i < 2000; ++i) {
    slo().on_dispatch_executed(0, milliseconds(30), t1 + i * microseconds(10));
  }
  slo().evaluate(slo().latest_now());
  EXPECT_FALSE(slo().critical_firing());
}

TEST_F(SloTest, StreakProximityTracksWorstStreakAgainstLi) {
  const TimePoint t0 = seconds(3);
  slo().on_delivery(0, milliseconds(10), false, 1, t0);
  TopicSloSnapshot snap = slo().snapshot(0, t0);
  EXPECT_NEAR(snap.streak_proximity, 0.5, 1e-9);  // 1 of Li=2

  slo().on_delivery(0, milliseconds(10), false, 3, t0 + 1);
  snap = slo().snapshot(0, t0 + 1);
  EXPECT_EQ(snap.worst_streak, 3u);
  EXPECT_NEAR(snap.streak_proximity, 1.5, 1e-9);  // breach

  const auto states = slo().evaluate(t0 + 1);
  bool breach_firing = false;
  for (const auto& state : states) {
    if (state.rule.name == "li-streak-breach") breach_firing = state.firing;
  }
  EXPECT_TRUE(breach_firing);

  // Best-effort topics never contribute streak proximity.
  slo().on_delivery(1, milliseconds(10), false, 99, t0 + 2);
  snap = slo().snapshot(1, t0 + 2);
  EXPECT_EQ(snap.streak_proximity, 0.0);
}

TEST_F(SloTest, PerShardFoldAttributesByThreadShard) {
  const TimePoint t0 = seconds(2);
  {
    ShardScope scope(3);
    slo().on_dispatch_executed(0, -milliseconds(1), t0);
    slo().on_dispatch_executed(0, milliseconds(4), t0 + 1);
  }
  const auto shards = slo().snapshot_shards(slo().latest_now());
  bool found = false;
  for (const auto& shard : shards) {
    if (shard.shard == 3) {
      found = true;
      EXPECT_EQ(shard.dispatches_short, 2u);
      EXPECT_EQ(shard.dispatch_misses_short, 1u);
      EXPECT_EQ(shard.dispatch_headroom_min, -milliseconds(1));
    }
  }
  EXPECT_TRUE(found) << "shard 3 missing from fold";
}

TEST_F(SloTest, JsonDocumentsParseAndCarryAlerts) {
  const TimePoint t0 = seconds(1);
  slo().on_dispatch_executed(0, -milliseconds(1), t0);
  slo().evaluate(t0);

  const std::string alerts = slo().alerts_json(0);
  auto parsed = parse_json(alerts);
  ASSERT_TRUE(parsed.has_value()) << alerts;
  const JsonValue* list = parsed->find("alerts");
  ASSERT_NE(list, nullptr);
  EXPECT_FALSE(list->array.empty());
  const JsonValue* name = list->array[0].find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_FALSE(name->str.empty());

  const std::string doc = slo().slo_json(0);
  auto parsed_doc = parse_json(doc);
  ASSERT_TRUE(parsed_doc.has_value()) << doc;
  EXPECT_NE(parsed_doc->find("topics"), nullptr);
  EXPECT_NE(parsed_doc->find("shards"), nullptr);
  EXPECT_NE(parsed_doc->find("alerts"), nullptr);
}

// ---- HTTP endpoint regression (satellite: /alerts + 503 /healthz) --------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(SloTest, HealthzTurns503WhenACriticalRuleFires) {
  auto server = HttpExporter::create({});
  ASSERT_TRUE(server.is_ok());
  const std::uint16_t port = server.value()->port();

  // Healthy first.
  EXPECT_NE(http_get(port, "/healthz").find("HTTP/1.0 200"),
            std::string::npos);

  // Sustained Lemma 2 misses -> fast-burn critical -> 503 with a reason.
  const TimePoint t0 = seconds(5);
  for (int i = 0; i < 40; ++i) {
    slo().on_dispatch_executed(0, -milliseconds(2), t0 + i);
  }
  const std::string unhealthy = http_get(port, "/healthz");
  EXPECT_NE(unhealthy.find("HTTP/1.0 503"), std::string::npos) << unhealthy;
  EXPECT_NE(unhealthy.find("critical alert firing"), std::string::npos);

  const std::string alerts = http_get(port, "/alerts");
  EXPECT_NE(alerts.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(alerts.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(alerts.find("lemma2-burn-fast"), std::string::npos) << alerts;
  EXPECT_NE(alerts.find("\"firing\":true"), std::string::npos) << alerts;

  const std::string doc = http_get(port, "/slo.json");
  EXPECT_NE(doc.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(doc.find("\"topics\""), std::string::npos) << doc;
}

// ---- flight recorder ------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/frame-slo-test-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    if (path_.empty()) return;
    std::string cmd = "rm -rf '" + path_ + "'";
    (void)!std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(SloTest, FlightRecorderWritesExactlyOneBundle) {
  TempDir dir;
  ASSERT_FALSE(dir.path().empty());
  flight_recorder().set_directory(dir.path());
  flight_recorder().reset();

  // Give the bundle something to freeze.
  SpanEvent span;
  span.kind = SpanKind::kPublish;
  span.topic = 0;
  span.seq = 1;
  span.at = milliseconds(1);
  span.trace_id = 42;
  tracer().record(span);
  slo().on_dispatch_executed(0, -milliseconds(1), seconds(1));

  flight_recorder().trigger(TriggerReason::kLemma2Miss, "test", seconds(1));
  flight_recorder().trigger(TriggerReason::kCriticalAlert, "again",
                            seconds(2));
  EXPECT_EQ(flight_recorder().bundles_written(), 1u)
      << "latch must admit exactly one bundle";
  EXPECT_GE(flight_recorder().triggers_seen(), 2u);

  const std::string bundle = flight_recorder().last_bundle_path();
  ASSERT_FALSE(bundle.empty());

  const std::string manifest = slurp(bundle + "/manifest.txt");
  EXPECT_NE(manifest.find("frame-postmortem v1"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("reason lemma2-miss"), std::string::npos);
  EXPECT_NE(manifest.find("detail test"), std::string::npos);

  // trace.dump must be stitchable and slo.json/metrics.json valid JSON.
  const std::string trace = slurp(bundle + "/trace.dump");
  const auto dumps = parse_dumps(trace);
  ASSERT_FALSE(dumps.empty());
  EXPECT_FALSE(dumps[0].spans.empty());
  EXPECT_TRUE(parse_json(slurp(bundle + "/slo.json")).has_value());
  EXPECT_TRUE(parse_json(slurp(bundle + "/metrics.json")).has_value());

  flight_recorder().set_directory("");
  flight_recorder().reset();
}

TEST_F(SloTest, DisarmedRecorderCountsTriggersButWritesNothing) {
  flight_recorder().set_directory("");
  flight_recorder().reset();
  const std::uint64_t before = flight_recorder().bundles_written();
  flight_recorder().trigger(TriggerReason::kManual);
  EXPECT_EQ(flight_recorder().bundles_written(), before);
  EXPECT_TRUE(flight_recorder().last_bundle_path().empty());
}

}  // namespace
}  // namespace frame::obs
