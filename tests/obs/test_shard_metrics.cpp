// Per-shard instrument splitting and scrape-time aggregation: shard lanes
// record into "<base>_shard<k>" series (so N shards never clobber one
// global gauge), and collect_snapshot folds them back into the base name —
// counters sum, gauges sum, "*_peak" gauges max, latencies merge moments
// and histograms — so every pre-sharding consumer keeps reading the old
// names and sees the whole-broker aggregate.
#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace frame::obs {
namespace {

class ShardMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_all();
  }
  void TearDown() override {
    set_thread_shard(kNoShard);
    set_enabled(false);
  }

  static const std::uint64_t* counter(const ObsSnapshot& snap,
                                      std::string_view name) {
    for (const auto& [n, v] : snap.metrics.counters) {
      if (n == name) return &v;
    }
    return nullptr;
  }
  static const std::int64_t* gauge(const ObsSnapshot& snap,
                                   std::string_view name) {
    for (const auto& [n, v] : snap.metrics.gauges) {
      if (n == name) return &v;
    }
    return nullptr;
  }
  static const LatencyRecorder::Snapshot* latency(const ObsSnapshot& snap,
                                                  std::string_view name) {
    for (const auto& [n, v] : snap.metrics.latencies) {
      if (n == name) return &v;
    }
    return nullptr;
  }
};

TEST_F(ShardMetricsTest, ShardScopeSetsAndRestoresThreadShard) {
  EXPECT_EQ(thread_shard(), kNoShard);
  {
    ShardScope outer(3);
    EXPECT_EQ(thread_shard(), 3u);
    {
      ShardScope inner(5);
      EXPECT_EQ(thread_shard(), 5u);
    }
    EXPECT_EQ(thread_shard(), 3u);
  }
  EXPECT_EQ(thread_shard(), kNoShard);
}

TEST_F(ShardMetricsTest, DepthGaugesSplitPerShardAndFoldAsSumAndPeakMax) {
  // Two shards publish different depths: without the split, the second
  // write would clobber the first and the aggregate would read 2, not 9.
  {
    ShardScope shard(0);
    hooks::job_queue_depth(7);
  }
  {
    ShardScope shard(1);
    hooks::job_queue_depth(2);
  }

  const auto snap = collect_snapshot(0);
  const auto* s0 = gauge(snap, "frame_job_queue_depth_shard0");
  const auto* s1 = gauge(snap, "frame_job_queue_depth_shard1");
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(*s0, 7);
  EXPECT_EQ(*s1, 2);

  const auto* total = gauge(snap, "frame_job_queue_depth");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(*total, 9);  // depths sum across shards

  const auto* peak = gauge(snap, "frame_job_queue_depth_peak");
  ASSERT_NE(peak, nullptr);
  EXPECT_EQ(*peak, 7);  // peaks take the max, not the sum
}

TEST_F(ShardMetricsTest, CountersFoldAcrossShardsAndUnshardedBase) {
  // A thread without a ShardScope (engine unit test, simulator) records
  // into the base series; the fold must include it in the total.
  hooks::dispatch_executed(0, 1, 0, kDurationInfinite);
  {
    ShardScope shard(0);
    hooks::dispatch_executed(0, 2, 0, kDurationInfinite);
    hooks::dispatch_executed(0, 3, 0, kDurationInfinite);
  }
  {
    ShardScope shard(2);
    hooks::dispatch_executed(0, 4, 0, kDurationInfinite);
  }

  const auto snap = collect_snapshot(0);
  const auto* total = counter(snap, "frame_dispatches_total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(*total, 4u);
  const auto* s0 = counter(snap, "frame_dispatches_total_shard0");
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(*s0, 2u);
}

TEST_F(ShardMetricsTest, StageLatenciesMergeMomentsAndHistograms) {
  {
    ShardScope shard(0);
    hooks::dispatch_stage(0, 1, 1000, /*queue_delay=*/1000,
                          /*service=*/500);
    hooks::dispatch_stage(0, 2, 2000, /*queue_delay=*/3000,
                          /*service=*/500);
  }
  {
    ShardScope shard(1);
    hooks::dispatch_stage(1, 1, 3000, /*queue_delay=*/2000,
                          /*service=*/500);
  }

  const auto snap = collect_snapshot(0);
  const auto* merged = latency(snap, "frame_dispatch_queue_delay_ns");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), 3u);
  EXPECT_DOUBLE_EQ(merged->mean(), 2000.0);
  EXPECT_DOUBLE_EQ(merged->min(), 1000.0);
  EXPECT_DOUBLE_EQ(merged->max(), 3000.0);
  EXPECT_EQ(merged->hist.total(), 3u);  // histograms merged bin-by-bin

  const auto* s1 = latency(snap, "frame_dispatch_queue_delay_ns_shard1");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->count(), 1u);
}

TEST_F(ShardMetricsTest, FoldedAggregateVisibleThroughExporters) {
  {
    ShardScope shard(1);
    hooks::dispatch_stage(0, 1, 1000, 700, 300);
  }
  const auto snap = collect_snapshot(0);

  // The base name exists in /metrics and /snapshot.json even though every
  // sample was recorded under a shard scope.
  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("# TYPE frame_dispatch_queue_delay_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("frame_dispatch_queue_delay_ns_count 1"),
            std::string::npos);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"frame_dispatch_queue_delay_ns\""),
            std::string::npos);
}

TEST_F(ShardMetricsTest, NonShardNamesAreLeftAlone) {
  // Names that merely contain "_shard" without trailing digits must not be
  // folded (split would mangle unrelated instruments).
  registry().counter("frame_sharding_total").add(5);
  registry().counter("frame_thing_shardx_total").add(2);
  const auto snap = collect_snapshot(0);
  const auto* a = counter(snap, "frame_sharding_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, 5u);
  EXPECT_EQ(counter(snap, "frame_sharding"), nullptr);
  EXPECT_EQ(counter(snap, "frame_thing"), nullptr);
}

}  // namespace
}  // namespace frame::obs
