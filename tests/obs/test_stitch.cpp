// Span stitcher tests: dump serialization, cross-process merging with clock
// anchors, per-hop measurement, exactly-once accounting, and the Perfetto
// exporter + validator pair.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/stitch.hpp"

namespace frame::obs {
namespace {

SpanEvent make_event(SpanKind kind, std::uint64_t trace_id, TimePoint at,
                     NodeId node, TopicId topic = 1, SeqNo seq = 1) {
  SpanEvent ev;
  ev.kind = kind;
  ev.topic = topic;
  ev.seq = seq;
  ev.node = node;
  ev.trace_id = trace_id;
  ev.at = at;
  return ev;
}

TEST(Stitch, MakeTraceIdIsDeterministicNonZeroAndSpreads) {
  const std::uint64_t a = make_trace_id(100, 1, 7);
  EXPECT_EQ(a, make_trace_id(100, 1, 7));
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, make_trace_id(100, 1, 8));
  EXPECT_NE(a, make_trace_id(101, 1, 7));
  static_assert(make_trace_id(0, 0, 0) != 0, "id 0 is the no-trace sentinel");
}

TEST(Stitch, SerializeParseRoundTrip) {
  TraceDump dump;
  dump.process = "broker-1";
  dump.wall_anchor = -123456789;
  dump.recorded = 3;
  dump.dropped = 1;
  SpanEvent ev = make_event(SpanKind::kDelivered, 0xabcull, milliseconds(5),
                            10, 7, 42);
  ev.delta_pb = 111;
  ev.dd_slack = -222;
  ev.dr_slack = 333;
  dump.spans.push_back(ev);

  const auto parsed = parse_dumps(serialize_dump(dump));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].process, "broker-1");
  EXPECT_EQ(parsed[0].wall_anchor, -123456789);
  EXPECT_EQ(parsed[0].recorded, 3u);
  EXPECT_EQ(parsed[0].dropped, 1u);
  ASSERT_EQ(parsed[0].spans.size(), 1u);
  const SpanEvent& back = parsed[0].spans[0];
  EXPECT_EQ(back.kind, SpanKind::kDelivered);
  EXPECT_EQ(back.topic, 7u);
  EXPECT_EQ(back.seq, 42u);
  EXPECT_EQ(back.node, 10u);
  EXPECT_EQ(back.trace_id, 0xabcull);
  EXPECT_EQ(back.at, milliseconds(5));
  EXPECT_EQ(back.delta_pb, 111);
  EXPECT_EQ(back.dd_slack, -222);
  EXPECT_EQ(back.dr_slack, 333);
}

TEST(Stitch, ParserSkipsGarbageAndUnknownKindsAndConcatenates) {
  TraceDump a;
  a.process = "a";
  a.spans.push_back(make_event(SpanKind::kPublish, 5, 0, 100));
  TraceDump b;
  b.process = "b";
  b.spans.push_back(make_event(SpanKind::kDelivered, 5, 10, 10));
  std::string text = serialize_dump(a);
  text += "this line is noise\n";
  text += "span 99 0 0 0 0 0 0 0 0\n";  // future span kind: skipped
  text += "span mangled\n";
  text += serialize_dump(b);
  const auto parsed = parse_dumps(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].spans.size(), 1u);
  EXPECT_EQ(parsed[1].process, "b");
  EXPECT_EQ(parsed[1].spans.size(), 1u);
}

TEST(Stitch, CollectLocalDumpSnapshotsGlobalTracer) {
  reset_all();
  tracer().record(make_event(SpanKind::kPublish, 3, milliseconds(1), 100));
  const TraceDump dump = collect_local_dump("me", 777);
  EXPECT_EQ(dump.process, "me");
  EXPECT_EQ(dump.wall_anchor, 777);
  EXPECT_EQ(dump.recorded, 1u);
  EXPECT_EQ(dump.dropped, 0u);
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_EQ(dump.spans[0].trace_id, 3u);
  reset_all();
}

// Two processes with different clock anchors: the stitcher must place both
// on one wall axis and measure each hop from the *wall* timestamps.
TEST(Stitch, CrossProcessAnchorsAlignTimelinesAndMeasureHops) {
  const std::uint64_t id = make_trace_id(100, 1, 1);

  // Publisher process: monotonic clock starts at 0, wall anchor 1'000'000.
  TraceDump pub;
  pub.process = "publisher";
  pub.wall_anchor = 1'000'000;
  pub.spans.push_back(make_event(SpanKind::kPublish, id, 0, 100));

  // Broker process: its monotonic clock is shifted; anchor compensates so
  // the admit lands 300us of wall time after the publish.
  TraceDump broker;
  broker.process = "broker";
  broker.wall_anchor = 1'000'000 - 5'000'000;
  broker.spans.push_back(
      make_event(SpanKind::kProxyAdmit, id, 5'000'000 + 300'000, 1));
  broker.spans.push_back(
      make_event(SpanKind::kReplicated, id, 5'000'000 + 400'000, 1));
  broker.spans.push_back(
      make_event(SpanKind::kDispatchStart, id, 5'000'000 + 500'000, 1));

  // Backup process.
  TraceDump backup;
  backup.process = "backup";
  backup.wall_anchor = 1'000'000;
  backup.spans.push_back(make_event(SpanKind::kBackupStored, id, 450'000, 2));

  // Subscriber process.
  TraceDump sub;
  sub.process = "subscriber";
  sub.wall_anchor = 1'000'000;
  sub.spans.push_back(make_event(SpanKind::kDelivered, id, 900'000, 10));

  const StitchReport report = stitch({pub, broker, backup, sub});
  EXPECT_EQ(report.trace_count, 1u);
  ASSERT_EQ(report.delta_pb.count(), 1u);
  EXPECT_DOUBLE_EQ(report.delta_pb.mean(), 300'000.0);  // ΔPB
  ASSERT_EQ(report.delta_bb.count(), 1u);
  EXPECT_DOUBLE_EQ(report.delta_bb.mean(), 50'000.0);   // ΔBB
  ASSERT_EQ(report.delta_bs.count(), 1u);
  EXPECT_DOUBLE_EQ(report.delta_bs.mean(), 400'000.0);  // ΔBS
  ASSERT_EQ(report.e2e.count(), 1u);
  EXPECT_DOUBLE_EQ(report.e2e.mean(), 900'000.0);
  EXPECT_EQ(report.delivered_events, 1u);
  EXPECT_EQ(report.duplicate_deliveries, 0u);
  // Events come back wall-ordered regardless of per-dump order.
  for (std::size_t i = 1; i < report.events.size(); ++i) {
    EXPECT_LE(report.events[i - 1].wall_at, report.events[i].wall_at);
  }
}

TEST(Stitch, FailoverTimelineAndMeasuredX) {
  TraceDump dump;
  dump.process = "system";
  // A detector blip *before* the crash must not count as detection.
  dump.spans.push_back(
      make_event(SpanKind::kFailoverDetected, 0, milliseconds(1), 2));
  dump.spans.push_back(make_event(SpanKind::kCrash, 0, milliseconds(10), 1));
  dump.spans.push_back(
      make_event(SpanKind::kFailoverDetected, 0, milliseconds(35), 100));
  dump.spans.push_back(make_event(SpanKind::kPromotion, 0, milliseconds(36), 2));
  dump.spans.push_back(make_event(SpanKind::kRedirect, 0, milliseconds(40), 100));

  const StitchReport report = stitch({dump});
  EXPECT_EQ(report.crash_wall, milliseconds(10));
  EXPECT_EQ(report.detected_wall, milliseconds(35));
  EXPECT_EQ(report.promotion_wall, milliseconds(36));
  EXPECT_EQ(report.redirect_wall, milliseconds(40));
  EXPECT_EQ(report.measured_x, milliseconds(30));  // x = redirect - crash
  const std::string summary = stitch_summary(report);
  EXPECT_NE(summary.find("measured x = 30.000ms"), std::string::npos)
      << summary;
}

TEST(Stitch, DuplicateDeliveryToSameSubscriberIsCountedFanOutIsNot) {
  const std::uint64_t id = make_trace_id(100, 1, 1);
  TraceDump dump;
  dump.spans.push_back(make_event(SpanKind::kDelivered, id, 100, 10));
  dump.spans.push_back(make_event(SpanKind::kDelivered, id, 200, 11));  // fan-out
  const StitchReport clean = stitch({dump});
  EXPECT_EQ(clean.duplicate_deliveries, 0u);
  EXPECT_EQ(clean.delivered_events, 2u);

  dump.spans.push_back(make_event(SpanKind::kDelivered, id, 300, 10));  // dup!
  const StitchReport dirty = stitch({dump});
  EXPECT_EQ(dirty.duplicate_deliveries, 1u);
}

TEST(Stitch, DroppedTotalSumsAcrossDumps) {
  TraceDump a;
  a.dropped = 3;
  TraceDump b;
  b.dropped = 4;
  EXPECT_EQ(stitch({a, b}).dropped_total, 7u);
}

TEST(Stitch, PerfettoExportValidatesAndCarriesFlowsAndMarkers) {
  const std::uint64_t id1 = make_trace_id(100, 1, 1);
  const std::uint64_t id2 = make_trace_id(100, 1, 2);
  TraceDump dump;
  for (const std::uint64_t id : {id1, id2}) {
    const TimePoint base = id == id1 ? 0 : 50'000;
    dump.spans.push_back(make_event(SpanKind::kPublish, id, base, 100));
    dump.spans.push_back(
        make_event(SpanKind::kProxyAdmit, id, base + 300'000, 1));
    dump.spans.push_back(
        make_event(SpanKind::kDispatchStart, id, base + 400'000, 1));
    dump.spans.push_back(
        make_event(SpanKind::kDelivered, id, base + 900'000, 10));
  }
  dump.spans.push_back(make_event(SpanKind::kCrash, 0, 1'000'000, 1));
  dump.spans.push_back(make_event(SpanKind::kRedirect, 0, 1'400'000, 100));

  const StitchReport report = stitch({dump});
  const std::string json = to_perfetto_json(report);
  EXPECT_TRUE(validate_perfetto_json(json).is_ok())
      << validate_perfetto_json(json).message() << "\n" << json;
  // One process metadata record per node, flows per trace, crash marker.
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"traces\":2"), std::string::npos);
}

// Two messages resident on one node at overlapping times must land on
// different lanes of that node's track (the validator would reject overlap).
TEST(Stitch, OverlappingResidencyLanePacksWithoutOverlap) {
  const std::uint64_t id1 = make_trace_id(100, 1, 1);
  const std::uint64_t id2 = make_trace_id(100, 1, 2);
  TraceDump dump;
  for (const std::uint64_t id : {id1, id2}) {
    dump.spans.push_back(make_event(SpanKind::kProxyAdmit, id, 0, 1));
    dump.spans.push_back(make_event(SpanKind::kDispatchStart, id, 500'000, 1));
  }
  const std::string json = to_perfetto_json(stitch({dump}));
  EXPECT_TRUE(validate_perfetto_json(json).is_ok())
      << validate_perfetto_json(json).message() << "\n" << json;
  // Both lanes of pid 1 were used.
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1,\"tid\":2"), std::string::npos) << json;
}

TEST(Stitch, ValidatorRejectsBadInput) {
  EXPECT_FALSE(validate_perfetto_json("not json at all").is_ok());
  EXPECT_FALSE(validate_perfetto_json("[1,2,3]").is_ok());
  EXPECT_FALSE(validate_perfetto_json("{\"foo\":1}").is_ok());
  // X slice without dur.
  EXPECT_FALSE(validate_perfetto_json(
                   "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                   "\"ts\":1.0}]}")
                   .is_ok());
  // Overlapping slices on one track.
  EXPECT_FALSE(validate_perfetto_json(
                   "{\"traceEvents\":["
                   "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":10},"
                   "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10}]}")
                   .is_ok());
  // Flow finish with no matching start.
  EXPECT_FALSE(validate_perfetto_json(
                   "{\"traceEvents\":[{\"ph\":\"f\",\"id\":\"dead\","
                   "\"pid\":1,\"tid\":1,\"ts\":1.0}]}")
                   .is_ok());
  // The same shapes, made whole, pass.
  EXPECT_TRUE(validate_perfetto_json(
                  "{\"traceEvents\":["
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":5},"
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":5,\"dur\":10},"
                  "{\"ph\":\"s\",\"id\":\"dead\",\"pid\":1,\"tid\":1,\"ts\":1},"
                  "{\"ph\":\"f\",\"id\":\"dead\",\"pid\":1,\"tid\":1,\"ts\":9}"
                  "]}")
                  .is_ok());
}

TEST(Stitch, EmptyAndPartialInputProduceDiagnosticsNotCrashes) {
  // No dumps at all.
  StitchReport none = stitch({});
  EXPECT_TRUE(none.events.empty());
  ASSERT_FALSE(none.diagnostics.empty());
  EXPECT_NE(none.diagnostics[0].find("no dumps"), std::string::npos);

  // One empty dump alongside one with spans: counted, not fatal.
  TraceDump empty_dump;
  empty_dump.process = "idle";
  TraceDump full;
  full.process = "busy";
  full.spans.push_back(make_event(SpanKind::kPublish, 7, 0, 100));
  const StitchReport mixed = stitch({empty_dump, full});
  EXPECT_EQ(mixed.events.size(), 1u);
  bool noted = false;
  for (const auto& diag : mixed.diagnostics) {
    if (diag.find("1 of 2 dump(s) contain zero spans") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted) << stitch_summary(mixed);
}

TEST(Stitch, ZeroAnchoredSpansDiagnosed) {
  // Every span carries trace id 0 (a writer that predates wire trace
  // context): events merge but nothing correlates.
  TraceDump dump;
  dump.process = "old-writer";
  dump.spans.push_back(make_event(SpanKind::kPublish, 0, 0, 100));
  dump.spans.push_back(make_event(SpanKind::kDelivered, 0, milliseconds(1), 10));
  const StitchReport report = stitch({dump});
  EXPECT_EQ(report.events.size(), 2u);
  EXPECT_EQ(report.trace_count, 0u);
  EXPECT_EQ(report.e2e.count(), 0u);
  bool noted = false;
  for (const auto& diag : report.diagnostics) {
    if (diag.find("no anchored spans") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
  // The summary surfaces the warning for frame_analyze --stitch users.
  EXPECT_NE(stitch_summary(report).find("warning: no anchored spans"),
            std::string::npos);
}

TEST(Stitch, MismatchedWallAnchorsDiagnosed) {
  // Dump A is anchored on the wall clock; dump B forgot its anchor, so its
  // spans sit near time zero — hours away from A's range.
  TraceDump a;
  a.process = "anchored";
  a.wall_anchor = seconds(3600);
  a.spans.push_back(make_event(SpanKind::kPublish, 9, milliseconds(1), 100));
  TraceDump b;
  b.process = "unanchored";
  b.wall_anchor = 0;
  b.spans.push_back(make_event(SpanKind::kDelivered, 9, milliseconds(2), 10));
  const StitchReport report = stitch({a, b});
  EXPECT_EQ(report.events.size(), 2u);
  bool noted = false;
  for (const auto& diag : report.diagnostics) {
    if (diag.find("wall-clock anchors look mismatched") != std::string::npos) {
      noted = true;
      EXPECT_NE(diag.find("wall_anchor 0"), std::string::npos) << diag;
    }
  }
  EXPECT_TRUE(noted) << stitch_summary(report);

  // Overlapping, consistently anchored dumps stay diagnostic-free.
  b.wall_anchor = seconds(3600) + microseconds(10);
  const StitchReport clean = stitch({a, b});
  for (const auto& diag : clean.diagnostics) {
    EXPECT_EQ(diag.find("mismatched"), std::string::npos) << diag;
  }
}

}  // namespace
}  // namespace frame::obs
