#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace frame::obs {
namespace {

TEST(Counter, ConcurrentWritersAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Gauge, SetMaxKeepsMaximumUnderContention) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&gauge, t] {
      for (int i = 0; i < 10000; ++i) gauge.set_max(t * 10000 + i);
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(gauge.value(), (kThreads - 1) * 10000 + 9999);
}

TEST(LatencyRecorder, ConcurrentRecordsCountExactly) {
  LatencyRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record(1000.0 + t * 100.0 + i % 97);
      }
    });
  }
  for (auto& w : writers) w.join();
  const auto snap = recorder.snapshot();
  EXPECT_EQ(snap.count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.hist.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(LatencyRecorder, QuantilesTrackTheDistribution) {
  LatencyRecorder recorder;
  // 1..10000 microseconds, in ns.
  for (int i = 1; i <= 10000; ++i) recorder.record(i * 1000.0);
  const auto snap = recorder.snapshot();
  EXPECT_DOUBLE_EQ(snap.min(), 1000.0);
  EXPECT_DOUBLE_EQ(snap.max(), 1e7);
  // Log-binned quantiles carry ~12% relative error per bin.
  EXPECT_NEAR(snap.p50(), 5e6, 0.15 * 5e6);
  EXPECT_NEAR(snap.p99(), 9.9e6, 0.15 * 9.9e6);
  // Quantiles clamp to the observed extremes.
  EXPECT_GE(snap.quantile(0.0), snap.min());
  EXPECT_LE(snap.quantile(1.0), snap.max());
}

TEST(LatencyRecorder, SingleSampleQuantileIsExact) {
  LatencyRecorder recorder;
  recorder.record(123456.0);
  const auto snap = recorder.snapshot();
  EXPECT_DOUBLE_EQ(snap.p50(), 123456.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 123456.0);
}

TEST(MetricsRegistry, SameNameResolvesToSameInstrument) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  Counter& a = reg.counter("test_registry_same_name");
  Counter& b = reg.counter("test_registry_same_name");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // Distinct instrument kinds may share a name without clashing.
  Gauge& g = reg.gauge("test_registry_same_name");
  g.set(-7);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(g.value(), -7);
}

TEST(MetricsRegistry, ConcurrentLookupAndWrite) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        // Resolve by name every iteration: exercises the registry mutex
        // against concurrent inserts of the other names.
        reg.counter("test_registry_shared").add();
        reg.latency("test_registry_lat").record(1e4);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(reg.counter("test_registry_shared").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.latency("test_registry_lat").snapshot().count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndResetZeroes) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("test_zz").add(1);
  reg.counter("test_aa").add(2);
  const auto snap = reg.snapshot();
  std::size_t aa = snap.counters.size(), zz = 0;
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (snap.counters[i].first == "test_aa") aa = i;
    if (snap.counters[i].first == "test_zz") zz = i;
  }
  ASSERT_LT(aa, snap.counters.size());
  EXPECT_LT(aa, zz);
  Counter& survivor = reg.counter("test_aa");
  reg.reset();
  EXPECT_EQ(survivor.value(), 0u);  // reference stays valid, value zeroed
}

}  // namespace
}  // namespace frame::obs
