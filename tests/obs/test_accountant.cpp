// Deadline accountant vs the paper's Lemma 1 / Lemma 2, with deadlines
// hand-computed from the timing model (core/timing.hpp) exactly as the Job
// Generator stamps them.
#include <gtest/gtest.h>

#include "core/timing.hpp"
#include "core/topic.hpp"
#include "obs/deadline_accountant.hpp"

namespace frame::obs {
namespace {

TimingParams test_params() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

// Ti=100ms, Di=150ms, Li=0, Ni=2, edge.
TopicSpec test_spec(TopicId id = 0) {
  return TopicSpec{id, milliseconds(100), milliseconds(150), 0, 2,
                   Destination::kEdge};
}

DeadlineAccountant& configured_accountant() {
  DeadlineAccountant& accountant = DeadlineAccountant::instance();
  accountant.configure({test_spec(0), test_spec(1)});
  accountant.reset();
  return accountant;
}

TEST(DeadlineAccountant, DispatchSlackAgainstLemma2) {
  DeadlineAccountant& accountant = configured_accountant();
  const TopicSpec spec = test_spec();
  const TimingParams params = test_params();

  // Lemma 2: Dd = Di - dPB - dBS = 150 - 5 - 1 = 144 ms.
  const Duration dd = dispatch_deadline(spec, params);
  ASSERT_EQ(dd, milliseconds(144));

  // A message admitted at tp has absolute deadline tp + Dd.  Executing
  // before it leaves positive slack; after it, negative.
  const TimePoint tp = milliseconds(1000);
  const TimePoint deadline = tp + dd;
  accountant.on_dispatch_executed(0, deadline - (tp + milliseconds(10)));
  accountant.on_dispatch_executed(0, deadline - (tp + milliseconds(144)));
  accountant.on_dispatch_executed(0, deadline - (tp + milliseconds(200)));

  const TopicDeadlineSnapshot snap = accountant.snapshot(0);
  EXPECT_EQ(snap.dispatches, 3u);
  EXPECT_EQ(snap.dispatch_misses, 1u);  // only the 200 ms execution missed
}

TEST(DeadlineAccountant, ReplicationSlackAgainstLemma1) {
  DeadlineAccountant& accountant = configured_accountant();
  const TopicSpec spec = test_spec();
  const TimingParams params = test_params();

  // Lemma 1: Dr = (Ni+Li)*Ti - dPB - dBB - x = 200 - 5 - 1 - 60 = 134 ms.
  const Duration dr = replication_deadline(spec, params);
  ASSERT_EQ(dr, milliseconds(134));

  const TimePoint tp = milliseconds(2000);
  const TimePoint deadline = tp + dr;
  accountant.on_replication_executed(0, deadline - (tp + milliseconds(100)));
  accountant.on_replication_executed(0, deadline - (tp + milliseconds(135)));

  const TopicDeadlineSnapshot snap = accountant.snapshot(0);
  EXPECT_EQ(snap.replications, 2u);
  EXPECT_EQ(snap.replication_misses, 1u);
}

TEST(DeadlineAccountant, PerMessageDeltaPbShiftsTheDeadline) {
  DeadlineAccountant& accountant = configured_accountant();
  const TopicSpec spec = test_spec();
  const TimingParams params = test_params();

  // The Job Generator uses the pseudo deadline minus the *observed* dPB:
  // Dd' = Di - dBS = 149 ms; with observed dPB = 8 ms the per-message
  // deadline tightens to 141 ms, so an execution 142 ms after tp misses
  // even though it would meet the configured-bound Dd of 144 ms.
  const Duration dd_pseudo = dispatch_pseudo_deadline(spec, params);
  ASSERT_EQ(dd_pseudo, milliseconds(149));
  const Duration dd =
      apply_observed_delta_pb(dd_pseudo, milliseconds(8));
  ASSERT_EQ(dd, milliseconds(141));

  const TimePoint tp = milliseconds(3000);
  accountant.on_dispatch_executed(0, (tp + dd) - (tp + milliseconds(142)));
  EXPECT_EQ(accountant.snapshot(0).dispatch_misses, 1u);
}

TEST(DeadlineAccountant, E2eMissesCountAgainstDi) {
  DeadlineAccountant& accountant = configured_accountant();
  accountant.on_delivery(0, 1, milliseconds(100));  // within Di = 150 ms
  accountant.on_delivery(0, 2, milliseconds(151));  // late
  const TopicDeadlineSnapshot snap = accountant.snapshot(0);
  EXPECT_EQ(snap.deliveries, 2u);
  EXPECT_EQ(snap.e2e_misses, 1u);
  EXPECT_EQ(snap.e2e_latency.count(), 2u);
}

TEST(DeadlineAccountant, LossStreaksComparedToLi) {
  DeadlineAccountant& accountant = DeadlineAccountant::instance();
  // Topic 1: Li = 2.
  TopicSpec tolerant = test_spec(1);
  tolerant.loss_tolerance = 2;
  accountant.configure({test_spec(0), tolerant});
  accountant.reset();

  // Sequence 1,2 delivered, 3-4 lost, 5 delivered: streak 2 == Li, ok.
  accountant.on_delivery(1, 1, milliseconds(1));
  accountant.on_delivery(1, 2, milliseconds(1));
  accountant.on_delivery(1, 5, milliseconds(1));
  TopicDeadlineSnapshot snap = accountant.snapshot(1);
  EXPECT_EQ(snap.losses_total, 2u);
  EXPECT_EQ(snap.max_loss_streak, 2u);
  EXPECT_FALSE(snap.loss_budget_exceeded);

  // 6-8 lost, 9 delivered: streak 3 > Li = 2 -> budget exceeded.
  accountant.on_delivery(1, 9, milliseconds(1));
  snap = accountant.snapshot(1);
  EXPECT_EQ(snap.losses_total, 5u);
  EXPECT_EQ(snap.max_loss_streak, 3u);
  EXPECT_TRUE(snap.loss_budget_exceeded);
}

TEST(DeadlineAccountant, BestEffortTopicNeverExceedsBudget) {
  DeadlineAccountant& accountant = DeadlineAccountant::instance();
  TopicSpec best_effort = test_spec(0);
  best_effort.loss_tolerance = kLossInfinite;
  accountant.configure({best_effort});
  accountant.reset();
  accountant.on_delivery(0, 1, milliseconds(1));
  accountant.on_delivery(0, 100, milliseconds(1));
  const TopicDeadlineSnapshot snap = accountant.snapshot(0);
  EXPECT_EQ(snap.max_loss_streak, 98u);
  EXPECT_FALSE(snap.loss_budget_exceeded);
}

TEST(DeadlineAccountant, UnknownTopicIsIgnored) {
  DeadlineAccountant& accountant = configured_accountant();
  accountant.on_dispatch_executed(99, milliseconds(-1));
  accountant.on_delivery(99, 1, milliseconds(1));
  EXPECT_EQ(accountant.snapshot(99).topic, kInvalidTopic);
}

}  // namespace
}  // namespace frame::obs
