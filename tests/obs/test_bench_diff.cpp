// Golden tests for the frame-bench-v1 parser and the noise-aware differ
// behind frame_bench_diff / scripts/bench.sh.
#include "obs/bench_diff.hpp"

#include <gtest/gtest.h>

#include <string>

namespace frame::obs {
namespace {

std::string report_json(const std::string& series_body,
                        bool gated = true) {
  return std::string(R"({
  "schema": "frame-bench-v1",
  "suite": "micro",
  "context": {
    "git_sha": "abc123def456",
    "date": "2026-08-08",
    "library_build_type": "release",
    "optimized": true,
    "sanitizer": "none",
    "num_cpus": 4,
    "governor": "performance",
    "cpu_scaling": "pinned",
    "gated": )") +
         (gated ? "true" : "false") + R"(
  },
  "series": {)" + series_body +
         "}\n}\n";
}

std::string one_series(const std::string& name, double value,
                       const std::string& unit = "ns/op",
                       bool gated = true) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"unit\": \"%s\", \"value\": %.1f, \"gated\": %s}",
                name.c_str(), unit.c_str(), value, gated ? "true" : "false");
  return buf;
}

TEST(BenchReportParse, GoldenDocument) {
  const std::string doc = report_json(
      one_series("job_queue_push_pop_edf_ns", 106.5) + ",\n" +
      R"("tcp_pingpong_rtt_ns": {"unit": "ns", "value": 52000.0,
          "p50": 52000.0, "p90": 61000.0, "p99": 90000.0, "gated": true})");
  std::string error;
  const auto report = parse_bench_report(doc, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->suite, "micro");
  EXPECT_EQ(report->git_sha, "abc123def456");
  EXPECT_EQ(report->build_type, "release");
  EXPECT_EQ(report->sanitizer, "none");
  EXPECT_EQ(report->num_cpus, 4);
  EXPECT_TRUE(report->gated);
  ASSERT_EQ(report->series.size(), 2u);
  EXPECT_EQ(report->series[0].name, "job_queue_push_pop_edf_ns");
  EXPECT_DOUBLE_EQ(report->series[0].value, 106.5);
  // Percentile keys are hoovered up as pNN members.
  ASSERT_EQ(report->series[1].percentiles.size(), 3u);
  EXPECT_EQ(report->series[1].percentiles[0].first, "p50");
  EXPECT_DOUBLE_EQ(report->series[1].percentiles[2].second, 90000.0);
}

TEST(BenchReportParse, RejectsWrongSchema) {
  std::string error;
  EXPECT_FALSE(parse_bench_report(R"({"schema": "nope", "series": {}})",
                                  &error)
                   .has_value());
  EXPECT_NE(error.find("frame-bench-v1"), std::string::npos);
}

TEST(BenchReportParse, RejectsMalformedJson) {
  std::string error;
  EXPECT_FALSE(parse_bench_report("{\"schema\": ", &error).has_value());
  EXPECT_FALSE(parse_bench_report("", &error).has_value());
  EXPECT_FALSE(parse_bench_report("[1,2,3]", &error).has_value());
}

TEST(BenchReportParse, RejectsMissingSeriesOrContext) {
  std::string error;
  EXPECT_FALSE(parse_bench_report(
                   R"({"schema": "frame-bench-v1", "context": {}})", &error)
                   .has_value());
  EXPECT_NE(error.find("series"), std::string::npos);
  EXPECT_FALSE(parse_bench_report(
                   R"({"schema": "frame-bench-v1", "series": {}})", &error)
                   .has_value());
  EXPECT_NE(error.find("context"), std::string::npos);
}

TEST(BenchReportParse, RejectsSeriesWithoutValue) {
  std::string error;
  const std::string doc =
      report_json(R"("broken_ns": {"unit": "ns/op", "gated": true})");
  EXPECT_FALSE(parse_bench_report(doc, &error).has_value());
  EXPECT_NE(error.find("value"), std::string::npos);
}

BenchReport parse_ok(const std::string& doc) {
  std::string error;
  auto report = parse_bench_report(doc, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

TEST(BenchDiff, RegressionPastThresholdFails) {
  const auto old_report = parse_ok(report_json(one_series("hot_ns", 100.0)));
  const auto new_report = parse_ok(report_json(one_series("hot_ns", 160.0)));
  const auto diff = diff_bench_reports(old_report, new_report);
  ASSERT_EQ(diff.series.size(), 1u);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kRegressed);
  EXPECT_TRUE(diff.regression);
  EXPECT_NE(bench_diff_verdict(diff).find("REGRESSION"), std::string::npos);
}

TEST(BenchDiff, ImprovementDoesNotFail) {
  const auto old_report = parse_ok(report_json(one_series("hot_ns", 200.0)));
  const auto new_report = parse_ok(report_json(one_series("hot_ns", 120.0)));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kImproved);
  EXPECT_FALSE(diff.regression);
}

TEST(BenchDiff, WithinNoiseBelowRelThreshold) {
  // +8% on a large value: above the absolute floor but inside 10%.
  const auto old_report =
      parse_ok(report_json(one_series("hot_ns", 10000.0)));
  const auto new_report =
      parse_ok(report_json(one_series("hot_ns", 10800.0)));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kWithinNoise);
  EXPECT_FALSE(diff.regression);
}

TEST(BenchDiff, AbsoluteFloorAbsorbsTinyNsSwings) {
  // +30% relative but only +30ns absolute: noise on any real machine.
  const auto old_report = parse_ok(report_json(one_series("tiny_ns", 100.0)));
  const auto new_report = parse_ok(report_json(one_series("tiny_ns", 130.0)));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kWithinNoise);
  EXPECT_FALSE(diff.regression);
}

TEST(BenchDiff, RateUnitsInvertTheGate) {
  // Throughput dropping 20% is a regression even though the value fell.
  const auto old_report = parse_ok(
      report_json(one_series("fanin_items_per_s", 100000.0, "items/s")));
  const auto new_report = parse_ok(
      report_json(one_series("fanin_items_per_s", 80000.0, "items/s")));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kRegressed);
  EXPECT_TRUE(diff.regression);

  // ...and a throughput increase is an improvement, not a regression.
  const auto diff_up = diff_bench_reports(new_report, old_report);
  EXPECT_EQ(diff_up.series[0].verdict, SeriesVerdict::kImproved);
  EXPECT_FALSE(diff_up.regression);
}

TEST(BenchDiff, UngatedSeriesNeverFails) {
  const auto old_report = parse_ok(
      report_json(one_series("tail_ns", 1000.0, "ns", /*gated=*/false)));
  const auto new_report = parse_ok(
      report_json(one_series("tail_ns", 5000.0, "ns", /*gated=*/false)));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kRegressed);
  EXPECT_FALSE(diff.regression);  // regressed but not gated
}

TEST(BenchDiff, UngatedFileDisablesGating) {
  const auto old_report = parse_ok(report_json(one_series("hot_ns", 100.0)));
  const auto new_report = parse_ok(
      report_json(one_series("hot_ns", 1000.0), /*gated=*/false));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_TRUE(diff.gating_disabled);
  EXPECT_FALSE(diff.regression);
  EXPECT_NE(bench_diff_verdict(diff).find("ungated"), std::string::npos);
}

TEST(BenchDiff, NewAndRemovedSeriesAreReportedNotFailed) {
  const auto old_report = parse_ok(report_json(one_series("gone_ns", 10.0)));
  const auto new_report = parse_ok(report_json(one_series("born_ns", 20.0)));
  const auto diff = diff_bench_reports(old_report, new_report);
  ASSERT_EQ(diff.series.size(), 2u);
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kRemoved);
  EXPECT_EQ(diff.series[1].verdict, SeriesVerdict::kNew);
  EXPECT_FALSE(diff.regression);
  const std::string table = bench_diff_table(diff);
  EXPECT_NE(table.find("gone_ns"), std::string::npos);
  EXPECT_NE(table.find("born_ns"), std::string::npos);
}

std::string report_json_ctx(const std::string& series_body,
                            const std::string& build_type, int num_cpus,
                            const std::string& sanitizer = "none") {
  return std::string(R"({
  "schema": "frame-bench-v1",
  "suite": "micro",
  "context": {
    "git_sha": "abc123def456",
    "library_build_type": ")") +
         build_type + R"(",
    "sanitizer": ")" + sanitizer +
         R"(",
    "num_cpus": )" + std::to_string(num_cpus) +
         R"(,
    "gated": true
  },
  "series": {)" + series_body +
         "}\n}\n";
}

TEST(BenchDiff, BuildTypeMismatchDisablesGating) {
  // A debug-built "regression" against a release baseline is the compiler
  // flags, not the code: the diff must refuse to gate.
  const auto old_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 100.0), "release", 4));
  const auto new_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 1000.0), "debug", 4));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_TRUE(diff.provenance_mismatch);
  EXPECT_TRUE(diff.gating_disabled);
  EXPECT_FALSE(diff.regression);
  EXPECT_NE(diff.provenance_reason.find("build_type"), std::string::npos);
  EXPECT_NE(diff.provenance_reason.find("release"), std::string::npos);
  EXPECT_NE(diff.provenance_reason.find("debug"), std::string::npos);
  // The series verdict still shows the movement, informationally.
  EXPECT_EQ(diff.series[0].verdict, SeriesVerdict::kRegressed);
  const std::string verdict = bench_diff_verdict(diff);
  EXPECT_NE(verdict.find("ungated"), std::string::npos);
  EXPECT_NE(verdict.find("provenance mismatch"), std::string::npos);
}

TEST(BenchDiff, CpuCountMismatchDisablesGating) {
  const auto old_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 100.0), "release", 8));
  const auto new_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 1000.0), "release", 1));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_TRUE(diff.provenance_mismatch);
  EXPECT_TRUE(diff.gating_disabled);
  EXPECT_FALSE(diff.regression);
  EXPECT_NE(diff.provenance_reason.find("num_cpus 8 vs 1"),
            std::string::npos);
}

TEST(BenchDiff, SanitizerMismatchDisablesGating) {
  const auto old_report = parse_ok(
      report_json_ctx(one_series("hot_ns", 100.0), "release", 4, "none"));
  const auto new_report = parse_ok(
      report_json_ctx(one_series("hot_ns", 1000.0), "release", 4, "thread"));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_TRUE(diff.provenance_mismatch);
  EXPECT_FALSE(diff.regression);
  EXPECT_NE(diff.provenance_reason.find("sanitizer"), std::string::npos);
}

TEST(BenchDiff, MultipleProvenanceFieldsListedTogether) {
  const auto old_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 100.0), "release", 8));
  const auto new_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 100.0), "debug", 1));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_NE(diff.provenance_reason.find("build_type"), std::string::npos);
  EXPECT_NE(diff.provenance_reason.find("num_cpus"), std::string::npos);
}

TEST(BenchDiff, MissingProvenanceFieldsDoNotMismatch) {
  // Old baselines may predate the context fields; absence is not a
  // divergence.
  const std::string bare = std::string(R"({
  "schema": "frame-bench-v1",
  "suite": "micro",
  "context": {"git_sha": "abc"},
  "series": {)") + one_series("hot_ns", 100.0) +
                           "}\n}\n";
  const auto old_report = parse_ok(bare);
  const auto new_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 100.0), "release", 4));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_FALSE(diff.provenance_mismatch);
  EXPECT_FALSE(diff.gating_disabled);
}

TEST(BenchDiff, MatchingProvenanceStillGates) {
  const auto old_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 100.0), "release", 4));
  const auto new_report =
      parse_ok(report_json_ctx(one_series("hot_ns", 1000.0), "release", 4));
  const auto diff = diff_bench_reports(old_report, new_report);
  EXPECT_FALSE(diff.provenance_mismatch);
  EXPECT_TRUE(diff.regression);
}

TEST(BenchDiff, CustomThreshold) {
  const auto old_report = parse_ok(report_json(one_series("hot_ns", 1000.0)));
  const auto new_report = parse_ok(report_json(one_series("hot_ns", 1150.0)));
  BenchDiffOptions strict;
  strict.rel_threshold = 0.05;
  EXPECT_TRUE(diff_bench_reports(old_report, new_report, strict).regression);
  BenchDiffOptions loose;
  loose.rel_threshold = 0.20;
  EXPECT_FALSE(diff_bench_reports(old_report, new_report, loose).regression);
}

}  // namespace
}  // namespace frame::obs
