// Chaos + tracing: crash the Primary mid-burst over real TCP sockets and
// prove the guarantees *from the stitched trace itself* — exactly-once
// delivery per (subscriber, seq), a measured failover x within the
// detector's bound, and per-hop numbers that agree with what the metrics
// registry and DeadlineAccountant measured independently.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "chaos_util.hpp"
#include "obs/obs.hpp"
#include "obs/stitch.hpp"
#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

using chaos::ChaosTest;

constexpr Duration kSchedulingMargin = milliseconds(1500);

/// |a - b| within 10% of b (b > 0).
void expect_within_ten_percent(double a, double b, const char* what) {
  ASSERT_GT(b, 0.0) << what;
  EXPECT_LE(std::abs(a - b), 0.10 * b)
      << what << ": stitched " << a << " vs independent " << b;
}

class ChaosTraceScenario : public ChaosTest {
 protected:
  void TearDown() override {
    obs::set_enabled(false);
    ChaosTest::TearDown();
  }
};

// One dense-burst deployment: short periods so the crash lands mid-burst,
// few enough messages that the 4096-slot tracer ring never wraps (the
// test asserts dropped_total == 0, so the timeline is provably complete).
TEST_F(ChaosTraceScenario, StitchedTimelineProvesExactlyOnceAndFailoverBound) {
  if (!obs::kCompiled) GTEST_SKIP() << "built with FRAME_OBS=OFF";
  use_seed(1008);
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.transport = Transport::kTcp;
  const std::vector<ProxyGroup> proxies = {
      ProxyGroup{milliseconds(25),
                 {TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                            Destination::kEdge}}},
      ProxyGroup{milliseconds(25),
                 {TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                            Destination::kEdge}}},
  };

  obs::set_enabled(true);
  obs::reset_all();
  EdgeSystem system(options, proxies);
  obs::accountant().configure(system.topics());
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();

  // Stitch this process's ring; serialize through the wire format so the
  // cross-process path (broker dumps concatenated by frame_analyze) is the
  // path under test.
  const std::string serialized = obs::serialize_dump(system.trace_dump());
  const auto dumps = obs::parse_dumps(serialized);
  ASSERT_EQ(dumps.size(), 1u);
  const obs::StitchReport report = obs::stitch(dumps);

  // The ring must not have wrapped, or "absence of a second delivery"
  // proves nothing.
  ASSERT_EQ(report.dropped_total, 0u)
      << "tracer ring wrapped; timeline incomplete";
  ASSERT_GT(report.trace_count, 10u) << "barely published";
  ASSERT_GT(report.delivered_events, 10u);

  // Exactly-once: no (subscriber node, trace) saw kDelivered twice, and
  // the explicit per-seq scan agrees with the stitcher's own counter.
  EXPECT_EQ(report.duplicate_deliveries, 0u);
  std::map<std::tuple<TopicId, SeqNo, NodeId>, int> delivered;
  for (const auto& se : report.events) {
    if (se.event.kind != obs::SpanKind::kDelivered) continue;
    const auto key =
        std::make_tuple(se.event.topic, se.event.seq, se.event.node);
    EXPECT_EQ(++delivered[key], 1)
        << "topic " << se.event.topic << " seq " << se.event.seq
        << " delivered twice to node " << se.event.node;
  }

  // Failover, measured purely from spans: crash -> first redirect.
  ASSERT_GE(report.crash_wall, 0) << "crash marker missing from trace";
  ASSERT_GE(report.redirect_wall, 0) << "redirect marker missing";
  ASSERT_GE(report.measured_x, 0);
  EXPECT_LE(report.measured_x, system.detection_bound() + kSchedulingMargin)
      << "stitched x " << to_millis(report.measured_x) << " ms against a "
      << to_millis(system.detection_bound()) << " ms detection bound";

  // The trace must agree with the independent accounting (same events,
  // two bookkeepers): e2e mean vs the registry's latency recorder, x vs
  // the per-publisher minimum the redirect hook recorded.
  const auto metrics = obs::registry().snapshot();
  const obs::LatencyRecorder::Snapshot* e2e_metric = nullptr;
  const obs::LatencyRecorder::Snapshot* x_metric = nullptr;
  for (const auto& [name, latency] : metrics.latencies) {
    if (name == "frame_e2e_latency_ns") e2e_metric = &latency;
    if (name == "frame_failover_x_ns") x_metric = &latency;
  }
  ASSERT_NE(e2e_metric, nullptr);
  ASSERT_EQ(report.e2e.count(), e2e_metric->count());
  expect_within_ten_percent(report.e2e.mean(), e2e_metric->mean(), "e2e mean");
  ASSERT_NE(x_metric, nullptr);
  expect_within_ten_percent(static_cast<double>(report.measured_x),
                            x_metric->min(), "measured x");

  // Per-hop ΔPB: the stitched wall-clock difference must reproduce the
  // observed ΔPB each admit span carried (same clock, two derivations).
  expect_within_ten_percent(
      report.delta_pb.mean(),
      [&] {
        OnlineStats observed;
        std::map<std::uint64_t, bool> seen;
        for (const auto& se : report.events) {
          if (se.event.kind != obs::SpanKind::kProxyAdmit) continue;
          if (se.event.delta_pb < 0) continue;
          if (seen[se.event.trace_id]) continue;  // first admit per trace
          seen[se.event.trace_id] = true;
          observed.add(static_cast<double>(se.event.delta_pb));
        }
        return observed.count() > 0 ? observed.mean() : 0.0;
      }(),
      "delta_pb mean");

  // The accountant saw the same deliveries the trace did.
  std::uint64_t accountant_deliveries = 0;
  for (const auto& topic : obs::accountant().snapshot_all()) {
    if (topic.topic == kInvalidTopic) continue;
    accountant_deliveries += topic.deliveries;
  }
  EXPECT_EQ(report.delivered_events, accountant_deliveries);

  // And the stitched timeline renders as valid Perfetto JSON.
  const std::string json = obs::to_perfetto_json(report);
  const Status valid = obs::validate_perfetto_json(json);
  EXPECT_TRUE(valid.is_ok()) << valid.to_string();
}

}  // namespace
}  // namespace frame::runtime
