// Chaos harness: the full runtime under scripted adversarial networks.
//
// Each scenario builds the Fig. 6 deployment over a FaultyBus, applies a
// seeded fault schedule (loss bursts on the publisher->Primary path ΔPB,
// delay spikes on the replication path ΔBB, broker crashes, partitions),
// and asserts FRAME's guarantees through the subscribers and the
// DeadlineAccountant: consecutive losses stay within each topic's Li,
// failover completes within the detector's detection_bound() (plus
// scheduling margin), corrupted frames never reach an engine, and the
// retention replay after promotion double-delivers nothing.
//
// Every scenario is replayable: the fault plan derives from one seed,
// overridable with FRAME_CHAOS_SEED, printed on failure by ChaosTest.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "chaos_util.hpp"
#include "obs/obs.hpp"
#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

using chaos::ChaosTest;

// Wall-clock slack added to detection_bound() when asserting failover
// latency: thread scheduling, sanitizer overhead and loaded CI machines
// all stretch the loop between "suspect" and "redirected".
constexpr Duration kSchedulingMargin = milliseconds(1500);

constexpr std::uint8_t kPublishTag =
    static_cast<std::uint8_t>(WireType::kPublish);
constexpr std::uint8_t kReplicateTag =
    static_cast<std::uint8_t>(WireType::kReplicate);

TimingParams chaos_timing() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

/// One proxy group per topic, so each topic has a dedicated publisher
/// node (100 + topic id) and faults can target one topic's ΔPB link.
///   topic 0: zero-loss, retained (Ni = 2)      publisher 100
///   topic 1: loss-tolerant Li = 3, no retention publisher 101
///   topic 2: zero-loss, replicated (Ni = 1)     publisher 102
std::vector<ProxyGroup> chaos_deployment() {
  return {
      ProxyGroup{milliseconds(100),
                 {TopicSpec{0, milliseconds(100), milliseconds(150), 0, 2,
                            Destination::kEdge}}},
      ProxyGroup{milliseconds(100),
                 {TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                            Destination::kEdge}}},
      ProxyGroup{milliseconds(100),
                 {TopicSpec{2, milliseconds(100), milliseconds(200), 0, 1,
                            Destination::kEdge}}},
  };
}

SystemOptions chaos_options(std::uint64_t seed, std::vector<FaultRule> rules,
                            Transport transport = Transport::kInproc) {
  SystemOptions options;
  options.config = ConfigName::kFrame;
  options.transport = transport;
  options.timing = chaos_timing();
  options.fault_plan = FaultPlan{seed, std::move(rules)};
  return options;
}

void expect_zero_loss(EdgeSystem& system, TopicId topic) {
  const SeqNo last = system.last_seq(topic);
  ASSERT_GT(last, 2u) << "topic " << topic << " barely published";
  const auto& sub = system.subscriber(system.subscriber_index_of(topic));
  const auto loss = sub.loss_stats(topic, 1, last - 1);
  EXPECT_EQ(loss.total_losses, 0u) << "zero-loss topic " << topic;
}

void expect_loss_within_li(EdgeSystem& system, TopicId topic,
                           std::uint64_t li) {
  const SeqNo last = system.last_seq(topic);
  ASSERT_GT(last, 2u) << "topic " << topic << " barely published";
  const auto& sub = system.subscriber(system.subscriber_index_of(topic));
  const auto loss = sub.loss_stats(topic, 1, last - 1);
  EXPECT_LE(loss.max_consecutive_losses, li) << "topic " << topic;
}

/// The accountant's per-topic verdict on the Li budget.
void expect_accountant_within_budget(TopicId topic) {
  const auto snapshot = obs::accountant().snapshot(topic);
  EXPECT_FALSE(snapshot.loss_budget_exceeded)
      << "accountant: topic " << topic << " max streak "
      << snapshot.max_loss_streak << " > Li " << snapshot.loss_tolerance;
}

class ChaosScenario : public ChaosTest {
 protected:
  void arm_accountant(EdgeSystem& system) {
    obs::set_enabled(true);
    obs::reset_all();
    obs::accountant().configure(system.topics());
  }

  void TearDown() override {
    obs::set_enabled(false);
    ChaosTest::TearDown();
  }
};

// Scenario 1 (ΔPB loss burst): drop exactly Li consecutive publishes of
// the loss-tolerant topic.  The streak must be visible but never exceed
// Li, and the zero-loss topics must not notice.
TEST_F(ChaosScenario, LossBurstOnPublisherLinkBoundedByLi) {
  FaultRule burst;
  burst.kind = FaultKind::kDrop;
  burst.from = 101;  // topic 1's publisher
  burst.to = 1;      // Primary
  burst.type_tag = kPublishTag;
  burst.max_count = 3;  // exactly Li
  burst.start = milliseconds(250);

  EdgeSystem system(chaos_options(use_seed(1001), {burst}),
                    chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  system.stop();

  EXPECT_EQ(system.faults()->injected(FaultKind::kDrop), 3u);
  expect_zero_loss(system, 0);
  expect_zero_loss(system, 2);
  {
    const SeqNo last = system.last_seq(1);
    ASSERT_GT(last, 5u);
    const auto& sub = system.subscriber(system.subscriber_index_of(1));
    const auto loss = sub.loss_stats(1, 1, last - 1);
    EXPECT_GE(loss.total_losses, 1u) << "the burst should be visible";
    EXPECT_LE(loss.max_consecutive_losses, 3u) << "Li exceeded";
  }
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

// Scenario 2 (ΔBB / ΔBS delay spikes): latency on everything the Primary
// sends — replicas, prunes, deliveries, poll replies.  Delay is not loss:
// nothing may be lost and nobody may fail over.
TEST_F(ChaosScenario, DelaySpikesCauseNoLossAndNoFailover) {
  FaultRule spikes;
  spikes.kind = FaultKind::kDelay;
  spikes.from = 1;  // Primary -> everyone
  spikes.probability = 0.5;
  spikes.delay = milliseconds(5);
  spikes.delay_jitter = milliseconds(10);

  // The spikes also delay poll replies.  This scenario asserts that delay
  // is absorbed, not that the detector tolerates it, so widen the bound
  // (15 ms worst-case spike + sanitizer/CI scheduling noise must never
  // reach it): 25 ms * (5+1) = 150 ms.
  SystemOptions options = chaos_options(use_seed(1002), {spikes});
  options.detector_poll = milliseconds(25);
  options.detector_misses = 5;
  EdgeSystem system(options, chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  system.stop();

  EXPECT_GT(system.faults()->injected(FaultKind::kDelay), 0u);
  EXPECT_FALSE(system.backup().is_primary()) << "delay caused a failover";
  for (std::size_t i = 0; i < system.publisher_count(); ++i) {
    EXPECT_EQ(system.publisher(i).failover_count(), 0u);
  }
  expect_zero_loss(system, 0);
  expect_zero_loss(system, 2);
  expect_loss_within_li(system, 1, 3);
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

// Scenario 3: Primary crashes in the middle of a loss burst on the
// retained topic's ΔPB link.  Failover must complete within the
// detector's bound (plus scheduling margin) and the retention replay
// must leave the zero-loss topics gapless.
TEST_F(ChaosScenario, PrimaryCrashMidBurstMeetsFailoverBound) {
  EdgeSystem system(chaos_options(use_seed(1003), {}), chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // Open the burst, then kill the Primary while it is active.
  FaultRule burst;
  burst.kind = FaultKind::kDrop;
  burst.from = 100;  // topic 0's publisher
  burst.to = 1;
  burst.type_tag = kPublishTag;
  burst.max_count = 2;  // within topic 0's retention Ni = 2
  system.faults()->add_rule(burst);

  const MonotonicClock clock;
  const TimePoint crash_at = clock.now();
  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  const Duration failover_took = clock.now() - crash_at;
  EXPECT_LE(failover_took, system.detection_bound() + kSchedulingMargin)
      << "failover took " << to_millis(failover_took) << " ms against a "
      << to_millis(system.detection_bound()) << " ms detection bound";

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  system.stop();

  EXPECT_TRUE(system.backup().is_primary());
  expect_zero_loss(system, 0);
  expect_zero_loss(system, 2);
  expect_loss_within_li(system, 1, 3);
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

// Scenario 4: the Backup crashes.  The Primary must detect it within the
// bound, keep serving without replication (degraded mode), reintegrate
// the restarted Backup, and then survive its own crash.
TEST_F(ChaosScenario, BackupCrashDegradesThenReintegrates) {
  EdgeSystem system(chaos_options(use_seed(1004), {}), chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  system.crash_backup();
  ASSERT_TRUE(
      system.wait_for_degraded(system.detection_bound() + kSchedulingMargin))
      << "Primary never noticed its Backup died";
  EXPECT_GE(system.primary().degraded_entries(), 1u);

  // Degraded operation: dispatches continue while replication is off.
  const std::uint64_t delivered_before = system.messages_delivered();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GT(system.messages_delivered(), delivered_before)
      << "degraded Primary stopped delivering";

  // Reintegration: the restarted Backup announces itself and replication
  // resumes (sync set + fresh replicas).
  system.rejoin_crashed_backup();
  ASSERT_TRUE(system.wait_for_replication_restored(seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GT(system.backup().backup_stats().replicas_received, 0u);

  // The reintegrated Backup is a real backup: crash the Primary into it.
  system.crash_primary();
  ASSERT_TRUE(system.wait_for_failover(seconds(5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();

  EXPECT_TRUE(system.backup().is_primary());
  expect_zero_loss(system, 0);
  expect_zero_loss(system, 2);
  expect_loss_within_li(system, 1, 3);
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

// Scenario 5: full partition of the Primary (both directions, all peers),
// then heal.  The partition looks exactly like a crash from outside:
// failover must complete; after healing, delivery continues through the
// promoted broker and the loss budgets still hold.
TEST_F(ChaosScenario, PartitionedPrimaryFailsOverThenHeals) {
  EdgeSystem system(chaos_options(use_seed(1005), {}), chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  FaultRule partition;
  partition.kind = FaultKind::kPartition;
  partition.from = kAnyNode;
  partition.to = 1;  // isolate the Primary from every peer
  const std::size_t rule_id = system.faults()->add_rule(partition);

  ASSERT_TRUE(system.wait_for_failover(seconds(5)))
      << "partitioned Primary did not trigger failover";
  EXPECT_GT(system.faults()->injected(FaultKind::kPartition), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  system.faults()->retire_rule(rule_id);  // heal
  const std::uint64_t delivered_at_heal = system.messages_delivered();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  system.stop();

  EXPECT_TRUE(system.backup().is_primary());
  EXPECT_GT(system.messages_delivered(), delivered_at_heal)
      << "no progress after the partition healed";
  expect_zero_loss(system, 0);
  expect_loss_within_li(system, 1, 3);
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

// Scenario 6: corruption and truncation on the wire.  Every mangled frame
// must be stopped by the CRC32C gate (counted, never decoded), and the
// loss budgets absorb the corrupted publishes.
TEST_F(ChaosScenario, CorruptAndTruncatedFramesNeverReachEngines) {
  FaultRule corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.from = 101;  // topic 1's publisher
  corrupt.to = 1;
  corrupt.type_tag = kPublishTag;
  corrupt.max_count = 3;  // exactly Li consecutive corrupted publishes
  corrupt.start = milliseconds(250);

  FaultRule truncate;
  truncate.kind = FaultKind::kTruncate;
  truncate.from = 1;  // Primary -> Backup replicas
  truncate.to = 2;
  truncate.type_tag = kReplicateTag;
  truncate.max_count = 3;

  EdgeSystem system(chaos_options(use_seed(1006), {corrupt, truncate}),
                    chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  system.stop();

  // Every injected fault was caught at the CRC gate of the receiving
  // endpoint: nothing corrupted was ever decoded.
  EXPECT_EQ(system.faults()->injected(FaultKind::kCorrupt), 3u);
  EXPECT_EQ(system.faults()->injected(FaultKind::kTruncate), 3u);
  EXPECT_EQ(system.primary().corrupt_frames(), 3u);
  EXPECT_EQ(system.backup().corrupt_frames(), 3u);

  // A corrupted publish is a lost publish — within Li — and the truncated
  // replicas cost nothing while the Primary is alive.
  expect_zero_loss(system, 0);
  expect_zero_loss(system, 2);
  expect_loss_within_li(system, 1, 3);
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

// Scenario 7: the fault layer and CRC gate work over real TCP sockets
// exactly as over the in-process bus: a bounded loss burst plus corrupted
// publishes on one ΔPB link, absorbed within Li.
TEST_F(ChaosScenario, LossBurstAndCorruptionOverTcp) {
  FaultRule burst;
  burst.kind = FaultKind::kDrop;
  burst.from = 101;
  burst.to = 1;
  burst.type_tag = kPublishTag;
  burst.max_count = 3;
  burst.start = milliseconds(300);

  FaultRule corrupt;
  corrupt.kind = FaultKind::kCorrupt;
  corrupt.from = 101;
  corrupt.to = 1;
  corrupt.type_tag = kPublishTag;
  corrupt.max_count = 2;
  corrupt.start = milliseconds(900);  // a separate, later burst

  EdgeSystem system(
      chaos_options(use_seed(1007), {burst, corrupt}, Transport::kTcp),
      chaos_deployment());
  arm_accountant(system);
  system.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1600));
  system.stop();

  EXPECT_EQ(system.faults()->injected(FaultKind::kDrop), 3u);
  EXPECT_EQ(system.faults()->injected(FaultKind::kCorrupt), 2u);
  EXPECT_EQ(system.primary().corrupt_frames(), 2u);
  expect_zero_loss(system, 0);
  expect_zero_loss(system, 2);
  expect_loss_within_li(system, 1, 3);
  for (const TopicId topic : {0u, 1u, 2u}) {
    expect_accountant_within_budget(topic);
  }
}

}  // namespace
}  // namespace frame::runtime
