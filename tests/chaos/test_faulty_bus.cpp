// FaultyBus unit tests: every fault kind, rule windows/filters/limits,
// dynamic scripting, and determinism per seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "chaos_util.hpp"
#include "net/faulty_bus.hpp"
#include "net/inproc_bus.hpp"
#include "net/wire.hpp"

namespace frame {
namespace {

constexpr NodeId kSender = 1;
constexpr NodeId kReceiver = 2;

/// A FaultyBus over a zero-latency InprocBus with one recording receiver.
class FaultyBusTest : public chaos::ChaosTest {
 protected:
  void build(FaultPlan plan) {
    auto inner = std::make_unique<InprocBus>();
    inner->set_default_latency(0);
    bus_ = std::make_unique<FaultyBus>(std::move(inner), std::move(plan));
    bus_->register_endpoint(kSender, [](NodeId, std::vector<std::uint8_t>) {});
    bus_->register_endpoint(kReceiver,
                            [this](NodeId, std::vector<std::uint8_t> frame) {
                              std::lock_guard lock(mutex_);
                              received_.push_back(std::move(frame));
                            });
  }

  void TearDown() override {
    if (bus_) bus_->shutdown();
    chaos::ChaosTest::TearDown();
  }

  std::size_t received_count() {
    std::lock_guard lock(mutex_);
    return received_.size();
  }

  std::vector<std::vector<std::uint8_t>> received_snapshot() {
    std::lock_guard lock(mutex_);
    return received_;
  }

  /// Spin until the receiver saw `count` frames or `timeout` passed.
  bool wait_for_frames(std::size_t count,
                       Duration timeout = milliseconds(2000)) {
    const MonotonicClock clock;
    const TimePoint deadline = clock.now() + timeout;
    while (clock.now() < deadline) {
      if (received_count() >= count) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return received_count() >= count;
  }

  /// A sealed frame whose first payload byte is `tag` for identification.
  static std::vector<std::uint8_t> tagged_frame(std::uint8_t tag) {
    return encode_prune_frame(PruneFrame{tag, tag});
  }

  std::unique_ptr<FaultyBus> bus_;
  std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> received_;
};

TEST_F(FaultyBusTest, NoRulesPassesEverythingThrough) {
  build(FaultPlan{use_seed(11), {}});
  for (int i = 0; i < 20; ++i) {
    bus_->send(kSender, kReceiver, tagged_frame(static_cast<std::uint8_t>(i)));
  }
  EXPECT_TRUE(wait_for_frames(20));
  for (const auto& frame : received_snapshot()) {
    EXPECT_TRUE(frame_checksum_ok(frame));
  }
}

TEST_F(FaultyBusTest, DropRuleDropsAndCounts) {
  FaultRule rule;
  rule.kind = FaultKind::kDrop;
  build(FaultPlan{use_seed(12), {rule}});
  for (int i = 0; i < 10; ++i) {
    bus_->send(kSender, kReceiver, tagged_frame(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(received_count(), 0u);
  EXPECT_EQ(bus_->injected(FaultKind::kDrop), 10u);
}

TEST_F(FaultyBusTest, MaxCountRetiresTheRule) {
  FaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.max_count = 3;
  build(FaultPlan{use_seed(13), {rule}});
  for (int i = 0; i < 10; ++i) {
    bus_->send(kSender, kReceiver, tagged_frame(1));
  }
  // Exactly the first 3 are dropped; the remaining 7 arrive.
  EXPECT_TRUE(wait_for_frames(7));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(received_count(), 7u);
  EXPECT_EQ(bus_->injected(FaultKind::kDrop), 3u);
}

TEST_F(FaultyBusTest, DuplicateDeliversExtraCopies) {
  FaultRule rule;
  rule.kind = FaultKind::kDuplicate;
  rule.copies = 2;
  rule.max_count = 1;
  build(FaultPlan{use_seed(14), {rule}});
  bus_->send(kSender, kReceiver, tagged_frame(1));
  bus_->send(kSender, kReceiver, tagged_frame(2));
  // First frame tripled, second untouched.
  EXPECT_TRUE(wait_for_frames(4));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(received_count(), 4u);
  EXPECT_EQ(bus_->injected(FaultKind::kDuplicate), 1u);
}

TEST_F(FaultyBusTest, ReorderLetsLaterFramesOvertake) {
  FaultRule rule;
  rule.kind = FaultKind::kReorder;
  rule.delay = milliseconds(50);
  rule.max_count = 1;
  build(FaultPlan{use_seed(15), {rule}});
  bus_->send(kSender, kReceiver, tagged_frame(1));  // held 50 ms
  bus_->send(kSender, kReceiver, tagged_frame(2));  // passes straight through
  ASSERT_TRUE(wait_for_frames(2));
  const auto frames = received_snapshot();
  const auto first = decode_prune_frame(frames[0]);
  const auto second = decode_prune_frame(frames[1]);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->topic, 2u) << "frame 2 should overtake the held frame 1";
  EXPECT_EQ(second->topic, 1u);
  EXPECT_EQ(bus_->injected(FaultKind::kReorder), 1u);
}

TEST_F(FaultyBusTest, DelayHoldsButDelivers) {
  FaultRule rule;
  rule.kind = FaultKind::kDelay;
  rule.delay = milliseconds(30);
  build(FaultPlan{use_seed(16), {rule}});
  const TimePoint sent_at = bus_->now();
  bus_->send(kSender, kReceiver, tagged_frame(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(received_count(), 0u) << "frame must still be held";
  ASSERT_TRUE(wait_for_frames(1));
  EXPECT_GE(bus_->now() - sent_at, milliseconds(30));
}

TEST_F(FaultyBusTest, CorruptBreaksChecksumButDelivers) {
  FaultRule rule;
  rule.kind = FaultKind::kCorrupt;
  build(FaultPlan{use_seed(17), {rule}});
  for (int i = 0; i < 10; ++i) {
    bus_->send(kSender, kReceiver, tagged_frame(static_cast<std::uint8_t>(i)));
  }
  ASSERT_TRUE(wait_for_frames(10));
  for (const auto& frame : received_snapshot()) {
    EXPECT_FALSE(frame_checksum_ok(frame))
        << "every corrupted frame must fail the CRC32C gate";
    EXPECT_FALSE(decode_prune_frame(frame).has_value());
  }
  EXPECT_EQ(bus_->injected(FaultKind::kCorrupt), 10u);
}

TEST_F(FaultyBusTest, TruncateShortensAndChecksumCatches) {
  FaultRule rule;
  rule.kind = FaultKind::kTruncate;
  build(FaultPlan{use_seed(18), {rule}});
  const auto clean = tagged_frame(1);
  for (int i = 0; i < 10; ++i) {
    bus_->send(kSender, kReceiver, clean);
  }
  ASSERT_TRUE(wait_for_frames(10));
  for (const auto& frame : received_snapshot()) {
    EXPECT_LT(frame.size(), clean.size());
    EXPECT_FALSE(frame_checksum_ok(frame));
  }
}

TEST_F(FaultyBusTest, BlackholeIsOneWay) {
  FaultRule rule;
  rule.kind = FaultKind::kBlackhole;
  rule.from = kSender;
  rule.to = kReceiver;
  build(FaultPlan{use_seed(19), {rule}});
  std::atomic<int> at_sender{0};
  bus_->inner().register_endpoint(kSender, [&](NodeId,
                                               std::vector<std::uint8_t>) {
    at_sender.fetch_add(1);
  });
  bus_->send(kSender, kReceiver, tagged_frame(1));  // eaten
  bus_->send(kReceiver, kSender, tagged_frame(2));  // reverse passes
  const MonotonicClock clock;
  const TimePoint deadline = clock.now() + seconds(2);
  while (at_sender.load() < 1 && clock.now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(at_sender.load(), 1);
  EXPECT_EQ(received_count(), 0u);
  EXPECT_EQ(bus_->injected(FaultKind::kBlackhole), 1u);
}

TEST_F(FaultyBusTest, PartitionEatsBothDirections) {
  FaultRule rule;
  rule.kind = FaultKind::kPartition;
  rule.from = kSender;
  rule.to = kReceiver;
  build(FaultPlan{use_seed(20), {rule}});
  std::atomic<int> at_sender{0};
  bus_->inner().register_endpoint(kSender, [&](NodeId,
                                               std::vector<std::uint8_t>) {
    at_sender.fetch_add(1);
  });
  bus_->send(kSender, kReceiver, tagged_frame(1));
  bus_->send(kReceiver, kSender, tagged_frame(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(received_count(), 0u);
  EXPECT_EQ(at_sender.load(), 0);
  EXPECT_EQ(bus_->injected(FaultKind::kPartition), 2u);
}

TEST_F(FaultyBusTest, TypeTagFilterMatchesOnlyTaggedFrames) {
  FaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.type_tag = static_cast<std::uint8_t>(WireType::kPrune);
  build(FaultPlan{use_seed(21), {rule}});
  bus_->send(kSender, kReceiver, tagged_frame(1));  // kPrune: dropped
  bus_->send(kSender, kReceiver, encode_control_frame(WireType::kPoll));
  ASSERT_TRUE(wait_for_frames(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(received_count(), 1u);
  EXPECT_EQ(peek_type(received_snapshot()[0]), WireType::kPoll);
}

TEST_F(FaultyBusTest, WindowOpensAndCloses) {
  FaultRule rule;
  rule.kind = FaultKind::kDrop;
  rule.start = milliseconds(60);
  rule.stop = milliseconds(160);
  build(FaultPlan{use_seed(22), {rule}});

  bus_->send(kSender, kReceiver, tagged_frame(1));  // before window: passes
  ASSERT_TRUE(wait_for_frames(1));

  while (bus_->now() < milliseconds(80)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bus_->send(kSender, kReceiver, tagged_frame(2));  // inside window: dropped

  while (bus_->now() < milliseconds(180)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  bus_->send(kSender, kReceiver, tagged_frame(3));  // after window: passes
  ASSERT_TRUE(wait_for_frames(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(received_count(), 2u);
  EXPECT_EQ(bus_->injected(FaultKind::kDrop), 1u);
}

TEST_F(FaultyBusTest, RulesCanBeAddedAndRetiredMidRun) {
  build(FaultPlan{use_seed(23), {}});
  bus_->send(kSender, kReceiver, tagged_frame(1));
  ASSERT_TRUE(wait_for_frames(1));

  FaultRule rule;
  rule.kind = FaultKind::kDrop;
  const std::size_t id = bus_->add_rule(rule);
  bus_->send(kSender, kReceiver, tagged_frame(2));  // dropped
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(received_count(), 1u);

  bus_->retire_rule(id);  // heal
  bus_->send(kSender, kReceiver, tagged_frame(3));
  ASSERT_TRUE(wait_for_frames(2));
  EXPECT_EQ(bus_->injected(FaultKind::kDrop), 1u);
}

TEST_F(FaultyBusTest, ProbabilisticDropsAreDeterministicPerSeed) {
  // Run the identical send sequence through two separately-built buses
  // with the same plan seed: the surviving frame set must be identical.
  const std::uint64_t seed = use_seed(24);
  const auto run = [&](std::uint64_t plan_seed) {
    FaultRule rule;
    rule.kind = FaultKind::kDrop;
    rule.probability = 0.5;
    auto inner = std::make_unique<InprocBus>();
    inner->set_default_latency(0);
    FaultyBus bus(std::move(inner), FaultPlan{plan_seed, {rule}});
    std::mutex mutex;
    std::vector<std::uint32_t> survivors;
    bus.register_endpoint(kSender, [](NodeId, std::vector<std::uint8_t>) {});
    bus.register_endpoint(kReceiver,
                          [&](NodeId, std::vector<std::uint8_t> frame) {
                            const auto prune = decode_prune_frame(frame);
                            std::lock_guard lock(mutex);
                            if (prune) survivors.push_back(prune->topic);
                          });
    for (std::uint32_t i = 0; i < 64; ++i) {
      bus.send(kSender, kReceiver, encode_prune_frame(PruneFrame{i, i}));
    }
    const MonotonicClock clock;
    const TimePoint deadline = clock.now() + seconds(2);
    const std::uint64_t expected = 64 - bus.injected(FaultKind::kDrop);
    while (clock.now() < deadline) {
      {
        std::lock_guard lock(mutex);
        if (survivors.size() >= expected) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    bus.shutdown();
    std::lock_guard lock(mutex);
    return survivors;
  };

  const auto first = run(seed);
  const auto second = run(seed);
  const auto different = run(seed + 1);
  EXPECT_EQ(first, second) << "same seed must replay the same fault pattern";
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 64u) << "p=0.5 should drop something in 64 frames";
  EXPECT_NE(first, different) << "a different seed should perturb the pattern";
}

}  // namespace
}  // namespace frame
