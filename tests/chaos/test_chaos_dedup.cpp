// Deterministic regression for the promotion-path dedup: the retention
// resends that follow a failover overlap the recovery set the promoted
// broker already dispatched, and that overlap must be suppressed at the
// broker — each sequence reaches the subscriber exactly once, with no gap.
//
// Scripted at the RuntimeBroker level (no fault randomness): a Backup is
// fed replicas 1..5, its "Primary" never answers polls so it promotes,
// then a publisher resends 3..7.  The 3..5 overlap must be suppressed,
// 6..7 admitted, and 1..7 delivered exactly once each.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "broker/config.hpp"
#include "net/inproc_bus.hpp"
#include "runtime/runtime_broker.hpp"

namespace frame::runtime {
namespace {

constexpr NodeId kDeadPrimary = 1;
constexpr NodeId kBackupNode = 2;
constexpr NodeId kSubscriber = 10;
constexpr NodeId kPublisher = 100;

TEST(ChaosDedup, RetentionReplayDeliversEachSeqExactlyOnce) {
  InprocBus bus;
  bus.set_default_latency(0);
  const MonotonicClock clock;

  RuntimeBroker::Options options;
  options.node = kBackupNode;
  options.peer = kDeadPrimary;
  options.start_as_primary = false;
  options.broker = broker_config(ConfigName::kFrame);
  options.poll_period = milliseconds(5);
  options.poll_miss_threshold = 2;

  const std::vector<TopicSpec> topics = {TopicSpec{
      0, milliseconds(100), milliseconds(150), 0, 2, Destination::kEdge}};
  TimingParams timing;
  timing.delta_pb = milliseconds(5);
  timing.delta_bs_edge = milliseconds(1);
  timing.delta_bs_cloud = milliseconds(20);
  timing.delta_bb = milliseconds(1);
  timing.failover_x = milliseconds(60);

  RuntimeBroker broker(bus, clock, options, topics, timing);
  broker.subscribe(0, kSubscriber);

  std::mutex mutex;
  std::map<SeqNo, int> delivered;  // seq -> copies seen at the subscriber
  bus.register_endpoint(kSubscriber,
                        [&](NodeId, std::vector<std::uint8_t> frame) {
                          if (const auto msg = decode_message_frame(frame)) {
                            std::lock_guard lock(mutex);
                            delivered[msg->seq] += 1;
                          }
                        });
  bus.register_endpoint(kDeadPrimary,
                        [](NodeId, std::vector<std::uint8_t>) {});
  bus.register_endpoint(kPublisher, [](NodeId, std::vector<std::uint8_t>) {});

  // The Primary replicated 1..5 before dying.
  for (SeqNo seq = 1; seq <= 5; ++seq) {
    const Message msg = make_test_message(0, seq, clock.now());
    bus.send(kDeadPrimary, kBackupNode,
             encode_message_frame(WireType::kReplicate, msg));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(broker.backup_stats().replicas_received, 5u);

  // The "Primary" never answers the Backup's polls: promotion follows,
  // dispatching the recovery set 1..5.
  broker.start();
  const TimePoint deadline = clock.now() + seconds(5);
  while (!broker.is_primary() && clock.now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(broker.is_primary()) << "backup never promoted";

  // Retention replay from the publisher overlaps the recovery set.
  for (SeqNo seq = 3; seq <= 7; ++seq) {
    Message msg = make_test_message(0, seq, clock.now());
    msg.recovered = true;
    bus.send(kPublisher, kBackupNode,
             encode_message_frame(WireType::kResend, msg));
  }

  // Wait for 1..7 to land, then settle to catch any stray duplicate.
  const TimePoint all_deadline = clock.now() + seconds(5);
  while (clock.now() < all_deadline) {
    {
      std::lock_guard lock(mutex);
      if (delivered.size() >= 7) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  broker.stop();
  bus.shutdown();

  std::lock_guard lock(mutex);
  ASSERT_EQ(delivered.size(), 7u) << "gap in 1..7 after replay";
  for (SeqNo seq = 1; seq <= 7; ++seq) {
    ASSERT_TRUE(delivered.count(seq)) << "seq " << seq << " never delivered";
    EXPECT_EQ(delivered[seq], 1) << "seq " << seq << " double-delivered";
  }
  EXPECT_EQ(broker.duplicates_suppressed(), 3u) << "resends 3..5 overlap";
}

}  // namespace
}  // namespace frame::runtime
