// Chaos x SLO monitor x flight recorder: a scripted ΔPB delay spike makes
// the broker dispatch past Lemma 2 deadlines; the burn-rate alert must
// fire (critical -> 503 /healthz), the flight recorder must freeze exactly
// one post-mortem bundle, and the bundle's stitched span timeline must
// agree with the DeadlineAccountant counts frozen in the same bundle.
// Runs at 1 and 4 Primary shards: the trigger path and the per-shard SLO
// fold must behave identically under the sharded hot path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos_util.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/stitch.hpp"
#include "runtime/system.hpp"

namespace frame::runtime {
namespace {

using chaos::ChaosTest;

constexpr std::uint8_t kPublishTag =
    static_cast<std::uint8_t>(WireType::kPublish);

TimingParams slo_chaos_timing() {
  TimingParams params;
  params.delta_pb = milliseconds(5);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = milliseconds(1);
  params.failover_x = milliseconds(60);
  return params;
}

std::vector<ProxyGroup> slo_chaos_deployment() {
  return {
      // Topic 0 is the victim: Di = 150 ms with a loss budget so large the
      // delay-induced arrival reordering can never breach Li — the ONLY
      // flight-recorder trigger in this scenario is the Lemma 2 miss, so
      // the bundle's reason is deterministic.
      ProxyGroup{milliseconds(100),
                 {TopicSpec{0, milliseconds(100), milliseconds(150), 100, 0,
                            Destination::kEdge}}},
      // Topic 1 stays healthy as a control.
      ProxyGroup{milliseconds(100),
                 {TopicSpec{1, milliseconds(100), milliseconds(150), 3, 0,
                            Destination::kEdge}}},
  };
}

class TempBundleDir {
 public:
  TempBundleDir() {
    char tmpl[] = "/tmp/frame-chaos-slo-XXXXXX";
    path_ = ::mkdtemp(tmpl);
  }
  ~TempBundleDir() {
    if (path_.empty()) return;
    const std::string cmd = "rm -rf '" + path_ + "'";
    (void)!std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Sums the "dispatch_misses" fields of the manifest's per-topic
/// accountant lines: `topic N dispatches X dispatch_misses Y ...`.
std::uint64_t manifest_dispatch_misses(const std::string& manifest) {
  std::uint64_t total = 0;
  std::istringstream lines(manifest);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("topic ", 0) != 0) continue;
    std::istringstream fields(line);
    std::string word;
    while (fields >> word) {
      if (word == "dispatch_misses") {
        std::uint64_t misses = 0;
        if (fields >> misses) total += misses;
        break;
      }
    }
  }
  return total;
}

class ChaosSlo : public ChaosTest {
 protected:
  void TearDown() override {
    obs::flight_recorder().set_directory("");
    obs::flight_recorder().reset();
    obs::set_enabled(false);
    ChaosTest::TearDown();
  }

  void run(std::size_t shards, std::uint64_t seed_fallback) {
    TempBundleDir bundles;
    ASSERT_FALSE(bundles.path().empty());
    obs::flight_recorder().set_directory(bundles.path());
    obs::flight_recorder().reset();

    // Hold topic 0's publishes for 400 ms on the publisher->Primary link.
    // The engine's observed-ΔPB correction then stamps dispatch deadlines
    // that are already ~250 ms in the past (Di = 150 ms), so every spiked
    // message is a guaranteed Lemma 2 miss at dispatch.
    FaultRule spike;
    spike.kind = FaultKind::kDelay;
    spike.from = 100;  // topic 0's publisher
    spike.to = 1;      // Primary
    spike.type_tag = kPublishTag;
    spike.probability = 1.0;
    spike.delay = milliseconds(400);
    spike.start = milliseconds(250);
    spike.stop = milliseconds(650);

    SystemOptions options;
    options.config = ConfigName::kFrame;
    options.timing = slo_chaos_timing();
    options.fault_plan = FaultPlan{use_seed(seed_fallback), {spike}};
    options.shards = shards;
    // The spike only holds kPublish frames, so detector polls flow freely —
    // but on a loaded 1-vCPU runner the poll *threads* can starve.  A
    // spurious failover would latch the flight recorder with the wrong
    // reason and reroute the publisher away from the spiked link, so widen
    // the detector bound well past scheduler noise: 50 ms * (7+1) = 400 ms.
    options.detector_poll = milliseconds(50);
    options.detector_misses = 7;

    EdgeSystem system(options, slo_chaos_deployment());
    obs::set_enabled(true);
    obs::reset_all();
    obs::accountant().configure(system.topics());
    obs::slo().configure(system.topics());
    obs::slo().set_rules(obs::SloMonitor::default_rules());

    system.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(1400));

    // The miss burst is inside the short window of the latest event time:
    // the fast-burn Lemma 2 rule must be firing, critically.
    const auto states = obs::slo().evaluate(obs::slo().latest_now());
    bool lemma2_firing = false;
    for (const auto& state : states) {
      if (state.rule.name == "lemma2-burn-fast") lemma2_firing = state.firing;
    }
    EXPECT_TRUE(lemma2_firing) << obs::slo().alerts_json(0);
    EXPECT_TRUE(obs::slo().critical_firing());

    // /alerts carries the firing rule; /healthz flips 503 with a reason.
    const std::string alerts = obs::slo().alerts_json(0);
    EXPECT_NE(alerts.find("lemma2-burn-fast"), std::string::npos);
    EXPECT_NE(alerts.find("\"firing\":true"), std::string::npos) << alerts;
    int status = 0;
    const std::string healthz = system.healthz_json(&status);
    EXPECT_EQ(status, 503) << healthz;
    EXPECT_NE(healthz.find("critical alert firing"), std::string::npos)
        << healthz;

    system.stop();

    // Exactly one bundle despite a whole burst of misses (plus the
    // critical-alert trigger from the evaluation above).
    EXPECT_GE(obs::flight_recorder().triggers_seen(), 2u);
    ASSERT_EQ(obs::flight_recorder().bundles_written(), 1u);
    const std::string bundle = obs::flight_recorder().last_bundle_path();
    ASSERT_FALSE(bundle.empty());

    const std::string manifest = slurp(bundle + "/manifest.txt");
    ASSERT_NE(manifest.find("frame-postmortem v1"), std::string::npos);
    EXPECT_NE(manifest.find("reason lemma2-miss"), std::string::npos)
        << manifest;
    EXPECT_NE(manifest.find("chaos_seed " + std::to_string(seed_)),
              std::string::npos)
        << "bundle must record the FaultPlan seed for replay";

    // The stitched timeline and the accountant counts were frozen at the
    // same instant; they must tell the same story.  Count dispatch spans
    // that executed past their deadline (negative dd slack) and compare
    // with the manifest's accountant fold.  A small tolerance absorbs
    // hook-ordering races between the trace ring and the accountant.
    const auto dumps = obs::parse_dumps(slurp(bundle + "/trace.dump"));
    ASSERT_EQ(dumps.size(), 1u);
    const obs::StitchReport report = obs::stitch(dumps);
    std::uint64_t stitched_misses = 0;
    for (const auto& stitched : report.events) {
      const obs::SpanEvent& ev = stitched.event;
      if (ev.kind == obs::SpanKind::kDispatchStart &&
          ev.dd_slack != kDurationInfinite && ev.dd_slack < 0) {
        ++stitched_misses;
      }
    }
    const std::uint64_t accounted = manifest_dispatch_misses(manifest);
    EXPECT_GE(stitched_misses, 1u) << "bundle timeline shows no miss";
    EXPECT_LE(stitched_misses >= accounted ? stitched_misses - accounted
                                           : accounted - stitched_misses,
              3u)
        << "stitched=" << stitched_misses << " accountant=" << accounted;

    // The frozen SLO document already reports the burn.
    const std::string slo_doc = slurp(bundle + "/slo.json");
    EXPECT_NE(slo_doc.find("\"topics\""), std::string::npos);
  }
};

TEST_F(ChaosSlo, DelaySpikeFiresBurnAlertAndWritesOneBundleOneShard) {
  run(/*shards=*/1, /*seed_fallback=*/9101);
}

TEST_F(ChaosSlo, DelaySpikeFiresBurnAlertAndWritesOneBundleFourShards) {
  run(/*shards=*/4, /*seed_fallback=*/9104);
}

}  // namespace
}  // namespace frame::runtime
