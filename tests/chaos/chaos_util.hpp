// Shared plumbing for the chaos suite: seed selection and reporting.
//
// Every chaos scenario derives its FaultPlan from a single seed so a
// failure is replayable.  The seed comes from FRAME_CHAOS_SEED when set
// (so CI or a developer can sweep seeds) and falls back to the scenario's
// fixed default; on failure the fixture prints the exact environment
// setting that reproduces the run.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace frame::chaos {

/// The suite seed: FRAME_CHAOS_SEED if set and parseable, else `fallback`.
inline std::uint64_t chaos_seed(std::uint64_t fallback) {
  if (const char* env = std::getenv("FRAME_CHAOS_SEED")) {
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return parsed;
  }
  return fallback;
}

/// Fixture that remembers the seed in play and prints the reproduction
/// command when any assertion in the test failed.
class ChaosTest : public ::testing::Test {
 protected:
  std::uint64_t use_seed(std::uint64_t fallback) {
    seed_ = chaos_seed(fallback);
    return seed_;
  }

  void TearDown() override {
    if (HasFailure()) {
      std::fprintf(stderr,
                   "[  CHAOS   ] reproduce with FRAME_CHAOS_SEED=%llu\n",
                   static_cast<unsigned long long>(seed_));
    }
  }

  std::uint64_t seed_ = 0;
};

}  // namespace frame::chaos
