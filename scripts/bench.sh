#!/usr/bin/env bash
# Release-forced bench run + regression gate.
#
#   scripts/bench.sh                 # run all suites, diff vs committed
#                                    # baselines, fail on >10% regressions
#   scripts/bench.sh --update        # run and overwrite the committed
#                                    # BENCH_*.json baselines (+ archive)
#   scripts/bench.sh --quick         # shorter runs (CI smoke)
#
# The bench binaries (bench/harness) link frame_release, compiled
# -O2 -DNDEBUG regardless of the top-level build type, and refuse to emit
# gated JSON from sanitized builds — so this script is safe to run from
# any build directory.  Baselines live at the repo root (BENCH_micro.json,
# BENCH_tcp.json, BENCH_e2e.json); every fresh run is archived under
# results/history/<date>-<sha>/ for the trajectory record.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${FRAME_BUILD_DIR:-$repo/build}"
update=0
quick_flag=""
for arg in "$@"; do
  case "$arg" in
    --update) update=1 ;;
    --quick)  quick_flag="--quick" ;;
    *) echo "usage: scripts/bench.sh [--update] [--quick]" >&2; exit 2 ;;
  esac
done

cmake -B "$build_dir" -S "$repo" >/dev/null
cmake --build "$build_dir" -j "$(nproc)" \
    --target bench_all frame_bench_diff >/dev/null

run_dir="$(mktemp -d)"
trap 'rm -rf "$run_dir"' EXIT
echo "--- bench_all (release-forced) ---"
"$build_dir/bench/harness/bench_all" --out-dir="$run_dir" $quick_flag

sha="$(git -C "$repo" rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
archive="$repo/results/history/$(date -u +%Y-%m-%d)-$sha"
mkdir -p "$archive"
cp "$run_dir"/BENCH_*.json "$archive/"
echo "archived to ${archive#"$repo"/}"

if [[ "$update" == "1" ]]; then
  cp "$run_dir"/BENCH_*.json "$repo/"
  echo "baselines updated: BENCH_micro.json BENCH_tcp.json BENCH_e2e.json"
  exit 0
fi

failed=0
for suite in micro tcp e2e; do
  baseline="$repo/BENCH_$suite.json"
  fresh="$run_dir/BENCH_$suite.json"
  if [[ ! -f "$baseline" ]]; then
    echo "bench.sh: no committed baseline $baseline (run with --update)" >&2
    failed=1
    continue
  fi
  echo "--- diff: $suite ---"
  if ! "$build_dir/examples/frame_bench_diff" "$baseline" "$fresh"; then
    failed=1
    echo "bench.sh: $suite regressed; reproduce with:" >&2
    echo "  $build_dir/bench/harness/bench_all --suite=$suite --out-dir=/tmp" >&2
    echo "  $build_dir/examples/frame_bench_diff $baseline /tmp/BENCH_$suite.json" >&2
    echo "bench.sh: if the change is intentional: scripts/bench.sh --update" >&2
  fi
done

if [[ "$failed" != "0" ]]; then
  echo "bench.sh: FAILED (gated regression past threshold)" >&2
  exit 1
fi
echo "bench.sh: OK"
