#!/usr/bin/env bash
# Configure, build, and run the full test suite in one step.
#
#   scripts/check.sh                 # plain build into build/
#   FRAME_SANITIZE=thread scripts/check.sh     # TSan build into build-tsan/
#   FRAME_SANITIZE=address scripts/check.sh    # ASan+UBSan into build-asan/
#   FRAME_SANITIZE=undefined scripts/check.sh  # UBSan into build-ubsan/
#   FRAME_CHAOS=1 scripts/check.sh   # chaos suite under ASan and TSan
#   FRAME_BENCH=1 scripts/check.sh   # + release bench run diffed against
#                                    #   the committed BENCH_*.json baselines
#
# Extra arguments are forwarded to ctest, e.g.
#   scripts/check.sh -R Obs          # only the observability tests
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${FRAME_SANITIZE:-}"

# Bench mode: run the release-forced suites and gate on >10% regressions
# vs the committed baselines.  Delegated to scripts/bench.sh, which prints
# the reproducing commands when a series regresses.
if [[ "${FRAME_BENCH:-0}" == "1" ]]; then
  "$repo/scripts/bench.sh" "$@"
  exit 0
fi

# Chaos mode: build the chaos suite under both ASan(+UBSan) and TSan and
# run it with fixed seeds, so every scheduled fault scenario is exercised
# with memory and race checking.  Seeds can be widened via FRAME_CHAOS_SEED.
# Every scenario runs at FRAME_SHARDS=1 (the pre-sharding broker) and
# FRAME_SHARDS=4 (partitioned hot path), and the TSan build additionally
# runs the sharded-runtime and MPSC-ring suites — the lock-free hand-off
# and the shard lanes are exactly what TSan exists to certify.
if [[ "${FRAME_CHAOS:-0}" == "1" ]]; then
  for sanitize in address thread; do
    build_dir="$repo/build-$([[ $sanitize == address ]] && echo asan || echo tsan)"
    cmake -B "$build_dir" -S "$repo" -DFRAME_SANITIZE="$sanitize"
    cmake --build "$build_dir" -j "$(nproc)" --target test_chaos
    for shards in 1 4; do
      echo "--- chaos suite under $sanitize sanitizer (FRAME_SHARDS=$shards) ---"
      FRAME_SHARDS=$shards "$build_dir/tests/test_chaos" "$@"
    done
  done
  tsan_dir="$repo/build-tsan"
  cmake --build "$tsan_dir" -j "$(nproc)" --target test_runtime test_common
  echo "--- sharded runtime under TSan (FRAME_SHARDS=4) ---"
  FRAME_SHARDS=4 "$tsan_dir/tests/test_runtime" --gtest_filter='ShardedRuntime*'
  echo "--- MPSC ring stress under TSan ---"
  "$tsan_dir/tests/test_common" --gtest_filter='MpscRing*'
  echo "chaos suite: OK"
  exit 0
fi

case "$sanitize" in
  "")        build_dir="$repo/build" ;;
  thread)    build_dir="$repo/build-tsan" ;;
  address)   build_dir="$repo/build-asan" ;;
  undefined) build_dir="$repo/build-ubsan" ;;
  *) echo "error: FRAME_SANITIZE must be empty, 'thread', 'address', or" \
          "'undefined'" >&2
     exit 2 ;;
esac

cmake -B "$build_dir" -S "$repo" -DFRAME_SANITIZE="$sanitize"
cmake --build "$build_dir" -j "$(nproc)"
# Shard matrix: the runtime tests construct EdgeSystems with shards=0
# (auto), which resolves through FRAME_SHARDS — so one binary covers both
# the pre-sharding broker and the partitioned hot path.
for shards in 1 4; do
  echo "--- test suite with FRAME_SHARDS=$shards ---"
  FRAME_SHARDS=$shards \
      ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
done

# Smoke test: the real TCP wire path end to end (publish -> broker ->
# subscriber over loopback sockets through the epoll reactor).
echo "--- tcp_wire_demo smoke test ---"
"$build_dir/examples/tcp_wire_demo" >/dev/null
echo "tcp_wire_demo: OK"

# Smoke test: live telemetry endpoint plus the trace stitch pipeline.
# frame_stats --serve prints TELEMETRY_PORT=N before the scenario starts;
# scrape /metrics and /healthz mid-run, then stitch the dump it wrote into
# Perfetto JSON and check the file parses.
echo "--- telemetry + stitch smoke test ---"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
"$build_dir/examples/frame_stats" --serve \
    --trace-out "$smoke_dir/edge.trace" \
    >"$smoke_dir/stats.out" 2>/dev/null &
stats_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^TELEMETRY_PORT=\([0-9]*\)$/\1/p' "$smoke_dir/stats.out")"
  [[ -n "$port" ]] && break
  sleep 0.05
done
if [[ -z "$port" ]]; then
  echo "error: frame_stats --serve never announced a telemetry port" >&2
  kill "$stats_pid" 2>/dev/null || true
  exit 1
fi
curl -sf "http://127.0.0.1:$port/metrics" \
    | grep -q '^frame_trace_dropped_total ' \
    || { echo "error: /metrics missing frame_trace_dropped_total" >&2; exit 1; }
curl -sf "http://127.0.0.1:$port/healthz" | grep -q '"status"' \
    || { echo "error: /healthz missing status field" >&2; exit 1; }
wait "$stats_pid"
"$build_dir/examples/frame_analyze" --stitch "$smoke_dir/edge.trace" \
    --perfetto "$smoke_dir/edge.perfetto.json" >/dev/null
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$smoke_dir/edge.perfetto.json"
echo "telemetry + stitch: OK"

# Smoke test: SLO alerts + flight recorder end to end.  frame_stats --serve
# crashes its Primary mid-run; with FRAME_POSTMORTEM_DIR armed the failover
# trigger must freeze exactly one post-mortem bundle, /alerts must serve the
# evaluated rule table, /healthz must flip to 503 while the promoted Backup
# serves without a live peer, and frame_analyze --postmortem must be able to
# read the bundle back.
echo "--- flight recorder + SLO alerts smoke test ---"
pm_dir="$smoke_dir/postmortem"
mkdir -p "$pm_dir"
FRAME_POSTMORTEM_DIR="$pm_dir" "$build_dir/examples/frame_stats" --serve \
    >"$smoke_dir/slo.out" 2>/dev/null &
slo_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^TELEMETRY_PORT=\([0-9]*\)$/\1/p' "$smoke_dir/slo.out")"
  [[ -n "$port" ]] && break
  sleep 0.05
done
if [[ -z "$port" ]]; then
  echo "error: frame_stats --serve (flight recorder run) announced no port" >&2
  kill "$slo_pid" 2>/dev/null || true
  exit 1
fi
curl -sf "http://127.0.0.1:$port/alerts" | grep -q '"alerts"' \
    || { echo "error: /alerts missing alert table" >&2; exit 1; }
curl -sf "http://127.0.0.1:$port/slo.json" | grep -q '"topics"' \
    || { echo "error: /slo.json missing topics" >&2; exit 1; }
health_503=""
for _ in $(seq 1 200); do
  code="$(curl -s -o "$smoke_dir/healthz.json" -w '%{http_code}' \
      "http://127.0.0.1:$port/healthz" || true)"
  if [[ "$code" == "503" ]]; then health_503=yes; break; fi
  sleep 0.05
done
if [[ -z "$health_503" ]]; then
  echo "error: /healthz never returned 503 after the scripted crash" >&2
  kill "$slo_pid" 2>/dev/null || true
  exit 1
fi
grep -q '"reason"' "$smoke_dir/healthz.json" \
    || { echo "error: 503 /healthz body carries no reason" >&2; exit 1; }
wait "$slo_pid"
bundle_count="$(find "$pm_dir" -maxdepth 1 -type d -name 'frame-postmortem-*' \
    | wc -l)"
if [[ "$bundle_count" != "1" ]]; then
  echo "error: expected exactly 1 post-mortem bundle, found $bundle_count" >&2
  exit 1
fi
bundle="$(find "$pm_dir" -maxdepth 1 -type d -name 'frame-postmortem-*')"
grep -q '^frame-postmortem v1$' "$bundle/manifest.txt" \
    || { echo "error: bundle manifest missing magic" >&2; exit 1; }
"$build_dir/examples/frame_analyze" --postmortem "$bundle" >/dev/null \
    || { echo "error: frame_analyze --postmortem rejected the bundle" >&2
         exit 1; }

# Fatal-signal path: SIGSEGV must leave an async-signal-safe crash record
# (pre-formatted at arm time; the handler only open/write/closes).
FRAME_POSTMORTEM_DIR="$pm_dir" "$build_dir/examples/frame_stats" --serve \
    >"$smoke_dir/crash.out" 2>/dev/null &
crash_pid=$!
for _ in $(seq 1 100); do
  grep -q '^TELEMETRY_PORT=' "$smoke_dir/crash.out" && break
  sleep 0.05
done
kill -SEGV "$crash_pid" 2>/dev/null || true
wait "$crash_pid" 2>/dev/null || true
grep -q '^frame-crash-record v1$' "$pm_dir/crash-record.txt" \
    || { echo "error: SIGSEGV left no crash record" >&2; exit 1; }
grep -q '^signo 011$' "$pm_dir/crash-record.txt" \
    || { echo "error: crash record signo not patched" >&2; exit 1; }
echo "flight recorder + SLO alerts: OK"
