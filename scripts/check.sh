#!/usr/bin/env bash
# Configure, build, and run the full test suite in one step.
#
#   scripts/check.sh                 # plain build into build/
#   FRAME_SANITIZE=thread scripts/check.sh    # TSan build into build-tsan/
#   FRAME_SANITIZE=address scripts/check.sh   # ASan+UBSan into build-asan/
#
# Extra arguments are forwarded to ctest, e.g.
#   scripts/check.sh -R Obs          # only the observability tests
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${FRAME_SANITIZE:-}"

case "$sanitize" in
  "")       build_dir="$repo/build" ;;
  thread)   build_dir="$repo/build-tsan" ;;
  address)  build_dir="$repo/build-asan" ;;
  *) echo "error: FRAME_SANITIZE must be empty, 'thread', or 'address'" >&2
     exit 2 ;;
esac

cmake -B "$build_dir" -S "$repo" -DFRAME_SANITIZE="$sanitize"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"

# Smoke test: the real TCP wire path end to end (publish -> broker ->
# subscriber over loopback sockets through the epoll reactor).
echo "--- tcp_wire_demo smoke test ---"
"$build_dir/examples/tcp_wire_demo" >/dev/null
echo "tcp_wire_demo: OK"
