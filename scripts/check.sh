#!/usr/bin/env bash
# Configure, build, and run the full test suite in one step.
#
#   scripts/check.sh                 # plain build into build/
#   FRAME_SANITIZE=thread scripts/check.sh     # TSan build into build-tsan/
#   FRAME_SANITIZE=address scripts/check.sh    # ASan+UBSan into build-asan/
#   FRAME_SANITIZE=undefined scripts/check.sh  # UBSan into build-ubsan/
#   FRAME_CHAOS=1 scripts/check.sh   # chaos suite under ASan and TSan
#
# Extra arguments are forwarded to ctest, e.g.
#   scripts/check.sh -R Obs          # only the observability tests
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${FRAME_SANITIZE:-}"

# Chaos mode: build the chaos suite under both ASan(+UBSan) and TSan and
# run it with fixed seeds, so every scheduled fault scenario is exercised
# with memory and race checking.  Seeds can be widened via FRAME_CHAOS_SEED.
if [[ "${FRAME_CHAOS:-0}" == "1" ]]; then
  for sanitize in address thread; do
    build_dir="$repo/build-$([[ $sanitize == address ]] && echo asan || echo tsan)"
    echo "--- chaos suite under $sanitize sanitizer ---"
    cmake -B "$build_dir" -S "$repo" -DFRAME_SANITIZE="$sanitize"
    cmake --build "$build_dir" -j "$(nproc)" --target test_chaos
    "$build_dir/tests/test_chaos" "$@"
  done
  echo "chaos suite: OK"
  exit 0
fi

case "$sanitize" in
  "")        build_dir="$repo/build" ;;
  thread)    build_dir="$repo/build-tsan" ;;
  address)   build_dir="$repo/build-asan" ;;
  undefined) build_dir="$repo/build-ubsan" ;;
  *) echo "error: FRAME_SANITIZE must be empty, 'thread', 'address', or" \
          "'undefined'" >&2
     exit 2 ;;
esac

cmake -B "$build_dir" -S "$repo" -DFRAME_SANITIZE="$sanitize"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"

# Smoke test: the real TCP wire path end to end (publish -> broker ->
# subscriber over loopback sockets through the epoll reactor).
echo "--- tcp_wire_demo smoke test ---"
"$build_dir/examples/tcp_wire_demo" >/dev/null
echo "tcp_wire_demo: OK"
