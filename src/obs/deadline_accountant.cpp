#include "obs/deadline_accountant.hpp"

namespace frame::obs {

DeadlineAccountant& DeadlineAccountant::instance() {
  static DeadlineAccountant accountant;
  return accountant;
}

void DeadlineAccountant::configure(const std::vector<TopicSpec>& specs) {
  configure_lock_.lock();
  for (const auto& spec : specs) {
    while (slots_.size() <= spec.id) slots_.emplace_back();
    slots_[spec.id].loss_tolerance = spec.loss_tolerance;
    slots_[spec.id].deadline = spec.deadline;
  }
  count_.store(slots_.size(), std::memory_order_release);
  configure_lock_.unlock();
}

DeadlineAccountant::TopicSlot* DeadlineAccountant::slot(TopicId topic) {
  if (topic >= count_.load(std::memory_order_acquire)) return nullptr;
  return &slots_[topic];
}

const DeadlineAccountant::TopicSlot* DeadlineAccountant::slot(
    TopicId topic) const {
  if (topic >= count_.load(std::memory_order_acquire)) return nullptr;
  return &slots_[topic];
}

void DeadlineAccountant::on_dispatch_executed(TopicId topic, Duration slack) {
  TopicSlot* s = slot(topic);
  if (s == nullptr) return;
  s->dispatches.fetch_add(1, std::memory_order_relaxed);
  if (slack < 0) s->dispatch_misses.fetch_add(1, std::memory_order_relaxed);
}

void DeadlineAccountant::on_replication_executed(TopicId topic,
                                                 Duration slack) {
  TopicSlot* s = slot(topic);
  if (s == nullptr) return;
  s->replications.fetch_add(1, std::memory_order_relaxed);
  if (slack < 0) s->replication_misses.fetch_add(1, std::memory_order_relaxed);
}

DeadlineAccountant::DeliveryOutcome DeadlineAccountant::on_delivery(
    TopicId topic, SeqNo seq, Duration e2e) {
  DeliveryOutcome outcome;
  TopicSlot* s = slot(topic);
  if (s == nullptr) return outcome;
  s->deliveries.fetch_add(1, std::memory_order_relaxed);
  if (e2e > s->deadline) {
    s->e2e_misses.fetch_add(1, std::memory_order_relaxed);
    outcome.e2e_miss = true;
  }
  s->e2e_latency.record(static_cast<double>(e2e));

  // Consecutive-loss streaks: deliveries of a topic arrive in order except
  // around recovery, so a gap versus the furthest seq seen so far is a run
  // of losses.  A later out-of-order fill-in (recovery copy) is not
  // subtracted back -- the accountant deliberately reports the worst
  // streak ever *observed*, which is the quantity Li bounds.
  std::uint64_t prev = s->last_seq.load(std::memory_order_relaxed);
  while (seq > prev && !s->last_seq.compare_exchange_weak(
                           prev, seq, std::memory_order_relaxed)) {
  }
  if (seq > prev + 1) {
    const std::uint64_t streak = seq - prev - 1;
    outcome.losses = streak;
    s->losses_total.fetch_add(streak, std::memory_order_relaxed);
    std::uint64_t cur = s->max_loss_streak.load(std::memory_order_relaxed);
    while (streak > cur && !s->max_loss_streak.compare_exchange_weak(
                               cur, streak, std::memory_order_relaxed)) {
    }
    if (s->loss_tolerance != kLossInfinite && streak > s->loss_tolerance) {
      // exchange: only the delivery that flips the flag reports the breach
      // (the flight-recorder trigger wants the first occurrence).
      outcome.breached_now =
          !s->loss_budget_exceeded.exchange(true, std::memory_order_relaxed);
    }
  }
  outcome.worst_streak = s->max_loss_streak.load(std::memory_order_relaxed);
  return outcome;
}

TopicDeadlineSnapshot DeadlineAccountant::snapshot(TopicId topic) const {
  TopicDeadlineSnapshot snap;
  const TopicSlot* s = slot(topic);
  if (s == nullptr) return snap;
  snap.topic = topic;
  snap.loss_tolerance = s->loss_tolerance;
  snap.deadline = s->deadline;
  snap.dispatches = s->dispatches.load(std::memory_order_relaxed);
  snap.dispatch_misses = s->dispatch_misses.load(std::memory_order_relaxed);
  snap.replications = s->replications.load(std::memory_order_relaxed);
  snap.replication_misses =
      s->replication_misses.load(std::memory_order_relaxed);
  snap.deliveries = s->deliveries.load(std::memory_order_relaxed);
  snap.e2e_misses = s->e2e_misses.load(std::memory_order_relaxed);
  snap.losses_total = s->losses_total.load(std::memory_order_relaxed);
  snap.max_loss_streak = s->max_loss_streak.load(std::memory_order_relaxed);
  snap.loss_budget_exceeded =
      s->loss_budget_exceeded.load(std::memory_order_relaxed);
  snap.e2e_latency = s->e2e_latency.snapshot();
  return snap;
}

std::vector<TopicDeadlineSnapshot> DeadlineAccountant::snapshot_all() const {
  std::vector<TopicDeadlineSnapshot> out;
  const std::size_t n = topic_count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(snapshot(static_cast<TopicId>(i)));
  }
  return out;
}

void DeadlineAccountant::reset() {
  configure_lock_.lock();
  for (auto& s : slots_) {
    s.dispatches.store(0, std::memory_order_relaxed);
    s.dispatch_misses.store(0, std::memory_order_relaxed);
    s.replications.store(0, std::memory_order_relaxed);
    s.replication_misses.store(0, std::memory_order_relaxed);
    s.deliveries.store(0, std::memory_order_relaxed);
    s.e2e_misses.store(0, std::memory_order_relaxed);
    s.losses_total.store(0, std::memory_order_relaxed);
    s.max_loss_streak.store(0, std::memory_order_relaxed);
    s.last_seq.store(0, std::memory_order_relaxed);
    s.loss_budget_exceeded.store(false, std::memory_order_relaxed);
    s.e2e_latency.reset();
  }
  configure_lock_.unlock();
}

}  // namespace frame::obs
