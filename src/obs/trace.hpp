// Per-message lifecycle tracer.
//
// Records span events (publish -> proxy-admit -> job-enqueue ->
// dispatch-start -> delivered / replicated / dropped, plus the failover
// timeline) into a fixed-capacity ring.  The hot path never allocates and
// never blocks: a writer claims a slot with one fetch_add and takes the
// slot's try-lock; if a concurrent reader (or an extremely delayed writer
// lapped by the ring) holds the slot, the event is dropped and counted
// instead of waiting.  Readers snapshot best-effort with the same
// try-locks, so tracing perturbs the system it observes as little as
// possible.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace frame::obs {

enum class SpanKind : std::uint8_t {
  kPublish = 0,        ///< tc: message created at the publisher proxy
  kProxyAdmit = 1,     ///< tp: Message Proxy admitted it (carries observed ΔPB)
  kJobEnqueue = 2,     ///< dispatch/replicate job pushed (carries Dd'/Dr' slack)
  kDispatchStart = 3,  ///< a Dispatcher started executing the dispatch job
  kDelivered = 4,      ///< ts: subscriber got the first copy (carries e2e latency)
  kReplicated = 5,     ///< Replicator shipped the copy to the Backup
  kDropped = 6,        ///< copy evicted/stale before its job ran
  kCrash = 7,          ///< fail-stop crash injected on a broker
  kFailoverDetected = 8,   ///< a detector suspected the Primary
  kPromotion = 9,          ///< Backup finished promoting itself
  kRetentionReplay = 10,   ///< publisher finished re-sending retained copies
  kBackupStored = 11,      ///< Backup Buffer stored a replica (ends ΔBB)
  kRedirect = 12,          ///< publisher switched to the Backup (ends x)
  kDispatchDone = 13,      ///< dispatch work finished (delivery handed off)
};

std::string_view to_string(SpanKind kind);

/// Deterministic 64-bit trace id for a message minted at `node`: a
/// splitmix64-style mix of (node, topic, seq).  Never returns 0 (the wire
/// codec's "no trace context" sentinel), and the determinism lets any
/// process re-derive the id when correlating by (topic, seq).
constexpr std::uint64_t make_trace_id(std::uint64_t node, std::uint64_t topic,
                                      std::uint64_t seq) {
  std::uint64_t z =
      (node << 48) ^ (topic << 32) ^ seq ^ 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z | 1;
}

/// One lifecycle event.  Fields that do not apply to a kind are
/// kDurationInfinite / 0.
struct SpanEvent {
  SpanKind kind = SpanKind::kPublish;
  TopicId topic = kInvalidTopic;
  SeqNo seq = 0;
  NodeId node = kInvalidNode;
  std::uint64_t trace_id = 0;             ///< wire trace context; 0 = none
  TimePoint at = 0;                       ///< driving-clock timestamp
  Duration delta_pb = kDurationInfinite;  ///< observed ΔPB (admit spans)
  Duration dd_slack = kDurationInfinite;  ///< remaining dispatch-deadline slack
  Duration dr_slack = kDurationInfinite;  ///< remaining replication-deadline slack
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;  // power of two

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  std::size_t capacity() const { return mask_ + 1; }

  /// Records `event`; overwrites the oldest entry once the ring is full.
  /// Never allocates or blocks (drops the event on slot contention).
  void record(const SpanEvent& event);

  /// Events ever submitted (including overwritten and dropped ones).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events lost to slot contention (not to ring wraparound).
  std::uint64_t contention_drops() const {
    return drops_.load(std::memory_order_relaxed);
  }
  /// Lower bound on events lost to ring wraparound: once `recorded()`
  /// exceeds the capacity, at least that many oldest events were
  /// overwritten and a snapshot is no longer a complete timeline.
  std::uint64_t overflow_drops() const {
    const std::uint64_t n = recorded();
    const std::uint64_t cap = capacity();
    return n > cap ? n - cap : 0;
  }
  /// Total events a snapshot can no longer contain (overflow + contention).
  /// Exported as frame_trace_dropped_total so a wrapped ring cannot
  /// masquerade as a complete timeline.
  std::uint64_t dropped_total() const {
    return overflow_drops() + contention_drops();
  }

  /// Best-effort copy of the retained events, oldest first.
  std::vector<SpanEvent> snapshot() const;

  void clear();

 private:
  struct Slot {
    SpinLock lock;
    std::atomic<std::uint64_t> ticket{0};  ///< 1 + claim index; 0 = empty
    SpanEvent event;
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> drops_{0};
};

}  // namespace frame::obs
