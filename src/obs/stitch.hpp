// Cross-process span stitching.
//
// Every process (or in-process EdgeSystem) dumps its Tracer ring as a
// TraceDump: the spans, plus a wall-clock anchor that maps the process's
// monotonic timeline onto the shared wall clock (wall = at + anchor).
// stitch() merges any number of dumps into one causally-ordered timeline
// keyed by the wire trace id, measures the paper's per-hop latencies
// directly from span timestamps —
//   ΔPB  publish        -> proxy-admit   (publisher -> broker)
//   ΔBB  replicated     -> backup-stored (Primary   -> Backup)
//   ΔBS  dispatch-start -> delivered     (broker    -> subscriber)
//   x    crash          -> redirect      (failover, Section III-B)
// — and to_perfetto_json() renders the result as Chrome trace_event /
// Perfetto JSON: one track group per node, one slice per (message, node)
// residency, flow arrows following each message across nodes, and the
// failover timeline as instant events.
//
// Lives in frame_obs (no transport dependency); the HTTP exporter and the
// frame_analyze --stitch subcommand are thin shells over this module.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"

namespace frame::obs {

/// One process's tracer dump plus the clock anchor needed to stitch it.
struct TraceDump {
  std::string process;          ///< label, e.g. "edge-system" or "broker-1"
  std::int64_t wall_anchor = 0; ///< wall_now_ns() - mono now(), at dump time
  std::uint64_t recorded = 0;   ///< Tracer::recorded() at dump time
  std::uint64_t dropped = 0;    ///< Tracer::dropped_total() at dump time
  std::vector<SpanEvent> spans;
};

/// Snapshot of the global tracer as a dump.  `wall_anchor` must be
/// wall_now_ns() - <driving clock now> so spans land on the wall axis.
TraceDump collect_local_dump(std::string process, std::int64_t wall_anchor);

/// Line-oriented text form (stable across processes; safe to concatenate).
std::string serialize_dump(const TraceDump& dump);

/// Parses one or more concatenated serialized dumps.  Unknown lines and
/// unknown span kinds are skipped so old readers survive new writers.
std::vector<TraceDump> parse_dumps(std::string_view text);

/// A span event placed on the wall-clock axis.
struct StitchedEvent {
  SpanEvent event;
  std::int64_t wall_at = 0;   ///< event.at + owning dump's wall_anchor
  std::uint32_t dump = 0;     ///< index into the stitched dump list
};

/// The merged timeline and the per-hop measurements derived from it.
struct StitchReport {
  std::vector<StitchedEvent> events;  ///< causally ordered (wall time)
  std::uint64_t trace_count = 0;      ///< distinct nonzero trace ids

  // Per-hop latencies measured from span timestamps (nanoseconds).
  OnlineStats delta_pb;  ///< publish -> first proxy-admit
  OnlineStats delta_bb;  ///< replicated -> backup-stored
  OnlineStats delta_bs;  ///< dispatch-start -> delivered
  OnlineStats e2e;       ///< publish -> delivered

  // Broker-internal dispatch attribution (nanoseconds).  The runtime's
  // per-stage histograms (frame_dispatch_queue_delay_ns / _service_ns)
  // must sum to dispatch_span: queue_delay + service == span per message
  // by construction, so the stitched view cross-checks the registry.
  OnlineStats dispatch_queue_delay;  ///< job-enqueue -> dispatch-start
  OnlineStats dispatch_span;         ///< job-enqueue -> dispatch-done

  // Failover timeline on the wall axis (-1 = event absent).
  std::int64_t crash_wall = -1;
  std::int64_t detected_wall = -1;
  std::int64_t promotion_wall = -1;
  std::int64_t redirect_wall = -1;
  Duration measured_x = -1;  ///< first redirect after crash - crash

  std::uint64_t delivered_events = 0;
  /// kDelivered seen more than once for the same (subscriber node, trace):
  /// nonzero means exactly-once delivery was violated somewhere.
  std::uint64_t duplicate_deliveries = 0;
  /// Summed Tracer losses across dumps; nonzero means the timeline is
  /// incomplete and absence of an event proves nothing.
  std::uint64_t dropped_total = 0;

  /// Human-readable warnings about degenerate input: empty dumps, zero
  /// anchored spans (every trace id 0, so no per-hop stats), or wall-clock
  /// anchors so far apart the dumps' timelines never overlap.  Stitching
  /// still succeeds — these explain *why* the report may be hollow.
  std::vector<std::string> diagnostics;
};

StitchReport stitch(const std::vector<TraceDump>& dumps);

/// Chrome trace_event ("traceEvents") JSON.  One process group per node,
/// message slices lane-packed so slices on one track never overlap, one
/// flow arrow chain per trace id, failover markers as instants.
std::string to_perfetto_json(const StitchReport& report);

/// Human-readable stitched summary (per-hop stats + failover timeline).
std::string stitch_summary(const StitchReport& report);

/// Validates Perfetto JSON produced by to_perfetto_json (or anything
/// shaped like it): parses as JSON, every "X" slice has ts/dur and no two
/// slices on one (pid, tid) track overlap, and every flow finish ("f")
/// resolves to a flow start ("s") with the same id.
Status validate_perfetto_json(std::string_view json);

}  // namespace frame::obs
