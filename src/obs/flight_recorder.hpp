// Anomaly flight recorder (DESIGN.md §13).
//
// The recorder itself is "always on" in the sense that its inputs already
// run continuously: the Tracer ring holds the recent span history and the
// MetricsRegistry / SloMonitor hold the counters.  This class only adds
// the *trigger* — on the first Lemma 1/2 miss, Li-streak breach, failover,
// critical alert, or fatal signal, it freezes those substrates into a
// self-contained post-mortem bundle on disk:
//
//   FRAME_POSTMORTEM_DIR/frame-postmortem-<pid>-<seq>/
//     manifest.txt   reason, timestamps, build provenance, chaos seed,
//                    per-shard queue depths, span-ring accounting
//     trace.dump     recent spans, frame-trace-dump v1 (stitchable)
//     metrics.json   full registry + accountant snapshot (export to_json)
//     slo.json       SLO monitor document incl. evaluated alert table
//
// Bundles are written at most once per process (atomic latch): the first
// trigger wins, later ones are counted but produce no I/O, so a cascade
// (miss -> critical alert -> more misses) cannot write bundle storms.
//
// Signal-safety contract: trigger() allocates and takes locks, so the
// fatal-signal path does NOT call it.  install_fatal_handlers() instead
// pre-formats a minimal crash record at arm time and the handler only
// open/write/closes it via net/sigsafe_writer.hpp before re-raising — the
// full bundle for a crash is reconstructed by the *next* run or the test
// harness from that record.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/time.hpp"

namespace frame::obs {

enum class TriggerReason : std::uint8_t {
  kLemma2Miss = 0,       ///< first dispatch-deadline (Lemma 2) violation
  kLemma1Miss = 1,       ///< first replication-deadline (Lemma 1) violation
  kLossStreakBreach = 2, ///< a loss streak exceeded Li
  kFailover = 3,         ///< failover started (crash seen / detector fired)
  kCriticalAlert = 4,    ///< an AlertRule with Severity::kCritical fired
  kFatalSignal = 5,      ///< SIGSEGV/SIGABRT (sigsafe record, not a bundle)
  kManual = 6,           ///< explicit request (tests, operators)
};
const char* to_string(TriggerReason reason);

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Reads FRAME_POSTMORTEM_DIR and arms the recorder with it when the
  /// variable is present (empty value disarms); leaves the current
  /// directory alone when unset.  Called from EdgeSystem construction.
  void configure_from_env();
  /// Explicit arm for tests (empty dir disarms).
  void set_directory(std::string dir);
  bool armed() const;
  std::string directory() const;

  /// Wall anchor for the bundle's trace.dump:
  /// wall_now_ns() - <driving clock now>, same contract as TraceDump.
  void set_wall_anchor(std::int64_t anchor);
  /// Chaos provenance: FaultyBus reports its FaultPlan seed at
  /// construction (recorded even while obs is disabled — cheap store).
  void set_chaos_seed(std::uint64_t seed);

  /// Fires the recorder.  First call per process writes the bundle; later
  /// calls only bump the trigger counter.  `detail` is a short free-form
  /// annotation (rule name, node id, ...).  Takes locks and allocates —
  /// never call from a signal handler.  `now` stamps the manifest with the
  /// driving-clock trigger time (0 = unknown).
  void trigger(TriggerReason reason, const char* detail = "",
               TimePoint now = 0);

  /// Installs SIGSEGV/SIGABRT handlers that append an async-signal-safe
  /// crash record to FRAME_POSTMORTEM_DIR/crash-record.txt and re-raise.
  /// Idempotent; a no-op when the recorder is disarmed at call time.
  void install_fatal_handlers();

  std::uint64_t triggers_seen() const {
    return triggers_.load(std::memory_order_relaxed);
  }
  std::uint64_t bundles_written() const {
    return bundles_.load(std::memory_order_relaxed);
  }
  std::string last_bundle_path() const;

  /// Re-opens the once-per-process latch and forgets the last bundle path
  /// (tests only; the directory, seed and anchor persist).
  void reset();

 private:
  bool write_bundle(TriggerReason reason, const char* detail, TimePoint now);

  mutable std::mutex mutex_;  ///< directory / last path / bundle writing
  std::string dir_;
  std::string last_bundle_;
  std::atomic<std::int64_t> wall_anchor_{0};
  std::atomic<std::uint64_t> chaos_seed_{0};
  std::atomic<bool> has_chaos_seed_{false};
  std::atomic<bool> latched_{false};
  std::atomic<std::uint64_t> triggers_{0};
  std::atomic<std::uint64_t> bundles_{0};
  std::atomic<std::uint64_t> bundle_seq_{0};
};

inline FlightRecorder& flight_recorder() { return FlightRecorder::instance(); }

}  // namespace frame::obs
