#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "common/time.hpp"
#include "core/topic.hpp"
#include "obs/obs.hpp"

namespace frame::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

void append_latency_json(std::string& out, const LatencyRecorder::Snapshot& l) {
  appendf(out,
          "{\"count\":%zu,\"mean_ns\":%.1f,\"min_ns\":%.1f,\"max_ns\":%.1f,"
          "\"p50_ns\":%.1f,\"p90_ns\":%.1f,\"p99_ns\":%.1f}",
          l.count(), l.mean(), l.min(), l.max(), l.p50(), l.p90(), l.p99());
}

/// ms with enough digits for sub-ms values.
double ms(double ns) { return ns / 1e6; }

/// Per-stage attribution series get their full log-binned histogram
/// exported (not just summary quantiles) so queue-delay vs service-time
/// shape is visible in /metrics and /snapshot.json.  Suffix-matched to
/// keep the common summary series compact.
bool stage_series(std::string_view name) {
  const auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
  };
  return ends_with("_queue_delay_ns") || ends_with("_service_ns");
}

/// Upper edge of log-domain bin `i` in nanoseconds.
double bin_high_ns(const Histogram& h, std::size_t i) {
  const double hi_log = i + 1 < h.bin_count()
                            ? h.bin_low(i + 1)
                            : LatencyRecorder::kLogHi;
  return std::pow(10.0, hi_log);
}

/// True when `name` is a per-shard series ("<base>_shard<k>"); stores the
/// base name.  The sharded broker's hot-path hooks record into these
/// (obs/hooks.cpp PerShard).
bool split_shard_series(std::string_view name, std::string_view& base) {
  const auto pos = name.rfind("_shard");
  if (pos == std::string_view::npos || pos == 0) return false;
  const auto digits = name.substr(pos + 6);
  if (digits.empty() || digits.size() > 4) return false;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  base = name.substr(0, pos);
  return true;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.substr(name.size() - suffix.size()) == suffix;
}

/// Folds every per-shard series into an aggregate under its base name, in
/// place: counters sum, gauges sum (except "*_peak", which takes the max),
/// latencies merge their moments and log-binned histograms.  The shard
/// series stay in the snapshot for per-shard visibility; consumers of the
/// pre-sharding names (/metrics dashboards, the stage-attribution tests,
/// the bench harness) read the aggregate and never notice the shards.
void fold_shard_series(MetricsRegistry::Snapshot& m) {
  const auto find_or_append = [](auto& entries, std::string_view base) {
    for (auto& entry : entries) {
      if (entry.first == base) return &entry;
    }
    entries.emplace_back(std::string(base),
                         typename std::decay_t<decltype(entries)>::
                             value_type::second_type{});
    return &entries.back();
  };

  // Copy name and value out before find_or_append: appending the base
  // entry can reallocate the vector, which would dangle both a view into
  // an SSO name and a reference to the shard entry's value.
  std::string_view base_view;
  bool folded = false;
  for (std::size_t i = 0; i < m.counters.size(); ++i) {
    if (!split_shard_series(m.counters[i].first, base_view)) continue;
    const std::string base(base_view);
    const std::uint64_t value = m.counters[i].second;
    find_or_append(m.counters, base)->second += value;
    folded = true;
  }
  for (std::size_t i = 0; i < m.gauges.size(); ++i) {
    if (!split_shard_series(m.gauges[i].first, base_view)) continue;
    const std::string base(base_view);
    const std::int64_t value = m.gauges[i].second;
    auto* entry = find_or_append(m.gauges, base);
    if (ends_with(base, "_peak")) {
      entry->second = std::max(entry->second, value);
    } else {
      entry->second += value;
    }
    folded = true;
  }
  for (std::size_t i = 0; i < m.latencies.size(); ++i) {
    if (!split_shard_series(m.latencies[i].first, base_view)) continue;
    const std::string base(base_view);
    const LatencyRecorder::Snapshot shard_snap = m.latencies[i].second;
    auto* entry = find_or_append(m.latencies, base);
    entry->second.stats.merge(shard_snap.stats);
    entry->second.hist.merge(shard_snap.hist);
    folded = true;
  }
  if (!folded) return;
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(m.counters.begin(), m.counters.end(), by_name);
  std::sort(m.gauges.begin(), m.gauges.end(), by_name);
  std::sort(m.latencies.begin(), m.latencies.end(), by_name);
}

}  // namespace

std::string prometheus_sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    out.push_back(alpha || (digit && i > 0) ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string json_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

ObsSnapshot collect_snapshot(std::size_t max_spans) {
  ObsSnapshot snap;
  snap.metrics = registry().snapshot();
  fold_shard_series(snap.metrics);
  snap.topics = accountant().snapshot_all();
  snap.spans_recorded = tracer().recorded();
  snap.span_drops = tracer().contention_drops();
  snap.span_dropped_total = tracer().dropped_total();
  if (max_spans > 0) {
    snap.recent_spans = tracer().snapshot();
    if (snap.recent_spans.size() > max_spans) {
      snap.recent_spans.erase(
          snap.recent_spans.begin(),
          snap.recent_spans.end() - static_cast<std::ptrdiff_t>(max_spans));
    }
  }
  return snap;
}

std::string to_json(const ObsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.metrics.counters) {
    appendf(out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
            json_escape(name).c_str(), value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.metrics.gauges) {
    appendf(out, "%s\n    \"%s\": %" PRId64, first ? "" : ",",
            json_escape(name).c_str(), value);
    first = false;
  }
  out += "\n  },\n  \"latencies\": {";
  first = true;
  for (const auto& [name, latency] : snap.metrics.latencies) {
    appendf(out, "%s\n    \"%s\": ", first ? "" : ",",
            json_escape(name).c_str());
    if (stage_series(name)) {
      // Same scalar fields as append_latency_json plus the non-empty
      // log-binned buckets: [upper-edge ns, count] pairs.
      appendf(out,
              "{\"count\":%zu,\"mean_ns\":%.1f,\"min_ns\":%.1f,"
              "\"max_ns\":%.1f,\"p50_ns\":%.1f,\"p90_ns\":%.1f,"
              "\"p99_ns\":%.1f,\"hist\":[",
              latency.count(), latency.mean(), latency.min(), latency.max(),
              latency.p50(), latency.p90(), latency.p99());
      bool first_bin = true;
      for (std::size_t i = 0; i < latency.hist.bin_count(); ++i) {
        if (latency.hist.bin(i) == 0) continue;
        appendf(out, "%s[%.1f,%" PRIu64 "]", first_bin ? "" : ",",
                bin_high_ns(latency.hist, i), latency.hist.bin(i));
        first_bin = false;
      }
      out += "]}";
    } else {
      append_latency_json(out, latency);
    }
    first = false;
  }
  out += "\n  },\n  \"topics\": [";
  first = true;
  for (const auto& t : snap.topics) {
    if (t.topic == kInvalidTopic) continue;
    appendf(out,
            "%s\n    {\"topic\":%u,\"li\":%s,\"di_ms\":%.3f,"
            "\"dispatches\":%" PRIu64 ",\"dispatch_misses\":%" PRIu64
            ",\"replications\":%" PRIu64 ",\"replication_misses\":%" PRIu64
            ",\"deliveries\":%" PRIu64 ",\"e2e_misses\":%" PRIu64
            ",\"losses_total\":%" PRIu64 ",\"max_loss_streak\":%" PRIu64
            ",\"loss_budget_exceeded\":%s,\"e2e\":",
            first ? "" : ",", t.topic,
            t.loss_tolerance == kLossInfinite
                ? "\"inf\""
                : std::to_string(t.loss_tolerance).c_str(),
            to_millis(t.deadline), t.dispatches, t.dispatch_misses,
            t.replications, t.replication_misses, t.deliveries, t.e2e_misses,
            t.losses_total, t.max_loss_streak,
            t.loss_budget_exceeded ? "true" : "false");
    append_latency_json(out, t.e2e_latency);
    out += "}";
    first = false;
  }
  appendf(out,
          "\n  ],\n  \"tracer\": {\"recorded\": %" PRIu64
          ", \"contention_drops\": %" PRIu64 ", \"dropped_total\": %" PRIu64
          "}\n}\n",
          snap.spans_recorded, snap.span_drops, snap.span_dropped_total);
  return out;
}

std::string to_prometheus(const ObsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.metrics.counters) {
    const std::string n = prometheus_sanitize_name(name);
    appendf(out, "# TYPE %s counter\n%s %" PRIu64 "\n", n.c_str(), n.c_str(),
            value);
  }
  for (const auto& [name, value] : snap.metrics.gauges) {
    const std::string n = prometheus_sanitize_name(name);
    appendf(out, "# TYPE %s gauge\n%s %" PRId64 "\n", n.c_str(), n.c_str(),
            value);
  }
  for (const auto& [name, latency] : snap.metrics.latencies) {
    const std::string n = prometheus_sanitize_name(name);
    appendf(out, "# TYPE %s summary\n", n.c_str());
    appendf(out, "%s{quantile=\"0.5\"} %.1f\n", n.c_str(), latency.p50());
    appendf(out, "%s{quantile=\"0.9\"} %.1f\n", n.c_str(), latency.p90());
    appendf(out, "%s{quantile=\"0.99\"} %.1f\n", n.c_str(), latency.p99());
    appendf(out, "%s_sum %.1f\n", n.c_str(),
            latency.mean() * static_cast<double>(latency.count()));
    appendf(out, "%s_count %zu\n", n.c_str(), latency.count());
    if (stage_series(name)) {
      // Full log-binned shape as a Prometheus histogram (cumulative `le`
      // buckets over the non-empty bins; +Inf closes the series).
      appendf(out, "# TYPE %s_hist histogram\n", n.c_str());
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < latency.hist.bin_count(); ++i) {
        if (latency.hist.bin(i) == 0) continue;
        cumulative += latency.hist.bin(i);
        appendf(out, "%s_hist_bucket{le=\"%.1f\"} %" PRIu64 "\n", n.c_str(),
                bin_high_ns(latency.hist, i), cumulative);
      }
      appendf(out, "%s_hist_bucket{le=\"+Inf\"} %" PRIu64 "\n", n.c_str(),
              latency.hist.total());
      appendf(out, "%s_hist_sum %.1f\n", n.c_str(),
              latency.mean() * static_cast<double>(latency.count()));
      appendf(out, "%s_hist_count %zu\n", n.c_str(), latency.count());
    }
  }
  // Tracer loss accounting: nonzero means snapshots/dumps are incomplete
  // timelines (ring wraparound or slot contention) -- consumers must not
  // treat a stitched trace as exhaustive when this counter moved.
  appendf(out,
          "# TYPE frame_trace_recorded_total counter\n"
          "frame_trace_recorded_total %" PRIu64 "\n",
          snap.spans_recorded);
  appendf(out,
          "# TYPE frame_trace_dropped_total counter\n"
          "frame_trace_dropped_total %" PRIu64 "\n",
          snap.span_dropped_total);
  // Per-topic series from the deadline accountant.
  for (const auto& t : snap.topics) {
    if (t.topic == kInvalidTopic || t.deliveries + t.dispatches == 0) continue;
    appendf(out, "frame_topic_dispatch_misses_total{topic=\"%u\"} %" PRIu64 "\n",
            t.topic, t.dispatch_misses);
    appendf(out,
            "frame_topic_replication_misses_total{topic=\"%u\"} %" PRIu64 "\n",
            t.topic, t.replication_misses);
    appendf(out, "frame_topic_e2e_misses_total{topic=\"%u\"} %" PRIu64 "\n",
            t.topic, t.e2e_misses);
    appendf(out, "frame_topic_max_loss_streak{topic=\"%u\"} %" PRIu64 "\n",
            t.topic, t.max_loss_streak);
    appendf(out, "frame_topic_e2e_latency_ns{topic=\"%u\",quantile=\"0.5\"} %.1f\n",
            t.topic, t.e2e_latency.p50());
    appendf(out, "frame_topic_e2e_latency_ns{topic=\"%u\",quantile=\"0.99\"} %.1f\n",
            t.topic, t.e2e_latency.p99());
  }
  return out;
}

std::string to_table(const ObsSnapshot& snap) {
  std::string out;
  out.reserve(4096);

  out += "== per-topic deadline & latency accounting ==\n";
  appendf(out, "%-6s %-6s %-9s %9s %9s %9s %9s %9s %9s %7s %6s\n", "topic",
          "Li", "Di(ms)", "deliv", "p50(ms)", "p99(ms)", "e2e-miss", "dd-miss",
          "dr-miss", "streak", "ok?");
  for (const auto& t : snap.topics) {
    if (t.topic == kInvalidTopic ||
        t.deliveries + t.dispatches + t.replications == 0) {
      continue;
    }
    char li[16];
    if (t.loss_tolerance == kLossInfinite) {
      std::snprintf(li, sizeof(li), "inf");
    } else {
      std::snprintf(li, sizeof(li), "%u", t.loss_tolerance);
    }
    appendf(out,
            "%-6u %-6s %-9.1f %9" PRIu64 " %9.3f %9.3f %9" PRIu64 " %9" PRIu64
            " %9" PRIu64 " %7" PRIu64 " %6s\n",
            t.topic, li, to_millis(t.deadline), t.deliveries,
            ms(t.e2e_latency.p50()), ms(t.e2e_latency.p99()), t.e2e_misses,
            t.dispatch_misses, t.replication_misses, t.max_loss_streak,
            t.loss_budget_exceeded ? "MISS" : "ok");
  }

  // Failover timeline from the gauges, when a crash was recorded.
  std::int64_t crash_at = 0, detected_at = 0, promoted_at = 0, redirect_at = 0;
  for (const auto& [name, value] : snap.metrics.gauges) {
    if (name == "frame_failover_crash_at_ns") crash_at = value;
    if (name == "frame_failover_detected_at_ns") detected_at = value;
    if (name == "frame_failover_promotion_at_ns") promoted_at = value;
    if (name == "frame_failover_redirect_at_ns") redirect_at = value;
  }
  if (crash_at > 0) {
    out += "\n== failover timeline ==\n";
    appendf(out, "crash injected        t=%.3f ms\n", ms(double(crash_at)));
    if (detected_at > crash_at) {
      appendf(out, "failure detected      t=%.3f ms  (+%.3f ms)\n",
              ms(double(detected_at)), ms(double(detected_at - crash_at)));
    }
    if (promoted_at > crash_at) {
      appendf(out, "backup promoted       t=%.3f ms  (+%.3f ms)\n",
              ms(double(promoted_at)), ms(double(promoted_at - crash_at)));
    }
    if (redirect_at > crash_at) {
      appendf(out,
              "publishers redirected t=%.3f ms  (+%.3f ms)  <- measured x\n",
              ms(double(redirect_at)), ms(double(redirect_at - crash_at)));
    }
  }

  out += "\n== counters ==\n";
  for (const auto& [name, value] : snap.metrics.counters) {
    appendf(out, "%-40s %12" PRIu64 "\n", name.c_str(), value);
  }
  out += "\n== gauges ==\n";
  for (const auto& [name, value] : snap.metrics.gauges) {
    appendf(out, "%-40s %12" PRId64 "\n", name.c_str(), value);
  }
  out += "\n== latency distributions (ms) ==\n";
  appendf(out, "%-32s %9s %9s %9s %9s %9s %9s\n", "name", "count", "mean",
          "p50", "p90", "p99", "max");
  for (const auto& [name, l] : snap.metrics.latencies) {
    if (l.count() == 0) continue;
    appendf(out, "%-32s %9zu %9.3f %9.3f %9.3f %9.3f %9.3f\n", name.c_str(),
            l.count(), ms(l.mean()), ms(l.p50()), ms(l.p90()), ms(l.p99()),
            ms(l.max()));
  }
  appendf(out,
          "\nspans recorded %" PRIu64 " (dropped %" PRIu64
          ": contention %" PRIu64 " + overflow; ring capacity %zu)\n",
          snap.spans_recorded, snap.span_dropped_total, snap.span_drops,
          tracer().capacity());
  return out;
}

}  // namespace frame::obs
