#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace frame::obs {

const char* to_string(Severity severity) {
  return severity == Severity::kCritical ? "critical" : "warning";
}

const char* to_string(SloMetric metric) {
  switch (metric) {
    case SloMetric::kDispatchBurnRate:
      return "dispatch_burn_rate";
    case SloMetric::kReplicationBurnRate:
      return "replication_burn_rate";
    case SloMetric::kE2eBurnRate:
      return "e2e_burn_rate";
    case SloMetric::kLossStreakProximity:
      return "loss_streak_proximity";
    case SloMetric::kDispatchHeadroomMin:
      return "dispatch_headroom_min_ns";
    case SloMetric::kReplicationHeadroomMin:
      return "replication_headroom_min_ns";
    case SloMetric::kDegradedMode:
      return "degraded_mode";
  }
  return "unknown";
}

bool fires_when_above(SloMetric metric) {
  switch (metric) {
    case SloMetric::kDispatchHeadroomMin:
    case SloMetric::kReplicationHeadroomMin:
      return false;
    default:
      return true;
  }
}

SloMonitor& SloMonitor::instance() {
  static SloMonitor monitor;
  return monitor;
}

#ifndef FRAME_OBS_DISABLED

// ---------------------------------------------------------------------------
// WindowedCounter / WindowedMin: a fixed ring of time buckets.  `last_` is
// the highest absolute bucket index seen; advancing zeroes every bucket the
// clock skipped over (bounded by the ring size).  Events older than the
// current bucket land in their own (still-live) bucket, so modest reorder
// between feeding threads does not lose counts.
// ---------------------------------------------------------------------------

void SloMonitor::WindowedCounter::advance(std::int64_t bucket_index) {
  if (bucket_index <= last_) return;
  const std::int64_t steps =
      std::min<std::int64_t>(bucket_index - last_, kBuckets);
  for (std::int64_t i = 1; i <= steps; ++i) {
    buckets_[static_cast<std::size_t>((last_ + i) % kBuckets)] = 0;
  }
  last_ = bucket_index;
}

void SloMonitor::WindowedCounter::add(std::int64_t bucket_index,
                                      std::uint64_t n) {
  if (last_ < 0) last_ = bucket_index;
  advance(bucket_index);
  // A stale event (older than the ring) is counted in the oldest live
  // bucket rather than dropped.
  const std::int64_t oldest = last_ - static_cast<std::int64_t>(kBuckets) + 1;
  const std::int64_t idx = std::max(bucket_index, oldest);
  buckets_[static_cast<std::size_t>(idx % kBuckets)] += n;
}

std::uint64_t SloMonitor::WindowedCounter::sum(std::int64_t now_bucket,
                                               std::size_t buckets_back) const {
  if (last_ < 0) return 0;
  std::uint64_t total = 0;
  const std::size_t span = std::min(buckets_back, kBuckets);
  for (std::size_t i = 0; i < span; ++i) {
    const std::int64_t idx = now_bucket - static_cast<std::int64_t>(i);
    if (idx < 0 || idx > last_) continue;
    if (idx <= last_ - static_cast<std::int64_t>(kBuckets)) break;
    total += buckets_[static_cast<std::size_t>(idx % kBuckets)];
  }
  return total;
}

void SloMonitor::WindowedCounter::reset() {
  buckets_.fill(0);
  last_ = -1;
}

void SloMonitor::WindowedMin::advance(std::int64_t bucket_index) {
  if (bucket_index <= last_) return;
  const std::int64_t steps =
      std::min<std::int64_t>(bucket_index - last_,
                             static_cast<std::int64_t>(buckets_.size()));
  for (std::int64_t i = 1; i <= steps; ++i) {
    buckets_[static_cast<std::size_t>((last_ + i) % buckets_.size())] =
        kDurationInfinite;
  }
  last_ = bucket_index;
}

void SloMonitor::WindowedMin::add(std::int64_t bucket_index, Duration value) {
  if (last_ < 0) {
    buckets_.fill(kDurationInfinite);
    last_ = bucket_index;
  }
  advance(bucket_index);
  const std::int64_t oldest =
      last_ - static_cast<std::int64_t>(buckets_.size()) + 1;
  const std::int64_t idx = std::max(bucket_index, oldest);
  Duration& slot = buckets_[static_cast<std::size_t>(idx % buckets_.size())];
  slot = std::min(slot, value);
}

Duration SloMonitor::WindowedMin::min(std::int64_t now_bucket,
                                      std::size_t buckets_back) const {
  if (last_ < 0) return kDurationInfinite;
  Duration lowest = kDurationInfinite;
  const std::size_t span = std::min(buckets_back, buckets_.size());
  for (std::size_t i = 0; i < span; ++i) {
    const std::int64_t idx = now_bucket - static_cast<std::int64_t>(i);
    if (idx < 0 || idx > last_) continue;
    if (idx <= last_ - static_cast<std::int64_t>(buckets_.size())) break;
    lowest = std::min(
        lowest, buckets_[static_cast<std::size_t>(idx % buckets_.size())]);
  }
  return lowest;
}

void SloMonitor::WindowedMin::reset() {
  buckets_.fill(kDurationInfinite);
  last_ = -1;
}

// ---------------------------------------------------------------------------
// Configuration / topology
// ---------------------------------------------------------------------------

void SloMonitor::configure(const std::vector<TopicSpec>& specs) {
  configure_lock_.lock();
  for (const auto& spec : specs) {
    while (slots_.size() <= spec.id) slots_.emplace_back();
    slots_[spec.id].loss_tolerance = spec.loss_tolerance;
    slots_[spec.id].deadline = spec.deadline;
  }
  count_.store(slots_.size(), std::memory_order_release);
  configure_lock_.unlock();
}

void SloMonitor::set_config(const Config& config) {
  std::lock_guard<std::mutex> guard(config_mutex_);
  config_ = config;
  if (config_.short_window <= 0) config_.short_window = seconds(1);
  // The ring has kBuckets buckets of short_window/8 each, so the longest
  // representable window is 8x short; clamp the long window accordingly
  // (leaving headroom against partial edge buckets).
  const Duration max_long = config_.short_window *
      static_cast<Duration>(WindowedCounter::kBuckets / 8 - 1);
  config_.long_window = std::clamp(config_.long_window,
                                   config_.short_window, max_long);
  if (config_.error_budget <= 0) config_.error_budget = 0.001;
}

SloMonitor::Config SloMonitor::config() const {
  std::lock_guard<std::mutex> guard(config_mutex_);
  return config_;
}

void SloMonitor::set_rules(std::vector<AlertRule> rules) {
  std::lock_guard<std::mutex> guard(config_mutex_);
  rules_ = std::move(rules);
  rules_installed_ = true;
  firing_since_.assign(rules_.size(), 0);
  critical_firing_.store(false, std::memory_order_relaxed);
}

std::vector<AlertRule> SloMonitor::default_rules() {
  // Burn-rate pairs follow the SRE multiwindow recipe: a fast-burn page
  // (14.4x consumes a 30-day budget in ~2 days; here it simply means "the
  // tail is collapsing now") on the short window, and a slow-burn ticket
  // (1x = budget being consumed exactly at the allowed rate) on the long
  // window.  Thresholds fire strictly-above, so a system exactly on budget
  // does not alert.
  return {
      {"lemma2-burn-fast", SloMetric::kDispatchBurnRate, 14.4, 0,
       Severity::kCritical, kAllTopics},
      {"lemma2-burn-slow", SloMetric::kDispatchBurnRate, 1.0,
       kDurationInfinite, Severity::kWarning, kAllTopics},
      {"lemma1-burn-fast", SloMetric::kReplicationBurnRate, 14.4, 0,
       Severity::kCritical, kAllTopics},
      {"lemma1-burn-slow", SloMetric::kReplicationBurnRate, 1.0,
       kDurationInfinite, Severity::kWarning, kAllTopics},
      {"e2e-burn-fast", SloMetric::kE2eBurnRate, 14.4, 0,
       Severity::kCritical, kAllTopics},
      {"li-streak-proximity", SloMetric::kLossStreakProximity, 0.75, 0,
       Severity::kWarning, kAllTopics},
      {"li-streak-breach", SloMetric::kLossStreakProximity, 1.0, 0,
       Severity::kCritical, kAllTopics},
      {"degraded-mode", SloMetric::kDegradedMode, 0.5, 0,
       Severity::kWarning, kAllTopics},
      {"dispatch-headroom-exhausted", SloMetric::kDispatchHeadroomMin, 0.0, 0,
       Severity::kWarning, kAllTopics},
  };
}

// ---------------------------------------------------------------------------
// Feeds
// ---------------------------------------------------------------------------

SloMonitor::TopicSlot* SloMonitor::slot(TopicId topic) {
  if (topic >= count_.load(std::memory_order_acquire)) return nullptr;
  return &slots_[topic];
}

const SloMonitor::TopicSlot* SloMonitor::slot(TopicId topic) const {
  if (topic >= count_.load(std::memory_order_acquire)) return nullptr;
  return &slots_[topic];
}

SloMonitor::ShardSlot& SloMonitor::shard_slot() {
  const std::size_t shard = thread_shard();
  const std::size_t idx =
      shard == kNoShard || shard >= kMaxShardSlots ? 0 : shard;
  std::size_t seen = max_shard_seen_.load(std::memory_order_relaxed);
  while (idx > seen && !max_shard_seen_.compare_exchange_weak(
                           seen, idx, std::memory_order_relaxed)) {
  }
  return shard_slots_[idx];
}

Duration SloMonitor::bucket_width() const {
  // config_.short_window is only written under config_mutex_, but the feed
  // paths read it lock-free: a torn read is impossible (int64 store) and a
  // stale width merely re-bins a handful of events during reconfiguration.
  const Duration w = config_.short_window / 8;
  return w > 0 ? w : milliseconds(125);
}

std::int64_t SloMonitor::bucket_of(TimePoint now) const {
  const Duration width = bucket_width();
  if (now < 0) return 0;
  return now / width;
}

std::size_t SloMonitor::buckets_for(Duration window) const {
  const Duration width = bucket_width();
  const Duration w = window <= 0 ? config_.short_window
                     : window == kDurationInfinite ? config_.long_window
                                                   : window;
  const std::int64_t n = (w + width - 1) / width;
  return static_cast<std::size_t>(
      std::clamp<std::int64_t>(n, 1, WindowedCounter::kBuckets));
}

void SloMonitor::note_now(TimePoint now) {
  TimePoint cur = latest_now_.load(std::memory_order_relaxed);
  while (now > cur && !latest_now_.compare_exchange_weak(
                          cur, now, std::memory_order_relaxed)) {
  }
}

void SloMonitor::on_dispatch_executed(TopicId topic, Duration laxity,
                                      TimePoint now) {
  note_now(now);
  const std::int64_t bucket = bucket_of(now);
  const bool miss = laxity < 0;
  if (TopicSlot* s = slot(topic)) {
    s->lock.lock();
    s->dispatches.add(bucket, 1);
    if (miss) s->dispatch_misses.add(bucket, 1);
    s->dispatch_headroom_min.add(bucket, laxity);
    s->lock.unlock();
    // Clamp negative laxity to the recorder's lowest bin; the signed
    // minimum above keeps the true worst value.
    s->dispatch_headroom.record(laxity > 0 ? static_cast<double>(laxity) : 0);
  }
  ShardSlot& shard = shard_slot();
  shard.lock.lock();
  shard.dispatches.add(bucket, 1);
  if (miss) shard.dispatch_misses.add(bucket, 1);
  shard.dispatch_headroom_min.add(bucket, laxity);
  shard.lock.unlock();
}

void SloMonitor::on_replication_executed(TopicId topic, Duration laxity,
                                         TimePoint now) {
  note_now(now);
  const std::int64_t bucket = bucket_of(now);
  const bool miss = laxity < 0;
  if (TopicSlot* s = slot(topic)) {
    s->lock.lock();
    s->replications.add(bucket, 1);
    if (miss) s->replication_misses.add(bucket, 1);
    s->replication_headroom_min.add(bucket, laxity);
    s->lock.unlock();
    s->replication_headroom.record(laxity > 0 ? static_cast<double>(laxity)
                                              : 0);
  }
  ShardSlot& shard = shard_slot();
  shard.lock.lock();
  shard.replications.add(bucket, 1);
  if (miss) shard.replication_misses.add(bucket, 1);
  shard.lock.unlock();
}

void SloMonitor::on_delivery(TopicId topic, Duration e2e, bool e2e_miss,
                             std::uint64_t worst_streak, TimePoint now) {
  (void)e2e;
  note_now(now);
  const std::int64_t bucket = bucket_of(now);
  if (TopicSlot* s = slot(topic)) {
    s->lock.lock();
    s->deliveries.add(bucket, 1);
    if (e2e_miss) s->e2e_misses.add(bucket, 1);
    s->worst_streak = std::max(s->worst_streak, worst_streak);
    s->lock.unlock();
  }
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

double burn(std::uint64_t events, std::uint64_t misses, double budget) {
  if (events == 0) return 0;
  return (static_cast<double>(misses) / static_cast<double>(events)) / budget;
}

}  // namespace

TopicSloSnapshot SloMonitor::snapshot(TopicId topic, TimePoint now) {
  TopicSloSnapshot snap;
  TopicSlot* s = slot(topic);
  if (s == nullptr) return snap;
  const Config cfg = config();
  const std::int64_t bucket = bucket_of(now);
  const std::size_t short_back = buckets_for(cfg.short_window);
  const std::size_t long_back = buckets_for(cfg.long_window);

  snap.topic = topic;
  snap.loss_tolerance = s->loss_tolerance;
  snap.deadline = s->deadline;

  s->lock.lock();
  snap.dispatches_short = s->dispatches.sum(bucket, short_back);
  snap.dispatch_misses_short = s->dispatch_misses.sum(bucket, short_back);
  snap.dispatches_long = s->dispatches.sum(bucket, long_back);
  snap.dispatch_misses_long = s->dispatch_misses.sum(bucket, long_back);
  snap.replications_short = s->replications.sum(bucket, short_back);
  snap.replication_misses_short = s->replication_misses.sum(bucket, short_back);
  snap.replications_long = s->replications.sum(bucket, long_back);
  snap.replication_misses_long = s->replication_misses.sum(bucket, long_back);
  snap.deliveries_short = s->deliveries.sum(bucket, short_back);
  snap.e2e_misses_short = s->e2e_misses.sum(bucket, short_back);
  snap.deliveries_long = s->deliveries.sum(bucket, long_back);
  snap.e2e_misses_long = s->e2e_misses.sum(bucket, long_back);
  snap.worst_streak = s->worst_streak;
  snap.dispatch_headroom_min = s->dispatch_headroom_min.min(bucket, short_back);
  snap.replication_headroom_min =
      s->replication_headroom_min.min(bucket, short_back);
  s->lock.unlock();

  snap.dispatch_burn_short =
      burn(snap.dispatches_short, snap.dispatch_misses_short, cfg.error_budget);
  snap.dispatch_burn_long =
      burn(snap.dispatches_long, snap.dispatch_misses_long, cfg.error_budget);
  snap.replication_burn_short = burn(snap.replications_short,
                                     snap.replication_misses_short,
                                     cfg.error_budget);
  snap.replication_burn_long = burn(snap.replications_long,
                                    snap.replication_misses_long,
                                    cfg.error_budget);
  snap.e2e_burn_short =
      burn(snap.deliveries_short, snap.e2e_misses_short, cfg.error_budget);
  snap.e2e_burn_long =
      burn(snap.deliveries_long, snap.e2e_misses_long, cfg.error_budget);

  if (snap.loss_tolerance != kLossInfinite) {
    const double li = static_cast<double>(std::max<std::uint32_t>(
        snap.loss_tolerance, 1));
    snap.streak_proximity = static_cast<double>(snap.worst_streak) / li;
  }

  snap.dispatch_headroom = s->dispatch_headroom.snapshot();
  snap.replication_headroom = s->replication_headroom.snapshot();
  return snap;
}

std::vector<TopicSloSnapshot> SloMonitor::snapshot_all(TimePoint now) {
  std::vector<TopicSloSnapshot> out;
  const std::size_t n = topic_count();
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(snapshot(static_cast<TopicId>(i), now));
  }
  return out;
}

std::vector<ShardSloSnapshot> SloMonitor::snapshot_shards(TimePoint now) {
  std::vector<ShardSloSnapshot> out;
  const Config cfg = config();
  const std::int64_t bucket = bucket_of(now);
  const std::size_t short_back = buckets_for(cfg.short_window);
  const std::size_t upto = max_shard_seen_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i <= upto; ++i) {
    ShardSlot& s = shard_slots_[i];
    ShardSloSnapshot snap;
    snap.shard = i;
    s.lock.lock();
    snap.dispatches_short = s.dispatches.sum(bucket, short_back);
    snap.dispatch_misses_short = s.dispatch_misses.sum(bucket, short_back);
    snap.replications_short = s.replications.sum(bucket, short_back);
    snap.replication_misses_short =
        s.replication_misses.sum(bucket, short_back);
    snap.dispatch_headroom_min = s.dispatch_headroom_min.min(bucket,
                                                            short_back);
    s.lock.unlock();
    snap.dispatch_burn_short = burn(snap.dispatches_short,
                                    snap.dispatch_misses_short,
                                    cfg.error_budget);
    out.push_back(snap);
  }
  return out;
}

double SloMonitor::metric_value(const AlertRule& rule, TimePoint now) {
  if (rule.metric == SloMetric::kDegradedMode) {
    return static_cast<double>(
        registry().gauge("frame_degraded_mode").value());
  }
  // Wildcard rules take the worst value across topics: max for
  // fires-when-above metrics, min for headroom.
  const bool above = fires_when_above(rule.metric);
  double worst = above ? 0 : std::numeric_limits<double>::infinity();
  bool any = false;
  const std::size_t n = topic_count();
  for (std::size_t i = 0; i < n; ++i) {
    const TopicId topic = static_cast<TopicId>(i);
    if (rule.topic != kAllTopics && rule.topic != topic) continue;
    const TopicSloSnapshot snap = snapshot(topic, now);
    double v = 0;
    bool applicable = true;
    const bool long_window = rule.window == kDurationInfinite ||
        (rule.window > 0 && rule.window > config().short_window);
    switch (rule.metric) {
      case SloMetric::kDispatchBurnRate:
        v = long_window ? snap.dispatch_burn_long : snap.dispatch_burn_short;
        break;
      case SloMetric::kReplicationBurnRate:
        v = long_window ? snap.replication_burn_long
                        : snap.replication_burn_short;
        break;
      case SloMetric::kE2eBurnRate:
        v = long_window ? snap.e2e_burn_long : snap.e2e_burn_short;
        break;
      case SloMetric::kLossStreakProximity:
        v = snap.streak_proximity;
        applicable = snap.loss_tolerance != kLossInfinite;
        break;
      case SloMetric::kDispatchHeadroomMin:
        v = static_cast<double>(snap.dispatch_headroom_min);
        applicable = snap.dispatch_headroom_min != kDurationInfinite;
        break;
      case SloMetric::kReplicationHeadroomMin:
        v = static_cast<double>(snap.replication_headroom_min);
        applicable = snap.replication_headroom_min != kDurationInfinite;
        break;
      case SloMetric::kDegradedMode:
        break;
    }
    if (!applicable) continue;
    any = true;
    worst = above ? std::max(worst, v) : std::min(worst, v);
  }
  if (!any) {
    // No applicable topic: a value that can never fire.
    return above ? 0 : std::numeric_limits<double>::infinity();
  }
  return worst;
}

std::vector<AlertState> SloMonitor::evaluate(TimePoint now) {
  std::vector<AlertState> out;
  bool any_critical = false;
  std::string first_critical_transition;
  {
    std::lock_guard<std::mutex> guard(config_mutex_);
    if (!rules_installed_) {
      rules_ = default_rules();
      rules_installed_ = true;
      firing_since_.assign(rules_.size(), 0);
    }
  }
  // metric_value takes topic spinlocks and config_mutex_ (via config());
  // compute all values before re-entering the firing-state section.
  std::vector<double> values;
  {
    std::vector<AlertRule> rules_copy;
    {
      std::lock_guard<std::mutex> guard(config_mutex_);
      rules_copy = rules_;
    }
    values.reserve(rules_copy.size());
    for (const auto& rule : rules_copy) {
      values.push_back(metric_value(rule, now));
    }
  }
  {
    std::lock_guard<std::mutex> guard(config_mutex_);
    out.reserve(rules_.size());
    for (std::size_t i = 0; i < rules_.size() && i < values.size(); ++i) {
      AlertState state;
      state.rule = rules_[i];
      state.value = values[i];
      state.firing = fires_when_above(state.rule.metric)
                         ? state.value > state.rule.threshold
                         : state.value < state.rule.threshold;
      if (state.firing) {
        if (firing_since_[i] == 0) {
          // 0 marks "not firing"; a transition at t=0 still needs a mark.
          firing_since_[i] = now > 0 ? now : 1;
          if (state.rule.severity == Severity::kCritical &&
              first_critical_transition.empty()) {
            first_critical_transition = state.rule.name;
          }
        }
        if (state.rule.severity == Severity::kCritical) any_critical = true;
        state.since = firing_since_[i];
      } else {
        firing_since_[i] = 0;
      }
      out.push_back(std::move(state));
    }
    critical_firing_.store(any_critical, std::memory_order_relaxed);
  }
  // Outside every SloMonitor lock: the recorder snapshots the registry and
  // may call back into slo_json (which re-enters evaluate-free paths).
  if (!first_critical_transition.empty()) {
    flight_recorder().trigger(TriggerReason::kCriticalAlert,
                              first_critical_transition.c_str(), now);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

void append_duration_field(std::ostringstream& os, const char* key,
                           Duration v) {
  os << '"' << key << "\":";
  if (v == kDurationInfinite) {
    os << "null";
  } else {
    os << v;
  }
}

void append_alerts(std::ostringstream& os,
                   const std::vector<AlertState>& alerts) {
  os << '[';
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const AlertState& a = alerts[i];
    if (i != 0) os << ',';
    os << "{\"name\":\"" << json_escape(a.rule.name) << "\",\"metric\":\""
       << to_string(a.rule.metric) << "\",\"severity\":\""
       << to_string(a.rule.severity) << "\",\"threshold\":"
       << a.rule.threshold << ",\"value\":" << a.value
       << ",\"firing\":" << (a.firing ? "true" : "false")
       << ",\"since_ns\":" << a.since;
    if (a.rule.topic != kAllTopics) {
      os << ",\"topic\":" << a.rule.topic;
    }
    os << '}';
  }
  os << ']';
}

}  // namespace

std::string SloMonitor::alerts_json(TimePoint now) {
  if (now == 0) now = latest_now();
  const std::vector<AlertState> alerts = evaluate(now);
  std::ostringstream os;
  os << "{\"now_ns\":" << now << ",\"critical_firing\":"
     << (critical_firing() ? "true" : "false") << ",\"alerts\":";
  append_alerts(os, alerts);
  os << '}';
  return os.str();
}

std::string SloMonitor::slo_json(TimePoint now) {
  if (now == 0) now = latest_now();
  const Config cfg = config();
  const std::vector<AlertState> alerts = evaluate(now);
  std::ostringstream os;
  os << "{\"now_ns\":" << now
     << ",\"short_window_ns\":" << cfg.short_window
     << ",\"long_window_ns\":" << cfg.long_window
     << ",\"error_budget\":" << cfg.error_budget
     << ",\"critical_firing\":" << (critical_firing() ? "true" : "false")
     << ",\"topics\":[";
  const std::vector<TopicSloSnapshot> topics = snapshot_all(now);
  for (std::size_t i = 0; i < topics.size(); ++i) {
    const TopicSloSnapshot& t = topics[i];
    if (i != 0) os << ',';
    os << "{\"topic\":" << t.topic << ",\"li\":";
    if (t.loss_tolerance == kLossInfinite) {
      os << "null";
    } else {
      os << t.loss_tolerance;
    }
    os << ",\"di_ms\":" << to_millis(t.deadline)
       << ",\"dispatches_short\":" << t.dispatches_short
       << ",\"dispatch_misses_short\":" << t.dispatch_misses_short
       << ",\"dispatch_burn_short\":" << t.dispatch_burn_short
       << ",\"dispatch_burn_long\":" << t.dispatch_burn_long
       << ",\"replications_short\":" << t.replications_short
       << ",\"replication_misses_short\":" << t.replication_misses_short
       << ",\"replication_burn_short\":" << t.replication_burn_short
       << ",\"replication_burn_long\":" << t.replication_burn_long
       << ",\"e2e_burn_short\":" << t.e2e_burn_short
       << ",\"e2e_burn_long\":" << t.e2e_burn_long
       << ",\"worst_streak\":" << t.worst_streak
       << ",\"streak_proximity\":" << t.streak_proximity << ',';
    append_duration_field(os, "dispatch_headroom_min_ns",
                          t.dispatch_headroom_min);
    os << ',';
    append_duration_field(os, "replication_headroom_min_ns",
                          t.replication_headroom_min);
    os << ",\"dispatch_headroom_p50_ns\":" << t.dispatch_headroom.p50()
       << ",\"dispatch_headroom_count\":" << t.dispatch_headroom.count()
       << '}';
  }
  os << "],\"shards\":[";
  const std::vector<ShardSloSnapshot> shards = snapshot_shards(now);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardSloSnapshot& s = shards[i];
    if (i != 0) os << ',';
    os << "{\"shard\":" << s.shard
       << ",\"dispatches_short\":" << s.dispatches_short
       << ",\"dispatch_misses_short\":" << s.dispatch_misses_short
       << ",\"dispatch_burn_short\":" << s.dispatch_burn_short << ',';
    append_duration_field(os, "dispatch_headroom_min_ns",
                          s.dispatch_headroom_min);
    os << '}';
  }
  os << "],\"alerts\":";
  append_alerts(os, alerts);
  os << '}';
  return os.str();
}

void SloMonitor::reset() {
  configure_lock_.lock();
  for (auto& s : slots_) {
    s.lock.lock();
    s.dispatches.reset();
    s.dispatch_misses.reset();
    s.replications.reset();
    s.replication_misses.reset();
    s.deliveries.reset();
    s.e2e_misses.reset();
    s.dispatch_headroom_min.reset();
    s.replication_headroom_min.reset();
    s.worst_streak = 0;
    s.lock.unlock();
    s.dispatch_headroom.reset();
    s.replication_headroom.reset();
  }
  for (auto& s : shard_slots_) {
    s.lock.lock();
    s.dispatches.reset();
    s.dispatch_misses.reset();
    s.replications.reset();
    s.replication_misses.reset();
    s.dispatch_headroom_min.reset();
    s.lock.unlock();
  }
  latest_now_.store(0, std::memory_order_relaxed);
  configure_lock_.unlock();
  std::lock_guard<std::mutex> guard(config_mutex_);
  firing_since_.assign(rules_.size(), 0);
  critical_firing_.store(false, std::memory_order_relaxed);
}

#else  // FRAME_OBS_DISABLED

// With observability compiled out the monitor is inert: hooks never run,
// and the endpoint surfaces report an empty document.

void SloMonitor::configure(const std::vector<TopicSpec>&) {}
void SloMonitor::set_config(const Config&) {}
SloMonitor::Config SloMonitor::config() const { return Config{}; }
void SloMonitor::set_rules(std::vector<AlertRule>) {}
std::vector<AlertRule> SloMonitor::default_rules() { return {}; }
void SloMonitor::on_dispatch_executed(TopicId, Duration, TimePoint) {}
void SloMonitor::on_replication_executed(TopicId, Duration, TimePoint) {}
void SloMonitor::on_delivery(TopicId, Duration, bool, std::uint64_t,
                             TimePoint) {}
std::vector<AlertState> SloMonitor::evaluate(TimePoint) { return {}; }
TopicSloSnapshot SloMonitor::snapshot(TopicId, TimePoint) { return {}; }
std::vector<TopicSloSnapshot> SloMonitor::snapshot_all(TimePoint) {
  return {};
}
std::vector<ShardSloSnapshot> SloMonitor::snapshot_shards(TimePoint) {
  return {};
}
std::string SloMonitor::alerts_json(TimePoint) {
  return "{\"alerts\":[]}";
}
std::string SloMonitor::slo_json(TimePoint) {
  return "{\"topics\":[],\"shards\":[],\"alerts\":[]}";
}
void SloMonitor::reset() {}

SloMonitor::TopicSlot* SloMonitor::slot(TopicId) { return nullptr; }
const SloMonitor::TopicSlot* SloMonitor::slot(TopicId) const {
  return nullptr;
}
SloMonitor::ShardSlot& SloMonitor::shard_slot() { return shard_slots_[0]; }
Duration SloMonitor::bucket_width() const { return milliseconds(125); }
std::int64_t SloMonitor::bucket_of(TimePoint) const { return 0; }
std::size_t SloMonitor::buckets_for(Duration) const { return 1; }
double SloMonitor::metric_value(const AlertRule&, TimePoint) { return 0; }
void SloMonitor::note_now(TimePoint) {}

// WindowedCounter/WindowedMin still need definitions (odr-used via the
// class layout) — keep them trivial.
void SloMonitor::WindowedCounter::advance(std::int64_t) {}
void SloMonitor::WindowedCounter::add(std::int64_t, std::uint64_t) {}
std::uint64_t SloMonitor::WindowedCounter::sum(std::int64_t,
                                               std::size_t) const {
  return 0;
}
void SloMonitor::WindowedCounter::reset() {}
void SloMonitor::WindowedMin::advance(std::int64_t) {}
void SloMonitor::WindowedMin::add(std::int64_t, Duration) {}
Duration SloMonitor::WindowedMin::min(std::int64_t, std::size_t) const {
  return kDurationInfinite;
}
void SloMonitor::WindowedMin::reset() {}

#endif  // FRAME_OBS_DISABLED

}  // namespace frame::obs
