// Out-of-line bodies of the instrumentation hooks.  Only reached with
// observability enabled.  Named instruments are resolved once per process
// via static-local references; after that each body touches only its own
// atomics (plus the tracer ring / accountant slots).
#include "obs/obs.hpp"

namespace frame::obs {

MetricsRegistry& registry() { return MetricsRegistry::instance(); }

Tracer& tracer() {
  static Tracer t;
  return t;
}

void reset_all() {
  registry().reset();
  tracer().clear();
  accountant().reset();
}

namespace detail {

namespace {

void span(SpanKind kind, TopicId topic, SeqNo seq, NodeId node, TimePoint at,
          Duration delta_pb = kDurationInfinite,
          Duration dd_slack = kDurationInfinite,
          Duration dr_slack = kDurationInfinite,
          std::uint64_t trace_id = 0) {
  SpanEvent ev;
  ev.kind = kind;
  ev.topic = topic;
  ev.seq = seq;
  // Engines are node-agnostic; attribute their spans to the node the
  // calling runtime thread declared via ThreadNodeScope.
  ev.node = node == kInvalidNode ? thread_node() : node;
  ev.trace_id = trace_id;
  ev.at = at;
  ev.delta_pb = delta_pb;
  ev.dd_slack = dd_slack;
  ev.dr_slack = dr_slack;
  tracer().record(ev);
}

}  // namespace

void publish_slow(TopicId topic, SeqNo seq, TimePoint now,
                  std::uint64_t trace_id) {
  static Counter& created = registry().counter("frame_publisher_created_total");
  created.add();
  span(SpanKind::kPublish, topic, seq, kInvalidNode, now, kDurationInfinite,
       kDurationInfinite, kDurationInfinite, trace_id);
}

void proxy_admit_slow(TopicId topic, SeqNo seq, TimePoint now,
                      Duration delta_pb, bool recovery,
                      std::uint64_t trace_id) {
  static Counter& admits = registry().counter("frame_proxy_admits_total");
  static Counter& recoveries =
      registry().counter("frame_proxy_recovery_admits_total");
  static LatencyRecorder& pb = registry().latency("frame_delta_pb_ns");
  admits.add();
  if (recovery) recoveries.add();
  if (delta_pb >= 0) pb.record(static_cast<double>(delta_pb));
  span(SpanKind::kProxyAdmit, topic, seq, kInvalidNode, now, delta_pb,
       kDurationInfinite, kDurationInfinite, trace_id);
}

void job_enqueue_slow(TopicId topic, SeqNo seq, TimePoint now, bool replicate,
                      Duration dd_slack, Duration dr_slack,
                      std::uint64_t trace_id) {
  static Counter& dispatch_jobs =
      registry().counter("frame_dispatch_jobs_total");
  static Counter& replicate_jobs =
      registry().counter("frame_replicate_jobs_total");
  (replicate ? replicate_jobs : dispatch_jobs).add();
  span(SpanKind::kJobEnqueue, topic, seq, kInvalidNode, now,
       kDurationInfinite, dd_slack, dr_slack, trace_id);
}

void dispatch_executed_slow(TopicId topic, SeqNo seq, TimePoint now,
                            Duration slack, std::uint64_t trace_id) {
  static Counter& dispatches = registry().counter("frame_dispatches_total");
  dispatches.add();
  if (slack != kDurationInfinite) {
    accountant().on_dispatch_executed(topic, slack);
  }
  span(SpanKind::kDispatchStart, topic, seq, kInvalidNode, now,
       kDurationInfinite, slack, kDurationInfinite, trace_id);
}

void replicate_executed_slow(TopicId topic, SeqNo seq, TimePoint now,
                             Duration slack, std::uint64_t trace_id) {
  static Counter& replications = registry().counter("frame_replications_total");
  replications.add();
  if (slack != kDurationInfinite) {
    accountant().on_replication_executed(topic, slack);
  }
  span(SpanKind::kReplicated, topic, seq, kInvalidNode, now,
       kDurationInfinite, kDurationInfinite, slack, trace_id);
}

void dispatch_stage_slow(TopicId topic, SeqNo seq, TimePoint done,
                         Duration queue_delay, Duration service,
                         std::uint64_t trace_id) {
  static LatencyRecorder& qd =
      registry().latency("frame_dispatch_queue_delay_ns");
  static LatencyRecorder& svc = registry().latency("frame_dispatch_service_ns");
  if (queue_delay >= 0) qd.record(static_cast<double>(queue_delay));
  if (service >= 0) svc.record(static_cast<double>(service));
  // done == release + queue_delay + service, so the stitched
  // job-enqueue -> dispatch-done span equals the histogram sum exactly.
  span(SpanKind::kDispatchDone, topic, seq, kInvalidNode, done,
       kDurationInfinite, kDurationInfinite, kDurationInfinite, trace_id);
}

void replicate_stage_slow(Duration queue_delay, Duration service) {
  static LatencyRecorder& qd =
      registry().latency("frame_replicate_queue_delay_ns");
  static LatencyRecorder& svc =
      registry().latency("frame_replicate_service_ns");
  if (queue_delay >= 0) qd.record(static_cast<double>(queue_delay));
  if (service >= 0) svc.record(static_cast<double>(service));
}

void copy_dropped_slow(TopicId topic, SeqNo seq, TimePoint now) {
  static Counter& drops = registry().counter("frame_copies_dropped_total");
  drops.add();
  span(SpanKind::kDropped, topic, seq, kInvalidNode, now);
}

void delivered_slow(TopicId topic, SeqNo seq, TimePoint now, Duration e2e,
                    std::uint64_t trace_id) {
  static Counter& deliveries = registry().counter("frame_deliveries_total");
  static LatencyRecorder& latency = registry().latency("frame_e2e_latency_ns");
  deliveries.add();
  latency.record(static_cast<double>(e2e));
  accountant().on_delivery(topic, seq, e2e);
  span(SpanKind::kDelivered, topic, seq, kInvalidNode, now, kDurationInfinite,
       e2e, kDurationInfinite, trace_id);
}

void job_queue_depth_slow(std::size_t depth) {
  static Gauge& gauge = registry().gauge("frame_job_queue_depth");
  static Gauge& peak = registry().gauge("frame_job_queue_depth_peak");
  gauge.set(static_cast<std::int64_t>(depth));
  peak.set_max(static_cast<std::int64_t>(depth));
}

void replication_cancelled_drop_slow() {
  static Counter& drops =
      registry().counter("frame_replications_cancelled_total");
  drops.add();
}

void backup_replica_stored_slow(TopicId topic, SeqNo seq, TimePoint now,
                                std::uint64_t trace_id) {
  static Counter& replicas = registry().counter("frame_backup_replicas_total");
  replicas.add();
  span(SpanKind::kBackupStored, topic, seq, kInvalidNode, now,
       kDurationInfinite, kDurationInfinite, kDurationInfinite, trace_id);
}

void backup_prune_applied_slow(TopicId topic) {
  static Counter& prunes = registry().counter("frame_backup_prunes_total");
  prunes.add();
  (void)topic;
}

void tcp_frame_sent_slow(std::size_t bytes) {
  static Counter& frames = registry().counter("frame_tcp_frames_sent_total");
  static Counter& sent_bytes = registry().counter("frame_tcp_bytes_sent_total");
  frames.add();
  sent_bytes.add(bytes);
}

void tcp_frame_received_slow(std::size_t bytes) {
  static Counter& frames =
      registry().counter("frame_tcp_frames_received_total");
  frames.add();
  (void)bytes;
}

void tcp_bytes_received_slow(std::size_t bytes) {
  static Counter& received =
      registry().counter("frame_tcp_bytes_received_total");
  received.add(bytes);
}

void tcp_batch_written_slow(std::size_t frames, std::size_t bytes) {
  static Counter& batches = registry().counter("frame_tcp_writev_calls_total");
  static Counter& batched =
      registry().counter("frame_tcp_batched_frames_total");
  static Counter& wire_bytes =
      registry().counter("frame_tcp_wire_bytes_written_total");
  batches.add();
  batched.add(frames);
  wire_bytes.add(bytes);
}

void tcp_send_queue_depth_slow(std::size_t bytes) {
  static Gauge& depth = registry().gauge("frame_tcp_send_queue_bytes");
  static Gauge& peak = registry().gauge("frame_tcp_send_queue_bytes_peak");
  depth.set(static_cast<std::int64_t>(bytes));
  peak.set_max(static_cast<std::int64_t>(bytes));
}

void tcp_reconnect_attempt_slow() {
  static Counter& attempts =
      registry().counter("frame_tcp_reconnect_attempts_total");
  attempts.add();
}

void tcp_connect_latency_slow(Duration latency) {
  static LatencyRecorder& connect =
      registry().latency("frame_tcp_connect_latency_ns");
  if (latency >= 0) connect.record(static_cast<double>(latency));
}

void tcp_backpressure_drop_slow() {
  static Counter& drops =
      registry().counter("frame_tcp_backpressure_drops_total");
  drops.add();
}

void tcp_protocol_error_slow() {
  static Counter& errors =
      registry().counter("frame_tcp_protocol_errors_total");
  errors.add();
}

void send_backpressure_slow(NodeId node) {
  static Counter& sheds =
      registry().counter("frame_runtime_send_backpressure_total");
  sheds.add();
  (void)node;
}

void crash_injected_slow(NodeId node, TimePoint now) {
  static Gauge& at = registry().gauge("frame_failover_crash_at_ns");
  at.set(now);
  span(SpanKind::kCrash, kInvalidTopic, 0, node, now);
}

void failover_detected_slow(NodeId node, TimePoint now) {
  static Gauge& at = registry().gauge("frame_failover_detected_at_ns");
  at.set_max(now);
  span(SpanKind::kFailoverDetected, kInvalidTopic, 0, node, now);
}

void promotion_complete_slow(NodeId node, TimePoint now,
                             std::size_t recovered) {
  static Gauge& at = registry().gauge("frame_failover_promotion_at_ns");
  static Counter& copies = registry().counter("frame_recovery_copies_total");
  at.set_max(now);
  copies.add(recovered);
  span(SpanKind::kPromotion, kInvalidTopic, 0, node, now);
}

void publisher_redirected_slow(NodeId node, TimePoint now) {
  static Gauge& at = registry().gauge("frame_failover_redirect_at_ns");
  static Gauge& crash_at = registry().gauge("frame_failover_crash_at_ns");
  static LatencyRecorder& x = registry().latency("frame_failover_x_ns");
  at.set_max(now);
  // The paper's x: crash .. publisher redirect, per publisher.
  const std::int64_t crashed_at = crash_at.value();
  if (crashed_at > 0 && now > crashed_at) {
    x.record(static_cast<double>(now - crashed_at));
  }
  span(SpanKind::kRedirect, kInvalidTopic, 0, node, now);
}

void retention_replay_slow(NodeId node, TimePoint now,
                           Duration replay_duration, std::size_t resent) {
  static Counter& resends = registry().counter("frame_retention_resent_total");
  static LatencyRecorder& replay =
      registry().latency("frame_failover_replay_ns");
  resends.add(resent);
  if (replay_duration >= 0) {
    replay.record(static_cast<double>(replay_duration));
  }
  span(SpanKind::kRetentionReplay, kInvalidTopic, 0, node, now);
}

void fault_injected_slow(std::uint8_t kind) {
  // Indexed by FaultKind (net/faulty_bus.hpp); obs stays below net in the
  // layering, so the names are spelled out here rather than derived.
  static Counter* const by_kind[] = {
      &registry().counter("frame_fault_injected_drop_total"),
      &registry().counter("frame_fault_injected_delay_total"),
      &registry().counter("frame_fault_injected_duplicate_total"),
      &registry().counter("frame_fault_injected_reorder_total"),
      &registry().counter("frame_fault_injected_corrupt_total"),
      &registry().counter("frame_fault_injected_truncate_total"),
      &registry().counter("frame_fault_injected_blackhole_total"),
      &registry().counter("frame_fault_injected_partition_total"),
  };
  static Counter& other = registry().counter("frame_fault_injected_total");
  other.add();
  if (kind < sizeof(by_kind) / sizeof(by_kind[0])) by_kind[kind]->add();
}

void wire_corrupt_frame_slow(NodeId node) {
  static Counter& rejected =
      registry().counter("frame_wire_corrupt_rejected_total");
  rejected.add();
  (void)node;
}

void broker_duplicate_suppressed_slow(TopicId topic, SeqNo seq) {
  static Counter& suppressed =
      registry().counter("frame_broker_duplicates_suppressed_total");
  suppressed.add();
  (void)topic;
  (void)seq;
}

void backup_lost_slow(NodeId node, TimePoint now) {
  static Counter& losses = registry().counter("frame_backup_lost_total");
  static Gauge& degraded = registry().gauge("frame_degraded_mode");
  losses.add();
  degraded.set(1);
  span(SpanKind::kCrash, kInvalidTopic, 0, node, now);
}

void backup_joined_slow(NodeId node, TimePoint now) {
  static Counter& joins = registry().counter("frame_backup_joined_total");
  static Gauge& degraded = registry().gauge("frame_degraded_mode");
  joins.add();
  degraded.set(0);
  (void)node;
  (void)now;
}

}  // namespace detail
}  // namespace frame::obs
