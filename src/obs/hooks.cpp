// Out-of-line bodies of the instrumentation hooks.  Only reached with
// observability enabled.  Named instruments are resolved once per process
// via static-local references; after that each body touches only its own
// atomics (plus the tracer ring / accountant slots).
#include "obs/obs.hpp"

#include <array>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"

namespace frame::obs {

MetricsRegistry& registry() { return MetricsRegistry::instance(); }

Tracer& tracer() {
  static Tracer t;
  return t;
}

void reset_all() {
  registry().reset();
  tracer().clear();
  accountant().reset();
  slo().reset();
}

namespace detail {

namespace {

// Mirrors core/topic_sharding.hpp kMaxShards (obs sits below core in the
// layering, so the bound is restated rather than included).
constexpr std::size_t kMaxShardSeries = 32;

template <typename T>
T& resolve_instrument(const std::string& name);
template <>
Counter& resolve_instrument<Counter>(const std::string& name) {
  return registry().counter(name);
}
template <>
Gauge& resolve_instrument<Gauge>(const std::string& name) {
  return registry().gauge(name);
}
template <>
LatencyRecorder& resolve_instrument<LatencyRecorder>(const std::string& name) {
  return registry().latency(name);
}

/// A hot-path instrument that splits into one series per Primary shard.
/// Threads without a ShardScope (engine unit tests, the simulator, the
/// single-shard runtime before start) hit the base-named instrument; a
/// shard lane hits "<base>_shard<k>".  collect_snapshot folds the shard
/// series back into the base name at scrape time, so every exporter and
/// existing consumer keeps seeing the aggregate under the old name.
/// Resolution happens once per (call site, shard): slot pointers are
/// cached in atomics, so the steady state is one relaxed load extra over
/// the old static-local reference.
template <typename T>
class PerShard {
 public:
  explicit PerShard(const char* base) : base_(base) {}

  T& get() {
    const std::size_t shard = thread_shard();
    const std::size_t idx =
        shard == kNoShard || shard >= kMaxShardSeries ? 0 : shard + 1;
    T* p = slots_[idx].load(std::memory_order_acquire);
    if (p == nullptr) {
      std::string name(base_);
      if (idx != 0) name += "_shard" + std::to_string(idx - 1);
      p = &resolve_instrument<T>(name);
      // Racing resolvers store the same registry reference; last write
      // wins harmlessly.
      slots_[idx].store(p, std::memory_order_release);
    }
    return *p;
  }

 private:
  const char* base_;
  std::array<std::atomic<T*>, kMaxShardSeries + 1> slots_{};
};

void span(SpanKind kind, TopicId topic, SeqNo seq, NodeId node, TimePoint at,
          Duration delta_pb = kDurationInfinite,
          Duration dd_slack = kDurationInfinite,
          Duration dr_slack = kDurationInfinite,
          std::uint64_t trace_id = 0) {
  SpanEvent ev;
  ev.kind = kind;
  ev.topic = topic;
  ev.seq = seq;
  // Engines are node-agnostic; attribute their spans to the node the
  // calling runtime thread declared via ThreadNodeScope.
  ev.node = node == kInvalidNode ? thread_node() : node;
  ev.trace_id = trace_id;
  ev.at = at;
  ev.delta_pb = delta_pb;
  ev.dd_slack = dd_slack;
  ev.dr_slack = dr_slack;
  tracer().record(ev);
}

}  // namespace

void publish_slow(TopicId topic, SeqNo seq, TimePoint now,
                  std::uint64_t trace_id) {
  static Counter& created = registry().counter("frame_publisher_created_total");
  created.add();
  span(SpanKind::kPublish, topic, seq, kInvalidNode, now, kDurationInfinite,
       kDurationInfinite, kDurationInfinite, trace_id);
}

void proxy_admit_slow(TopicId topic, SeqNo seq, TimePoint now,
                      Duration delta_pb, bool recovery,
                      std::uint64_t trace_id) {
  static PerShard<Counter> admits("frame_proxy_admits_total");
  static Counter& recoveries =
      registry().counter("frame_proxy_recovery_admits_total");
  static PerShard<LatencyRecorder> pb("frame_delta_pb_ns");
  admits.get().add();
  if (recovery) recoveries.add();
  if (delta_pb >= 0) pb.get().record(static_cast<double>(delta_pb));
  span(SpanKind::kProxyAdmit, topic, seq, kInvalidNode, now, delta_pb,
       kDurationInfinite, kDurationInfinite, trace_id);
}

void job_enqueue_slow(TopicId topic, SeqNo seq, TimePoint now, bool replicate,
                      Duration dd_slack, Duration dr_slack,
                      std::uint64_t trace_id) {
  static PerShard<Counter> dispatch_jobs("frame_dispatch_jobs_total");
  static PerShard<Counter> replicate_jobs("frame_replicate_jobs_total");
  (replicate ? replicate_jobs : dispatch_jobs).get().add();
  span(SpanKind::kJobEnqueue, topic, seq, kInvalidNode, now,
       kDurationInfinite, dd_slack, dr_slack, trace_id);
}

void dispatch_executed_slow(TopicId topic, SeqNo seq, TimePoint now,
                            Duration slack, std::uint64_t trace_id) {
  static PerShard<Counter> dispatches("frame_dispatches_total");
  dispatches.get().add();
  span(SpanKind::kDispatchStart, topic, seq, kInvalidNode, now,
       kDurationInfinite, slack, kDurationInfinite, trace_id);
  if (slack != kDurationInfinite) {
    accountant().on_dispatch_executed(topic, slack);
    slo().on_dispatch_executed(topic, slack, now);
    // Trigger last, after the span and the accounts: the frozen bundle
    // must contain the very event that fired it.
    if (slack < 0) {
      flight_recorder().trigger(TriggerReason::kLemma2Miss, "", now);
    }
  }
}

void replicate_executed_slow(TopicId topic, SeqNo seq, TimePoint now,
                             Duration slack, std::uint64_t trace_id) {
  static PerShard<Counter> replications("frame_replications_total");
  replications.get().add();
  span(SpanKind::kReplicated, topic, seq, kInvalidNode, now,
       kDurationInfinite, kDurationInfinite, slack, trace_id);
  if (slack != kDurationInfinite) {
    accountant().on_replication_executed(topic, slack);
    slo().on_replication_executed(topic, slack, now);
    if (slack < 0) {
      flight_recorder().trigger(TriggerReason::kLemma1Miss, "", now);
    }
  }
}

void dispatch_stage_slow(TopicId topic, SeqNo seq, TimePoint done,
                         Duration queue_delay, Duration service,
                         std::uint64_t trace_id) {
  static PerShard<LatencyRecorder> qd("frame_dispatch_queue_delay_ns");
  static PerShard<LatencyRecorder> svc("frame_dispatch_service_ns");
  if (queue_delay >= 0) qd.get().record(static_cast<double>(queue_delay));
  if (service >= 0) svc.get().record(static_cast<double>(service));
  // done == release + queue_delay + service, so the stitched
  // job-enqueue -> dispatch-done span equals the histogram sum exactly.
  span(SpanKind::kDispatchDone, topic, seq, kInvalidNode, done,
       kDurationInfinite, kDurationInfinite, kDurationInfinite, trace_id);
}

void replicate_stage_slow(Duration queue_delay, Duration service) {
  static PerShard<LatencyRecorder> qd("frame_replicate_queue_delay_ns");
  static PerShard<LatencyRecorder> svc("frame_replicate_service_ns");
  if (queue_delay >= 0) qd.get().record(static_cast<double>(queue_delay));
  if (service >= 0) svc.get().record(static_cast<double>(service));
}

void copy_dropped_slow(TopicId topic, SeqNo seq, TimePoint now) {
  static Counter& drops = registry().counter("frame_copies_dropped_total");
  drops.add();
  span(SpanKind::kDropped, topic, seq, kInvalidNode, now);
}

void delivered_slow(TopicId topic, SeqNo seq, TimePoint now, Duration e2e,
                    std::uint64_t trace_id) {
  static Counter& deliveries = registry().counter("frame_deliveries_total");
  static LatencyRecorder& latency = registry().latency("frame_e2e_latency_ns");
  deliveries.add();
  latency.record(static_cast<double>(e2e));
  span(SpanKind::kDelivered, topic, seq, kInvalidNode, now, kDurationInfinite,
       e2e, kDurationInfinite, trace_id);
  const auto outcome = accountant().on_delivery(topic, seq, e2e);
  slo().on_delivery(topic, e2e, outcome.e2e_miss, outcome.worst_streak, now);
  if (outcome.breached_now) {
    flight_recorder().trigger(TriggerReason::kLossStreakBreach, "", now);
  }
}

void job_queue_depth_slow(std::size_t depth) {
  static PerShard<Gauge> gauge("frame_job_queue_depth");
  static PerShard<Gauge> peak("frame_job_queue_depth_peak");
  gauge.get().set(static_cast<std::int64_t>(depth));
  peak.get().set_max(static_cast<std::int64_t>(depth));
}

void replication_cancelled_drop_slow() {
  static PerShard<Counter> drops("frame_replications_cancelled_total");
  drops.get().add();
}

void backup_replica_stored_slow(TopicId topic, SeqNo seq, TimePoint now,
                                std::uint64_t trace_id) {
  static Counter& replicas = registry().counter("frame_backup_replicas_total");
  replicas.add();
  span(SpanKind::kBackupStored, topic, seq, kInvalidNode, now,
       kDurationInfinite, kDurationInfinite, kDurationInfinite, trace_id);
}

void backup_prune_applied_slow(TopicId topic) {
  static Counter& prunes = registry().counter("frame_backup_prunes_total");
  prunes.add();
  (void)topic;
}

void tcp_frame_sent_slow(std::size_t bytes) {
  static Counter& frames = registry().counter("frame_tcp_frames_sent_total");
  static Counter& sent_bytes = registry().counter("frame_tcp_bytes_sent_total");
  frames.add();
  sent_bytes.add(bytes);
}

void tcp_frame_received_slow(std::size_t bytes) {
  static Counter& frames =
      registry().counter("frame_tcp_frames_received_total");
  frames.add();
  (void)bytes;
}

void tcp_bytes_received_slow(std::size_t bytes) {
  static Counter& received =
      registry().counter("frame_tcp_bytes_received_total");
  received.add(bytes);
}

void tcp_batch_written_slow(std::size_t frames, std::size_t bytes) {
  static Counter& batches = registry().counter("frame_tcp_writev_calls_total");
  static Counter& batched =
      registry().counter("frame_tcp_batched_frames_total");
  static Counter& wire_bytes =
      registry().counter("frame_tcp_wire_bytes_written_total");
  batches.add();
  batched.add(frames);
  wire_bytes.add(bytes);
}

void tcp_send_queue_depth_slow(std::size_t bytes) {
  static Gauge& depth = registry().gauge("frame_tcp_send_queue_bytes");
  static Gauge& peak = registry().gauge("frame_tcp_send_queue_bytes_peak");
  depth.set(static_cast<std::int64_t>(bytes));
  peak.set_max(static_cast<std::int64_t>(bytes));
}

void tcp_reconnect_attempt_slow() {
  static Counter& attempts =
      registry().counter("frame_tcp_reconnect_attempts_total");
  attempts.add();
}

void tcp_connect_latency_slow(Duration latency) {
  static LatencyRecorder& connect =
      registry().latency("frame_tcp_connect_latency_ns");
  if (latency >= 0) connect.record(static_cast<double>(latency));
}

void tcp_backpressure_drop_slow() {
  static Counter& drops =
      registry().counter("frame_tcp_backpressure_drops_total");
  drops.add();
}

void tcp_protocol_error_slow() {
  static Counter& errors =
      registry().counter("frame_tcp_protocol_errors_total");
  errors.add();
}

void send_backpressure_slow(NodeId node) {
  static Counter& sheds =
      registry().counter("frame_runtime_send_backpressure_total");
  sheds.add();
  (void)node;
}

void crash_injected_slow(NodeId node, TimePoint now) {
  static Gauge& at = registry().gauge("frame_failover_crash_at_ns");
  at.set(now);
  flight_recorder().trigger(TriggerReason::kFailover, "crash-injected", now);
  span(SpanKind::kCrash, kInvalidTopic, 0, node, now);
}

void failover_detected_slow(NodeId node, TimePoint now) {
  static Gauge& at = registry().gauge("frame_failover_detected_at_ns");
  at.set_max(now);
  flight_recorder().trigger(TriggerReason::kFailover, "detector", now);
  span(SpanKind::kFailoverDetected, kInvalidTopic, 0, node, now);
}

void promotion_complete_slow(NodeId node, TimePoint now,
                             std::size_t recovered) {
  static Gauge& at = registry().gauge("frame_failover_promotion_at_ns");
  static Counter& copies = registry().counter("frame_recovery_copies_total");
  at.set_max(now);
  copies.add(recovered);
  span(SpanKind::kPromotion, kInvalidTopic, 0, node, now);
}

void publisher_redirected_slow(NodeId node, TimePoint now) {
  static Gauge& at = registry().gauge("frame_failover_redirect_at_ns");
  static Gauge& crash_at = registry().gauge("frame_failover_crash_at_ns");
  static LatencyRecorder& x = registry().latency("frame_failover_x_ns");
  at.set_max(now);
  // The paper's x: crash .. publisher redirect, per publisher.
  const std::int64_t crashed_at = crash_at.value();
  if (crashed_at > 0 && now > crashed_at) {
    x.record(static_cast<double>(now - crashed_at));
  }
  span(SpanKind::kRedirect, kInvalidTopic, 0, node, now);
}

void retention_replay_slow(NodeId node, TimePoint now,
                           Duration replay_duration, std::size_t resent) {
  static Counter& resends = registry().counter("frame_retention_resent_total");
  static LatencyRecorder& replay =
      registry().latency("frame_failover_replay_ns");
  resends.add(resent);
  if (replay_duration >= 0) {
    replay.record(static_cast<double>(replay_duration));
  }
  span(SpanKind::kRetentionReplay, kInvalidTopic, 0, node, now);
}

void fault_injected_slow(std::uint8_t kind) {
  // Indexed by FaultKind (net/faulty_bus.hpp); obs stays below net in the
  // layering, so the names are spelled out here rather than derived.
  static Counter* const by_kind[] = {
      &registry().counter("frame_fault_injected_drop_total"),
      &registry().counter("frame_fault_injected_delay_total"),
      &registry().counter("frame_fault_injected_duplicate_total"),
      &registry().counter("frame_fault_injected_reorder_total"),
      &registry().counter("frame_fault_injected_corrupt_total"),
      &registry().counter("frame_fault_injected_truncate_total"),
      &registry().counter("frame_fault_injected_blackhole_total"),
      &registry().counter("frame_fault_injected_partition_total"),
  };
  static Counter& other = registry().counter("frame_fault_injected_total");
  other.add();
  if (kind < sizeof(by_kind) / sizeof(by_kind[0])) by_kind[kind]->add();
}

void wire_corrupt_frame_slow(NodeId node) {
  static Counter& rejected =
      registry().counter("frame_wire_corrupt_rejected_total");
  rejected.add();
  (void)node;
}

void broker_duplicate_suppressed_slow(TopicId topic, SeqNo seq) {
  static Counter& suppressed =
      registry().counter("frame_broker_duplicates_suppressed_total");
  suppressed.add();
  (void)topic;
  (void)seq;
}

void backup_lost_slow(NodeId node, TimePoint now) {
  static Counter& losses = registry().counter("frame_backup_lost_total");
  static Gauge& degraded = registry().gauge("frame_degraded_mode");
  losses.add();
  degraded.set(1);
  span(SpanKind::kCrash, kInvalidTopic, 0, node, now);
}

void backup_joined_slow(NodeId node, TimePoint now) {
  static Counter& joins = registry().counter("frame_backup_joined_total");
  static Gauge& degraded = registry().gauge("frame_degraded_mode");
  joins.add();
  degraded.set(0);
  (void)node;
  (void)now;
}

}  // namespace detail
}  // namespace frame::obs
