// Observability facade: the global on/off switch, the process-wide
// singletons (MetricsRegistry / Tracer / DeadlineAccountant), and the
// instrumentation hooks the engines call.
//
// Cost contract: with observability disabled (the default), every hook is
// one relaxed atomic load plus a predictable branch -- verified by
// BM_EnginePublishDispatch vs BM_EnginePublishDispatchObs in bench_micro.
// With FRAME_OBS=OFF at configure time the hooks compile away entirely.
// Hook bodies resolve their named instruments once via static-local
// references; afterwards a hook touches only its own atomics.
#pragma once

#include <atomic>

#include "common/time.hpp"
#include "common/types.hpp"
#include "obs/deadline_accountant.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace frame::obs {

#ifdef FRAME_OBS_DISABLED
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// The branch every hook takes first: one relaxed load.
inline bool enabled() {
  if constexpr (!kCompiled) {
    return false;
  } else {
    return detail::g_enabled.load(std::memory_order_relaxed);
  }
}

inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// RAII scope for tests/benches that toggle observability.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : previous_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(previous_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool previous_;
};

namespace detail {
// Which node this thread's engine code is executing on behalf of.  Runtime
// threads (broker loops, frame handlers, publisher/subscriber loops) set it
// once so that span events from node-agnostic engine code get attributed to
// the right track when multi-process dumps are stitched.
inline thread_local NodeId g_thread_node = kInvalidNode;
}  // namespace detail

inline NodeId thread_node() { return detail::g_thread_node; }
inline void set_thread_node(NodeId node) { detail::g_thread_node = node; }

/// "No shard": hooks record into the base-named instruments, exactly the
/// pre-sharding behaviour.  Engine/unit tests and the simulator never set
/// a shard, so their series are unchanged.
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

namespace detail {
// Which Primary shard this thread's engine code is working for.  Shard
// lanes set it so the hot-path instruments (queue depth, stage latencies,
// dispatch/replicate counters) resolve to per-shard series
// ("<base>_shard<k>"), which collect_snapshot folds back into the base
// name at scrape time.  Without it, N shards publishing one global depth
// gauge would clobber each other.
inline thread_local std::size_t g_thread_shard = kNoShard;
}  // namespace detail

inline std::size_t thread_shard() { return detail::g_thread_shard; }
inline void set_thread_shard(std::size_t shard) {
  detail::g_thread_shard = shard;
}

/// RAII node attribution for a runtime thread or frame handler.
class ThreadNodeScope {
 public:
  explicit ThreadNodeScope(NodeId node) : previous_(thread_node()) {
    set_thread_node(node);
  }
  ~ThreadNodeScope() { set_thread_node(previous_); }
  ThreadNodeScope(const ThreadNodeScope&) = delete;
  ThreadNodeScope& operator=(const ThreadNodeScope&) = delete;

 private:
  NodeId previous_;
};

/// RAII shard attribution for a broker shard lane.
class ShardScope {
 public:
  explicit ShardScope(std::size_t shard) : previous_(thread_shard()) {
    set_thread_shard(shard);
  }
  ~ShardScope() { set_thread_shard(previous_); }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  std::size_t previous_;
};

MetricsRegistry& registry();
Tracer& tracer();
inline DeadlineAccountant& accountant() {
  return DeadlineAccountant::instance();
}

/// Zeroes every instrument, the tracer ring, the accountant and the SLO
/// monitor (topic tables are kept).  For scoping a measurement run.
void reset_all();

// ---------------------------------------------------------------------------
// Instrumentation hooks.  Each public hook is an inline wrapper whose
// disabled path is exactly the enabled() load + branch; the enabled path
// tail-calls the out-of-line recording body in hooks.cpp.
// ---------------------------------------------------------------------------
namespace detail {
void publish_slow(TopicId topic, SeqNo seq, TimePoint now,
                  std::uint64_t trace_id);
void proxy_admit_slow(TopicId topic, SeqNo seq, TimePoint now,
                      Duration delta_pb, bool recovery,
                      std::uint64_t trace_id);
void job_enqueue_slow(TopicId topic, SeqNo seq, TimePoint now, bool replicate,
                      Duration dd_slack, Duration dr_slack,
                      std::uint64_t trace_id);
void dispatch_executed_slow(TopicId topic, SeqNo seq, TimePoint now,
                            Duration slack, std::uint64_t trace_id);
void replicate_executed_slow(TopicId topic, SeqNo seq, TimePoint now,
                             Duration slack, std::uint64_t trace_id);
void dispatch_stage_slow(TopicId topic, SeqNo seq, TimePoint done,
                         Duration queue_delay, Duration service,
                         std::uint64_t trace_id);
void replicate_stage_slow(Duration queue_delay, Duration service);
void copy_dropped_slow(TopicId topic, SeqNo seq, TimePoint now);
void delivered_slow(TopicId topic, SeqNo seq, TimePoint now, Duration e2e,
                    std::uint64_t trace_id);
void job_queue_depth_slow(std::size_t depth);
void replication_cancelled_drop_slow();
void backup_replica_stored_slow(TopicId topic, SeqNo seq, TimePoint now,
                                std::uint64_t trace_id);
void backup_prune_applied_slow(TopicId topic);
void tcp_frame_sent_slow(std::size_t bytes);
void tcp_frame_received_slow(std::size_t bytes);
void tcp_bytes_received_slow(std::size_t bytes);
void tcp_batch_written_slow(std::size_t frames, std::size_t bytes);
void tcp_send_queue_depth_slow(std::size_t bytes);
void tcp_reconnect_attempt_slow();
void tcp_connect_latency_slow(Duration latency);
void tcp_backpressure_drop_slow();
void tcp_protocol_error_slow();
void send_backpressure_slow(NodeId node);
void crash_injected_slow(NodeId node, TimePoint now);
void failover_detected_slow(NodeId node, TimePoint now);
void promotion_complete_slow(NodeId node, TimePoint now,
                             std::size_t recovered);
void publisher_redirected_slow(NodeId node, TimePoint now);
void retention_replay_slow(NodeId node, TimePoint now,
                           Duration replay_duration, std::size_t resent);
void fault_injected_slow(std::uint8_t kind);
void wire_corrupt_frame_slow(NodeId node);
void broker_duplicate_suppressed_slow(TopicId topic, SeqNo seq);
void backup_lost_slow(NodeId node, TimePoint now);
void backup_joined_slow(NodeId node, TimePoint now);
}  // namespace detail

namespace hooks {

/// Publisher proxy created a message (tc stamp).
inline void publish(TopicId topic, SeqNo seq, TimePoint now,
                    std::uint64_t trace_id = 0) {
  if (enabled()) detail::publish_slow(topic, seq, now, trace_id);
}

/// Message Proxy admitted an arrival; `delta_pb` = tp - tc.
inline void proxy_admit(TopicId topic, SeqNo seq, TimePoint now,
                        Duration delta_pb, bool recovery,
                        std::uint64_t trace_id = 0) {
  if (enabled()) {
    detail::proxy_admit_slow(topic, seq, now, delta_pb, recovery, trace_id);
  }
}

/// Job Generator enqueued a job; slacks are the remaining relative
/// deadlines (Dd/Dr after subtracting the observed ΔPB).
inline void job_enqueue(TopicId topic, SeqNo seq, TimePoint now,
                        bool replicate, Duration dd_slack, Duration dr_slack,
                        std::uint64_t trace_id = 0) {
  if (enabled()) {
    detail::job_enqueue_slow(topic, seq, now, replicate, dd_slack, dr_slack,
                             trace_id);
  }
}

/// A Dispatcher executed the dispatch job with `slack` remaining until the
/// absolute Lemma-2 deadline (kDurationInfinite = execution time unknown).
inline void dispatch_executed(TopicId topic, SeqNo seq, TimePoint now,
                              Duration slack, std::uint64_t trace_id = 0) {
  if (enabled()) {
    detail::dispatch_executed_slow(topic, seq, now, slack, trace_id);
  }
}

/// A Replicator shipped the copy with `slack` remaining until the absolute
/// Lemma-1 deadline.
inline void replicate_executed(TopicId topic, SeqNo seq, TimePoint now,
                               Duration slack, std::uint64_t trace_id = 0) {
  if (enabled()) {
    detail::replicate_executed_slow(topic, seq, now, slack, trace_id);
  }
}

/// Per-stage dispatch attribution: `queue_delay` = time the dispatch job
/// sat in the EDF queue (execute start - release), `service` = execute
/// start to delivery handoff finished at `done`.  Records both log-binned
/// histograms and emits the kDispatchDone span, so queue_delay + service
/// equals the stitched job-enqueue -> dispatch-done span per message.
inline void dispatch_stage(TopicId topic, SeqNo seq, TimePoint done,
                           Duration queue_delay, Duration service,
                           std::uint64_t trace_id = 0) {
  if (enabled()) {
    detail::dispatch_stage_slow(topic, seq, done, queue_delay, service,
                                trace_id);
  }
}

/// Same split for replicate jobs (histograms only; no extra span — the
/// kReplicated span already marks the ship time).
inline void replicate_stage(Duration queue_delay, Duration service) {
  if (enabled()) detail::replicate_stage_slow(queue_delay, service);
}

/// A job referenced a copy no longer in the buffer, or an undelivered copy
/// was overwritten.
inline void copy_dropped(TopicId topic, SeqNo seq, TimePoint now) {
  if (enabled()) detail::copy_dropped_slow(topic, seq, now);
}

/// Subscriber got the first copy of (topic, seq); `e2e` = ts - tc.
inline void delivered(TopicId topic, SeqNo seq, TimePoint now, Duration e2e,
                      std::uint64_t trace_id = 0) {
  if (enabled()) detail::delivered_slow(topic, seq, now, e2e, trace_id);
}

/// Job queue state after a push/pop.
inline void job_queue_depth(std::size_t depth) {
  if (enabled()) detail::job_queue_depth_slow(depth);
}

/// A cancelled replicate job was dropped at pop time.
inline void replication_cancelled_drop() {
  if (enabled()) detail::replication_cancelled_drop_slow();
}

/// Backup Buffer activity.
inline void backup_replica_stored(TopicId topic, SeqNo seq, TimePoint now,
                                  std::uint64_t trace_id = 0) {
  if (enabled()) detail::backup_replica_stored_slow(topic, seq, now, trace_id);
}
inline void backup_prune_applied(TopicId topic) {
  if (enabled()) detail::backup_prune_applied_slow(topic);
}

/// TCP bus egress.
inline void tcp_frame_sent(std::size_t bytes) {
  if (enabled()) detail::tcp_frame_sent_slow(bytes);
}

/// TCP transport ingress: one reassembled frame (header included).
inline void tcp_frame_received(std::size_t bytes) {
  if (enabled()) detail::tcp_frame_received_slow(bytes);
}

/// Raw bytes drained from a socket by the reactor.
inline void tcp_bytes_received(std::size_t bytes) {
  if (enabled()) detail::tcp_bytes_received_slow(bytes);
}

/// One writev flushed `frames` complete frames (`bytes` on the wire).
inline void tcp_batch_written(std::size_t frames, std::size_t bytes) {
  if (enabled()) detail::tcp_batch_written_slow(frames, bytes);
}

/// Outbound queue depth (bytes) of a connection after enqueue/flush.
inline void tcp_send_queue_depth(std::size_t bytes) {
  if (enabled()) detail::tcp_send_queue_depth_slow(bytes);
}

/// A client link retried its connect after a failure (backoff expired).
inline void tcp_reconnect_attempt() {
  if (enabled()) detail::tcp_reconnect_attempt_slow();
}

/// Wall time one successful connect() took, handshake included.
inline void tcp_connect_latency(Duration latency) {
  if (enabled()) detail::tcp_connect_latency_slow(latency);
}

/// A frame was rejected at the send side because the queue is full.
inline void tcp_backpressure_drop() {
  if (enabled()) detail::tcp_backpressure_drop_slow();
}

/// A peer violated the wire protocol (e.g. oversized frame).
inline void tcp_protocol_error() {
  if (enabled()) detail::tcp_protocol_error_slow();
}

/// The runtime observed kCapacity from Bus::try_send (load shed).
inline void send_backpressure(NodeId node) {
  if (enabled()) detail::send_backpressure_slow(node);
}

// Failover timeline (runtime).  The measured x is derived as
// redirect_at - crash_at; the retention replay duration is reported by the
// publisher that performed it.
inline void crash_injected(NodeId node, TimePoint now) {
  if (enabled()) detail::crash_injected_slow(node, now);
}
inline void failover_detected(NodeId node, TimePoint now) {
  if (enabled()) detail::failover_detected_slow(node, now);
}
inline void promotion_complete(NodeId node, TimePoint now,
                               std::size_t recovered) {
  if (enabled()) detail::promotion_complete_slow(node, now, recovered);
}
inline void publisher_redirected(NodeId node, TimePoint now) {
  if (enabled()) detail::publisher_redirected_slow(node, now);
}
inline void retention_replay(NodeId node, TimePoint now,
                             Duration replay_duration, std::size_t resent) {
  if (enabled()) {
    detail::retention_replay_slow(node, now, replay_duration, resent);
  }
}

/// FaultyBus injected a scripted fault; `kind` is the FaultKind value
/// (net/faulty_bus.hpp) — one frame_fault_injected_<kind>_total counter
/// per kind.
inline void fault_injected(std::uint8_t kind) {
  if (enabled()) detail::fault_injected_slow(kind);
}

/// An endpoint rejected an inbound frame whose CRC32C failed (corrupted
/// or truncated on the wire); the frame never reached a decoder.
inline void wire_corrupt_frame(NodeId node) {
  if (enabled()) detail::wire_corrupt_frame_slow(node);
}

/// A broker suppressed a (topic, seq) it had already dispatched or queued
/// for dispatch (retention-replay dedup at the promoted Backup).
inline void broker_duplicate_suppressed(TopicId topic, SeqNo seq) {
  if (enabled()) detail::broker_duplicate_suppressed_slow(topic, seq);
}

// Degraded-mode timeline: the Primary's detector lost / regained its
// Backup.  While lost, replication is suspended and the degraded gauge
// reads 1.
inline void backup_lost(NodeId node, TimePoint now) {
  if (enabled()) detail::backup_lost_slow(node, now);
}
inline void backup_joined(NodeId node, TimePoint now) {
  if (enabled()) detail::backup_joined_slow(node, now);
}

}  // namespace hooks
}  // namespace frame::obs
