// Bench-report model and noise-aware regression differ.
//
// The bench harness (bench/harness) writes one canonical JSON document
// per suite ("frame-bench-v1"): a context block identifying the build
// (git sha, library build type, sanitizer, CPU/governor fingerprint) and
// a set of named series, each with a headline value, a unit, optional
// percentiles, and a `gated` flag.  This module parses those documents
// and compares two of them: per-series verdicts (improved / regressed /
// within-noise / new / removed) with a relative threshold plus an
// absolute noise floor, where only gated series can fail the overall
// verdict.  scripts/bench.sh and check.sh's FRAME_BENCH=1 mode gate on
// the frame_bench_diff CLI built from this.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frame::obs {

/// One measured series from a bench JSON.
struct BenchSeries {
  std::string name;
  std::string unit;   ///< "ns/op", "ns", "items/s", ...
  double value = 0;   ///< headline number the diff compares
  /// Optional percentile breakdown, e.g. {"p50", 1234.0}.  Informational;
  /// the diff verdict looks only at `value`.
  std::vector<std::pair<std::string, double>> percentiles;
  bool gated = true;  ///< false = informational, never fails the diff
};

/// A parsed "frame-bench-v1" document.
struct BenchReport {
  std::string suite;             ///< "micro", "tcp", "e2e"
  std::string git_sha;
  std::string build_type;        ///< library_build_type from the context
  std::string sanitizer;         ///< "none" or the sanitizer name
  std::string date;
  int num_cpus = 0;
  /// Whole-file gate: false when the harness refused to vouch for the
  /// numbers (debug/sanitized build, unknown CPU scaling).  An ungated
  /// file disables regression gating for the whole diff.
  bool gated = true;
  std::vector<BenchSeries> series;
};

/// Parses a frame-bench-v1 document.  On failure returns nullopt and, if
/// `error` is non-null, stores a one-line reason.
std::optional<BenchReport> parse_bench_report(std::string_view json,
                                              std::string* error = nullptr);

struct BenchDiffOptions {
  /// Relative change (vs the old value) beyond which a series counts as
  /// moved.  0.10 = the 10% regression gate.
  double rel_threshold = 0.10;
  /// Absolute floor for nanosecond-unit series: deltas under this many ns
  /// are noise regardless of their relative size (sub-100ns swings on a
  /// shared box mean nothing).
  double abs_floor_ns = 50.0;
};

enum class SeriesVerdict {
  kWithinNoise,
  kImproved,
  kRegressed,
  kNew,      ///< present only in the new report
  kRemoved,  ///< present only in the old report
};

std::string_view to_string(SeriesVerdict v);

struct SeriesDiff {
  std::string name;
  std::string unit;
  double old_value = 0;
  double new_value = 0;
  /// (new - old) / old; 0 when old == 0 or the series is one-sided.
  double rel_change = 0;
  bool higher_is_better = false;  ///< rate units ("/s") invert the gate
  bool gated = true;
  SeriesVerdict verdict = SeriesVerdict::kWithinNoise;
};

struct BenchDiffResult {
  std::vector<SeriesDiff> series;  ///< old-report order, then new-only
  /// True when at least one gated series regressed past the threshold.
  bool regression = false;
  /// True when either input file was ungated: the diff is informational
  /// and `regression` is forced false.
  bool gating_disabled = false;
  /// True when the two reports were measured under different conditions
  /// (library build type, CPU count or sanitizer differ): the numbers are
  /// not comparable, so gating is disabled rather than producing a bogus
  /// pass/fail.  `provenance_reason` says which field(s) diverged.
  bool provenance_mismatch = false;
  std::string provenance_reason;
};

/// Compares two reports series-by-series (matched by name).
BenchDiffResult diff_bench_reports(const BenchReport& old_report,
                                   const BenchReport& new_report,
                                   const BenchDiffOptions& options = {});

/// Human-readable comparison table (one row per series).
std::string bench_diff_table(const BenchDiffResult& diff);

/// One machine-parseable line: "bench-diff: ok|REGRESSION|ungated ..."
std::string bench_diff_verdict(const BenchDiffResult& diff);

}  // namespace frame::obs
