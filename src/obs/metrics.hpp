// Process-wide metrics registry (observability substrate).
//
// Hot-path instruments are lock-cheap: Counter/Gauge are single relaxed
// atomics; LatencyRecorder guards the existing OnlineStats/Histogram pair
// with a spinlock whose critical section is a handful of arithmetic ops
// (no allocation, no syscalls).  Name->instrument resolution is mutex
// guarded and intended to happen once per call site (static-local refs in
// the hooks); after that a hook touches only its own instrument.
//
// Latency histograms bin log10(nanoseconds) into a fixed-width Histogram,
// which gives constant relative resolution (~12% per bin at 20 bins per
// decade) across the microsecond..tens-of-seconds range the deployment
// spans; quantiles interpolate inside the log-domain bin and clamp to the
// exact observed min/max tracked by OnlineStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace frame::obs {

/// Monotonic event count.  add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, timestamps).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// set(v) only if v is greater than the current value.
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Tiny test-and-set lock for sub-microsecond critical sections.
class SpinLock {
 public:
  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  bool try_lock() { return !flag_.test_and_set(std::memory_order_acquire); }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Latency distribution in nanoseconds: exact moments via OnlineStats plus
/// a log10-binned Histogram for quantile estimation.
class LatencyRecorder {
 public:
  /// Log-domain bin layout: [10^2, 10^10) ns (100 ns .. 10 s), 20 bins
  /// per decade.
  static constexpr double kLogLo = 2.0;
  static constexpr double kLogHi = 10.0;
  static constexpr std::size_t kBins = 160;

  struct Snapshot {
    OnlineStats stats;
    Histogram hist{kLogLo, kLogHi, kBins};

    std::size_t count() const { return stats.count(); }
    double mean() const { return stats.mean(); }
    double min() const { return stats.min(); }
    double max() const { return stats.max(); }
    /// Approximate quantile (ns); q in [0,1], clamped.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
  };

  void record(double ns);
  Snapshot snapshot() const;
  void reset();

 private:
  mutable SpinLock lock_;
  OnlineStats stats_;
  Histogram hist_{kLogLo, kLogHi, kBins};
};

/// Process-wide named-instrument registry.  Instrument references remain
/// valid for the process lifetime (storage is a deque; entries are never
/// erased, reset() only zeroes them).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyRecorder& latency(std::string_view name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, LatencyRecorder::Snapshot>> latencies;
  };
  /// Name-sorted copy of every instrument's current value.
  Snapshot snapshot() const;

  /// Zeroes every instrument (names and references stay valid).
  void reset();

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;
  };

  template <typename T>
  static T& find_or_add(std::deque<Named<T>>& store, std::string_view name);

  mutable std::mutex mutex_;
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<LatencyRecorder>> latencies_;
};

}  // namespace frame::obs
