// Deadline-slack accounting against the paper's Lemmas 1 and 2.
//
// Every dispatch/replicate execution reports its remaining slack
// (absolute job deadline minus the execution timestamp); the accountant
// tallies per-topic misses.  Every unique delivery reports the end-to-end
// latency against Di and its sequence number, from which the accountant
// derives consecutive-loss streaks and checks them against the topic's
// loss tolerance Li.  All hooks are thread-safe: counters are relaxed
// atomics, the per-topic latency recorder is spinlock-guarded.
//
// Mapping to the paper's symbols (Section III):
//   dispatch slack    = (tp + Dd) - now,  Dd = Di - ΔPB - ΔBS   (Lemma 2)
//   replication slack = (tp + Dr) - now,  Dr = (Ni+Li)·Ti - ΔPB - ΔBB - x
//                                                                 (Lemma 1)
//   loss streak       = longest run of sequence numbers never delivered,
//                       compared against Li.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "core/topic.hpp"
#include "obs/metrics.hpp"

namespace frame::obs {

/// Value snapshot of one topic's account.
struct TopicDeadlineSnapshot {
  TopicId topic = kInvalidTopic;
  std::uint32_t loss_tolerance = 0;  ///< Li (kLossInfinite = best effort)
  Duration deadline = 0;             ///< Di

  std::uint64_t dispatches = 0;
  std::uint64_t dispatch_misses = 0;  ///< Lemma 2 violations
  std::uint64_t replications = 0;
  std::uint64_t replication_misses = 0;  ///< Lemma 1 violations
  std::uint64_t deliveries = 0;
  std::uint64_t e2e_misses = 0;  ///< end-to-end latency > Di

  std::uint64_t losses_total = 0;
  std::uint64_t max_loss_streak = 0;
  /// max_loss_streak exceeded Li at some delivery.
  bool loss_budget_exceeded = false;

  LatencyRecorder::Snapshot e2e_latency;  ///< ns, unique deliveries
};

class DeadlineAccountant {
 public:
  /// What one delivery revealed about the topic's loss account.  Returned
  /// from on_delivery so the caller (obs hooks) can feed the SLO monitor
  /// and trigger the flight recorder without re-deriving streak state.
  struct DeliveryOutcome {
    std::uint64_t losses = 0;       ///< gap this delivery exposed
    std::uint64_t worst_streak = 0; ///< max streak after this delivery
    bool e2e_miss = false;          ///< e2e > Di
    /// This delivery pushed the streak past Li for the first time.
    bool breached_now = false;
  };

  static DeadlineAccountant& instance();

  /// Installs the topic table (dense ids).  Growing is supported; calling
  /// again with the same topics is a no-op for accumulated counts.
  void configure(const std::vector<TopicSpec>& specs);

  std::size_t topic_count() const {
    return count_.load(std::memory_order_acquire);
  }

  /// A dispatch job executed with `slack` = absolute deadline - now.
  void on_dispatch_executed(TopicId topic, Duration slack);
  /// A replicate job executed with `slack` = absolute deadline - now.
  void on_replication_executed(TopicId topic, Duration slack);
  /// A unique (first-copy) delivery of (topic, seq) with end-to-end
  /// latency `e2e` ns.
  DeliveryOutcome on_delivery(TopicId topic, SeqNo seq, Duration e2e);

  TopicDeadlineSnapshot snapshot(TopicId topic) const;
  std::vector<TopicDeadlineSnapshot> snapshot_all() const;

  /// Zeroes all accounts; keeps the configured topic table.
  void reset();

 private:
  struct TopicSlot {
    std::uint32_t loss_tolerance = 0;
    Duration deadline = 0;
    std::atomic<std::uint64_t> dispatches{0};
    std::atomic<std::uint64_t> dispatch_misses{0};
    std::atomic<std::uint64_t> replications{0};
    std::atomic<std::uint64_t> replication_misses{0};
    std::atomic<std::uint64_t> deliveries{0};
    std::atomic<std::uint64_t> e2e_misses{0};
    std::atomic<std::uint64_t> losses_total{0};
    std::atomic<std::uint64_t> max_loss_streak{0};
    std::atomic<std::uint64_t> last_seq{0};
    std::atomic<bool> loss_budget_exceeded{false};
    LatencyRecorder e2e_latency;
  };

  TopicSlot* slot(TopicId topic);
  const TopicSlot* slot(TopicId topic) const;

  mutable SpinLock configure_lock_;
  std::deque<TopicSlot> slots_;  ///< deque: grow without moving atomics
  std::atomic<std::size_t> count_{0};
};

}  // namespace frame::obs
