#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace frame::obs {

double LatencyRecorder::Snapshot::quantile(double q) const {
  if (stats.count() == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t total = hist.total();
  if (total == 0) return stats.mean();
  // Rank of the target sample, then walk the cumulative bin counts.
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    const std::uint64_t c = hist.bin(i);
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= rank) {
      // Interpolate inside the log-domain bin, then exponentiate.
      const double width =
          (kLogHi - kLogLo) / static_cast<double>(hist.bin_count());
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(c);
      const double log_value = hist.bin_low(i) + width * frac;
      const double value = std::pow(10.0, log_value);
      return std::clamp(value, stats.min(), stats.max());
    }
    seen += c;
  }
  return stats.max();
}

void LatencyRecorder::record(double ns) {
  const double log_ns = std::log10(std::max(ns, 1.0));
  lock_.lock();
  stats_.add(ns);
  hist_.add(log_ns);
  lock_.unlock();
}

LatencyRecorder::Snapshot LatencyRecorder::snapshot() const {
  Snapshot snap;
  lock_.lock();
  snap.stats = stats_;
  snap.hist = hist_;
  lock_.unlock();
  return snap;
}

void LatencyRecorder::reset() {
  lock_.lock();
  stats_ = OnlineStats{};
  hist_ = Histogram{kLogLo, kLogHi, kBins};
  lock_.unlock();
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

template <typename T>
T& MetricsRegistry::find_or_add(std::deque<Named<T>>& store,
                                std::string_view name) {
  for (auto& entry : store) {
    if (entry.name == name) return entry.instrument;
  }
  store.emplace_back();  // in-place: instruments hold atomics, never move
  store.back().name = std::string(name);
  return store.back().instrument;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  return find_or_add(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  return find_or_add(gauges_, name);
}

LatencyRecorder& MetricsRegistry::latency(std::string_view name) {
  std::lock_guard lock(mutex_);
  return find_or_add(latencies_, name);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard lock(mutex_);
    for (const auto& entry : counters_) {
      snap.counters.emplace_back(entry.name, entry.instrument.value());
    }
    for (const auto& entry : gauges_) {
      snap.gauges.emplace_back(entry.name, entry.instrument.value());
    }
    for (const auto& entry : latencies_) {
      snap.latencies.emplace_back(entry.name, entry.instrument.snapshot());
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.latencies.begin(), snap.latencies.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& entry : counters_) entry.instrument.reset();
  for (auto& entry : gauges_) entry.instrument.reset();
  for (auto& entry : latencies_) entry.instrument.reset();
}

}  // namespace frame::obs
