#include "obs/trace.hpp"

#include <algorithm>

namespace frame::obs {

std::string_view to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPublish:
      return "publish";
    case SpanKind::kProxyAdmit:
      return "proxy-admit";
    case SpanKind::kJobEnqueue:
      return "job-enqueue";
    case SpanKind::kDispatchStart:
      return "dispatch-start";
    case SpanKind::kDelivered:
      return "delivered";
    case SpanKind::kReplicated:
      return "replicated";
    case SpanKind::kDropped:
      return "dropped";
    case SpanKind::kCrash:
      return "crash";
    case SpanKind::kFailoverDetected:
      return "failover-detected";
    case SpanKind::kPromotion:
      return "promotion";
    case SpanKind::kRetentionReplay:
      return "retention-replay";
    case SpanKind::kBackupStored:
      return "backup-stored";
    case SpanKind::kRedirect:
      return "redirect";
    case SpanKind::kDispatchDone:
      return "dispatch-done";
  }
  return "unknown";
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Tracer::Tracer(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(std::max<std::size_t>(capacity, 2));
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void Tracer::record(const SpanEvent& event) {
  const std::uint64_t claim = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim & mask_];
  if (!slot.lock.try_lock()) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // A writer lapped a full ring revolution while we held the claim would
  // have a newer ticket; never regress the slot to an older event.
  if (slot.ticket.load(std::memory_order_relaxed) <= claim) {
    slot.event = event;
    slot.ticket.store(claim + 1, std::memory_order_relaxed);
  }
  slot.lock.unlock();
}

std::vector<SpanEvent> Tracer::snapshot() const {
  struct Tagged {
    std::uint64_t ticket;
    SpanEvent event;
  };
  std::vector<Tagged> tagged;
  tagged.reserve(mask_ + 1);
  for (std::size_t i = 0; i <= mask_; ++i) {
    Slot& slot = slots_[i];
    if (!slot.lock.try_lock()) continue;
    const std::uint64_t ticket = slot.ticket.load(std::memory_order_relaxed);
    if (ticket != 0) tagged.push_back(Tagged{ticket, slot.event});
    slot.lock.unlock();
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const Tagged& a, const Tagged& b) { return a.ticket < b.ticket; });
  std::vector<SpanEvent> out;
  out.reserve(tagged.size());
  for (const auto& t : tagged) out.push_back(t.event);
  return out;
}

void Tracer::clear() {
  for (std::size_t i = 0; i <= mask_; ++i) {
    Slot& slot = slots_[i];
    slot.lock.lock();
    slot.ticket.store(0, std::memory_order_relaxed);
    slot.lock.unlock();
  }
  head_.store(0, std::memory_order_relaxed);
  drops_.store(0, std::memory_order_relaxed);
}

}  // namespace frame::obs
