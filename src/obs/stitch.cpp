#include "obs/stitch.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace frame::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
  }
}

constexpr std::uint8_t kMaxSpanKind =
    static_cast<std::uint8_t>(SpanKind::kDispatchDone);

/// Microseconds for Chrome trace "ts"/"dur" fields.
double us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

TraceDump collect_local_dump(std::string process, std::int64_t wall_anchor) {
  TraceDump dump;
  dump.process = std::move(process);
  dump.wall_anchor = wall_anchor;
  dump.recorded = tracer().recorded();
  dump.dropped = tracer().dropped_total();
  dump.spans = tracer().snapshot();
  return dump;
}

std::string serialize_dump(const TraceDump& dump) {
  std::string out;
  out.reserve(64 + dump.spans.size() * 72);
  out += "frame-trace-dump v1\n";
  appendf(out, "process %s\n", dump.process.c_str());
  appendf(out, "anchor %" PRId64 "\n", dump.wall_anchor);
  appendf(out, "recorded %" PRIu64 "\n", dump.recorded);
  appendf(out, "dropped %" PRIu64 "\n", dump.dropped);
  for (const auto& ev : dump.spans) {
    appendf(out,
            "span %u %u %" PRIu64 " %u %" PRIu64 " %" PRId64 " %" PRId64
            " %" PRId64 " %" PRId64 "\n",
            static_cast<unsigned>(ev.kind), ev.topic, ev.seq, ev.node,
            ev.trace_id, ev.at, ev.delta_pb, ev.dd_slack, ev.dr_slack);
  }
  out += "end\n";
  return out;
}

std::vector<TraceDump> parse_dumps(std::string_view text) {
  std::vector<TraceDump> dumps;
  TraceDump* current = nullptr;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line == "frame-trace-dump v1") {
      dumps.emplace_back();
      current = &dumps.back();
      continue;
    }
    if (current == nullptr) continue;
    if (line.rfind("process ", 0) == 0) {
      current->process = line.substr(8);
    } else if (line.rfind("anchor ", 0) == 0) {
      current->wall_anchor = std::strtoll(line.c_str() + 7, nullptr, 10);
    } else if (line.rfind("recorded ", 0) == 0) {
      current->recorded = std::strtoull(line.c_str() + 9, nullptr, 10);
    } else if (line.rfind("dropped ", 0) == 0) {
      current->dropped = std::strtoull(line.c_str() + 8, nullptr, 10);
    } else if (line.rfind("span ", 0) == 0) {
      unsigned kind = 0, topic = 0, node = 0;
      std::uint64_t seq = 0, trace_id = 0;
      std::int64_t at = 0, delta_pb = 0, dd = 0, dr = 0;
      const int n = std::sscanf(
          line.c_str(),
          "span %u %u %" SCNu64 " %u %" SCNu64 " %" SCNd64 " %" SCNd64
          " %" SCNd64 " %" SCNd64,
          &kind, &topic, &seq, &node, &trace_id, &at, &delta_pb, &dd, &dr);
      // Skip malformed lines and span kinds newer than this reader.
      if (n != 9 || kind > kMaxSpanKind) continue;
      SpanEvent ev;
      ev.kind = static_cast<SpanKind>(kind);
      ev.topic = static_cast<TopicId>(topic);
      ev.seq = seq;
      ev.node = static_cast<NodeId>(node);
      ev.trace_id = trace_id;
      ev.at = at;
      ev.delta_pb = delta_pb;
      ev.dd_slack = dd;
      ev.dr_slack = dr;
      current->spans.push_back(ev);
    } else if (line == "end") {
      current = nullptr;
    }
  }
  return dumps;
}

StitchReport stitch(const std::vector<TraceDump>& dumps) {
  StitchReport report;
  for (std::size_t d = 0; d < dumps.size(); ++d) {
    report.dropped_total += dumps[d].dropped;
    for (const auto& ev : dumps[d].spans) {
      StitchedEvent se;
      se.event = ev;
      se.wall_at = ev.at + dumps[d].wall_anchor;
      se.dump = static_cast<std::uint32_t>(d);
      report.events.push_back(se);
    }
  }
  std::sort(report.events.begin(), report.events.end(),
            [](const StitchedEvent& a, const StitchedEvent& b) {
              if (a.wall_at != b.wall_at) return a.wall_at < b.wall_at;
              if (a.event.trace_id != b.event.trace_id) {
                return a.event.trace_id < b.event.trace_id;
              }
              return static_cast<std::uint8_t>(a.event.kind) <
                     static_cast<std::uint8_t>(b.event.kind);
            });

  // First occurrence of each hop-defining kind per trace; the events are
  // wall-ordered so "first" is the causally earliest surviving span.
  struct TraceFirsts {
    std::int64_t publish = -1;
    std::int64_t admit = -1;
    std::int64_t replicated = -1;
    std::int64_t backup_stored = -1;
    std::int64_t enqueue = -1;
    std::int64_t dispatch = -1;
    std::int64_t dispatch_done = -1;
  };
  std::unordered_map<std::uint64_t, TraceFirsts> firsts;
  std::unordered_map<std::uint64_t, std::uint32_t> delivered_count;

  for (const auto& se : report.events) {
    const SpanEvent& ev = se.event;
    if (ev.trace_id == 0) {
      switch (ev.kind) {
        case SpanKind::kCrash:
          if (report.crash_wall < 0) report.crash_wall = se.wall_at;
          break;
        case SpanKind::kFailoverDetected:
          if (report.detected_wall < 0 && report.crash_wall >= 0) {
            report.detected_wall = se.wall_at;
          }
          break;
        case SpanKind::kPromotion:
          if (report.promotion_wall < 0) report.promotion_wall = se.wall_at;
          break;
        case SpanKind::kRedirect:
          if (report.redirect_wall < 0 && report.crash_wall >= 0) {
            report.redirect_wall = se.wall_at;
          }
          break;
        default:
          break;
      }
      continue;
    }
    TraceFirsts& f = firsts[ev.trace_id];
    switch (ev.kind) {
      case SpanKind::kPublish:
        if (f.publish < 0) f.publish = se.wall_at;
        break;
      case SpanKind::kProxyAdmit:
        if (f.admit < 0) {
          f.admit = se.wall_at;
          if (f.publish >= 0) {
            report.delta_pb.add(static_cast<double>(se.wall_at - f.publish));
          }
        }
        break;
      case SpanKind::kReplicated:
        if (f.replicated < 0) f.replicated = se.wall_at;
        break;
      case SpanKind::kBackupStored:
        if (f.backup_stored < 0) {
          f.backup_stored = se.wall_at;
          if (f.replicated >= 0) {
            report.delta_bb.add(
                static_cast<double>(se.wall_at - f.replicated));
          }
        }
        break;
      case SpanKind::kJobEnqueue:
        // Replicate + dispatch enqueues share one generate_jobs timestamp,
        // so "first" is the dispatch-job release time either way.
        if (f.enqueue < 0) f.enqueue = se.wall_at;
        break;
      case SpanKind::kDispatchStart:
        if (f.dispatch < 0) {
          f.dispatch = se.wall_at;
          if (f.enqueue >= 0) {
            report.dispatch_queue_delay.add(
                static_cast<double>(se.wall_at - f.enqueue));
          }
        }
        break;
      case SpanKind::kDispatchDone:
        if (f.dispatch_done < 0 && f.enqueue >= 0 && f.dispatch >= 0) {
          f.dispatch_done = se.wall_at;
          report.dispatch_span.add(static_cast<double>(se.wall_at - f.enqueue));
        }
        break;
      case SpanKind::kDelivered: {
        ++report.delivered_events;
        // Exactly-once is per subscriber: the same trace delivered to two
        // subscriber nodes is fan-out, to the same node twice is a bug.
        const std::uint64_t key =
            ev.trace_id ^ (static_cast<std::uint64_t>(ev.node) << 1) * 0x9e3779b97f4a7c15ull;
        if (++delivered_count[key] > 1) ++report.duplicate_deliveries;
        if (f.dispatch >= 0) {
          report.delta_bs.add(static_cast<double>(se.wall_at - f.dispatch));
        }
        if (f.publish >= 0) {
          report.e2e.add(static_cast<double>(se.wall_at - f.publish));
        }
        break;
      }
      default:
        break;
    }
  }
  report.trace_count = firsts.size();
  if (report.crash_wall >= 0 && report.redirect_wall >= report.crash_wall) {
    report.measured_x = report.redirect_wall - report.crash_wall;
  }

  // Degenerate-input diagnostics: empty and partial dumps are legal (a
  // process may have produced no traffic, or predates trace context), but
  // the resulting hollow report should say why instead of silently showing
  // zero hops.
  if (dumps.empty()) {
    report.diagnostics.push_back("no dumps in input (nothing to stitch)");
  }
  std::size_t empty_dumps = 0;
  for (const auto& dump : dumps) {
    if (dump.spans.empty()) ++empty_dumps;
  }
  if (empty_dumps > 0) {
    report.diagnostics.push_back(
        std::to_string(empty_dumps) + " of " + std::to_string(dumps.size()) +
        " dump(s) contain zero spans");
  }
  if (!report.events.empty() && report.trace_count == 0) {
    report.diagnostics.push_back(
        "no anchored spans: every span has trace id 0, so per-hop "
        "latencies and e2e cannot be correlated (writer predates wire "
        "trace context?)");
  }
  if (dumps.size() > 1) {
    // If the per-dump wall-time ranges never overlap, the anchors almost
    // certainly disagree (e.g. one dump anchored, one with anchor 0) and
    // cross-dump hop latencies would be clock skew, not latency.
    std::int64_t max_of_mins = std::numeric_limits<std::int64_t>::min();
    std::int64_t min_of_maxes = std::numeric_limits<std::int64_t>::max();
    std::size_t nonempty = 0;
    bool anchored = false;
    bool unanchored = false;
    for (const auto& dump : dumps) {
      if (dump.spans.empty()) continue;
      ++nonempty;
      (dump.wall_anchor != 0 ? anchored : unanchored) = true;
      std::int64_t lo = std::numeric_limits<std::int64_t>::max();
      std::int64_t hi = std::numeric_limits<std::int64_t>::min();
      for (const auto& ev : dump.spans) {
        lo = std::min(lo, ev.at + dump.wall_anchor);
        hi = std::max(hi, ev.at + dump.wall_anchor);
      }
      max_of_mins = std::max(max_of_mins, lo);
      min_of_maxes = std::min(min_of_maxes, hi);
    }
    // Tolerate small gaps: sparse dumps legitimately leave sub-second holes
    // between each other's ranges.  A genuine anchor disagreement (one dump
    // anchored on the wall clock, one not) is off by hours, not seconds.
    constexpr std::int64_t kAnchorGapTolerance = seconds(30);
    if (nonempty > 1 && max_of_mins > min_of_maxes + kAnchorGapTolerance) {
      std::string diag =
          "wall-clock anchors look mismatched: the dumps' span ranges never "
          "overlap (gap " +
          std::to_string(
              static_cast<double>(max_of_mins - min_of_maxes) / 1e6) +
          " ms); cross-dump hop latencies are untrustworthy";
      if (anchored && unanchored) {
        diag += " (some dumps have wall_anchor 0 while others are anchored)";
      }
      report.diagnostics.push_back(std::move(diag));
    }
  }
  return report;
}

namespace {

/// Greedy lane packer: assigns each slice the lowest lane whose previous
/// slice has ended, so slices on one (pid, tid) track never overlap.
struct LanePacker {
  std::vector<std::int64_t> lane_end;
  std::uint32_t assign(std::int64_t start, std::int64_t end) {
    for (std::size_t i = 0; i < lane_end.size(); ++i) {
      if (lane_end[i] <= start) {
        lane_end[i] = end;
        return static_cast<std::uint32_t>(i + 1);
      }
    }
    lane_end.push_back(end);
    return static_cast<std::uint32_t>(lane_end.size());
  }
};

}  // namespace

std::string to_perfetto_json(const StitchReport& report) {
  // Group message events into one slice per (node, trace): the interval a
  // message was resident on that node.
  struct Slice {
    NodeId node;
    std::uint64_t trace_id;
    TopicId topic;
    SeqNo seq;
    std::int64_t start;
    std::int64_t end;
    std::string kinds;
    std::uint32_t tid = 0;
  };
  std::map<std::pair<NodeId, std::uint64_t>, Slice> by_key;
  for (const auto& se : report.events) {
    const SpanEvent& ev = se.event;
    if (ev.trace_id == 0) continue;
    auto [it, fresh] = by_key.try_emplace(
        {ev.node, ev.trace_id},
        Slice{ev.node, ev.trace_id, ev.topic, ev.seq, se.wall_at, se.wall_at,
              {}, 0});
    Slice& s = it->second;
    s.start = std::min(s.start, se.wall_at);
    s.end = std::max(s.end, se.wall_at);
    if (!s.kinds.empty()) s.kinds += ",";
    s.kinds += to_string(ev.kind);
  }

  std::vector<Slice> slices;
  slices.reserve(by_key.size());
  for (auto& [key, s] : by_key) slices.push_back(std::move(s));
  std::sort(slices.begin(), slices.end(), [](const Slice& a, const Slice& b) {
    if (a.node != b.node) return a.node < b.node;
    return a.start < b.start;
  });

  // Lane-pack per node so no two slices share a track interval; a slice
  // needs a nonzero duration to be visible and to make overlap checking
  // meaningful, so clamp to >= 1ns.
  std::map<NodeId, LanePacker> packers;
  for (auto& s : slices) {
    const std::int64_t end = std::max(s.end, s.start + 1);
    s.tid = packers[s.node].assign(s.start, end);
  }

  std::string out;
  out.reserve(4096 + slices.size() * 192);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
  };

  for (const auto& [node, packer] : packers) {
    sep();
    appendf(out,
            "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%u,"
            "\"args\":{\"name\":\"node %u\"}}",
            node, node);
  }

  // Message slices.
  for (const auto& s : slices) {
    const std::int64_t dur = std::max<std::int64_t>(s.end - s.start, 1);
    sep();
    appendf(out,
            "\n{\"ph\":\"X\",\"name\":\"t%u#%" PRIu64
            "\",\"cat\":\"message\",\"pid\":%u,\"tid\":%u,"
            "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":\"%" PRIx64
            "\",\"kinds\":\"%s\"}}",
            s.topic, s.seq, s.node, s.tid, us(s.start), us(dur), s.trace_id,
            s.kinds.c_str());
  }

  // Flow arrows: one chain per trace id across its node slices in time
  // order (start -> step... -> finish).
  std::map<std::uint64_t, std::vector<const Slice*>> chains;
  for (const auto& s : slices) chains[s.trace_id].push_back(&s);
  for (auto& [trace_id, chain] : chains) {
    if (chain.size() < 2) continue;
    std::sort(chain.begin(), chain.end(),
              [](const Slice* a, const Slice* b) { return a->start < b->start; });
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const Slice& s = *chain[i];
      const char* ph = i == 0 ? "s" : (i + 1 == chain.size() ? "f" : "t");
      sep();
      appendf(out,
              "\n{\"ph\":\"%s\",%s\"name\":\"msg\",\"cat\":\"flow\","
              "\"id\":\"%" PRIx64 "\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f}",
              ph, std::strcmp(ph, "s") == 0 ? "" : "\"bp\":\"e\",", trace_id,
              s.node, s.tid, us(i == 0 ? s.end : s.start));
    }
  }

  // Failover timeline as global instants on tid 0 of their node.
  struct Marker {
    const char* name;
    std::int64_t wall;
  };
  const Marker markers[] = {{"crash", report.crash_wall},
                            {"failover-detected", report.detected_wall},
                            {"promotion", report.promotion_wall},
                            {"redirect", report.redirect_wall}};
  for (const auto& m : markers) {
    if (m.wall < 0) continue;
    sep();
    appendf(out,
            "\n{\"ph\":\"i\",\"s\":\"g\",\"name\":\"%s\",\"cat\":\"failover\","
            "\"pid\":0,\"tid\":0,\"ts\":%.3f}",
            m.name, us(m.wall));
  }

  appendf(out,
          "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"traces\":%" PRIu64 ",\"dropped_total\":%" PRIu64 "}}\n",
          report.trace_count, report.dropped_total);
  return out;
}

std::string stitch_summary(const StitchReport& report) {
  std::string out;
  appendf(out, "stitched %zu events across %" PRIu64 " traces",
          report.events.size(), report.trace_count);
  appendf(out, " (dropped %" PRIu64 ")\n", report.dropped_total);
  for (const auto& diag : report.diagnostics) {
    appendf(out, "warning: %s\n", diag.c_str());
  }
  auto stat = [&](const char* name, const OnlineStats& s) {
    if (s.count() == 0) return;
    appendf(out, "%-4s n=%-6zu mean=%.3fms min=%.3fms max=%.3fms\n", name,
            s.count(), s.mean() / 1e6, s.min() / 1e6, s.max() / 1e6);
  };
  stat("dPB", report.delta_pb);
  stat("dBB", report.delta_bb);
  stat("dBS", report.delta_bs);
  stat("e2e", report.e2e);
  stat("qdly", report.dispatch_queue_delay);
  stat("disp", report.dispatch_span);
  appendf(out, "delivered=%" PRIu64 " duplicate_deliveries=%" PRIu64 "\n",
          report.delivered_events, report.duplicate_deliveries);
  if (report.crash_wall >= 0) {
    appendf(out, "crash at %.3fms", static_cast<double>(report.crash_wall) / 1e6);
    if (report.detected_wall >= 0) {
      appendf(out, ", detected +%.3fms",
              static_cast<double>(report.detected_wall - report.crash_wall) / 1e6);
    }
    if (report.promotion_wall >= 0) {
      appendf(out, ", promoted +%.3fms",
              static_cast<double>(report.promotion_wall - report.crash_wall) / 1e6);
    }
    if (report.measured_x >= 0) {
      appendf(out, ", measured x = %.3fms",
              static_cast<double>(report.measured_x) / 1e6);
    }
    out += "\n";
  }
  return out;
}

Status validate_perfetto_json(std::string_view json) {
  const auto root = parse_json(json);
  if (!root.has_value() || root->type != JsonValue::Type::kObject) {
    return Status(StatusCode::kProtocolError, "not a JSON object");
  }
  const JsonValue* events = root->find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    return Status(StatusCode::kProtocolError, "missing traceEvents array");
  }

  struct Interval {
    double ts;
    double dur;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<Interval>> tracks;
  std::unordered_set<std::string> flow_starts;
  std::vector<std::string> flow_refs;

  for (const auto& ev : events->array) {
    if (ev.type != JsonValue::Type::kObject) {
      return Status(StatusCode::kProtocolError, "event is not an object");
    }
    const JsonValue* ph = ev.find("ph");
    if (ph == nullptr || ph->type != JsonValue::Type::kString) {
      return Status(StatusCode::kProtocolError, "event missing ph");
    }
    if (ph->str == "X") {
      const JsonValue* pid = ev.find("pid");
      const JsonValue* tid = ev.find("tid");
      const JsonValue* ts = ev.find("ts");
      const JsonValue* dur = ev.find("dur");
      if (pid == nullptr || tid == nullptr || ts == nullptr || dur == nullptr ||
          ts->type != JsonValue::Type::kNumber ||
          dur->type != JsonValue::Type::kNumber) {
        return Status(StatusCode::kProtocolError,
                      "X event missing pid/tid/ts/dur");
      }
      tracks[{static_cast<std::int64_t>(pid->number),
              static_cast<std::int64_t>(tid->number)}]
          .push_back(Interval{ts->number, dur->number});
    } else if (ph->str == "s" || ph->str == "t" || ph->str == "f") {
      const JsonValue* id = ev.find("id");
      if (id == nullptr || id->type != JsonValue::Type::kString) {
        return Status(StatusCode::kProtocolError, "flow event missing id");
      }
      if (ph->str == "s") {
        flow_starts.insert(id->str);
      } else {
        flow_refs.push_back(id->str);
      }
    }
  }

  for (auto& [key, intervals] : tracks) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) { return a.ts < b.ts; });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      // Sub-nanosecond tolerance: ts values are printed at ns resolution.
      if (intervals[i].ts + 1e-4 < intervals[i - 1].ts + intervals[i - 1].dur) {
        return Status(StatusCode::kProtocolError,
                      "overlapping slices on one track");
      }
    }
  }
  for (const auto& id : flow_refs) {
    if (flow_starts.find(id) == flow_starts.end()) {
      return Status(StatusCode::kProtocolError,
                    "flow step/finish without a start");
    }
  }
  return Status::ok();
}

}  // namespace frame::obs
