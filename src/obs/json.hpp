// Minimal recursive-descent JSON reader shared by the obs tooling: the
// Perfetto-export validator (stitch.cpp) and the bench-JSON differ
// (bench_diff.cpp).  It parses standard JSON into a single variant-ish
// value type; it does not aim to be fast, streaming, or byte-for-byte
// round-trippable (\uXXXX escapes are validated but decoded as '?').
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace frame::obs {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr.  Only meaningful for kObject.
  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
};

/// Parses `text` as one complete JSON document (trailing garbage is an
/// error).  Returns nullopt on any syntax error.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace frame::obs
