// Snapshot collection and exporters: JSON, Prometheus text exposition, and
// a human-readable table.  Exporting is an explicitly cold path: it copies
// every instrument once (best effort, without stopping writers) and
// formats from the copies.
#pragma once

#include <string>
#include <vector>

#include "obs/deadline_accountant.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace frame::obs {

/// One coherent-enough view of the whole observability state.
struct ObsSnapshot {
  MetricsRegistry::Snapshot metrics;
  std::vector<TopicDeadlineSnapshot> topics;
  std::vector<SpanEvent> recent_spans;
  std::uint64_t spans_recorded = 0;
  std::uint64_t span_drops = 0;          ///< lost to slot contention
  std::uint64_t span_dropped_total = 0;  ///< contention + ring overflow
};

/// Prometheus metric-name sanitizer: every byte outside
/// [a-zA-Z0-9_:] (and a leading digit) becomes '_'.  Instrument names are
/// code-controlled today, but exporters must not emit an invalid exposition
/// if one ever isn't.
std::string prometheus_sanitize_name(std::string_view name);

/// Prometheus label-value escaping: backslash, double-quote and newline
/// get backslash-escaped (UTF-8 passes through, per the exposition spec).
std::string prometheus_escape_label(std::string_view value);

/// Minimal JSON string escaping: ", \, and control characters.
std::string json_escape(std::string_view value);

/// Copies the global registry, accountant, and tracer.
/// `max_spans` bounds the spans included (0 = none, keeps snapshots small).
ObsSnapshot collect_snapshot(std::size_t max_spans = 64);

/// Machine-readable JSON object (latencies in nanoseconds).
std::string to_json(const ObsSnapshot& snap);

/// Prometheus text exposition format (counters/gauges/summaries).
std::string to_prometheus(const ObsSnapshot& snap);

/// Human-readable dashboard: per-topic latency/deadline table, failover
/// timeline, and the named instruments.
std::string to_table(const ObsSnapshot& snap);

}  // namespace frame::obs
