// Snapshot collection and exporters: JSON, Prometheus text exposition, and
// a human-readable table.  Exporting is an explicitly cold path: it copies
// every instrument once (best effort, without stopping writers) and
// formats from the copies.
#pragma once

#include <string>
#include <vector>

#include "obs/deadline_accountant.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace frame::obs {

/// One coherent-enough view of the whole observability state.
struct ObsSnapshot {
  MetricsRegistry::Snapshot metrics;
  std::vector<TopicDeadlineSnapshot> topics;
  std::vector<SpanEvent> recent_spans;
  std::uint64_t spans_recorded = 0;
  std::uint64_t span_drops = 0;
};

/// Copies the global registry, accountant, and tracer.
/// `max_spans` bounds the spans included (0 = none, keeps snapshots small).
ObsSnapshot collect_snapshot(std::size_t max_spans = 64);

/// Machine-readable JSON object (latencies in nanoseconds).
std::string to_json(const ObsSnapshot& snap);

/// Prometheus text exposition format (counters/gauges/summaries).
std::string to_prometheus(const ObsSnapshot& snap);

/// Human-readable dashboard: per-topic latency/deadline table, failover
/// timeline, and the named instruments.
std::string to_table(const ObsSnapshot& snap);

}  // namespace frame::obs
