#include "obs/flight_recorder.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/build_info.hpp"
#include "net/sigsafe_writer.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/stitch.hpp"

namespace frame::obs {

const char* to_string(TriggerReason reason) {
  switch (reason) {
    case TriggerReason::kLemma2Miss:
      return "lemma2-miss";
    case TriggerReason::kLemma1Miss:
      return "lemma1-miss";
    case TriggerReason::kLossStreakBreach:
      return "loss-streak-breach";
    case TriggerReason::kFailover:
      return "failover";
    case TriggerReason::kCriticalAlert:
      return "critical-alert";
    case TriggerReason::kFatalSignal:
      return "fatal-signal";
    case TriggerReason::kManual:
      return "manual";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure_from_env() {
  // Only the *presence* of the variable has authority: an unset env must
  // not disarm a recorder a test or embedder armed via set_directory().
  const char* dir = std::getenv("FRAME_POSTMORTEM_DIR");
  if (dir != nullptr) set_directory(dir);
}

void FlightRecorder::set_directory(std::string dir) {
  std::lock_guard<std::mutex> guard(mutex_);
  dir_ = std::move(dir);
}

bool FlightRecorder::armed() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return !dir_.empty();
}

std::string FlightRecorder::directory() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return dir_;
}

void FlightRecorder::set_wall_anchor(std::int64_t anchor) {
  wall_anchor_.store(anchor, std::memory_order_relaxed);
}

void FlightRecorder::set_chaos_seed(std::uint64_t seed) {
  chaos_seed_.store(seed, std::memory_order_relaxed);
  has_chaos_seed_.store(true, std::memory_order_relaxed);
}

std::string FlightRecorder::last_bundle_path() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return last_bundle_;
}

void FlightRecorder::reset() {
  latched_.store(false, std::memory_order_relaxed);
  triggers_.store(0, std::memory_order_relaxed);
  bundles_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> guard(mutex_);
  last_bundle_.clear();
}

#ifndef FRAME_OBS_DISABLED

void FlightRecorder::trigger(TriggerReason reason, const char* detail,
                             TimePoint now) {
  triggers_.fetch_add(1, std::memory_order_relaxed);
  // Latch check first, lock-free: write_bundle holds mutex_ while it
  // snapshots the SLO monitor, whose evaluation can re-trigger us — that
  // re-entrant call must bail before armed() touches the mutex.
  if (latched_.load(std::memory_order_acquire)) return;
  if (!armed()) return;
  // Once-per-process latch: the first trigger freezes the conditions at
  // the *first* anomaly; a cascade of follow-on triggers must not
  // overwrite it or storm the disk.
  if (latched_.exchange(true, std::memory_order_acq_rel)) return;
  if (write_bundle(reason, detail, now)) {
    bundles_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool FlightRecorder::write_bundle(TriggerReason reason, const char* detail,
                                  TimePoint now) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (dir_.empty()) return false;
  ::mkdir(dir_.c_str(), 0755);  // best effort; may already exist

  const std::uint64_t seq =
      bundle_seq_.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream path;
  path << dir_ << "/frame-postmortem-" << ::getpid() << '-' << seq;
  if (::mkdir(path.str().c_str(), 0755) != 0) return false;
  const std::string bundle = path.str();

  // Collect everything *before* writing, so a slow disk cannot widen the
  // race against live traffic more than necessary.
  const std::int64_t anchor = wall_anchor_.load(std::memory_order_relaxed);
  const TraceDump dump = collect_local_dump("flight-recorder", anchor);
  const ObsSnapshot snap = collect_snapshot(/*max_spans=*/0);
  const TimePoint slo_now = now != 0 ? now : slo().latest_now();
  const std::string slo_doc = slo().slo_json(slo_now);
  const BuildInfo build = library_build_info();

  {
    std::ofstream manifest(bundle + "/manifest.txt");
    if (!manifest) return false;
    manifest << "frame-postmortem v1\n"
             << "reason " << to_string(reason) << '\n'
             << "detail " << (detail != nullptr ? detail : "") << '\n'
             << "pid " << ::getpid() << '\n'
             << "trigger_now_ns " << now << '\n'
             << "wall_ns " << wall_now_ns() << '\n'
             << "wall_anchor_ns " << anchor << '\n'
             << "build_type " << build.build_type << '\n'
             << "optimized " << (build.optimized ? 1 : 0) << '\n'
             << "sanitizer " << build.sanitizer << '\n';
    if (has_chaos_seed_.load(std::memory_order_relaxed)) {
      manifest << "chaos_seed "
               << chaos_seed_.load(std::memory_order_relaxed) << '\n';
    }
    manifest << "spans_recorded " << dump.recorded << '\n'
             << "spans_dropped " << dump.dropped << '\n'
             << "spans_in_dump " << dump.spans.size() << '\n';
    // Per-shard queue depths and accountant totals: the quick-look numbers
    // an operator reads before opening the JSON.
    for (const auto& [name, value] : snap.metrics.gauges) {
      if (name.rfind("frame_job_queue_depth", 0) == 0) {
        manifest << "gauge " << name << ' ' << value << '\n';
      }
    }
    for (const auto& topic : snap.topics) {
      manifest << "topic " << topic.topic << " dispatches "
               << topic.dispatches << " dispatch_misses "
               << topic.dispatch_misses << " replications "
               << topic.replications << " replication_misses "
               << topic.replication_misses << " deliveries "
               << topic.deliveries << " max_loss_streak "
               << topic.max_loss_streak << '\n';
    }
  }
  {
    std::ofstream trace(bundle + "/trace.dump");
    if (!trace) return false;
    trace << serialize_dump(dump);
  }
  {
    std::ofstream metrics(bundle + "/metrics.json");
    if (!metrics) return false;
    metrics << to_json(snap);
  }
  {
    std::ofstream slo_file(bundle + "/slo.json");
    if (!slo_file) return false;
    slo_file << slo_doc;
  }
  last_bundle_ = bundle;
  return true;
}

namespace {

// Pre-formatted crash record, filled at arm time so the handler only has
// to stamp the signal number and write.  Fixed buffers: the handler may
// not allocate.
constexpr std::size_t kCrashPathCap = 512;
constexpr std::size_t kCrashBodyCap = 1024;
char g_crash_path[kCrashPathCap];
char g_crash_body[kCrashBodyCap];
std::size_t g_crash_body_len = 0;
std::size_t g_crash_signo_at = 0;  ///< offset of the 3-digit signo field

void fatal_signal_handler(int signo) {
  // Async-signal-safe only: patch the signo digits in the pre-formatted
  // record, append it, re-raise with default disposition.
  if (g_crash_path[0] != '\0' && g_crash_body_len > 0 &&
      g_crash_signo_at + 3 <= g_crash_body_len) {
    g_crash_body[g_crash_signo_at] =
        static_cast<char>('0' + (signo / 100) % 10);
    g_crash_body[g_crash_signo_at + 1] =
        static_cast<char>('0' + (signo / 10) % 10);
    g_crash_body[g_crash_signo_at + 2] = static_cast<char>('0' + signo % 10);
    const int fd = sigsafe::open_append(g_crash_path);
    if (fd >= 0) {
      sigsafe::write_full(fd, g_crash_body, g_crash_body_len);
      ::fsync(fd);
      ::close(fd);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void FlightRecorder::install_fatal_handlers() {
  const std::string dir = directory();
  if (dir.empty()) return;

  std::size_t pos = 0;
  pos = sigsafe::append_str(g_crash_path, kCrashPathCap - 1, pos, dir.c_str());
  pos = sigsafe::append_str(g_crash_path, kCrashPathCap - 1, pos,
                            "/crash-record.txt");
  g_crash_path[pos] = '\0';
  ::mkdir(dir.c_str(), 0755);

  const BuildInfo build = library_build_info();
  pos = 0;
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos,
                            "frame-crash-record v1\nsigno ");
  g_crash_signo_at = pos;
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos, "000\npid ");
  pos = sigsafe::append_i64(g_crash_body, kCrashBodyCap, pos, ::getpid());
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos,
                            "\narm_wall_ns ");
  pos = sigsafe::append_i64(g_crash_body, kCrashBodyCap, pos, wall_now_ns());
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos, "\nbuild_type ");
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos,
                            build.build_type);
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos, "\nsanitizer ");
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos, build.sanitizer);
  if (has_chaos_seed_.load(std::memory_order_relaxed)) {
    pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos,
                              "\nchaos_seed ");
    pos = sigsafe::append_u64(g_crash_body, kCrashBodyCap, pos,
                              chaos_seed_.load(std::memory_order_relaxed));
  }
  pos = sigsafe::append_str(g_crash_body, kCrashBodyCap, pos, "\n");
  g_crash_body_len = pos;

  ::signal(SIGSEGV, fatal_signal_handler);
  ::signal(SIGABRT, fatal_signal_handler);
}

#else  // FRAME_OBS_DISABLED

void FlightRecorder::trigger(TriggerReason, const char*, TimePoint) {}
bool FlightRecorder::write_bundle(TriggerReason, const char*, TimePoint) {
  return false;
}
void FlightRecorder::install_fatal_handlers() {}

#endif  // FRAME_OBS_DISABLED

}  // namespace frame::obs
