#include "obs/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

#include "obs/json.hpp"

namespace frame::obs {

namespace {

bool get_string(const JsonValue& obj, std::string_view key, std::string& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  out = v->str;
  return true;
}

bool get_number(const JsonValue& obj, std::string_view key, double& out) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  out = v->number;
  return true;
}

/// Missing `gated` defaults to true (a report that does not say otherwise
/// vouches for its numbers).
bool get_gated(const JsonValue& obj) {
  const JsonValue* v = obj.find("gated");
  if (v == nullptr || v->type != JsonValue::Type::kBool) return true;
  return v->boolean;
}

bool fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

bool parse_series(const JsonValue& member, std::string_view name,
                  BenchSeries& out, std::string* error) {
  if (!member.is_object()) return fail(error, "series entry is not an object");
  out.name = std::string(name);
  if (!get_string(member, "unit", out.unit)) {
    return fail(error, "series missing \"unit\"");
  }
  if (!get_number(member, "value", out.value)) {
    return fail(error, "series missing numeric \"value\"");
  }
  out.gated = get_gated(member);
  for (const auto& [key, v] : member.object) {
    if (key.size() >= 2 && key[0] == 'p' && v.is_number() &&
        key.find_first_not_of("0123456789.", 1) == std::string::npos) {
      out.percentiles.emplace_back(key, v.number);
    }
  }
  return true;
}

bool rate_unit(std::string_view unit) {
  return unit.find("/s") != std::string_view::npos;
}

bool ns_unit(std::string_view unit) {
  return unit.rfind("ns", 0) == 0;  // "ns", "ns/op"
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
  }
}

}  // namespace

std::string_view to_string(SeriesVerdict v) {
  switch (v) {
    case SeriesVerdict::kWithinNoise: return "within-noise";
    case SeriesVerdict::kImproved: return "improved";
    case SeriesVerdict::kRegressed: return "REGRESSED";
    case SeriesVerdict::kNew: return "new";
    case SeriesVerdict::kRemoved: return "removed";
  }
  return "unknown";
}

std::optional<BenchReport> parse_bench_report(std::string_view json,
                                              std::string* error) {
  const auto root = parse_json(json);
  if (!root.has_value() || !root->is_object()) {
    fail(error, "not a JSON object");
    return std::nullopt;
  }
  std::string schema;
  if (!get_string(*root, "schema", schema) || schema != "frame-bench-v1") {
    fail(error, "schema is not \"frame-bench-v1\"");
    return std::nullopt;
  }
  BenchReport report;
  get_string(*root, "suite", report.suite);

  const JsonValue* context = root->find("context");
  if (context == nullptr || !context->is_object()) {
    fail(error, "missing \"context\" object");
    return std::nullopt;
  }
  get_string(*context, "git_sha", report.git_sha);
  get_string(*context, "library_build_type", report.build_type);
  get_string(*context, "sanitizer", report.sanitizer);
  get_string(*context, "date", report.date);
  double cpus = 0;
  if (get_number(*context, "num_cpus", cpus)) {
    report.num_cpus = static_cast<int>(cpus);
  }
  report.gated = get_gated(*context);

  const JsonValue* series = root->find("series");
  if (series == nullptr || !series->is_object()) {
    fail(error, "missing \"series\" object");
    return std::nullopt;
  }
  for (const auto& [name, member] : series->object) {
    BenchSeries s;
    if (!parse_series(member, name, s, error)) return std::nullopt;
    report.series.push_back(std::move(s));
  }
  return report;
}

BenchDiffResult diff_bench_reports(const BenchReport& old_report,
                                   const BenchReport& new_report,
                                   const BenchDiffOptions& options) {
  BenchDiffResult result;
  result.gating_disabled = !old_report.gated || !new_report.gated;

  // Provenance gate: numbers measured under different build types, core
  // counts or sanitizers are not comparable — a "regression" would only
  // reflect the changed environment.  Fields missing on either side (old
  // baselines predating them) are skipped rather than treated as moved.
  const auto note_mismatch = [&result](std::string field, std::string a,
                                       std::string b) {
    result.provenance_mismatch = true;
    if (!result.provenance_reason.empty()) result.provenance_reason += ", ";
    result.provenance_reason +=
        std::move(field) + " " + std::move(a) + " vs " + std::move(b);
  };
  if (!old_report.build_type.empty() && !new_report.build_type.empty() &&
      old_report.build_type != new_report.build_type) {
    note_mismatch("build_type", old_report.build_type, new_report.build_type);
  }
  if (old_report.num_cpus > 0 && new_report.num_cpus > 0 &&
      old_report.num_cpus != new_report.num_cpus) {
    note_mismatch("num_cpus", std::to_string(old_report.num_cpus),
                  std::to_string(new_report.num_cpus));
  }
  if (!old_report.sanitizer.empty() && !new_report.sanitizer.empty() &&
      old_report.sanitizer != new_report.sanitizer) {
    note_mismatch("sanitizer", old_report.sanitizer, new_report.sanitizer);
  }
  if (result.provenance_mismatch) result.gating_disabled = true;

  std::unordered_map<std::string_view, const BenchSeries*> new_by_name;
  for (const auto& s : new_report.series) new_by_name[s.name] = &s;

  for (const auto& old_series : old_report.series) {
    SeriesDiff d;
    d.name = old_series.name;
    d.unit = old_series.unit;
    d.old_value = old_series.value;
    d.higher_is_better = rate_unit(old_series.unit);
    const auto it = new_by_name.find(old_series.name);
    if (it == new_by_name.end()) {
      d.verdict = SeriesVerdict::kRemoved;
      d.gated = old_series.gated;
      result.series.push_back(std::move(d));
      continue;
    }
    const BenchSeries& new_series = *it->second;
    new_by_name.erase(it);
    d.new_value = new_series.value;
    // A series gates only when both sides vouch for it.
    d.gated = old_series.gated && new_series.gated;
    if (d.old_value != 0) {
      d.rel_change = (d.new_value - d.old_value) / d.old_value;
    }
    const double abs_change = std::fabs(d.new_value - d.old_value);
    const bool below_floor =
        ns_unit(d.unit) && abs_change < options.abs_floor_ns;
    // "worse" is up for latency-like units, down for rate units.
    const double worse =
        d.higher_is_better ? -d.rel_change : d.rel_change;
    if (below_floor || std::fabs(d.rel_change) <= options.rel_threshold) {
      d.verdict = SeriesVerdict::kWithinNoise;
    } else if (worse > 0) {
      d.verdict = SeriesVerdict::kRegressed;
      if (d.gated && !result.gating_disabled) result.regression = true;
    } else {
      d.verdict = SeriesVerdict::kImproved;
    }
    result.series.push_back(std::move(d));
  }

  // Anything left in the map exists only in the new report.
  for (const auto& new_series : new_report.series) {
    if (new_by_name.find(new_series.name) == new_by_name.end()) continue;
    SeriesDiff d;
    d.name = new_series.name;
    d.unit = new_series.unit;
    d.new_value = new_series.value;
    d.higher_is_better = rate_unit(new_series.unit);
    d.gated = new_series.gated;
    d.verdict = SeriesVerdict::kNew;
    result.series.push_back(std::move(d));
  }
  return result;
}

std::string bench_diff_table(const BenchDiffResult& diff) {
  std::string out;
  appendf(out, "%-40s %14s %14s %8s %6s  %s\n", "series", "old", "new",
          "change", "gated", "verdict");
  for (const auto& d : diff.series) {
    char change[16];
    if (d.verdict == SeriesVerdict::kNew ||
        d.verdict == SeriesVerdict::kRemoved) {
      std::snprintf(change, sizeof(change), "-");
    } else {
      std::snprintf(change, sizeof(change), "%+.1f%%", d.rel_change * 100.0);
    }
    appendf(out, "%-40s %14.1f %14.1f %8s %6s  %s\n", d.name.c_str(),
            d.old_value, d.new_value, change, d.gated ? "yes" : "no",
            std::string(to_string(d.verdict)).c_str());
  }
  return out;
}

std::string bench_diff_verdict(const BenchDiffResult& diff) {
  std::size_t regressed = 0, improved = 0, noise = 0;
  for (const auto& d : diff.series) {
    if (d.verdict == SeriesVerdict::kRegressed) ++regressed;
    if (d.verdict == SeriesVerdict::kImproved) ++improved;
    if (d.verdict == SeriesVerdict::kWithinNoise) ++noise;
  }
  std::string out;
  const char* status = diff.regression          ? "REGRESSION"
                       : diff.gating_disabled   ? "ungated"
                                                : "ok";
  appendf(out,
          "bench-diff: %s (%zu regressed, %zu improved, %zu within-noise, "
          "%zu series)",
          status, regressed, improved, noise, diff.series.size());
  if (diff.provenance_mismatch) {
    appendf(out, " [provenance mismatch: %s]",
            diff.provenance_reason.c_str());
  }
  out += "\n";
  return out;
}

}  // namespace frame::obs
