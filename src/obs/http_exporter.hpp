// Live telemetry endpoint: a minimal HTTP/1.0 server on the epoll reactor.
//
// Routes (GET only, connection: close):
//   /metrics        Prometheus text exposition of the metrics registry
//   /snapshot.json  full ObsSnapshot as JSON
//   /healthz        role / peer-liveness / degraded-mode JSON (caller-fed);
//                   503 when the feeder reports degraded/critical state
//   /trace          serialized TraceDump of the local tracer ring, for
//                   cross-process stitching (obs/stitch.hpp)
//   /alerts         evaluated AlertRule table from the SLO monitor (JSON)
//   /slo.json       full SLO document: per-topic/per-shard burn rates,
//                   headroom minima, and the alert table (obs/slo.hpp)
//
// The server shares the reactor's loop thread: request parsing, snapshot
// collection and response writes all run there, so a scrape never blocks
// or races broker threads beyond what collect_snapshot() already tolerates.
// Scrapes are explicitly cold-path; nothing here is on a message path.
//
// Lives in its own library (frame_obs_http): frame_net links frame_obs, so
// the core obs library cannot link back against the transport layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.hpp"

namespace frame {
class EpollLoop;
}  // namespace frame

namespace frame::obs {

class HttpExporter {
 public:
  struct Options {
    /// TCP port to listen on (loopback); 0 picks an ephemeral port.
    std::uint16_t port = 0;
    /// Body for GET /healthz; `status_out` arrives as 200 and may be set
    /// to 503 when the system is degraded or a critical alert is firing.
    /// The default consults the SLO monitor's alert table.
    std::function<std::string(int& status_out)> healthz;
    /// Body for GET /trace; default serializes the global tracer with a
    /// zero anchor (single-process stitching still works).
    std::function<std::string()> trace_dump;
  };

  /// Binds and registers on `loop` (EpollLoop::default_loop() if null).
  static Result<std::unique_ptr<HttpExporter>> create(Options options,
                                                      EpollLoop* loop = nullptr);

  ~HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// The bound port (resolved when Options::port was 0).
  std::uint16_t port() const { return port_; }

  /// Routes `path` to its response body; empty optional = 404.  Exposed
  /// for tests and for in-process scraping without a socket.
  std::string handle(const std::string& path, int& status_out) const;

 private:
  HttpExporter() = default;
  void on_listener_ready();
  void on_client_ready(int fd, std::uint32_t events);
  void close_client(int fd);

  struct Client {
    std::string in;
    std::string out;
    std::size_t out_pos = 0;
  };

  EpollLoop* loop_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Options options_;
  std::unordered_map<int, Client> clients_;
};

}  // namespace frame::obs
