// Online SLO monitor: the system watching its own Lemma 1/2 bounds while
// running (DESIGN.md §13).
//
// Per topic (and folded per Primary shard) it maintains rolling-window
// views of the quantities the paper proves bounded:
//   * deadline headroom — the laxity Dd_i − Rd_i (dispatch, Lemma 2) and
//     Dr_i − Rr_i (replication, Lemma 1) reported by the engines at job
//     completion (core/timing.hpp laxity()), log-binned like every other
//     latency plus a rolling-window minimum;
//   * Li-streak proximity — the worst observed consecutive-loss streak as
//     a fraction of the topic's tolerance Li (1.0 = budget exhausted,
//     > 1.0 = breach);
//   * error-budget burn rate — the miss fraction (Lemma 1/2 misses, e2e
//     > Di) over a short and a long window, divided by the configured
//     error budget, the "observe the tail" discipline of SRE burn-rate
//     alerting: burn 1.0 consumes exactly the budget, 14.4 consumes a
//     day's budget in 100 minutes.
//
// Feeds come exclusively from the existing obs hook slow paths, so the
// disabled cost stays the hooks' one relaxed load + branch; every update
// here is a spinlock-guarded handful of arithmetic (no allocation on the
// hot path after configure()).
//
// Alerting is declarative: an AlertRule table (threshold + window +
// severity) evaluated on demand — by GET /alerts, /slo.json and /healthz,
// by frame_stats, and by tests.  Windows advance on the driving-clock
// timestamps the hooks deliver, so evaluation is deterministic under
// simulated clocks; a quiescent system holds its last window state.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "core/topic.hpp"
#include "obs/metrics.hpp"

namespace frame::obs {

/// AlertRule::topic wildcard: evaluate across every configured topic.
inline constexpr TopicId kAllTopics = kInvalidTopic;

enum class Severity : std::uint8_t { kWarning = 0, kCritical = 1 };
const char* to_string(Severity severity);

/// What an AlertRule measures.  Comparison direction is part of the metric
/// (see fires_when_above): burn rates and streak proximity alarm high,
/// headroom alarms low.
enum class SloMetric : std::uint8_t {
  kDispatchBurnRate = 0,     ///< Lemma 2 miss fraction / error budget
  kReplicationBurnRate = 1,  ///< Lemma 1 miss fraction / error budget
  kE2eBurnRate = 2,          ///< (e2e > Di) fraction / error budget
  kLossStreakProximity = 3,  ///< worst streak / Li  (fires strictly above)
  kDispatchHeadroomMin = 4,  ///< rolling-window min laxity, ns (alarms low)
  kReplicationHeadroomMin = 5,  ///< same for Lemma 1 laxity
  kDegradedMode = 6,         ///< frame_degraded_mode gauge (1 = degraded)
};
const char* to_string(SloMetric metric);
bool fires_when_above(SloMetric metric);

/// One declarative alert: fires when the metric crosses `threshold` over
/// `window` (0 = the monitor's short window; headroom/streak/degraded
/// metrics that have no natural window ignore it).
struct AlertRule {
  std::string name;
  SloMetric metric = SloMetric::kDispatchBurnRate;
  double threshold = 1.0;
  Duration window = 0;
  Severity severity = Severity::kWarning;
  TopicId topic = kAllTopics;
};

/// Evaluation result of one rule at one instant.
struct AlertState {
  AlertRule rule;
  double value = 0;
  bool firing = false;
  TimePoint since = 0;  ///< driving-clock start of the current firing run
};

/// Value snapshot of one topic's SLO account at a given `now`.
struct TopicSloSnapshot {
  TopicId topic = kInvalidTopic;
  std::uint32_t loss_tolerance = 0;
  Duration deadline = 0;

  // Windowed event/miss counts (short, long).
  std::uint64_t dispatches_short = 0, dispatch_misses_short = 0;
  std::uint64_t dispatches_long = 0, dispatch_misses_long = 0;
  std::uint64_t replications_short = 0, replication_misses_short = 0;
  std::uint64_t replications_long = 0, replication_misses_long = 0;
  std::uint64_t deliveries_short = 0, e2e_misses_short = 0;
  std::uint64_t deliveries_long = 0, e2e_misses_long = 0;

  double dispatch_burn_short = 0, dispatch_burn_long = 0;
  double replication_burn_short = 0, replication_burn_long = 0;
  double e2e_burn_short = 0, e2e_burn_long = 0;

  std::uint64_t worst_streak = 0;
  double streak_proximity = 0;  ///< worst_streak / max(Li, 1); 0 if best effort

  /// Rolling-window minimum laxity (signed ns; kDurationInfinite = no
  /// completions in the window).
  Duration dispatch_headroom_min = kDurationInfinite;
  Duration replication_headroom_min = kDurationInfinite;

  /// Cumulative log-binned headroom distributions (negative laxity clamps
  /// into the lowest bin; the signed minimum is tracked above).
  LatencyRecorder::Snapshot dispatch_headroom;
  LatencyRecorder::Snapshot replication_headroom;
};

/// Per-shard fold of the same windowed accounting (hooks attribute via
/// obs::thread_shard(), exactly like the PerShard registry instruments).
struct ShardSloSnapshot {
  std::size_t shard = 0;  ///< kNoShard entries fold into shard 0's slot
  std::uint64_t dispatches_short = 0, dispatch_misses_short = 0;
  std::uint64_t replications_short = 0, replication_misses_short = 0;
  double dispatch_burn_short = 0;
  Duration dispatch_headroom_min = kDurationInfinite;
};

class SloMonitor {
 public:
  struct Config {
    Duration short_window = seconds(1);
    Duration long_window = seconds(8);  ///< clamped to 16x short_window
    double error_budget = 0.001;        ///< allowed miss fraction (99.9% SLO)
  };

  static SloMonitor& instance();

  /// Installs the topic table (dense ids); growing is supported, calling
  /// again is count-preserving.  Mirrors DeadlineAccountant::configure and
  /// is called from the same place (PrimaryEngine construction).
  void configure(const std::vector<TopicSpec>& specs);
  std::size_t topic_count() const {
    return count_.load(std::memory_order_acquire);
  }

  void set_config(const Config& config);
  Config config() const;

  /// Replaces the alert table (clears firing state).  The default table is
  /// installed lazily on first evaluation.
  void set_rules(std::vector<AlertRule> rules);
  static std::vector<AlertRule> default_rules();

  // ---- hook feeds (slow paths only; see obs/hooks.cpp) ------------------
  void on_dispatch_executed(TopicId topic, Duration laxity, TimePoint now);
  void on_replication_executed(TopicId topic, Duration laxity, TimePoint now);
  void on_delivery(TopicId topic, Duration e2e, bool e2e_miss,
                   std::uint64_t worst_streak, TimePoint now);

  /// Latest driving-clock timestamp any feed reported; evaluation anchors
  /// here so scrapes need no clock of their own.
  TimePoint latest_now() const {
    return latest_now_.load(std::memory_order_relaxed);
  }

  // ---- evaluation (cold path) -------------------------------------------
  /// Evaluates every rule at `now`, updating firing/since state.  A
  /// warning->firing transition of a critical rule arms the flight
  /// recorder (obs/flight_recorder.hpp) outside the monitor's lock.
  std::vector<AlertState> evaluate(TimePoint now);

  /// True when the most recent evaluate() left a critical rule firing.
  bool critical_firing() const {
    return critical_firing_.load(std::memory_order_relaxed);
  }

  TopicSloSnapshot snapshot(TopicId topic, TimePoint now);
  std::vector<TopicSloSnapshot> snapshot_all(TimePoint now);
  std::vector<ShardSloSnapshot> snapshot_shards(TimePoint now);

  /// Full SLO document (topics + shards + alert states) as JSON.
  std::string slo_json(TimePoint now);
  /// Just the evaluated alert table as JSON (the GET /alerts body).
  std::string alerts_json(TimePoint now);

  /// Zeroes every account and firing state; keeps topics, rules, config.
  void reset();

 private:
  /// Rolling event counter: a ring of time buckets advanced by event
  /// timestamps.  All methods require the owning slot's lock.
  class WindowedCounter {
   public:
    static constexpr std::size_t kBuckets = 64;
    void add(std::int64_t bucket_index, std::uint64_t n);
    std::uint64_t sum(std::int64_t now_bucket, std::size_t buckets_back) const;
    void reset();

   private:
    void advance(std::int64_t bucket_index);
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::int64_t last_ = -1;
    friend class SloMonitor;
  };

  /// Rolling minimum over the same bucket ring (window min headroom).
  class WindowedMin {
   public:
    void add(std::int64_t bucket_index, Duration value);
    Duration min(std::int64_t now_bucket, std::size_t buckets_back) const;
    void reset();

   private:
    void advance(std::int64_t bucket_index);
    std::array<Duration, WindowedCounter::kBuckets> buckets_;
    std::int64_t last_ = -1;
  };

  struct TopicSlot {
    std::uint32_t loss_tolerance = 0;
    Duration deadline = 0;
    mutable SpinLock lock;
    WindowedCounter dispatches, dispatch_misses;
    WindowedCounter replications, replication_misses;
    WindowedCounter deliveries, e2e_misses;
    WindowedMin dispatch_headroom_min, replication_headroom_min;
    std::uint64_t worst_streak = 0;
    LatencyRecorder dispatch_headroom;     // own internal lock
    LatencyRecorder replication_headroom;  // own internal lock
  };

  struct ShardSlot {
    mutable SpinLock lock;
    WindowedCounter dispatches, dispatch_misses;
    WindowedCounter replications, replication_misses;
    WindowedMin dispatch_headroom_min;
  };

  // Mirrors hooks.cpp kMaxShardSeries (core/topic_sharding.hpp kMaxShards).
  static constexpr std::size_t kMaxShardSlots = 32;

  TopicSlot* slot(TopicId topic);
  const TopicSlot* slot(TopicId topic) const;
  ShardSlot& shard_slot();

  Duration bucket_width() const;  ///< short_window / 8
  std::int64_t bucket_of(TimePoint now) const;
  std::size_t buckets_for(Duration window) const;

  double metric_value(const AlertRule& rule, TimePoint now);
  void note_now(TimePoint now);

  mutable SpinLock configure_lock_;
  std::deque<TopicSlot> slots_;  ///< deque: grow without moving slots
  std::atomic<std::size_t> count_{0};
  std::array<ShardSlot, kMaxShardSlots> shard_slots_;
  std::atomic<std::size_t> max_shard_seen_{0};
  std::atomic<TimePoint> latest_now_{0};

  mutable std::mutex config_mutex_;  ///< config + rules + firing state
  Config config_;
  std::vector<AlertRule> rules_;
  bool rules_installed_ = false;
  std::vector<TimePoint> firing_since_;  ///< parallel to rules_; 0 = not firing
  std::atomic<bool> critical_firing_{false};
};

inline SloMonitor& slo() { return SloMonitor::instance(); }

}  // namespace frame::obs
