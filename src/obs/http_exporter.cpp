#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "common/log.hpp"
#include "net/epoll_loop.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "obs/stitch.hpp"

namespace frame::obs {

namespace {

/// Requests larger than this are garbage, not scrapes.
constexpr std::size_t kMaxRequestBytes = 8192;

std::string http_response(int status, const char* content_type,
                          const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 405 ? "Method Not Allowed"
                       : status == 503 ? "Service Unavailable"
                                       : "Bad Request";
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 " + std::to_string(status) + " " + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Result<std::unique_ptr<HttpExporter>> HttpExporter::create(Options options,
                                                           EpollLoop* loop) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable, "socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "bind() failed");
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "getsockname() failed");
  }

  auto server = std::unique_ptr<HttpExporter>(new HttpExporter());
  server->loop_ = loop != nullptr ? loop : &EpollLoop::default_loop();
  server->listen_fd_ = fd;
  server->port_ = ntohs(bound.sin_port);
  server->options_ = std::move(options);
  HttpExporter* raw = server.get();
  const Status added =
      server->loop_->add(fd, EPOLLIN, [raw](std::uint32_t) {
        raw->on_listener_ready();
      });
  if (!added.is_ok()) {
    ::close(fd);
    return added;
  }
  FRAME_LOG_INFO("telemetry endpoint listening on 127.0.0.1:%u", raw->port_);
  return server;
}

HttpExporter::~HttpExporter() {
  if (listen_fd_ >= 0) {
    loop_->remove_sync(listen_fd_);
    ::close(listen_fd_);
  }
  // clients_ is loop-thread state: close the survivors on the loop thread
  // (remove_sync is inline there) and wait for it to finish.
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  loop_->post([&] {
    for (auto& [fd, client] : clients_) {
      loop_->remove_sync(fd);
      ::close(fd);
    }
    clients_.clear();
    {
      std::lock_guard lock(mutex);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return done; });
}

void HttpExporter::on_listener_ready() {
  while (true) {
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (client < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      FRAME_LOG_WARN("telemetry accept failed: %s", std::strerror(errno));
      return;
    }
    clients_.emplace(client, Client{});
    const Status added = loop_->add(
        client, EPOLLIN, [this, client](std::uint32_t events) {
          on_client_ready(client, events);
        });
    if (!added.is_ok()) {
      clients_.erase(client);
      ::close(client);
    }
  }
}

std::string HttpExporter::handle(const std::string& path,
                                 int& status_out) const {
  status_out = 200;
  if (path == "/metrics") {
    return to_prometheus(collect_snapshot(0));
  }
  if (path == "/snapshot.json") {
    return to_json(collect_snapshot());
  }
  if (path == "/healthz") {
    if (options_.healthz) return options_.healthz(status_out);
    // Default: healthy unless the SLO alert table has a critical rule
    // firing (evaluated at the latest event time the monitor has seen).
    slo().evaluate(slo().latest_now());
    if (slo().critical_firing()) {
      status_out = 503;
      return "{\"status\":\"critical\",\"reason\":\"critical alert firing\"}\n";
    }
    return "{\"status\":\"ok\"}\n";
  }
  if (path == "/trace") {
    if (options_.trace_dump) return options_.trace_dump();
    return serialize_dump(collect_local_dump("local", 0));
  }
  if (path == "/alerts") {
    return slo().alerts_json(0);
  }
  if (path == "/slo.json") {
    return slo().slo_json(0);
  }
  status_out = 404;
  return "not found\n";
}

void HttpExporter::on_client_ready(int fd, std::uint32_t events) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  Client& client = it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_client(fd);
    return;
  }

  if ((events & EPOLLIN) != 0 && client.out.empty()) {
    char buf[2048];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        client.in.append(buf, static_cast<std::size_t>(n));
        if (client.in.size() > kMaxRequestBytes) {
          close_client(fd);
          return;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_client(fd);  // peer closed before sending a full request
      return;
    }
    const std::size_t header_end = client.in.find("\r\n\r\n");
    if (header_end == std::string::npos) return;  // keep reading

    // Request line: METHOD SP PATH SP VERSION.
    const std::size_t line_end = client.in.find("\r\n");
    const std::string line = client.in.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      client.out = http_response(400, "text/plain", "bad request\n");
    } else if (line.substr(0, sp1) != "GET") {
      client.out = http_response(405, "text/plain", "GET only\n");
    } else {
      std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::size_t query = path.find('?');
      if (query != std::string::npos) path.resize(query);
      int status = 200;
      const std::string body = handle(path, status);
      const char* type = path == "/snapshot.json" || path == "/healthz" ||
                                 path == "/alerts" || path == "/slo.json"
                             ? "application/json"
                             : "text/plain; version=0.0.4";
      client.out = http_response(status, type, body);
    }
    loop_->modify(fd, EPOLLIN | EPOLLOUT);
  }

  if ((events & EPOLLOUT) != 0 && !client.out.empty()) {
    while (client.out_pos < client.out.size()) {
      const ssize_t n = ::send(fd, client.out.data() + client.out_pos,
                               client.out.size() - client.out_pos,
                               MSG_NOSIGNAL);
      if (n > 0) {
        client.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      close_client(fd);
      return;
    }
    close_client(fd);  // HTTP/1.0: one response, then close
  }
}

void HttpExporter::close_client(int fd) {
  loop_->remove_sync(fd);
  ::close(fd);
  clients_.erase(fd);
}

}  // namespace frame::obs
