#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace frame::obs {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    if (!v.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  std::optional<JsonValue> object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (!consume('{')) return std::nullopt;
    if (consume('}')) return v;
    while (true) {
      auto key = string_literal();
      if (!key.has_value() || !consume(':')) return std::nullopt;
      auto member = value();
      if (!member.has_value()) return std::nullopt;
      v.object.emplace_back(std::move(*key), std::move(*member));
      if (consume('}')) return v;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (!consume('[')) return std::nullopt;
    if (consume(']')) return v;
    while (true) {
      auto member = value();
      if (!member.has_value()) return std::nullopt;
      v.array.push_back(std::move(*member));
      if (consume(']')) return v;
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<std::string> string_literal() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            pos_ += 4;  // validated but not decoded; good enough here
            out += '?';
            break;
          }
          default:
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> string_value() {
    auto s = string_literal();
    if (!s.has_value()) return std::nullopt;
    JsonValue v;
    v.type = JsonValue::Type::kString;
    v.str = std::move(*s);
    return v;
  }

  std::optional<JsonValue> boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      v.boolean = true;
      return v;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return v;
    }
    return std::nullopt;
  }

  std::optional<JsonValue> null() {
    if (text_.substr(pos_, 4) != "null") return std::nullopt;
    pos_ += 4;
    return JsonValue{};
  }

  std::optional<JsonValue> number() {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    if (end == start) return std::nullopt;
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace frame::obs
