// Link latency models for the simulated deployment.
//
// The paper's testbed exhibits three latency regimes: sub-millisecond
// switched LAN links (publisher->broker, broker->edge subscriber,
// broker->backup) and a 20+ millisecond AWS uplink with diurnal variation
// and occasional spikes (Fig. 8).  Each directed link in the simulator owns
// a LatencyModel; samples may depend on the (virtual) time of day, which is
// how the Fig. 8 trace shape is produced.
#pragma once

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace frame::sim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way latency sample for a transmission starting at `now`.
  virtual Duration sample(Rng& rng, TimePoint now) = 0;
  /// The lower bound a deployment engineer would configure from
  /// measurement (the paper uses measured minimums for ΔBS).
  virtual Duration lower_bound() const = 0;
};

/// Fixed latency.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(Duration value) : value_(value) {}
  Duration sample(Rng&, TimePoint) override { return value_; }
  Duration lower_bound() const override { return value_; }

 private:
  Duration value_;
};

/// Uniform in [lo, hi): models switched-LAN jitter.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration lo, Duration hi) : lo_(lo), hi_(hi) {}
  Duration sample(Rng& rng, TimePoint) override {
    return lo_ + static_cast<Duration>(rng.next_double() *
                                       static_cast<double>(hi_ - lo_));
  }
  Duration lower_bound() const override { return lo_; }

 private:
  Duration lo_;
  Duration hi_;
};

/// Normal distribution clamped below at `floor`: models a WAN link whose
/// latency has a hard propagation minimum.
class NormalLatency final : public LatencyModel {
 public:
  NormalLatency(Duration mean, Duration stddev, Duration floor)
      : mean_(mean), stddev_(stddev), floor_(floor) {}
  Duration sample(Rng& rng, TimePoint) override {
    const double value = rng.normal(static_cast<double>(mean_),
                                    static_cast<double>(stddev_));
    return std::max(floor_, static_cast<Duration>(value));
  }
  Duration lower_bound() const override { return floor_; }

 private:
  Duration mean_;
  Duration stddev_;
  Duration floor_;
};

/// Cloud uplink with a diurnal profile (Fig. 8): a hard floor, a smooth
/// time-of-day swell peaking during business hours, Gaussian jitter, and a
/// one-off spike at a configurable time of day (the paper observed a
/// +104 ms spike around 8 am).
class DiurnalCloudLatency final : public LatencyModel {
 public:
  struct Profile {
    Duration floor = microseconds(20'700);      ///< 20.7 ms measured minimum
    Duration swell = microseconds(6'000);       ///< peak-hours extra latency
    Duration jitter_stddev = microseconds(900);
    Duration spike_height = microseconds(104'000);  ///< the +104 ms event
    Duration spike_time_of_day = seconds(8 * 3600); ///< ~8 am
    Duration spike_width = seconds(2);
  };

  explicit DiurnalCloudLatency(Profile profile) : profile_(profile) {}

  Duration sample(Rng& rng, TimePoint now) override;
  Duration lower_bound() const override { return profile_.floor; }

 private:
  Profile profile_;
};

}  // namespace frame::sim
