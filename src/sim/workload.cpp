#include "sim/workload.hpp"

#include <cassert>

#include "core/differentiation.hpp"

namespace frame::sim {

std::vector<TopicId> Workload::topics_in_category(int cat) const {
  std::vector<TopicId> out;
  for (std::size_t i = 0; i < topics.size(); ++i) {
    if (category[i] == cat) out.push_back(topics[i].id);
  }
  return out;
}

TopicId Workload::representative(int cat) const {
  for (std::size_t i = 0; i < topics.size(); ++i) {
    if (category[i] == cat) return topics[i].id;
  }
  return kInvalidTopic;
}

double Workload::message_rate() const {
  double rate = 0.0;
  for (const auto& spec : topics) {
    rate += 1e9 / static_cast<double>(spec.period);
  }
  return rate;
}

std::size_t proxy_fanout(int category) {
  switch (category) {
    case 0:
    case 1:
      return 10;  // proxies of ten topics
    case 2:
    case 3:
    case 4:
      return 50;  // proxies of fifty topics
    default:
      return 1;  // each category-5 publisher publishes one topic
  }
}

Workload make_table2_workload(std::size_t total_topics,
                              const TimingParams& params,
                              bool retention_bump) {
  assert(total_topics >= 25 && (total_topics - 25) % 3 == 0 &&
         "totals must be 25 + 3k (Section VI)");
  const std::size_t bulk_per_category = (total_topics - 25) / 3;

  const std::size_t counts[kTable2Categories] = {
      10, 10, bulk_per_category, bulk_per_category, bulk_per_category, 5};

  Workload workload;
  workload.topics.reserve(total_topics);
  workload.category.reserve(total_topics);

  TopicId next_id = 0;
  for (int cat = 0; cat < kTable2Categories; ++cat) {
    const std::size_t fanout = proxy_fanout(cat);
    ProxySpec proxy;
    for (std::size_t i = 0; i < counts[cat]; ++i) {
      TopicSpec spec = table2_spec(cat, next_id);
      workload.topics.push_back(spec);
      workload.category.push_back(cat);
      if (proxy.topics.empty()) proxy.period = spec.period;
      proxy.topics.push_back(next_id);
      if (proxy.topics.size() == fanout) {
        workload.proxies.push_back(std::move(proxy));
        proxy = ProxySpec{};
      }
      ++next_id;
    }
    if (!proxy.topics.empty()) workload.proxies.push_back(std::move(proxy));
  }

  if (retention_bump) {
    workload.topics = with_extra_retention(workload.topics, params, 1);
  }
  return workload;
}

Workload make_custom_workload(const std::vector<TopicSpec>& topics,
                              const std::vector<int>& categories,
                              std::size_t max_fanout) {
  assert(categories.size() == topics.size());
  Workload workload;
  workload.topics = topics;
  workload.category = categories;
  ProxySpec proxy;
  for (const auto& spec : topics) {
    assert(spec.id == static_cast<TopicId>(&spec - topics.data()) &&
           "topic ids must be dense");
    const bool break_proxy =
        !proxy.topics.empty() &&
        (proxy.period != spec.period || proxy.topics.size() >= max_fanout);
    if (break_proxy) {
      workload.proxies.push_back(std::move(proxy));
      proxy = ProxySpec{};
    }
    if (proxy.topics.empty()) proxy.period = spec.period;
    proxy.topics.push_back(spec.id);
  }
  if (!proxy.topics.empty()) workload.proxies.push_back(std::move(proxy));
  return workload;
}

}  // namespace frame::sim
