#include "sim/latency_model.hpp"

#include <cmath>

namespace frame::sim {

Duration DiurnalCloudLatency::sample(Rng& rng, TimePoint now) {
  constexpr double kDaySeconds = 86'400.0;
  const double tod = std::fmod(to_seconds(now), kDaySeconds);

  // Smooth swell peaking mid-day: 0 at 3 am, max at 3 pm.
  const double phase = 2.0 * 3.14159265358979323846 * (tod - 3.0 * 3600.0) /
                       kDaySeconds;
  const double swell01 = 0.5 * (1.0 - std::cos(phase));
  double latency = static_cast<double>(profile_.floor) +
                   swell01 * static_cast<double>(profile_.swell);

  // Gaussian jitter.
  latency += rng.normal(0.0, static_cast<double>(profile_.jitter_stddev));

  // The one-off spike around its time of day.
  const double spike_tod = to_seconds(profile_.spike_time_of_day);
  const double width = to_seconds(profile_.spike_width);
  if (std::abs(tod - spike_tod) < width) {
    latency += static_cast<double>(profile_.spike_height);
  }

  const auto floor = static_cast<double>(profile_.floor);
  return static_cast<Duration>(std::max(floor, latency));
}

}  // namespace frame::sim
