// Experiment harness: builds the paper's Fig. 6 topology in the simulator,
// runs one configuration, and collects every metric the evaluation reports.
//
// Topology (Section VI-A): publisher proxies -> Primary broker (B1) with a
// Backup broker (B2), two edge subscriber hosts (ES1, ES2) and one cloud
// subscriber (CS1).  Broker hosts dedicate two cores to Message Delivery
// and one to the Message Proxy.  A crash of the Primary can be injected
// mid-run (the paper SIGKILLs it at the 30th second of 60).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "broker/backup_engine.hpp"
#include "broker/config.hpp"
#include "broker/primary_engine.hpp"
#include "broker/publisher_engine.hpp"
#include "broker/subscriber_engine.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/cost_model.hpp"
#include "sim/des.hpp"
#include "sim/latency_model.hpp"
#include "sim/workload.hpp"

namespace frame::sim {

/// The timing parameters the paper's worked example uses (Section III-D):
/// ΔBS = 1 ms (edge) / 20 ms (cloud, measured lower bound ~20.7 ms),
/// ΔBB = 0.05 ms, x = 50 ms; ΔPB bound 1 ms.
TimingParams paper_timing_params();

struct ExperimentConfig {
  ConfigName config = ConfigName::kFrame;
  std::size_t total_topics = 7525;
  TimingParams timing = paper_timing_params();
  CostModel costs;

  Duration warmup = seconds(2);
  Duration measure = seconds(10);
  Duration drain = seconds(2);

  bool inject_crash = false;
  double crash_fraction = 0.5;        ///< position within the measure window
  Duration backup_detection = milliseconds(30);  ///< crash -> promotion

  /// Backup reintegration: restart the crashed host as the new Backup of
  /// the promoted Primary this long after the crash.  The promoted Primary
  /// ships its undispatched replicating copies as a state sync and resumes
  /// replication from then on.
  bool backup_rejoin = false;
  Duration rejoin_delay = seconds(1);

  /// Second failure: crash the promoted Primary this long after the first
  /// crash.  Requires backup_rejoin (and second_crash_delay > rejoin_delay)
  /// so a Backup exists to take over again.
  bool inject_second_crash = false;
  Duration second_crash_delay = seconds(2);

  std::uint64_t seed = 1;
  std::vector<int> watch_categories;  ///< record Fig. 9 traces for these

  /// Fig. 8 mode: drive the cloud link with the diurnal profile instead of
  /// the default normal model.
  bool diurnal_cloud = false;

  /// Overrides the Table-2 workload (used by the Fig. 8 micro-benchmark and
  /// by unit tests).
  std::optional<Workload> custom_workload;

  /// Overrides the broker policies derived from `config`; used by the
  /// ablation benches (e.g. FRAME with coordination disabled).
  std::optional<BrokerConfig> broker_override;

  /// Extra retention added to every topic Proposition 1 would replicate
  /// (beyond the FRAME+ +1); used by the retention ablation.
  std::uint32_t extra_retention = 0;
};

struct CategoryResult {
  int category = 0;
  std::size_t topic_count = 0;
  Duration deadline = 0;              ///< Di of the category
  std::uint32_t loss_tolerance = 0;   ///< Li of the category
  double loss_success_pct = 0.0;      ///< % topics with max run <= Li
  double latency_success_pct = 0.0;   ///< mean over topics of on-time %
  std::uint64_t total_losses = 0;
  std::uint64_t worst_consecutive_losses = 0;
  OnlineStats latency;                ///< in-window latencies (ns), merged
                                      ///< across the category's topics
};

/// Response times of the two job kinds against their lemma deadlines,
/// measured at job completion for jobs released inside the window.  This
/// is the quantity Lemmas 1-2 bound: if `replicate_misses == 0`, Lemma 1
/// guarantees the loss-tolerance outcome of any crash.
struct JobResponseStats {
  OnlineStats dispatch;        ///< Rd samples (ns)
  OnlineStats replicate;       ///< Rr samples (ns)
  std::uint64_t dispatch_jobs = 0;
  std::uint64_t replicate_jobs = 0;
  std::uint64_t dispatch_misses = 0;   ///< completed after tp + Dd
  std::uint64_t replicate_misses = 0;  ///< completed after tp + Dr
};

struct ModuleUtilization {
  double primary_delivery = 0.0;
  double primary_proxy = 0.0;
  double backup_proxy = 0.0;
  double backup_delivery = 0.0;  ///< nonzero only after promotion
};

struct WatchedTrace {
  int category = 0;
  TopicId topic = kInvalidTopic;
  std::vector<TraceSample> samples;
  std::uint64_t losses = 0;  ///< distinct in-window messages never delivered
};

struct ExperimentResult {
  ConfigName config = ConfigName::kFrame;
  std::size_t total_topics = 0;
  std::uint64_t seed = 0;

  std::vector<CategoryResult> categories;
  ModuleUtilization cpu;
  JobResponseStats responses;  ///< Primary-host jobs, pre-crash

  PrimaryEngine::Stats primary_stats;
  PrimaryEngine::Stats promoted_stats;  ///< new Primary after failover
  BackupEngine::Stats backup_stats;

  std::vector<WatchedTrace> traces;

  std::uint64_t messages_created = 0;
  std::uint64_t unique_delivered = 0;
  std::uint64_t duplicates_discarded = 0;
  std::size_t backup_live_at_promotion = 0;
  std::size_t backup_size_at_promotion = 0;
  TimePoint crash_time = 0;
  TimePoint second_crash_time = 0;   ///< 0 when no second crash
  std::uint64_t sync_set_size = 0;   ///< replicas shipped at reintegration

  const CategoryResult& category(int cat) const;
};

/// Runs one experiment; deterministic for a given config (incl. seed).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Convenience: the crash time implied by a config (0 when no crash).
TimePoint crash_time(const ExperimentConfig& config);

}  // namespace frame::sim
