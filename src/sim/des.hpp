// Discrete-event simulation kernel.
//
// The kernel is deliberately minimal: a time-ordered heap of typed events.
// Events carry small POD payloads (no std::function) because a full
// benchmark campaign executes hundreds of millions of them.  Ties are
// broken by insertion order, making every run bit-reproducible for a given
// seed.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.hpp"
#include "net/message.hpp"

namespace frame::sim {

enum class EvKind : std::uint8_t {
  kPublisherBatch = 0,   ///< a = publisher index
  kArrival = 1,          ///< a = host index, b = ProxyItem kind, msg payload
  kProxyDone = 2,        ///< a = host index
  kWorkerDone = 3,       ///< a = host index
  kDeliver = 4,          ///< a = subscriber index, msg payload
  kCrash = 5,            ///< a = host index
  kPromote = 6,          ///< a = host index (the Backup being promoted)
  kPublisherFailover = 7,///< a = new target host; publishers redirect+resend
  kSnapshot = 8,         ///< a = 0 for window start, 1 for window end
  kBackupJoin = 9,       ///< a = host restarting as the new Backup
};

struct SimEvent {
  TimePoint time = 0;
  std::uint64_t order = 0;
  EvKind kind = EvKind::kPublisherBatch;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  Message msg;
};

class EventQueue {
 public:
  void push(TimePoint time, EvKind kind, std::uint32_t a = 0,
            std::uint32_t b = 0, const Message& msg = Message{}) {
    heap_.push(SimEvent{time, next_order_++, kind, a, b, msg});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  const SimEvent& top() const { return heap_.top(); }

  SimEvent pop() {
    SimEvent event = heap_.top();
    heap_.pop();
    return event;
  }

 private:
  struct Later {
    bool operator()(const SimEvent& x, const SimEvent& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.order > y.order;
    }
  };

  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_order_ = 0;
};

}  // namespace frame::sim
