// Calibrated per-job CPU service costs for the simulated broker hosts.
//
// The paper measures per-module CPU utilisation on Intel i5-4590 hosts with
// two cores dedicated to Message Delivery and one to the Message Proxy
// (Section VI-A).  The simulator charges these costs to those cores.  The
// defaults are calibrated so the overload crossovers land where the paper's
// do.  Per-message Message Delivery work:
//   replicated topic:      dispatch + replicate + coordination = 40.25 us
//   non-replicated topic:  dispatch = 2.25 us
// which, on the 2-core delivery module, yields offered loads of
//   FCFS   (replicates all but best-effort): 104% at  7525 topics -> collapse
//   FCFS-  (no coordination):                 47% at 13525 topics -> healthy
//   FRAME  (replicates categories 2 and 5):   54% /  78% / 101% at
//                                             7525 / 10525 / 13525
//   FRAME+ (no replication at all):           15% at 13525 topics
// matching Table 4/5: FCFS fails from 7525 topics on, FRAME only degrades
// at 13525, FRAME+ and FCFS- stay healthy, and FRAME+ uses the least CPU.
// The coordination figure lumps the prune request with the job-queue
// contention the paper blames for FCFS's overload ("the threads of the
// Message Delivery module competed for the EDF Job Queue", Section VI-B);
// the simulator has no mutexes, so that cost is charged here instead.
#pragma once

#include "common/time.hpp"

namespace frame::sim {

struct CostModel {
  /// Message Proxy: copy into the Message Buffer + Job Generator run.
  Duration proxy_per_message = microseconds(5);
  /// Dispatcher push of one message to its subscriber(s).
  Duration dispatch = microseconds_f(2.25);
  /// Replicator push of one replica to the Backup.
  Duration replicate = microseconds(7);
  /// Dispatch-replicate coordination on the dispatch path: the prune
  /// request to the Backup plus bookkeeping (Table 3, Dispatch step 3) and
  /// the associated job-queue contention (see the file comment).
  Duration coordination = microseconds(31);
  /// A replicate job aborted because the copy was already dispatched.
  Duration replicate_abort = microseconds(1);
  /// A job whose buffer entry was already evicted.
  Duration stale_job = microseconds(1) / 2;
  /// Backup Message Proxy: insert one replica into the Backup Buffer.
  Duration backup_insert = microseconds(2);
  /// Backup Message Proxy: apply one prune request.
  Duration backup_prune = microseconds(1);
  /// Backup Message Proxy: hand one recovery copy to the new Primary
  /// (recovery-set scan amortised per copy).
  Duration recovery_per_message = microseconds(5);

  /// Cores dedicated to Message Delivery per broker host (paper: two).
  int delivery_cores = 2;
};

}  // namespace frame::sim
