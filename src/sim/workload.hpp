// Workload generation for the paper's evaluation (Section VI).
//
// The evaluated topic sets follow Table 2: ten topics each in categories 0
// and 1, five topics in category 5, and categories 2-4 scaled equally to
// reach total counts of 1525, 4525, 7525, 10525 and 13525 topics.
// Publishers are proxies: categories 0-1 use proxies of ten topics,
// categories 2-4 proxies of fifty topics, and each category-5 publisher
// publishes one topic.  Payloads are 16 bytes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/topic.hpp"

namespace frame::sim {

struct ProxySpec {
  Duration period = 0;             ///< shared by all its topics
  std::vector<TopicId> topics;
};

struct Workload {
  std::vector<TopicSpec> topics;   ///< dense ids 0..n-1
  std::vector<int> category;       ///< parallel to topics
  std::vector<ProxySpec> proxies;

  std::size_t topic_count() const { return topics.size(); }
  /// Topics belonging to `cat`.
  std::vector<TopicId> topics_in_category(int cat) const;
  /// A representative topic of `cat` (the first one).
  TopicId representative(int cat) const;
  /// Aggregate message rate (messages per second).
  double message_rate() const;
};

/// Builds the Table-2 workload with `total_topics` topics.  `total_topics`
/// must satisfy total = 25 + 3k for integer k >= 0 (the paper's totals do).
/// When `retention_bump` is set, Ni is raised by one for every topic whose
/// replication Proposition 1 would otherwise require — the FRAME+
/// workload transformation.
Workload make_table2_workload(std::size_t total_topics,
                              const TimingParams& params,
                              bool retention_bump = false);

/// The paper's five workload sizes.
inline constexpr std::size_t kPaperWorkloads[] = {1525, 4525, 7525, 10525,
                                                  13525};

/// Number of topics per proxy for a category.
std::size_t proxy_fanout(int category);

/// Builds a Workload from an arbitrary dense topic list (e.g. one parsed
/// from a deployment file).  `category` labels group the result rows; pass
/// the config file's `groups`.  Topics are packed into publisher proxies
/// of up to `max_fanout` same-period topics, preserving order.
Workload make_custom_workload(const std::vector<TopicSpec>& topics,
                              const std::vector<int>& categories,
                              std::size_t max_fanout = 50);

}  // namespace frame::sim
