#include "sim/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/differentiation.hpp"

namespace frame::sim {

TimingParams paper_timing_params() {
  TimingParams params;
  params.delta_pb = milliseconds(1);
  params.delta_bs_edge = milliseconds(1);
  params.delta_bs_cloud = milliseconds(20);
  params.delta_bb = microseconds(50);  // 0.05 ms
  params.failover_x = milliseconds(50);
  return params;
}

TimePoint crash_time(const ExperimentConfig& config) {
  if (!config.inject_crash) return 0;
  return config.warmup +
         static_cast<Duration>(config.crash_fraction *
                               static_cast<double>(config.measure));
}

const CategoryResult& ExperimentResult::category(int cat) const {
  for (const auto& entry : categories) {
    if (entry.category == cat) return entry;
  }
  throw std::out_of_range("no such category in result");
}

namespace {

constexpr std::uint32_t kProxyPublish = 0;
constexpr std::uint32_t kProxyReplica = 1;
constexpr std::uint32_t kProxyPrune = 2;
constexpr std::uint32_t kProxyRecovery = 3;

constexpr int kPrimaryHost = 0;
constexpr int kBackupHost = 1;
constexpr int kSubscriberCount = 3;  // ES1, ES2, CS1
constexpr int kCloudSubscriber = 2;

struct ProxyItem {
  std::uint32_t kind = kProxyPublish;
  Message msg;
};

struct BrokerHost {
  bool crashed = false;
  /// Incremented on crash and on restart; stale kProxyDone/kWorkerDone
  /// events from a previous life are dropped by epoch mismatch.
  std::uint32_t epoch = 0;
  bool has_backup_peer = false;  ///< replicate / prune allowed
  std::unique_ptr<PrimaryEngine> primary;  ///< null on the Backup until promotion
  std::unique_ptr<BackupEngine> backup;

  std::deque<ProxyItem> proxy_queue;
  bool proxy_busy = false;
  std::uint64_t proxy_busy_ns = 0;

  int busy_workers = 0;
  std::uint64_t delivery_busy_ns = 0;

  std::uint64_t proxy_busy_at[2] = {0, 0};     // window start / end snapshots
  std::uint64_t delivery_busy_at[2] = {0, 0};

  /// Publishes that arrived after the publishers failed over but before
  /// this host was promoted (possible when x < detection time).
  std::vector<Message> pending_publishes;
};

struct SimPublisher {
  std::unique_ptr<PublisherEngine> engine;
  int target_host = kPrimaryHost;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config)
      : cfg_(config), rng_(config.seed) {}

  ExperimentResult run();

 private:
  void build();
  void schedule_initial_events();
  void handle(const SimEvent& event);

  void on_publisher_batch(std::uint32_t pub_index, TimePoint now);
  void on_arrival(std::uint32_t host_index, std::uint32_t kind,
                  const Message& msg, TimePoint now);
  void on_proxy_done(std::uint32_t host_index, std::uint32_t epoch,
                     TimePoint now);
  void on_worker_done(std::uint32_t host_index, std::uint32_t epoch,
                      TimePoint now);
  void on_deliver(std::uint32_t sub_index, const Message& msg, TimePoint now);
  void on_crash(std::uint32_t host_index, TimePoint now);
  void on_promote(std::uint32_t host_index, TimePoint now);
  void on_publisher_failover(int target_host, TimePoint now);
  void on_backup_join(std::uint32_t host_index, TimePoint now);
  void on_snapshot(std::uint32_t which);

  void kick_proxy(int host_index, TimePoint now);
  void kick_delivery(int host_index, TimePoint now);

  Duration proxy_cost(std::uint32_t kind) const;
  Duration sample_pb(TimePoint now) { return pub_to_broker_->sample(rng_, now); }
  Duration sample_bb(TimePoint now) {
    return broker_to_backup_->sample(rng_, now);
  }
  Duration sample_bs(Destination destination, TimePoint now) {
    return destination == Destination::kEdge
               ? broker_to_edge_->sample(rng_, now)
               : broker_to_cloud_->sample(rng_, now);
  }

  int subscriber_of_topic(TopicId topic) const {
    if (workload_.topics[topic].destination == Destination::kCloud) {
      return kCloudSubscriber;
    }
    return static_cast<int>(topic % 2);  // alternate ES1 / ES2
  }

  void track_created(const Message& msg);
  ExperimentResult assemble();

  ExperimentConfig cfg_;
  Rng rng_;
  Workload workload_;
  EventQueue queue_;

  BrokerHost hosts_[2];
  std::vector<SimPublisher> publishers_;
  std::vector<std::unique_ptr<SubscriberEngine>> subscribers_;

  std::unique_ptr<LatencyModel> pub_to_broker_;
  std::unique_ptr<LatencyModel> broker_to_edge_;
  std::unique_ptr<LatencyModel> broker_to_cloud_;
  std::unique_ptr<LatencyModel> broker_to_backup_;

  TimePoint window_start_ = 0;
  TimePoint window_end_ = 0;
  TimePoint end_time_ = 0;
  TimePoint crash_at_ = 0;

  // Ground truth for loss/latency accounting, per topic.
  std::vector<SeqNo> first_in_window_;
  std::vector<SeqNo> last_in_window_;
  std::vector<std::uint64_t> created_in_window_;

  PrimaryEngine::Stats crashed_primary_stats_;
  bool primary_stats_saved_ = false;
  TimePoint second_crash_at_ = 0;
  std::uint64_t sync_set_size_ = 0;
  JobResponseStats responses_;
  std::size_t backup_live_at_promotion_ = 0;
  std::size_t backup_size_at_promotion_ = 0;
};

Duration Experiment::proxy_cost(std::uint32_t kind) const {
  switch (kind) {
    case kProxyPublish:
      return cfg_.costs.proxy_per_message;
    case kProxyReplica:
      return cfg_.costs.backup_insert;
    case kProxyPrune:
      return cfg_.costs.backup_prune;
    default:
      return cfg_.costs.recovery_per_message;
  }
}

void Experiment::build() {
  workload_ = cfg_.custom_workload.has_value()
                  ? *cfg_.custom_workload
                  : make_table2_workload(cfg_.total_topics, cfg_.timing,
                                         uses_retention_bump(cfg_.config));
  if (cfg_.extra_retention > 0) {
    workload_.topics = with_extra_retention(workload_.topics, cfg_.timing,
                                            cfg_.extra_retention);
  }

  const BrokerConfig broker_cfg = cfg_.broker_override.has_value()
                                      ? *cfg_.broker_override
                                      : broker_config(cfg_.config);

  // Primary host: full Primary engine with a Backup peer.
  hosts_[kPrimaryHost].primary = std::make_unique<PrimaryEngine>(
      broker_cfg, workload_.topics, cfg_.timing);
  hosts_[kPrimaryHost].has_backup_peer = true;
  // Backup host: Backup engine only; promotion creates its Primary engine.
  hosts_[kBackupHost].backup = std::make_unique<BackupEngine>(broker_cfg);
  hosts_[kBackupHost].backup->configure(workload_.topic_count());

  // Subscribers and per-topic subscriptions.
  subscribers_.clear();
  for (int i = 0; i < kSubscriberCount; ++i) {
    subscribers_.push_back(
        std::make_unique<SubscriberEngine>(static_cast<NodeId>(i)));
  }
  for (const auto& spec : workload_.topics) {
    const int sub = subscriber_of_topic(spec.id);
    subscribers_[sub]->add_topic(spec);
    hosts_[kPrimaryHost].primary->subscribe(spec.id,
                                            static_cast<NodeId>(sub));
  }

  // Publishers (one engine per proxy).
  publishers_.clear();
  publishers_.reserve(workload_.proxies.size());
  NodeId pub_id = 1000;
  for (const auto& proxy : workload_.proxies) {
    std::vector<TopicSpec> specs;
    specs.reserve(proxy.topics.size());
    for (const TopicId topic : proxy.topics) {
      specs.push_back(workload_.topics[topic]);
    }
    SimPublisher pub;
    pub.engine = std::make_unique<PublisherEngine>(pub_id++, std::move(specs),
                                                   proxy.period);
    publishers_.push_back(std::move(pub));
  }

  // Links (paper Section VI-A: switched gigabit LAN + AWS EC2 uplink).
  pub_to_broker_ = std::make_unique<UniformLatency>(microseconds(150),
                                                    microseconds(350));
  broker_to_edge_ = std::make_unique<UniformLatency>(microseconds(200),
                                                     microseconds(400));
  if (cfg_.diurnal_cloud) {
    broker_to_cloud_ = std::make_unique<DiurnalCloudLatency>(
        DiurnalCloudLatency::Profile{});
  } else {
    broker_to_cloud_ = std::make_unique<NormalLatency>(
        microseconds(22'000), microseconds(800), microseconds(20'700));
  }
  broker_to_backup_ = std::make_unique<UniformLatency>(microseconds(40),
                                                       microseconds(60));

  window_start_ = cfg_.warmup;
  window_end_ = cfg_.warmup + cfg_.measure;
  end_time_ = window_end_ + cfg_.drain;
  crash_at_ = crash_time(cfg_);

  first_in_window_.assign(workload_.topic_count(), 0);
  last_in_window_.assign(workload_.topic_count(), 0);
  created_in_window_.assign(workload_.topic_count(), 0);

  for (auto& sub : subscribers_) {
    sub->set_measure_window(window_start_, window_end_);
  }
  for (const int cat : cfg_.watch_categories) {
    const TopicId topic = workload_.representative(cat);
    if (topic != kInvalidTopic) {
      subscribers_[subscriber_of_topic(topic)]->watch(topic);
    }
  }
}

void Experiment::schedule_initial_events() {
  for (std::uint32_t i = 0; i < publishers_.size(); ++i) {
    const Duration period = publishers_[i].engine->period();
    const auto offset = static_cast<Duration>(
        rng_.next_double() * static_cast<double>(period));
    queue_.push(offset, EvKind::kPublisherBatch, i);
  }
  queue_.push(window_start_, EvKind::kSnapshot, 0);
  queue_.push(window_end_, EvKind::kSnapshot, 1);
  if (cfg_.inject_crash) {
    queue_.push(crash_at_, EvKind::kCrash, kPrimaryHost);
    queue_.push(crash_at_ + cfg_.backup_detection, EvKind::kPromote,
                kBackupHost);
    queue_.push(crash_at_ + cfg_.timing.failover_x,
                EvKind::kPublisherFailover, kBackupHost);
    if (cfg_.backup_rejoin) {
      queue_.push(crash_at_ + cfg_.rejoin_delay, EvKind::kBackupJoin,
                  kPrimaryHost);
    }
    if (cfg_.inject_second_crash) {
      assert(cfg_.backup_rejoin &&
             cfg_.second_crash_delay > cfg_.rejoin_delay &&
             "a Backup must have rejoined before the second crash");
      second_crash_at_ = crash_at_ + cfg_.second_crash_delay;
      queue_.push(second_crash_at_, EvKind::kCrash, kBackupHost);
      queue_.push(second_crash_at_ + cfg_.backup_detection, EvKind::kPromote,
                  kPrimaryHost);
      queue_.push(second_crash_at_ + cfg_.timing.failover_x,
                  EvKind::kPublisherFailover, kPrimaryHost);
    }
  }
}

void Experiment::track_created(const Message& msg) {
  if (msg.created_at < window_start_ || msg.created_at >= window_end_) return;
  if (created_in_window_[msg.topic] == 0) first_in_window_[msg.topic] = msg.seq;
  last_in_window_[msg.topic] = msg.seq;
  ++created_in_window_[msg.topic];
}

void Experiment::on_publisher_batch(std::uint32_t pub_index, TimePoint now) {
  auto& pub = publishers_[pub_index];
  std::vector<Message> batch = pub.engine->create_batch(now);
  const Duration delta_pb = sample_pb(now);
  for (const auto& msg : batch) {
    track_created(msg);
    queue_.push(now + delta_pb, EvKind::kArrival,
                static_cast<std::uint32_t>(pub.target_host), kProxyPublish,
                msg);
  }
  const TimePoint next = now + pub.engine->period();
  if (next < window_end_) {
    queue_.push(next, EvKind::kPublisherBatch, pub_index);
  }
}

void Experiment::on_arrival(std::uint32_t host_index, std::uint32_t kind,
                            const Message& msg, TimePoint now) {
  BrokerHost& host = hosts_[host_index];
  if (host.crashed) return;  // fail-stop: traffic to a dead host vanishes
  host.proxy_queue.push_back(ProxyItem{kind, msg});
  kick_proxy(static_cast<int>(host_index), now);
}

void Experiment::kick_proxy(int host_index, TimePoint now) {
  BrokerHost& host = hosts_[host_index];
  if (host.crashed || host.proxy_busy || host.proxy_queue.empty()) return;
  const Duration cost = proxy_cost(host.proxy_queue.front().kind);
  host.proxy_busy = true;
  host.proxy_busy_ns += static_cast<std::uint64_t>(cost);
  queue_.push(now + cost, EvKind::kProxyDone,
              static_cast<std::uint32_t>(host_index), host.epoch);
}

void Experiment::on_proxy_done(std::uint32_t host_index, std::uint32_t epoch,
                               TimePoint now) {
  BrokerHost& host = hosts_[host_index];
  if (host.crashed || epoch != host.epoch) return;
  assert(!host.proxy_queue.empty());
  ProxyItem item = std::move(host.proxy_queue.front());
  host.proxy_queue.pop_front();
  host.proxy_busy = false;

  switch (item.kind) {
    case kProxyPublish:
      if (host.primary) {
        host.primary->on_publish(item.msg, now,
                                 /*allow_replication=*/host.has_backup_peer);
      } else {
        // Publisher redirected before promotion: hold until promoted.
        host.pending_publishes.push_back(item.msg);
      }
      break;
    case kProxyReplica:
      if (host.backup) host.backup->on_replica(item.msg, now);
      break;
    case kProxyPrune:
      if (host.backup) host.backup->on_prune(item.msg.topic, item.msg.seq);
      break;
    case kProxyRecovery:
      if (host.primary) host.primary->on_recovery_copy(item.msg, now);
      break;
    default:
      break;
  }

  kick_proxy(static_cast<int>(host_index), now);
  kick_delivery(static_cast<int>(host_index), now);
}

void Experiment::kick_delivery(int host_index, TimePoint now) {
  BrokerHost& host = hosts_[host_index];
  if (host.crashed || !host.primary) return;
  const int other = 1 - host_index;

  while (host.busy_workers < cfg_.costs.delivery_cores) {
    auto job = host.primary->next_job();
    if (!job.has_value()) break;

    Duration cost = cfg_.costs.stale_job;
    if (job->kind == JobKind::kDispatch) {
      DispatchEffect effect = host.primary->execute_dispatch(*job, now);
      if (effect.executed) {
        cost = cfg_.costs.dispatch;
        if (effect.prune_backup) {
          cost += cfg_.costs.coordination;
        } else if (effect.coordinated) {
          cost += cfg_.costs.replicate_abort;  // local job cancellation
        }
        const TimePoint done = now + cost;
        Message msg = effect.msg;
        msg.dispatched_at = done;
        const Destination destination =
            workload_.topics[msg.topic].destination;
        for (const NodeId sub : effect.subscribers) {
          queue_.push(done + sample_bs(destination, now), EvKind::kDeliver,
                      static_cast<std::uint32_t>(sub), 0, msg);
        }
        if (effect.prune_backup && host.has_backup_peer &&
            !hosts_[other].crashed) {
          Message prune;
          prune.topic = job->topic;
          prune.seq = job->seq;
          queue_.push(done + sample_bb(now), EvKind::kArrival,
                      static_cast<std::uint32_t>(other), kProxyPrune, prune);
        }
      }
    } else {
      ReplicateEffect effect = host.primary->execute_replicate(*job, now);
      if (effect.aborted_dispatched) {
        cost = cfg_.costs.replicate_abort;
      } else if (effect.executed) {
        cost = cfg_.costs.replicate;
        if (host.has_backup_peer && !hosts_[other].crashed) {
          queue_.push(now + cost + sample_bb(now), EvKind::kArrival,
                      static_cast<std::uint32_t>(other), kProxyReplica,
                      effect.msg);
        }
      }
    }

    // Response time against the lemma deadline, measured at completion,
    // for jobs released inside the measuring window (the Primary host's
    // jobs only -- recovery-path jobs have different semantics).
    if (host_index == kPrimaryHost && job->release >= window_start_ &&
        job->release < window_end_) {
      const TimePoint completion = now + cost;
      const auto response = static_cast<double>(completion - job->release);
      if (job->kind == JobKind::kDispatch) {
        ++responses_.dispatch_jobs;
        responses_.dispatch.add(response);
        if (completion > job->deadline) ++responses_.dispatch_misses;
      } else {
        ++responses_.replicate_jobs;
        responses_.replicate.add(response);
        if (completion > job->deadline) ++responses_.replicate_misses;
      }
    }

    ++host.busy_workers;
    host.delivery_busy_ns += static_cast<std::uint64_t>(cost);
    queue_.push(now + cost, EvKind::kWorkerDone,
                static_cast<std::uint32_t>(host_index), host.epoch);
  }
}

void Experiment::on_worker_done(std::uint32_t host_index, std::uint32_t epoch,
                                TimePoint now) {
  BrokerHost& host = hosts_[host_index];
  if (host.crashed || epoch != host.epoch) return;
  --host.busy_workers;
  kick_delivery(static_cast<int>(host_index), now);
}

void Experiment::on_deliver(std::uint32_t sub_index, const Message& msg,
                            TimePoint now) {
  subscribers_[sub_index]->on_deliver(msg, now);
}

void Experiment::on_crash(std::uint32_t host_index, TimePoint) {
  BrokerHost& host = hosts_[host_index];
  host.crashed = true;
  ++host.epoch;
  host.proxy_queue.clear();
  host.proxy_busy = false;
  host.busy_workers = 0;
  host.pending_publishes.clear();
  if (host.primary && !primary_stats_saved_) {
    crashed_primary_stats_ = host.primary->stats();
    primary_stats_saved_ = true;
  }
}

void Experiment::on_promote(std::uint32_t host_index, TimePoint now) {
  BrokerHost& host = hosts_[host_index];
  if (host.crashed || host.primary) return;

  if (backup_live_at_promotion_ == 0 && backup_size_at_promotion_ == 0) {
    backup_live_at_promotion_ = host.backup->store().live_count();
    backup_size_at_promotion_ = host.backup->store().size();
  }

  const BrokerConfig broker_cfg = cfg_.broker_override.has_value()
                                      ? *cfg_.broker_override
                                      : broker_config(cfg_.config);
  host.primary = std::make_unique<PrimaryEngine>(broker_cfg, workload_.topics,
                                                 cfg_.timing);
  host.has_backup_peer = false;  // the new Primary has no Backup of its own
  for (const auto& spec : workload_.topics) {
    host.primary->subscribe(
        spec.id, static_cast<NodeId>(subscriber_of_topic(spec.id)));
  }

  // Recovery first (Section IV-A): dispatch the pruned Backup-Buffer set...
  std::vector<Message> recovery = host.backup->promote();
  for (const auto& msg : recovery) {
    host.proxy_queue.push_back(ProxyItem{kProxyRecovery, msg});
  }
  // ...then any publishes that raced ahead of the promotion.
  for (const auto& msg : host.pending_publishes) {
    host.proxy_queue.push_back(ProxyItem{kProxyPublish, msg});
  }
  host.pending_publishes.clear();
  kick_proxy(static_cast<int>(host_index), now);
}

void Experiment::on_publisher_failover(int target_host, TimePoint now) {
  for (auto& pub : publishers_) {
    pub.target_host = target_host;
    const Duration delta_pb = sample_pb(now);
    for (auto& msg : pub.engine->failover_resend()) {
      queue_.push(now + delta_pb, EvKind::kArrival,
                  static_cast<std::uint32_t>(target_host), kProxyPublish,
                  msg);
    }
  }
}

void Experiment::on_backup_join(std::uint32_t host_index, TimePoint now) {
  // The crashed host restarts as the new Backup of the current Primary.
  BrokerHost& joining = hosts_[host_index];
  BrokerHost& serving = hosts_[1 - host_index];
  if (!serving.primary || serving.crashed) return;  // nothing to back up

  joining.crashed = false;
  ++joining.epoch;
  joining.primary.reset();
  joining.backup = std::make_unique<BackupEngine>(
      cfg_.broker_override.has_value() ? *cfg_.broker_override
                                       : broker_config(cfg_.config));
  joining.backup->configure(workload_.topic_count());

  // State sync: undispatched copies of replicating topics, shipped in bulk
  // (bypassing the delivery module) and charged to the Backup's proxy.
  std::vector<Message> sync = serving.primary->backup_sync_set();
  sync_set_size_ += sync.size();
  for (const auto& msg : sync) {
    queue_.push(now + sample_bb(now), EvKind::kArrival, host_index,
                kProxyReplica, msg);
  }
  serving.has_backup_peer = true;
}

void Experiment::on_snapshot(std::uint32_t which) {
  for (auto& host : hosts_) {
    host.proxy_busy_at[which] = host.proxy_busy_ns;
    host.delivery_busy_at[which] = host.delivery_busy_ns;
  }
}

void Experiment::handle(const SimEvent& event) {
  switch (event.kind) {
    case EvKind::kPublisherBatch:
      on_publisher_batch(event.a, event.time);
      break;
    case EvKind::kArrival:
      on_arrival(event.a, event.b, event.msg, event.time);
      break;
    case EvKind::kProxyDone:
      on_proxy_done(event.a, event.b, event.time);
      break;
    case EvKind::kWorkerDone:
      on_worker_done(event.a, event.b, event.time);
      break;
    case EvKind::kDeliver:
      on_deliver(event.a, event.msg, event.time);
      break;
    case EvKind::kCrash:
      on_crash(event.a, event.time);
      break;
    case EvKind::kPromote:
      on_promote(event.a, event.time);
      break;
    case EvKind::kPublisherFailover:
      on_publisher_failover(static_cast<int>(event.a), event.time);
      break;
    case EvKind::kBackupJoin:
      on_backup_join(event.a, event.time);
      break;
    case EvKind::kSnapshot:
      on_snapshot(event.a);
      break;
  }
}

ExperimentResult Experiment::assemble() {
  ExperimentResult result;
  result.config = cfg_.config;
  result.total_topics = workload_.topic_count();
  result.seed = cfg_.seed;
  result.crash_time = crash_at_;
  result.second_crash_time = second_crash_at_;
  result.sync_set_size = sync_set_size_;
  result.responses = responses_;

  int max_category = 0;
  for (const int cat : workload_.category) {
    max_category = std::max(max_category, cat);
  }
  for (int cat = 0; cat <= max_category; ++cat) {
    const auto topics = workload_.topics_in_category(cat);
    if (topics.empty()) continue;
    CategoryResult entry;
    entry.category = cat;
    entry.topic_count = topics.size();
    entry.deadline = workload_.topics[topics.front()].deadline;
    entry.loss_tolerance = workload_.topics[topics.front()].loss_tolerance;

    std::size_t meeting_loss = 0;
    double latency_success_sum = 0.0;
    std::size_t measured = 0;
    for (const TopicId topic : topics) {
      if (created_in_window_[topic] == 0) continue;
      ++measured;
      const auto& sub = *subscribers_[subscriber_of_topic(topic)];
      const LossStats loss = sub.loss_stats(topic, first_in_window_[topic],
                                            last_in_window_[topic]);
      entry.total_losses += loss.total_losses;
      if (loss.max_consecutive_losses > entry.worst_consecutive_losses) {
        entry.worst_consecutive_losses = loss.max_consecutive_losses;
      }
      const TopicSpec& spec = workload_.topics[topic];
      const bool meets = spec.best_effort() ||
                         loss.max_consecutive_losses <= spec.loss_tolerance;
      if (meets) ++meeting_loss;
      latency_success_sum +=
          static_cast<double>(sub.on_time_in_window(topic)) /
          static_cast<double>(created_in_window_[topic]);
      entry.latency.merge(sub.latency_stats(topic));
    }
    if (measured > 0) {
      entry.loss_success_pct =
          100.0 * static_cast<double>(meeting_loss) /
          static_cast<double>(measured);
      entry.latency_success_pct =
          100.0 * latency_success_sum / static_cast<double>(measured);
    }
    result.categories.push_back(entry);
  }

  const double window = static_cast<double>(cfg_.measure);
  const auto util = [&](const std::uint64_t at[2], int cores) {
    return 100.0 * static_cast<double>(at[1] - at[0]) /
           (window * static_cast<double>(cores));
  };
  result.cpu.primary_delivery = util(hosts_[kPrimaryHost].delivery_busy_at,
                                     cfg_.costs.delivery_cores);
  result.cpu.primary_proxy = util(hosts_[kPrimaryHost].proxy_busy_at, 1);
  result.cpu.backup_proxy = util(hosts_[kBackupHost].proxy_busy_at, 1);
  result.cpu.backup_delivery = util(hosts_[kBackupHost].delivery_busy_at,
                                    cfg_.costs.delivery_cores);

  result.primary_stats = primary_stats_saved_
                             ? crashed_primary_stats_
                             : hosts_[kPrimaryHost].primary->stats();
  for (const auto& host : hosts_) {
    if (&host != &hosts_[kPrimaryHost] || second_crash_at_ > 0) {
      if (host.primary && !host.crashed) {
        result.promoted_stats = host.primary->stats();
      }
    }
  }
  if (hosts_[kBackupHost].backup) {
    result.backup_stats = hosts_[kBackupHost].backup->stats();
  }
  result.backup_live_at_promotion = backup_live_at_promotion_;
  result.backup_size_at_promotion = backup_size_at_promotion_;

  for (const auto& pub : publishers_) {
    result.messages_created += pub.engine->messages_created();
  }
  for (const auto& sub : subscribers_) {
    result.unique_delivered += sub->total_unique();
    result.duplicates_discarded += sub->total_duplicates();
  }

  for (const int cat : cfg_.watch_categories) {
    const TopicId topic = workload_.representative(cat);
    if (topic == kInvalidTopic) continue;
    const auto& sub = *subscribers_[subscriber_of_topic(topic)];
    WatchedTrace trace;
    trace.category = cat;
    trace.topic = topic;
    trace.samples = sub.trace(topic);
    if (created_in_window_[topic] > 0) {
      trace.losses = sub.loss_stats(topic, first_in_window_[topic],
                                    last_in_window_[topic])
                         .total_losses;
    }
    result.traces.push_back(std::move(trace));
  }
  return result;
}

ExperimentResult Experiment::run() {
  build();
  schedule_initial_events();
  while (!queue_.empty()) {
    if (queue_.top().time > end_time_) break;
    const SimEvent event = queue_.pop();
    handle(event);
  }
  return assemble();
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Experiment experiment(config);
  return experiment.run();
}

}  // namespace frame::sim
