// Async-signal-safe file writing helpers.
//
// Everything here is callable from a signal handler: no allocation, no
// locks, no stdio, no errno-dependent retry loops beyond EINTR — only the
// async-signal-safe syscalls open/write/fsync/close plus in-place integer
// formatting into caller-provided buffers.  The flight recorder's fatal
// path (obs/flight_recorder.cpp) uses these to append a pre-formatted
// crash record; the TCP transport may use them for last-gasp diagnostics.
//
// This header is deliberately freestanding (no other frame headers, no
// transport types) so layers below net — obs in particular — may include
// it without inverting the library layering.
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace frame::sigsafe {

/// Writes all of [data, data+len) to `fd`, retrying on EINTR and short
/// writes.  Returns false on any other error.  Async-signal-safe.
inline bool write_full(int fd, const char* data, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Appends the NUL-terminated string `s` to buf at `pos` (bounded by
/// `cap`); returns the new position.  Never writes past cap.
inline std::size_t append_str(char* buf, std::size_t cap, std::size_t pos,
                              const char* s) {
  while (*s != '\0' && pos < cap) buf[pos++] = *s++;
  return pos;
}

/// Appends `value` in decimal; handles 0 and the full uint64 range.
inline std::size_t append_u64(char* buf, std::size_t cap, std::size_t pos,
                              std::uint64_t value) {
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (n > 0 && pos < cap) buf[pos++] = digits[--n];
  return pos;
}

/// Appends `value` in decimal with a leading '-' when negative.
inline std::size_t append_i64(char* buf, std::size_t cap, std::size_t pos,
                              std::int64_t value) {
  if (value < 0) {
    pos = append_str(buf, cap, pos, "-");
    // Negate via unsigned to survive INT64_MIN.
    return append_u64(buf, cap, pos,
                      ~static_cast<std::uint64_t>(value) + 1);
  }
  return append_u64(buf, cap, pos, static_cast<std::uint64_t>(value));
}

/// open(2) with O_WRONLY|O_CREAT|O_APPEND, mode 0644, EINTR-retried.
/// Returns -1 on failure.  Async-signal-safe.
inline int open_append(const char* path) {
  int fd;
  do {
    fd = ::open(path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace frame::sigsafe
