// Framed TCP transport over non-blocking sockets and an epoll reactor.
//
// Frames are u32 little-endian length-prefixed byte strings carrying the
// wire.hpp protocol.  A single EpollLoop thread drives every socket
// registered with it: reads drain the kernel buffer in large chunks and
// re-assemble frames across partial deliveries; writes go through a
// bounded per-connection outbound queue that the reactor flushes with one
// writev per wakeup (corking), so many small frames cost one syscall.
//
// send_frame() is thread-safe and never blocks: when the socket is
// writable and the queue is empty it attempts one optimistic non-blocking
// writev inline (single-frame latency equals the old blocking design);
// otherwise the frame is queued and the reactor flushes it.  A full queue
// is backpressure: send_frame returns kCapacity and drops nothing that
// was previously accepted.
//
// EINTR is retried everywhere; oversized frames are a protocol error that
// closes the connection with kProtocolError (and is rejected symmetrically
// at the send side); connect() takes a timeout so a dead address cannot
// stall a caller indefinitely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/time.hpp"
#include "net/epoll_loop.hpp"

namespace frame {

/// One established connection, driven by an EpollLoop.
class TcpConnection {
 public:
  using FrameHandler = std::function<void(std::vector<std::uint8_t> frame)>;
  /// Invoked exactly once when the connection dies; the status says why
  /// (kClosed for EOF/reset/local close, kProtocolError for violations).
  using CloseHandler = std::function<void(const Status& reason)>;

  /// Frames larger than this are a protocol violation on both sides.
  static constexpr std::uint32_t kMaxFrame = 1u << 20;
  static constexpr Duration kDefaultConnectTimeout = seconds(2);
  static constexpr std::size_t kDefaultSendQueueLimit = 4u << 20;

  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connects to host:port, waiting at most `timeout` (kUnavailable on
  /// expiry).  The connection is driven by `loop` (default: the shared
  /// process-wide loop).
  static Result<std::unique_ptr<TcpConnection>> connect(
      const std::string& host, std::uint16_t port,
      Duration timeout = kDefaultConnectTimeout, EpollLoop* loop = nullptr);

  /// Registers with the reactor and starts surfacing frames.  Must be
  /// called exactly once.
  void start(FrameHandler on_frame, CloseHandler on_close = nullptr);

  /// Thread-safe, non-blocking.  kCapacity = send queue full (back off and
  /// retry); kProtocolError = frame exceeds kMaxFrame (connection stays
  /// usable); kClosed = connection dead.
  Status send_frame(const std::vector<std::uint8_t>& frame);

  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Bytes currently queued for transmission (headers included).
  std::size_t send_queue_bytes() const;

  /// Caps the outbound queue; kCapacity is returned beyond it.
  void set_send_queue_limit(std::size_t bytes);

 private:
  friend class TcpListener;
  TcpConnection(int fd, EpollLoop* loop) : fd_(fd), loop_(loop) {}

  void on_events(std::uint32_t events);
  void drain_readable();
  /// Flushes the outbound queue with writev; send_mutex_ must be held.
  /// Returns false when the connection must die.
  bool flush_locked();
  void update_write_interest_locked();
  void fail(const Status& reason);
  void deregister_and_close(const Status& reason);

  int fd_ = -1;
  EpollLoop* loop_ = nullptr;
  std::atomic<bool> closed_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> dead_{false};  ///< deregistered; on_close_ fired

  FrameHandler on_frame_;
  CloseHandler on_close_;

  // Receive state: owned by the loop thread.
  std::vector<std::uint8_t> rx_buf_;
  std::size_t rx_parsed_ = 0;

  // Send state: shared between callers and the loop thread.
  mutable std::mutex send_mutex_;
  std::deque<std::vector<std::uint8_t>> send_queue_;
  std::size_t send_queue_bytes_ = 0;
  std::size_t send_head_offset_ = 0;  ///< bytes of queue front already sent
  std::size_t send_queue_limit_ = kDefaultSendQueueLimit;
  bool write_armed_ = false;  ///< EPOLLOUT currently requested
};

/// Accepts connections on a local port and hands them to a callback (from
/// the loop thread).
class TcpListener {
 public:
  using AcceptHandler =
      std::function<void(std::unique_ptr<TcpConnection> connection)>;

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:port (port 0 picks an ephemeral port) and starts
  /// accepting on `loop` (default: the shared process-wide loop).
  static Result<std::unique_ptr<TcpListener>> listen(
      std::uint16_t port, AcceptHandler on_accept, EpollLoop* loop = nullptr);

  std::uint16_t port() const { return port_; }
  void close();

 private:
  TcpListener() = default;
  void on_events(std::uint32_t events);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  EpollLoop* loop_ = nullptr;
  AcceptHandler on_accept_;
  std::atomic<bool> closed_{false};
};

}  // namespace frame
