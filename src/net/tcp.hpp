// Minimal framed TCP transport (POSIX sockets).
//
// Frames are u32 little-endian length-prefixed byte strings carrying the
// wire.hpp protocol.  The transport exists so the examples can run the
// FRAME brokers across real processes on localhost; the performance study
// itself runs in the deterministic simulator.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"

namespace frame {

/// One established connection.  send_frame() is thread-safe; incoming
/// frames are surfaced on a dedicated reader thread.
class TcpConnection {
 public:
  using FrameHandler = std::function<void(std::vector<std::uint8_t> frame)>;
  using CloseHandler = std::function<void()>;

  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connects to host:port.  Blocking; returns a connected instance.
  static Result<std::unique_ptr<TcpConnection>> connect(
      const std::string& host, std::uint16_t port);

  /// Starts the reader thread.  Must be called exactly once.
  void start(FrameHandler on_frame, CloseHandler on_close = nullptr);

  Status send_frame(const std::vector<std::uint8_t>& frame);

  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  friend class TcpListener;
  explicit TcpConnection(int fd) : fd_(fd) {}

  void reader_loop();
  bool read_exact(std::uint8_t* dst, std::size_t size);

  int fd_ = -1;
  std::mutex send_mutex_;
  std::atomic<bool> closed_{false};
  FrameHandler on_frame_;
  CloseHandler on_close_;
  std::thread reader_;
};

/// Accepts connections on a local port and hands them to a callback.
class TcpListener {
 public:
  using AcceptHandler =
      std::function<void(std::unique_ptr<TcpConnection> connection)>;

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:port (port 0 picks an ephemeral port) and starts the
  /// accept thread.
  static Result<std::unique_ptr<TcpListener>> listen(std::uint16_t port,
                                                     AcceptHandler on_accept);

  std::uint16_t port() const { return port_; }
  void close();

 private:
  TcpListener() = default;
  void accept_loop();

  int fd_ = -1;
  std::uint16_t port_ = 0;
  AcceptHandler on_accept_;
  std::atomic<bool> closed_{false};
  std::thread acceptor_;
};

}  // namespace frame
