#include "net/inproc_bus.hpp"

#include <utility>

namespace frame {

InprocBus::InprocBus() : worker_([this] { delivery_loop(); }) {}

InprocBus::~InprocBus() { shutdown(); }

void InprocBus::register_endpoint(NodeId node, Handler handler) {
  std::lock_guard lock(mutex_);
  endpoints_[node] = std::move(handler);
}

void InprocBus::set_link_latency(NodeId from, NodeId to, Duration latency) {
  std::lock_guard lock(mutex_);
  link_latency_[{from, to}] = latency;
}

void InprocBus::set_default_latency(Duration latency) {
  std::lock_guard lock(mutex_);
  default_latency_ = latency;
}

void InprocBus::crash(NodeId node) {
  std::lock_guard lock(mutex_);
  crashed_.insert(node);
}

bool InprocBus::crashed(NodeId node) const {
  std::lock_guard lock(mutex_);
  return crashed_.contains(node);
}

void InprocBus::restore(NodeId node) {
  std::lock_guard lock(mutex_);
  crashed_.erase(node);
}

void InprocBus::send(NodeId from, NodeId to,
                     std::vector<std::uint8_t> frame) {
  std::lock_guard lock(mutex_);
  if (stop_ || crashed_.contains(from) || crashed_.contains(to)) return;
  Duration latency = default_latency_;
  if (auto it = link_latency_.find({from, to}); it != link_latency_.end()) {
    latency = it->second;
  }
  queue_.push(Pending{time_add(clock_.now(), latency), next_order_++, from,
                      to, std::move(frame)});
  cv_.notify_one();
}

void InprocBus::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
}

void InprocBus::delivery_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stop_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      continue;
    }
    const TimePoint now = clock_.now();
    if (queue_.top().due > now) {
      const auto wait_ns = queue_.top().due - now;
      cv_.wait_for(lock, std::chrono::nanoseconds(wait_ns));
      continue;
    }
    Pending item = queue_.top();
    queue_.pop();
    if (crashed_.contains(item.from) || crashed_.contains(item.to)) continue;
    auto it = endpoints_.find(item.to);
    if (it == endpoints_.end()) continue;
    Handler handler = it->second;
    lock.unlock();
    handler(item.from, std::move(item.frame));
    lock.lock();
  }
}

}  // namespace frame
