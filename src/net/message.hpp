// The unit of communication: a topic message.
//
// Timestamps follow the paper's Fig. 2 notation: tc is stamped by the
// publisher at creation; tp is stamped by the broker at arrival.  The
// subscriber computes end-to-end latency as (ts - tc); brokers compute the
// observed publisher-to-broker latency ΔPB as (tp - tc).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/time.hpp"
#include "common/types.hpp"

namespace frame {

/// Maximum inline payload.  The paper's evaluation uses 16-byte payloads;
/// we keep payloads inline to avoid per-message heap traffic in the
/// simulator, which handles hundreds of millions of messages per campaign.
inline constexpr std::size_t kMaxPayload = 64;

struct Message {
  TopicId topic = kInvalidTopic;
  SeqNo seq = 0;
  TimePoint created_at = 0;     ///< tc, publisher clock
  TimePoint broker_arrival = 0; ///< tp, filled in by the receiving broker
  TimePoint dispatched_at = 0;  ///< td, stamped when a Dispatcher pushes it
  std::uint16_t payload_size = 0;
  bool recovered = false;  ///< true on retention-resend / recovery-dispatch copies

  // Optional trace context (distributed tracing).  trace_id == 0 means "no
  // context": the wire codec then emits zero extra bytes, keeping the
  // tracing-off frame layout byte-identical to pre-trace builds.
  std::uint64_t trace_id = 0;    ///< correlates spans across processes
  std::int64_t trace_anchor = 0; ///< origin's wall_now_ns() - mono now()
  std::uint8_t hop = 0;          ///< bumped at each process boundary

  std::array<std::byte, kMaxPayload> payload{};

  void set_payload(const void* data, std::size_t size);
};

inline void Message::set_payload(const void* data, std::size_t size) {
  payload_size = static_cast<std::uint16_t>(
      size <= kMaxPayload ? size : kMaxPayload);
  const auto* src = static_cast<const std::byte*>(data);
  for (std::size_t i = 0; i < payload_size; ++i) payload[i] = src[i];
}

/// Creates a message with a synthetic payload of `size` bytes.
Message make_test_message(TopicId topic, SeqNo seq, TimePoint created_at,
                          std::size_t size = 16);

}  // namespace frame
