#include "net/epoll_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace frame {

EpollLoop::EpollLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  thread_ = std::thread([this] { run(); });
}

EpollLoop::~EpollLoop() {
  stop_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

EpollLoop& EpollLoop::default_loop() {
  static EpollLoop loop;
  return loop;
}

void EpollLoop::wake() {
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_fd_, &one, sizeof(one));
  } while (n < 0 && errno == EINTR);
}

Status EpollLoop::add(int fd, std::uint32_t events, EventHandler handler) {
  {
    std::lock_guard lock(mutex_);
    handlers_[fd] = std::make_shared<EventHandler>(std::move(handler));
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    std::lock_guard lock(mutex_);
    handlers_.erase(fd);
    return Status(StatusCode::kInternal,
                  "epoll_ctl(ADD) failed: " + std::string(std::strerror(errno)));
  }
  return Status::ok();
}

Status EpollLoop::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status(StatusCode::kNotFound,
                  "epoll_ctl(MOD) failed: " + std::string(std::strerror(errno)));
  }
  return Status::ok();
}

void EpollLoop::remove_sync(int fd) {
  std::unique_lock lock(mutex_);
  if (handlers_.erase(fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
  if (on_loop_thread()) return;  // inside fd's own handler: removal is done
  // Another thread: wait until the loop is no longer inside this fd's
  // handler (the map erase above stops any future dispatch).
  dispatch_cv_.wait(lock, [&] { return dispatching_fd_ != fd; });
}

void EpollLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push_back(std::move(fn));
  }
  wake();
}

void EpollLoop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      FRAME_LOG_ERROR("EpollLoop: epoll_wait failed: %s",
                      std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drain = 0;
        ssize_t r;
        do {
          r = ::read(wake_fd_, &drain, sizeof(drain));
        } while (r < 0 && errno == EINTR);
        continue;
      }
      std::shared_ptr<EventHandler> handler;
      {
        std::lock_guard lock(mutex_);
        const auto it = handlers_.find(fd);
        if (it == handlers_.end()) continue;  // removed since epoll_wait
        handler = it->second;
        dispatching_fd_ = fd;
      }
      (*handler)(events[i].events);
      {
        std::lock_guard lock(mutex_);
        dispatching_fd_ = -1;
      }
      dispatch_cv_.notify_all();
    }
    // Posted tasks run between dispatch rounds.
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard lock(mutex_);
      tasks.swap(tasks_);
    }
    for (auto& task : tasks) task();
  }
}

}  // namespace frame
