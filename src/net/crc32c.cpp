#include "net/crc32c.hpp"

#include <array>

namespace frame {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t crc) {
  crc = ~crc;
  for (const std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace frame
