// Jittered exponential backoff schedule for client reconnects.
//
// Deterministic given a seed: the jitter comes from the repo's xoshiro
// Rng, so tests can assert the exact retry schedule and two links seeded
// identically behave identically.  Delays grow as base * multiplier^n,
// clamped to `max`, each scaled by a jitter factor uniform in
// [1 - jitter, 1 + jitter].
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace frame {

struct BackoffOptions {
  Duration base = milliseconds(10);
  Duration max = seconds(2);
  double multiplier = 2.0;
  double jitter = 0.2;  ///< +-20% around the nominal delay
};

class BackoffSchedule {
 public:
  using Options = BackoffOptions;

  explicit BackoffSchedule(Options options = {}, std::uint64_t seed = 1)
      : options_(options), rng_(seed) {}

  /// Delay to wait before the next attempt; advances the schedule.
  Duration next_delay() {
    double nominal = static_cast<double>(options_.base);
    for (int i = 0; i < attempt_; ++i) {
      nominal *= options_.multiplier;
      if (nominal >= static_cast<double>(options_.max)) break;
    }
    nominal = std::min(nominal, static_cast<double>(options_.max));
    const double factor =
        rng_.uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
    ++attempt_;
    const auto delay = static_cast<Duration>(nominal * factor);
    return std::clamp<Duration>(delay, 0, options_.max);
  }

  /// Attempts made since the last reset.
  int attempts() const { return attempt_; }

  /// Back to the initial delay after a successful connect.
  void reset() { attempt_ = 0; }

 private:
  Options options_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace frame
