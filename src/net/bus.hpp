// Transport abstraction for the runtime deployment.
//
// A Bus connects named nodes (publishers, brokers, subscribers): each node
// registers a frame handler and sends frames to peers by NodeId.  Two
// implementations exist:
//   * InprocBus - in-process queues with configurable per-link latency
//     injection (models the paper's LAN + cloud link spread);
//   * TcpBus    - real loopback TCP sockets per node (deployment-shaped:
//     the same wire frames an actual multi-process install would carry).
// Fail-stop crashes are first-class: a crashed node neither sends nor
// receives, including frames already in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace frame {

class Bus {
 public:
  using Handler =
      std::function<void(NodeId from, std::vector<std::uint8_t> frame)>;

  virtual ~Bus() = default;

  /// Registers a node.  The handler runs on a transport thread; it must
  /// not block for long.
  virtual void register_endpoint(NodeId node, Handler handler) = 0;

  /// Sends a frame; silently dropped if either end is crashed or unknown.
  virtual void send(NodeId from, NodeId to,
                    std::vector<std::uint8_t> frame) = 0;

  /// Like send(), but surfaces the transport's verdict: kCapacity means
  /// the link is backpressured (the frame was dropped; the caller may
  /// retry or shed load), kUnavailable/kClosed mean the destination is
  /// unreachable right now.  The base implementation keeps fire-and-forget
  /// semantics so latency-shaping transports need not change.
  virtual Status try_send(NodeId from, NodeId to,
                          std::vector<std::uint8_t> frame) {
    send(from, to, std::move(frame));
    return Status::ok();
  }

  /// Fail-stop crash of a node.
  virtual void crash(NodeId node) = 0;

  /// Brings a crashed node back (a restarted process re-binding).
  virtual void restore(NodeId node) = 0;

  virtual bool crashed(NodeId node) const = 0;

  /// Stops transport threads; pending frames are discarded.
  virtual void shutdown() = 0;
};

}  // namespace frame
