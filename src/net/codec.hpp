// Bounds-checked little-endian wire codec.
//
// All multi-byte integers are encoded little-endian regardless of host
// order so that captures and cross-host traffic are well defined.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace frame {

/// Appends primitive values to a growable byte vector.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + size);
  }

  /// Length-prefixed (u16) byte string.
  void blob16(const void* data, std::size_t size) {
    u16(static_cast<std::uint16_t>(size));
    bytes(data, size);
  }

  std::size_t size() const { return out_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t>& out_;
};

/// Consumes primitive values from a byte span; sets a sticky error flag on
/// underflow instead of reading out of bounds.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(read_le<std::uint64_t>()); }

  /// Reads `size` raw bytes into `dst`; zero-fills on underflow.
  void bytes(void* dst, std::size_t size) {
    auto* p = static_cast<std::uint8_t*>(dst);
    if (!ok_ || remaining() < size) {
      ok_ = false;
      std::memset(p, 0, size);
      return;
    }
    std::memcpy(p, data_.data() + pos_, size);
    pos_ += size;
  }

  /// Reads a u16-length-prefixed blob; returns an empty span on underflow.
  std::span<const std::uint8_t> blob16() {
    const std::uint16_t size = u16();
    if (!ok_ || remaining() < size) {
      ok_ = false;
      return {};
    }
    auto out = data_.subspan(pos_, size);
    pos_ += size;
    return out;
  }

 private:
  template <typename T>
  T read_le() {
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace frame
