// In-process message bus with latency injection.
//
// The real-thread runtime uses this bus to stand in for the paper's
// switched LAN + cloud uplink: each directed link can be given a one-way
// latency (e.g. 0.25 ms edge, 20+ ms cloud), and endpoints can be "crashed"
// (fail-stop: all frames to and from them are dropped), which is how the
// failover examples kill the Primary broker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "net/bus.hpp"

namespace frame {

class InprocBus final : public Bus {
 public:
  InprocBus();
  ~InprocBus() override;

  InprocBus(const InprocBus&) = delete;
  InprocBus& operator=(const InprocBus&) = delete;

  /// Registers an endpoint.  The handler runs on the bus delivery thread;
  /// it must not block for long.
  void register_endpoint(NodeId node, Handler handler) override;

  /// Sets the one-way latency for frames from `from` to `to`.  Unset links
  /// default to `default_latency`.
  void set_link_latency(NodeId from, NodeId to, Duration latency);
  void set_default_latency(Duration latency);

  /// Fail-stop crash: every frame to or from `node` is silently dropped
  /// from now on, including frames already in flight.
  void crash(NodeId node) override;
  bool crashed(NodeId node) const override;

  /// Brings a crashed node back (a restarted process re-binding its
  /// endpoint).  Frames dropped while crashed stay dropped.
  void restore(NodeId node) override;

  /// Sends a frame; silently dropped if either end is crashed/unknown.
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) override;

  /// Stops the delivery thread; pending frames are discarded.
  void shutdown() override;

 private:
  struct Pending {
    TimePoint due;
    std::uint64_t order;
    NodeId from;
    NodeId to;
    std::vector<std::uint8_t> frame;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.order > b.order;
    }
  };

  void delivery_loop();

  MonotonicClock clock_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> queue_;
  std::unordered_map<NodeId, Handler> endpoints_;
  std::unordered_set<NodeId> crashed_;
  std::map<std::pair<NodeId, NodeId>, Duration> link_latency_;
  Duration default_latency_ = microseconds(250);
  std::uint64_t next_order_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace frame
