#include "net/tcp_bus.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/obs.hpp"

namespace frame {

namespace {

/// Bus frames are the payload prefixed with the 4-byte LE sender id.
std::vector<std::uint8_t> wrap(NodeId from,
                               const std::vector<std::uint8_t>& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.size() + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(from >> (8 * i)));
  }
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

bool unwrap(std::vector<std::uint8_t>& frame, NodeId& from) {
  if (frame.size() < 4) return false;
  from = 0;
  for (int i = 0; i < 4; ++i) {
    from |= static_cast<NodeId>(frame[i]) << (8 * i);
  }
  frame.erase(frame.begin(), frame.begin() + 4);
  return true;
}

/// Deterministic per-link jitter seed: tests can predict the schedule.
std::uint64_t link_seed(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

TcpBus::~TcpBus() { shutdown(); }

Status TcpBus::open_listener(NodeId node) {
  // Called with mutex_ held.
  auto listener = TcpListener::listen(
      0,
      [this, node](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        raw->start([this, node](std::vector<std::uint8_t> frame) {
          NodeId from = kInvalidNode;
          if (!unwrap(frame, from)) return;
          Handler handler;
          {
            std::lock_guard lock(mutex_);
            auto it = endpoints_.find(node);
            if (it == endpoints_.end() || it->second.crashed) return;
            auto sender = endpoints_.find(from);
            if (sender != endpoints_.end() && sender->second.crashed) return;
            handler = it->second.handler;
          }
          if (handler) handler(from, std::move(frame));
        });
        std::lock_guard lock(mutex_);
        auto it = endpoints_.find(node);
        if (it == endpoints_.end() || it->second.crashed) {
          raw->close();
          return;
        }
        // Prune connections that died since the last accept; destroying
        // them here is safe because the reactor removes handlers inline
        // when called from its own thread.
        auto& in = it->second.in;
        in.erase(std::remove_if(
                     in.begin(), in.end(),
                     [](const auto& c) { return c->closed(); }),
                 in.end());
        in.push_back(std::shared_ptr<TcpConnection>(std::move(conn)));
      },
      &loop_);
  if (!listener.is_ok()) return listener.status();
  Endpoint& endpoint = endpoints_[node];
  endpoint.listener = listener.take();
  endpoint.port = endpoint.listener->port();
  endpoint.crashed = false;
  return Status::ok();
}

void TcpBus::register_endpoint(NodeId node, Handler handler) {
  std::lock_guard lock(mutex_);
  endpoints_[node].handler = std::move(handler);
  if (!endpoints_[node].listener) {
    const Status status = open_listener(node);
    if (!status.is_ok()) {
      FRAME_LOG_ERROR("TcpBus: cannot open listener for node %u: %s", node,
                      status.to_string().c_str());
    }
  }
}

std::shared_ptr<TcpConnection> TcpBus::outgoing_locked(NodeId from, NodeId to,
                                                       Status* why) {
  Endpoint& src = endpoints_[from];
  auto link_it = src.out.find(to);
  if (link_it != src.out.end() && link_it->second.conn &&
      !link_it->second.conn->closed()) {
    return link_it->second.conn;
  }
  const auto dst = endpoints_.find(to);
  if (dst == endpoints_.end() || dst->second.crashed ||
      dst->second.port == 0) {
    *why = Status(StatusCode::kNotFound, "unknown or crashed destination");
    return nullptr;
  }
  Link& link = src.out[to];
  if (!link.backoff) {
    link.backoff = std::make_unique<BackoffSchedule>(backoff_options_,
                                                     link_seed(from, to));
  }
  const TimePoint now = clock_.now();
  if (now < link.next_attempt) {
    // Inside the backoff window: drop fast instead of paying another
    // connect timeout.  This keeps send() bounded while a peer is down.
    *why = Status(StatusCode::kUnavailable, "link in reconnect backoff");
    return nullptr;
  }
  if (link.backoff->attempts() > 0) obs::hooks::tcp_reconnect_attempt();
  auto conn = TcpConnection::connect("127.0.0.1", dst->second.port,
                                     connect_timeout_, &loop_);
  if (!conn.is_ok()) {
    link.next_attempt = now + link.backoff->next_delay();
    link.conn.reset();
    *why = conn.status();
    return nullptr;
  }
  link.backoff->reset();
  link.next_attempt = 0;
  link.conn = std::shared_ptr<TcpConnection>(conn.take());
  link.conn->set_send_queue_limit(send_queue_limit_);
  link.conn->start([](std::vector<std::uint8_t>) {});  // outgoing: send-only
  return link.conn;
}

void TcpBus::send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) {
  (void)try_send(from, to, std::move(frame));
}

Status TcpBus::try_send(NodeId from, NodeId to,
                        std::vector<std::uint8_t> frame) {
  // The shared_ptr keeps the connection alive across the unlocked write
  // below even if crash()/restore() retires the link concurrently.
  std::shared_ptr<TcpConnection> conn;
  Status why = Status::ok();
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return Status(StatusCode::kClosed, "bus shut down");
    const auto src = endpoints_.find(from);
    if (src == endpoints_.end() || src->second.crashed) {
      return Status(StatusCode::kClosed, "sender crashed or unknown");
    }
    const auto dst = endpoints_.find(to);
    if (dst == endpoints_.end() || dst->second.crashed) {
      return Status(StatusCode::kNotFound, "unknown or crashed destination");
    }
    conn = outgoing_locked(from, to, &why);
  }
  if (conn == nullptr) return why;
  obs::hooks::tcp_frame_sent(frame.size() + 4);
  return conn->send_frame(wrap(from, frame));
}

void TcpBus::crash(NodeId node) {
  // Collect doomed resources under the lock but close them outside it:
  // destroying a connection synchronizes with the reactor, whose thread
  // may itself be waiting on mutex_ inside a frame handler.  A sender
  // mid-try_send() holds its own reference, so dropping ours here never
  // destroys a connection another thread is still writing to.
  std::unique_ptr<TcpListener> listener;
  std::unordered_map<NodeId, Link> out;
  std::vector<std::shared_ptr<TcpConnection>> in;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(node);
    if (it == endpoints_.end()) return;
    Endpoint& endpoint = it->second;
    endpoint.crashed = true;
    listener = std::move(endpoint.listener);
    endpoint.port = 0;
    out.swap(endpoint.out);
    in.swap(endpoint.in);
    // Peers' cached connections to this node will fail on the next send
    // and be re-established (with backoff) lazily.
  }
  if (listener) listener->close();
  for (auto& [peer, link] : out) {
    if (link.conn) link.conn->close();
  }
  for (auto& conn : in) conn->close();
}

void TcpBus::restore(NodeId node) {
  std::vector<std::shared_ptr<TcpConnection>> doomed;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(node);
    if (it == endpoints_.end() || !it->second.crashed) return;
    const Status status = open_listener(node);
    if (!status.is_ok()) {
      FRAME_LOG_ERROR("TcpBus: restore of node %u failed: %s", node,
                      status.to_string().c_str());
    }
    // Stale outgoing connections other nodes hold toward the old listener
    // are retired; they will reconnect to the new port lazily (the
    // backoff schedule is dropped with the link, so the first attempt is
    // immediate).
    for (auto& [id, endpoint] : endpoints_) {
      if (auto out = endpoint.out.find(node); out != endpoint.out.end()) {
        if (out->second.conn) doomed.push_back(std::move(out->second.conn));
        endpoint.out.erase(out);
      }
    }
  }
  for (auto& conn : doomed) conn->close();
}

bool TcpBus::crashed(NodeId node) const {
  std::lock_guard lock(mutex_);
  const auto it = endpoints_.find(node);
  return it != endpoints_.end() && it->second.crashed;
}

std::uint16_t TcpBus::port_of(NodeId node) const {
  std::lock_guard lock(mutex_);
  const auto it = endpoints_.find(node);
  return it == endpoints_.end() ? 0 : it->second.port;
}

void TcpBus::set_connect_timeout(Duration timeout) {
  std::lock_guard lock(mutex_);
  connect_timeout_ = timeout;
}

void TcpBus::set_backoff(BackoffSchedule::Options options) {
  std::lock_guard lock(mutex_);
  backoff_options_ = options;
}

void TcpBus::set_send_queue_limit(std::size_t bytes) {
  std::lock_guard lock(mutex_);
  send_queue_limit_ = bytes;
}

void TcpBus::shutdown() {
  std::unordered_map<NodeId, Endpoint> doomed;
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    doomed.swap(endpoints_);
  }
  for (auto& [node, endpoint] : doomed) {
    if (endpoint.listener) endpoint.listener->close();
    for (auto& [peer, link] : endpoint.out) {
      if (link.conn) link.conn->close();
    }
    for (auto& conn : endpoint.in) conn->close();
  }
}

}  // namespace frame
