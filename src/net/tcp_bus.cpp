#include "net/tcp_bus.hpp"

#include "common/log.hpp"
#include "obs/obs.hpp"

namespace frame {

namespace {

/// Bus frames are the payload prefixed with the 4-byte LE sender id.
std::vector<std::uint8_t> wrap(NodeId from,
                               const std::vector<std::uint8_t>& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.size() + 4);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(from >> (8 * i)));
  }
  out.insert(out.end(), frame.begin(), frame.end());
  return out;
}

bool unwrap(std::vector<std::uint8_t>& frame, NodeId& from) {
  if (frame.size() < 4) return false;
  from = 0;
  for (int i = 0; i < 4; ++i) {
    from |= static_cast<NodeId>(frame[i]) << (8 * i);
  }
  frame.erase(frame.begin(), frame.begin() + 4);
  return true;
}

}  // namespace

TcpBus::~TcpBus() { shutdown(); }

Status TcpBus::open_listener(NodeId node) {
  // Called with mutex_ held.
  auto listener = TcpListener::listen(
      0, [this, node](std::unique_ptr<TcpConnection> conn) {
        TcpConnection* raw = conn.get();
        raw->start([this, node](std::vector<std::uint8_t> frame) {
          NodeId from = kInvalidNode;
          if (!unwrap(frame, from)) return;
          Handler handler;
          {
            std::lock_guard lock(mutex_);
            auto it = endpoints_.find(node);
            if (it == endpoints_.end() || it->second.crashed) return;
            auto sender = endpoints_.find(from);
            if (sender != endpoints_.end() && sender->second.crashed) return;
            handler = it->second.handler;
          }
          if (handler) handler(from, std::move(frame));
        });
        std::lock_guard lock(mutex_);
        auto it = endpoints_.find(node);
        if (it == endpoints_.end() || it->second.crashed) {
          raw->close();
          return;
        }
        it->second.in.push_back(std::move(conn));
      });
  if (!listener.is_ok()) return listener.status();
  Endpoint& endpoint = endpoints_[node];
  endpoint.listener = listener.take();
  endpoint.port = endpoint.listener->port();
  endpoint.crashed = false;
  return Status::ok();
}

void TcpBus::register_endpoint(NodeId node, Handler handler) {
  std::lock_guard lock(mutex_);
  endpoints_[node].handler = std::move(handler);
  if (!endpoints_[node].listener) {
    const Status status = open_listener(node);
    if (!status.is_ok()) {
      FRAME_LOG_ERROR("TcpBus: cannot open listener for node %u: %s", node,
                      status.to_string().c_str());
    }
  }
}

TcpConnection* TcpBus::outgoing_locked(NodeId from, NodeId to) {
  Endpoint& src = endpoints_[from];
  if (auto it = src.out.find(to); it != src.out.end() && !it->second->closed()) {
    return it->second.get();
  }
  const auto dst = endpoints_.find(to);
  if (dst == endpoints_.end() || dst->second.crashed ||
      dst->second.port == 0) {
    return nullptr;
  }
  auto conn = TcpConnection::connect("127.0.0.1", dst->second.port);
  if (!conn.is_ok()) return nullptr;
  TcpConnection* raw = conn.value().get();
  raw->start([](std::vector<std::uint8_t>) {});  // outgoing is send-only
  src.out[to] = conn.take();
  return raw;
}

void TcpBus::send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) {
  TcpConnection* conn = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;
    const auto src = endpoints_.find(from);
    if (src == endpoints_.end() || src->second.crashed) return;
    const auto dst = endpoints_.find(to);
    if (dst == endpoints_.end() || dst->second.crashed) return;
    conn = outgoing_locked(from, to);
  }
  if (conn != nullptr) {
    obs::hooks::tcp_frame_sent(frame.size() + 4);
    (void)conn->send_frame(wrap(from, frame));
  }
}

void TcpBus::crash(NodeId node) {
  // Collect doomed resources under the lock but destroy them outside it:
  // destroying a TcpConnection joins its reader thread, and an incoming
  // reader may itself be waiting on mutex_.
  std::unique_ptr<TcpListener> listener;
  std::unordered_map<NodeId, std::unique_ptr<TcpConnection>> out;
  std::vector<std::unique_ptr<TcpConnection>> in;
  {
    std::lock_guard lock(mutex_);
    auto it = endpoints_.find(node);
    if (it == endpoints_.end()) return;
    Endpoint& endpoint = it->second;
    endpoint.crashed = true;
    listener = std::move(endpoint.listener);
    endpoint.port = 0;
    out.swap(endpoint.out);
    in.swap(endpoint.in);
    // Peers' cached connections to this node will fail on the next send
    // and be re-established (or dropped) lazily.
  }
  if (listener) listener->close();
  for (auto& [peer, conn] : out) conn->close();
  for (auto& conn : in) conn->close();
}

void TcpBus::restore(NodeId node) {
  std::lock_guard lock(mutex_);
  auto it = endpoints_.find(node);
  if (it == endpoints_.end() || !it->second.crashed) return;
  const Status status = open_listener(node);
  if (!status.is_ok()) {
    FRAME_LOG_ERROR("TcpBus: restore of node %u failed: %s", node,
                    status.to_string().c_str());
  }
  // Stale outgoing connections other nodes hold toward the old listener
  // are closed; they will reconnect to the new port lazily.
  for (auto& [id, endpoint] : endpoints_) {
    if (auto out = endpoint.out.find(node); out != endpoint.out.end()) {
      out->second->close();
      endpoint.out.erase(out);
    }
  }
}

bool TcpBus::crashed(NodeId node) const {
  std::lock_guard lock(mutex_);
  const auto it = endpoints_.find(node);
  return it != endpoints_.end() && it->second.crashed;
}

std::uint16_t TcpBus::port_of(NodeId node) const {
  std::lock_guard lock(mutex_);
  const auto it = endpoints_.find(node);
  return it == endpoints_.end() ? 0 : it->second.port;
}

void TcpBus::shutdown() {
  std::unordered_map<NodeId, Endpoint> doomed;
  {
    std::lock_guard lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    doomed.swap(endpoints_);
  }
  for (auto& [node, endpoint] : doomed) {
    if (endpoint.listener) endpoint.listener->close();
    for (auto& [peer, conn] : endpoint.out) conn->close();
    for (auto& conn : endpoint.in) conn->close();
  }
}

}  // namespace frame
