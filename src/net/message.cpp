#include "net/message.hpp"

namespace frame {

Message make_test_message(TopicId topic, SeqNo seq, TimePoint created_at,
                          std::size_t size) {
  Message msg;
  msg.topic = topic;
  msg.seq = seq;
  msg.created_at = created_at;
  if (size > kMaxPayload) size = kMaxPayload;
  msg.payload_size = static_cast<std::uint16_t>(size);
  for (std::size_t i = 0; i < size; ++i) {
    msg.payload[i] = static_cast<std::byte>((seq + i) & 0xff);
  }
  return msg;
}

}  // namespace frame
