// Bus implementation over real loopback TCP sockets.
//
// Every registered node gets its own TCP listener on 127.0.0.1; outgoing
// links are established lazily and cached.  Each bus-level frame is the
// payload prefixed with the 4-byte sender NodeId, so receivers learn who
// is talking on an accepted connection.  Crashing a node closes its
// listener and every connection touching it (fail-stop); restore() binds a
// fresh listener.
//
// All sockets are driven by one per-bus EpollLoop reactor thread
// (src/net/epoll_loop.hpp).  Connects carry a timeout, and a failed link
// enters a jittered exponential-backoff reconnect schedule: sends during
// the backoff window are dropped immediately instead of re-attempting the
// connect, so a dead destination costs at most one connect timeout --
// this is what bounds the publisher's measured fail-over time x.
//
// Unlike InprocBus there is no latency shaping — frames travel at real
// loopback speed.  Use it to run the FRAME deployment in its real
// multi-socket shape; use InprocBus to model WAN/LAN latency spreads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/backoff.hpp"
#include "net/bus.hpp"
#include "net/epoll_loop.hpp"
#include "net/tcp.hpp"

namespace frame {

class TcpBus final : public Bus {
 public:
  TcpBus() = default;
  ~TcpBus() override;

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  void register_endpoint(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) override;
  Status try_send(NodeId from, NodeId to,
                  std::vector<std::uint8_t> frame) override;
  void crash(NodeId node) override;
  void restore(NodeId node) override;
  bool crashed(NodeId node) const override;
  void shutdown() override;

  /// The TCP port a node listens on (0 if unknown/crashed); for tests.
  std::uint16_t port_of(NodeId node) const;

  /// Upper bound on one connect attempt (default 250 ms).
  void set_connect_timeout(Duration timeout);

  /// Reconnect backoff for failed outgoing links.
  void set_backoff(BackoffSchedule::Options options);

  /// Per-connection outbound queue cap in bytes (backpressure threshold).
  void set_send_queue_limit(std::size_t bytes);

 private:
  /// Reconnect state of one outgoing link.  Connections are shared, not
  /// owned: try_send() pins one with a reference while it writes outside
  /// mutex_, so crash()/restore()/shutdown() retiring the link merely
  /// close() it and drop their reference — whichever thread drops the
  /// last one destroys the connection after any in-flight send finishes.
  struct Link {
    std::shared_ptr<TcpConnection> conn;
    std::unique_ptr<BackoffSchedule> backoff;
    TimePoint next_attempt = 0;  ///< earliest re-connect time after failure
  };

  struct Endpoint {
    Handler handler;
    std::unique_ptr<TcpListener> listener;
    std::uint16_t port = 0;
    bool crashed = false;
    /// Outgoing links keyed by destination node.
    std::unordered_map<NodeId, Link> out;
    /// Accepted (incoming) connections, kept alive until crash/shutdown;
    /// dead ones are pruned on the next accept.
    std::vector<std::shared_ptr<TcpConnection>> in;
  };

  Status open_listener(NodeId node);
  std::shared_ptr<TcpConnection> outgoing_locked(NodeId from, NodeId to,
                                                 Status* why);

  // Destroyed last (members destruct in reverse order): every connection
  // and listener above must deregister from the loop before it dies.
  EpollLoop loop_;

  mutable std::mutex mutex_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  bool shutdown_ = false;
  Duration connect_timeout_ = milliseconds(250);
  BackoffSchedule::Options backoff_options_;
  std::size_t send_queue_limit_ = TcpConnection::kDefaultSendQueueLimit;
  MonotonicClock clock_;
};

}  // namespace frame
