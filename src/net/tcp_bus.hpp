// Bus implementation over real loopback TCP sockets.
//
// Every registered node gets its own TCP listener on 127.0.0.1; outgoing
// links are established lazily and cached.  Each bus-level frame is the
// payload prefixed with the 4-byte sender NodeId, so receivers learn who
// is talking on an accepted connection.  Crashing a node closes its
// listener and every connection touching it (fail-stop); restore() binds a
// fresh listener.
//
// Unlike InprocBus there is no latency shaping — frames travel at real
// loopback speed.  Use it to run the FRAME deployment in its real
// multi-socket shape; use InprocBus to model WAN/LAN latency spreads.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/bus.hpp"
#include "net/tcp.hpp"

namespace frame {

class TcpBus final : public Bus {
 public:
  TcpBus() = default;
  ~TcpBus() override;

  TcpBus(const TcpBus&) = delete;
  TcpBus& operator=(const TcpBus&) = delete;

  void register_endpoint(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) override;
  void crash(NodeId node) override;
  void restore(NodeId node) override;
  bool crashed(NodeId node) const override;
  void shutdown() override;

  /// The TCP port a node listens on (0 if unknown/crashed); for tests.
  std::uint16_t port_of(NodeId node) const;

 private:
  struct Endpoint {
    Handler handler;
    std::unique_ptr<TcpListener> listener;
    std::uint16_t port = 0;
    bool crashed = false;
    /// Outgoing connections keyed by destination node.
    std::unordered_map<NodeId, std::unique_ptr<TcpConnection>> out;
    /// Accepted (incoming) connections, kept alive until crash/shutdown.
    std::vector<std::unique_ptr<TcpConnection>> in;
  };

  Status open_listener(NodeId node);
  TcpConnection* outgoing_locked(NodeId from, NodeId to);

  mutable std::mutex mutex_;
  std::unordered_map<NodeId, Endpoint> endpoints_;
  bool shutdown_ = false;
};

}  // namespace frame
