#include "net/faulty_bus.hpp"

#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace frame {

namespace {

bool node_matches(NodeId pattern, NodeId node) {
  return pattern == kAnyNode || pattern == node;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBlackhole:
      return "blackhole";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

FaultyBus::FaultyBus(std::unique_ptr<Bus> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  rules_.reserve(plan_.rules.size());
  for (const auto& rule : plan_.rules) rules_.push_back(ArmedRule{rule});
  // Provenance for post-mortems: record the chaos seed unconditionally
  // (a cheap store), not behind obs::enabled() — chaos tests typically
  // enable observability only after the system is constructed.
  obs::flight_recorder().set_chaos_seed(plan_.seed);
  releaser_ = std::thread([this] { release_loop(); });
}

FaultyBus::~FaultyBus() { shutdown(); }

void FaultyBus::register_endpoint(NodeId node, Handler handler) {
  inner_->register_endpoint(node, std::move(handler));
}

void FaultyBus::send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) {
  (void)try_send(from, to, std::move(frame));
}

Status FaultyBus::try_send(NodeId from, NodeId to,
                           std::vector<std::uint8_t> frame) {
  Verdict verdict;
  {
    std::lock_guard lock(mutex_);
    if (stop_) return Status(StatusCode::kClosed, "faulty bus shut down");
    verdict = apply_rules_locked(from, to, frame);
    if (verdict.drop) {
      // The transport accepted the frame; the (scripted) network lost it.
      return Status::ok();
    }
    if (verdict.hold > 0) {
      hold_frame_locked(from, to, std::move(frame), verdict.hold);
      return Status::ok();
    }
  }
  for (int copy = 0; copy < verdict.extra_copies; ++copy) {
    inner_->send(from, to, frame);
  }
  return inner_->try_send(from, to, std::move(frame));
}

void FaultyBus::crash(NodeId node) { inner_->crash(node); }

void FaultyBus::restore(NodeId node) { inner_->restore(node); }

bool FaultyBus::crashed(NodeId node) const { return inner_->crashed(node); }

void FaultyBus::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (releaser_.joinable()) releaser_.join();
  inner_->shutdown();
}

std::size_t FaultyBus::add_rule(const FaultRule& rule) {
  std::lock_guard lock(mutex_);
  rules_.push_back(ArmedRule{rule});
  return rules_.size() - 1;
}

void FaultyBus::retire_rule(std::size_t id) {
  std::lock_guard lock(mutex_);
  if (id < rules_.size()) rules_[id].retired = true;
}

void FaultyBus::clear_rules() {
  std::lock_guard lock(mutex_);
  for (auto& armed : rules_) armed.retired = true;
}

FaultyBus::Verdict FaultyBus::apply_rules_locked(
    NodeId from, NodeId to, std::vector<std::uint8_t>& frame) {
  Verdict verdict;
  const TimePoint at = clock_.now();
  for (auto& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (armed.retired) continue;
    if (at < rule.start || at >= rule.stop) continue;
    bool matches = node_matches(rule.from, from) && node_matches(rule.to, to);
    if (!matches && rule.kind == FaultKind::kPartition) {
      matches = node_matches(rule.from, to) && node_matches(rule.to, from);
    }
    if (!matches) continue;
    if (rule.type_tag.has_value() &&
        (frame.empty() || frame[0] != *rule.type_tag)) {
      continue;
    }
    Rng& rng = link_rng_locked(from, to);
    if (rule.probability < 1.0 && rng.next_double() >= rule.probability) {
      continue;
    }

    armed.fired += 1;
    if (rule.max_count != 0 && armed.fired >= rule.max_count) {
      armed.retired = true;
    }
    count(rule.kind);

    switch (rule.kind) {
      case FaultKind::kDrop:
      case FaultKind::kBlackhole:
      case FaultKind::kPartition:
        verdict.drop = true;
        return verdict;
      case FaultKind::kDelay:
      case FaultKind::kReorder: {
        Duration hold = rule.delay;
        if (rule.delay_jitter > 0) {
          hold += static_cast<Duration>(
              rng.next_below(static_cast<std::uint64_t>(rule.delay_jitter)));
        }
        verdict.hold = hold > 0 ? hold : nanoseconds(1);
        return verdict;
      }
      case FaultKind::kDuplicate:
        verdict.extra_copies = rule.copies > 0 ? rule.copies : 1;
        return verdict;
      case FaultKind::kCorrupt: {
        if (!frame.empty()) {
          const std::size_t pos = rng.next_below(frame.size());
          frame[pos] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        verdict.mutate = true;
        return verdict;
      }
      case FaultKind::kTruncate: {
        if (frame.size() > 1) {
          frame.resize(1 + rng.next_below(frame.size() - 1));
        }
        verdict.mutate = true;
        return verdict;
      }
    }
  }
  return verdict;
}

Rng& FaultyBus::link_rng_locked(NodeId from, NodeId to) {
  const std::uint64_t link =
      (static_cast<std::uint64_t>(from) << 32) | static_cast<std::uint64_t>(to);
  auto it = link_rngs_.find(link);
  if (it == link_rngs_.end()) {
    // Stream seed depends only on (plan seed, from, to): a link's draw
    // sequence is fixed regardless of how other links' traffic interleaves.
    std::uint64_t state = plan_.seed;
    std::uint64_t mixed = splitmix64(state) ^ link;
    it = link_rngs_.emplace(link, Rng(splitmix64(mixed))).first;
  }
  return it->second;
}

void FaultyBus::count(FaultKind kind) {
  injected_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
  obs::hooks::fault_injected(static_cast<std::uint8_t>(kind));
}

void FaultyBus::hold_frame_locked(NodeId from, NodeId to,
                                  std::vector<std::uint8_t> frame,
                                  Duration hold) {
  held_.push(Held{time_add(clock_.now(), hold), next_order_++, from, to,
                  std::move(frame)});
  cv_.notify_one();
}

void FaultyBus::release_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    if (stop_) return;
    if (held_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !held_.empty(); });
      continue;
    }
    const TimePoint due = held_.top().due;
    const TimePoint at = clock_.now();
    if (at < due) {
      cv_.wait_for(lock, std::chrono::nanoseconds(due - at));
      continue;
    }
    Held held = std::move(const_cast<Held&>(held_.top()));
    held_.pop();
    lock.unlock();
    inner_->send(held.from, held.to, std::move(held.frame));
    lock.lock();
  }
}

}  // namespace frame
