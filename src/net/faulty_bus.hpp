// Deterministic fault-injection decorator over any Bus.
//
// FaultyBus sits between the runtime endpoints and a real transport
// (InprocBus or TcpBus) and applies a scripted, seeded FaultPlan to every
// frame on its way out: drop, delay, duplicate, reorder, corrupt, truncate,
// one-way blackhole and full (bidirectional) partition.  Rules carry
// start/stop windows on the bus clock and optional per-frame-type and
// fire-count limits, so a chaos scenario — "drop exactly Li consecutive
// publishes of this publisher starting at t=300 ms" — is scripted up front
// or injected mid-run and replays identically from a single RNG seed.
//
// Determinism: random decisions (probability draws, corrupt byte choice,
// jitter) come from a per-directed-link xoshiro stream seeded as
// splitmix(plan.seed, from, to).  A link's fault sequence therefore depends
// only on the plan seed and that link's own frame order, not on how the
// scheduler interleaves other links' traffic.
//
// Fault taxonomy vs the paper's symbols (DESIGN.md §9): faults on
// publisher→Primary links perturb ΔPB; Primary→Backup faults perturb ΔBB;
// broker→subscriber faults perturb ΔBS; partitioning or blackholing a
// broker forces the detector/fail-over path and so exercises x.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "net/bus.hpp"

namespace frame {

/// Wildcard for FaultRule::from / FaultRule::to.
inline constexpr NodeId kAnyNode = kInvalidNode;

enum class FaultKind : std::uint8_t {
  kDrop = 0,       ///< frame silently lost
  kDelay,          ///< frame held for delay (+ jitter), then forwarded
  kDuplicate,      ///< frame forwarded, plus `copies` extra copies
  kReorder,        ///< frame held so later frames overtake it
  kCorrupt,        ///< random payload bytes flipped (checksum will catch)
  kTruncate,       ///< frame cut to a random prefix
  kBlackhole,      ///< one-way loss: matches the (from, to) direction only
  kPartition,      ///< two-way loss: matches (from, to) and (to, from)
};
inline constexpr std::size_t kFaultKindCount = 8;

const char* to_string(FaultKind kind);

/// One scripted fault.  A frame is tested against the rules in order; the
/// first active, matching rule whose probability draw fires claims the
/// frame (later rules are not consulted for it).
struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  NodeId from = kAnyNode;  ///< sender match (kAnyNode = wildcard)
  NodeId to = kAnyNode;    ///< destination match (kAnyNode = wildcard)
  /// Active window [start, stop) on the bus clock (FaultyBus::now()).
  TimePoint start = 0;
  TimePoint stop = kTimeNever;
  /// Per-frame fire probability within the window.
  double probability = 1.0;
  /// Rule retires after firing this many times (0 = unlimited).
  std::uint64_t max_count = 0;
  /// Restrict to frames whose first byte equals this WireType tag.
  std::optional<std::uint8_t> type_tag;
  /// kDelay / kReorder hold time, plus uniform extra in [0, delay_jitter).
  Duration delay = milliseconds(5);
  Duration delay_jitter = 0;
  /// kDuplicate: number of extra copies.
  int copies = 1;
};

/// A seeded fault script: the complete description of one adversarial
/// network, replayable from `seed`.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;
};

class FaultyBus final : public Bus {
 public:
  FaultyBus(std::unique_ptr<Bus> inner, FaultPlan plan);
  ~FaultyBus() override;

  FaultyBus(const FaultyBus&) = delete;
  FaultyBus& operator=(const FaultyBus&) = delete;

  void register_endpoint(NodeId node, Handler handler) override;
  void send(NodeId from, NodeId to, std::vector<std::uint8_t> frame) override;
  Status try_send(NodeId from, NodeId to,
                  std::vector<std::uint8_t> frame) override;
  void crash(NodeId node) override;
  void restore(NodeId node) override;
  bool crashed(NodeId node) const override;
  void shutdown() override;

  /// Adds a rule mid-run (chaos scripting); returns its id.
  std::size_t add_rule(const FaultRule& rule);

  /// Retires one rule (heals that fault) / every rule.
  void retire_rule(std::size_t id);
  void clear_rules();

  /// The clock rule windows are scripted against (0 = construction time).
  TimePoint now() const { return clock_.now(); }

  /// Total faults injected per kind, regardless of obs state; for tests.
  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  Bus& inner() { return *inner_; }

 private:
  struct ArmedRule {
    FaultRule rule;
    std::uint64_t fired = 0;
    bool retired = false;
  };
  struct Held {
    TimePoint due;
    std::uint64_t order;
    NodeId from;
    NodeId to;
    std::vector<std::uint8_t> frame;
  };
  struct HeldLater {
    bool operator()(const Held& a, const Held& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.order > b.order;
    }
  };

  /// The action decided for one frame under the lock.
  struct Verdict {
    bool drop = false;
    Duration hold = 0;   ///< forward after this delay (0 = immediately)
    int extra_copies = 0;
    bool mutate = false;  ///< frame was corrupted/truncated in place
  };

  Verdict apply_rules_locked(NodeId from, NodeId to,
                             std::vector<std::uint8_t>& frame);
  Rng& link_rng_locked(NodeId from, NodeId to);
  void count(FaultKind kind);
  void hold_frame_locked(NodeId from, NodeId to,
                         std::vector<std::uint8_t> frame, Duration hold);
  void release_loop();

  std::unique_ptr<Bus> inner_;
  MonotonicClock clock_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  FaultPlan plan_;
  std::vector<ArmedRule> rules_;
  std::unordered_map<std::uint64_t, Rng> link_rngs_;
  std::priority_queue<Held, std::vector<Held>, HeldLater> held_;
  std::uint64_t next_order_ = 0;
  bool stop_ = false;
  std::array<std::atomic<std::uint64_t>, kFaultKindCount> injected_{};
  std::thread releaser_;
};

}  // namespace frame
