// Minimal epoll reactor: one thread multiplexing many non-blocking
// sockets.  Connections and listeners register an event callback per fd;
// the loop thread dispatches readiness events and runs posted tasks.
//
// Threading contract:
//   * add()/modify()/remove_sync()/post() are safe from any thread.
//   * Event callbacks run only on the loop thread, never concurrently
//     with each other.
//   * remove_sync(fd) returns only once the callback for fd can no
//     longer be invoked (it runs the removal inline when already called
//     from the loop thread).  After it returns, the fd's owner may be
//     destroyed.
//   * The loop never closes fds it is handed; ownership stays with the
//     registrant.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"

namespace frame {

class EpollLoop {
 public:
  /// Receives the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using EventHandler = std::function<void(std::uint32_t events)>;

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Process-wide shared loop for standalone connections/listeners that
  /// are not owned by a bus.  Started lazily, joined at exit.
  static EpollLoop& default_loop();

  /// Registers fd for `events`; the handler runs on the loop thread.
  Status add(int fd, std::uint32_t events, EventHandler handler);

  /// Changes the interest mask of a registered fd.  Safe to call from
  /// any thread; waiters inside epoll_wait observe the new mask.
  Status modify(int fd, std::uint32_t events);

  /// Deregisters fd and waits until its handler can no longer run.
  void remove_sync(int fd);

  /// Runs `fn` on the loop thread as soon as possible.
  void post(std::function<void()> fn);

  bool on_loop_thread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void run();
  void wake();
  void remove_locked(int fd);

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::mutex mutex_;
  std::condition_variable dispatch_cv_;
  int dispatching_fd_ = -1;  ///< fd whose handler is running right now
  std::unordered_map<int, std::shared_ptr<EventHandler>> handlers_;
  std::vector<std::function<void()>> tasks_;

  std::thread thread_;  ///< last member: started once state is ready
};

}  // namespace frame
