// Wire protocol for broker/publisher/subscriber traffic.
//
// Every frame is a WireType tag plus a type-specific body plus a trailing
// CRC32C over both (net/crc32c.hpp).  The same frames flow over the
// in-process bus and the TCP transport; the simulator passes typed structs
// directly and never serialises.  Decoders verify the checksum first, so a
// corrupted or truncated frame yields nullopt instead of garbage fields;
// endpoint drivers call frame_checksum_ok() / validate_frame() up front to
// count the rejection (kProtocolError) before any dispatch on the type tag.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace frame {

enum class WireType : std::uint8_t {
  kPublish = 1,    ///< publisher -> Primary: new message
  kDeliver = 2,    ///< broker -> subscriber: message dispatch
  kReplicate = 3,  ///< Primary -> Backup: message replica
  kPrune = 4,      ///< Primary -> Backup: set Discard for (topic, seq)
  kResend = 5,     ///< publisher -> Backup: retention resend after failover
  kPoll = 6,       ///< Backup -> Primary: liveness probe
  kPollReply = 7,  ///< Primary -> Backup: liveness ack
  kSubscribe = 8,  ///< subscriber -> broker: topic subscription
  kHello = 9,      ///< endpoint identification on connect
};

struct PruneFrame {
  TopicId topic = kInvalidTopic;
  SeqNo seq = 0;
};

struct SubscribeFrame {
  NodeId subscriber = kInvalidNode;
  TopicId topic = kInvalidTopic;
};

struct HelloFrame {
  NodeId node = kInvalidNode;
  std::uint8_t role = 0;  ///< broker::NodeRole value
};

/// Trailing checksum width appended by every encoder.
inline constexpr std::size_t kFrameChecksumSize = 4;

/// True iff `buf` is long enough to carry a checksum and its trailing
/// CRC32C matches the body.  The cheap gate endpoint handlers run before
/// dispatching on the type tag; decoders re-verify internally.
bool frame_checksum_ok(std::span<const std::uint8_t> buf);

/// frame_checksum_ok as a Status: kProtocolError (corrupt or truncated
/// frame) or OK.  For callers with a status path to surface.
Status validate_frame(std::span<const std::uint8_t> buf);

/// Encodes frames; the WireType tag is the first byte of the buffer and a
/// CRC32C of everything before it is the last four.
std::vector<std::uint8_t> encode_message_frame(WireType type,
                                               const Message& msg);
std::vector<std::uint8_t> encode_prune_frame(const PruneFrame& frame);
std::vector<std::uint8_t> encode_subscribe_frame(const SubscribeFrame& frame);
std::vector<std::uint8_t> encode_hello_frame(const HelloFrame& frame);
std::vector<std::uint8_t> encode_control_frame(WireType type);

/// Peeks the frame type; nullopt on an empty buffer.
std::optional<WireType> peek_type(std::span<const std::uint8_t> buf);

/// Peeks the topic id of a message-carrying frame (kPublish / kDeliver /
/// kReplicate / kResend) without decoding the rest: the topic is always
/// the u32 right after the type tag.  The sharded broker routes frames to
/// their shard lane with this and leaves the full decode to the lane.
/// Callers must have already validated the checksum; nullopt when the
/// frame is too short or its type carries no message.
std::optional<TopicId> peek_message_topic(std::span<const std::uint8_t> buf);

/// Decoders return nullopt on malformed input.
std::optional<Message> decode_message_frame(std::span<const std::uint8_t> buf);
std::optional<PruneFrame> decode_prune_frame(std::span<const std::uint8_t> buf);
std::optional<SubscribeFrame> decode_subscribe_frame(
    std::span<const std::uint8_t> buf);
std::optional<HelloFrame> decode_hello_frame(std::span<const std::uint8_t> buf);

}  // namespace frame
