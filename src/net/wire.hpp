// Wire protocol for broker/publisher/subscriber traffic.
//
// Every frame is a WireType tag plus a type-specific body.  The same frames
// flow over the in-process bus and the TCP transport; the simulator passes
// typed structs directly and never serialises.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace frame {

enum class WireType : std::uint8_t {
  kPublish = 1,    ///< publisher -> Primary: new message
  kDeliver = 2,    ///< broker -> subscriber: message dispatch
  kReplicate = 3,  ///< Primary -> Backup: message replica
  kPrune = 4,      ///< Primary -> Backup: set Discard for (topic, seq)
  kResend = 5,     ///< publisher -> Backup: retention resend after failover
  kPoll = 6,       ///< Backup -> Primary: liveness probe
  kPollReply = 7,  ///< Primary -> Backup: liveness ack
  kSubscribe = 8,  ///< subscriber -> broker: topic subscription
  kHello = 9,      ///< endpoint identification on connect
};

struct PruneFrame {
  TopicId topic = kInvalidTopic;
  SeqNo seq = 0;
};

struct SubscribeFrame {
  NodeId subscriber = kInvalidNode;
  TopicId topic = kInvalidTopic;
};

struct HelloFrame {
  NodeId node = kInvalidNode;
  std::uint8_t role = 0;  ///< broker::NodeRole value
};

/// Encodes frames; the WireType tag is the first byte of the buffer.
std::vector<std::uint8_t> encode_message_frame(WireType type,
                                               const Message& msg);
std::vector<std::uint8_t> encode_prune_frame(const PruneFrame& frame);
std::vector<std::uint8_t> encode_subscribe_frame(const SubscribeFrame& frame);
std::vector<std::uint8_t> encode_hello_frame(const HelloFrame& frame);
std::vector<std::uint8_t> encode_control_frame(WireType type);

/// Peeks the frame type; nullopt on an empty buffer.
std::optional<WireType> peek_type(std::span<const std::uint8_t> buf);

/// Decoders return nullopt on malformed input.
std::optional<Message> decode_message_frame(std::span<const std::uint8_t> buf);
std::optional<PruneFrame> decode_prune_frame(std::span<const std::uint8_t> buf);
std::optional<SubscribeFrame> decode_subscribe_frame(
    std::span<const std::uint8_t> buf);
std::optional<HelloFrame> decode_hello_frame(std::span<const std::uint8_t> buf);

}  // namespace frame
