// CRC32C (Castagnoli) frame checksum.
//
// Every wire frame carries a trailing CRC32C over its body so that a
// corrupted or truncated frame is detected before any decoder runs
// (reflected polynomial 0x82F63B78, init/final-xor 0xFFFFFFFF — the same
// parameterisation as SSE4.2 crc32 and iSCSI).  Table-driven, one byte per
// step: frames are tens of bytes, so the table walk is noise next to the
// syscall and queueing costs around it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace frame {

/// CRC32C of `data`, optionally chained from a previous partial `crc`.
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t crc = 0);

}  // namespace frame
