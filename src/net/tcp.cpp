#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "obs/obs.hpp"

namespace frame {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

const MonotonicClock& wall() {
  static MonotonicClock clock;
  return clock;
}

/// Largest writev batch per flush round; IOV_MAX is far bigger but the
/// marginal win flattens out well before that.
constexpr std::size_t kMaxIov = 64;

}  // namespace

// ---------------------------------------------------------------- connection

TcpConnection::~TcpConnection() {
  close();
  if (started_.load(std::memory_order_acquire)) {
    // After remove_sync the reactor can no longer invoke on_events; it is
    // idempotent, so racing the loop's own deregistration is safe.
    loop_->remove_sync(fd_);
  }
  if (!dead_.exchange(true, std::memory_order_acq_rel)) {
    if (on_close_ && started_.load(std::memory_order_acquire)) {
      on_close_(Status(StatusCode::kClosed, "connection destroyed"));
    }
  }
  ::close(fd_);
}

Result<std::unique_ptr<TcpConnection>> TcpConnection::connect(
    const std::string& host, std::uint16_t port, Duration timeout,
    EpollLoop* loop) {
  if (loop == nullptr) loop = &EpollLoop::default_loop();
  const TimePoint started = wall().now();
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status(StatusCode::kUnavailable, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalid, "bad address: " + host);
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  // EINTR: the attempt proceeds asynchronously, exactly like EINPROGRESS;
  // retrying connect() here would yield EALREADY.
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    const int err = errno;
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "connect() failed: " + std::string(std::strerror(err)));
  }
  if (rc != 0) {
    const TimePoint deadline = started + timeout;
    for (;;) {
      const Duration remaining = deadline - wall().now();
      if (remaining <= 0) {
        ::close(fd);
        return Status(StatusCode::kUnavailable,
                      "connect() timed out to " + host + ":" +
                          std::to_string(port));
      }
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout_ms =
          static_cast<int>(std::max<Duration>(remaining / 1'000'000, 1));
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0 && errno == EINTR) continue;
      if (pr > 0) break;
      // pr == 0: fell through the poll timeout; the deadline check above
      // decides whether to retry or give up.
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status(StatusCode::kUnavailable,
                    "connect() failed: " + std::string(std::strerror(err)));
    }
  }
  set_nodelay(fd);
  obs::hooks::tcp_connect_latency(wall().now() - started);
  return std::unique_ptr<TcpConnection>(new TcpConnection(fd, loop));
}

void TcpConnection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  std::uint32_t events = EPOLLIN;
  {
    std::lock_guard lock(send_mutex_);
    if (!send_queue_.empty()) {
      events |= EPOLLOUT;
      write_armed_ = true;
    }
    started_.store(true, std::memory_order_release);
  }
  const Status status =
      loop_->add(fd_, events, [this](std::uint32_t ev) { on_events(ev); });
  if (!status.is_ok()) {
    started_.store(false, std::memory_order_release);
    closed_.store(true, std::memory_order_release);
    FRAME_LOG_ERROR("TcpConnection: cannot register with reactor: %s",
                    status.to_string().c_str());
  }
}

Status TcpConnection::send_frame(const std::vector<std::uint8_t>& frame) {
  if (frame.size() > kMaxFrame) {
    obs::hooks::tcp_protocol_error();
    return Status(StatusCode::kProtocolError,
                  "frame of " + std::to_string(frame.size()) +
                      " bytes exceeds the " + std::to_string(kMaxFrame) +
                      "-byte limit");
  }
  if (closed_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kClosed, "connection closed");
  }
  // One buffer per frame, header included, so the reactor can cork many
  // frames into a single writev.
  std::vector<std::uint8_t> buf;
  buf.reserve(frame.size() + 4);
  const auto size = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(size >> (8 * i)));
  }
  buf.insert(buf.end(), frame.begin(), frame.end());

  bool fatal = false;
  {
    std::lock_guard lock(send_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      return Status(StatusCode::kClosed, "connection closed");
    }
    if (send_queue_bytes_ + buf.size() > send_queue_limit_) {
      obs::hooks::tcp_backpressure_drop();
      return Status(StatusCode::kCapacity, "send queue full");
    }
    const bool was_idle = send_queue_.empty();
    send_queue_bytes_ += buf.size();
    send_queue_.push_back(std::move(buf));
    if (was_idle && !write_armed_) {
      // Optimistic inline flush: under light load a frame goes out with
      // one syscall and no reactor wakeup; under pressure (EAGAIN or a
      // non-empty queue) frames accumulate and the reactor batches them.
      if (!flush_locked()) {
        fatal = true;
      } else {
        update_write_interest_locked();
      }
    }
    obs::hooks::tcp_send_queue_depth(send_queue_bytes_);
  }
  if (fatal) {
    fail(Status(StatusCode::kClosed, "send failed"));
    return Status(StatusCode::kClosed, "send failed");
  }
  return Status::ok();
}

bool TcpConnection::flush_locked() {
  while (!send_queue_.empty()) {
    iovec iov[kMaxIov];
    std::size_t iov_count = 0;
    std::size_t offset = send_head_offset_;
    for (const auto& buf : send_queue_) {
      if (iov_count == kMaxIov) break;
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(buf.data()) + offset;
      iov[iov_count].iov_len = buf.size() - offset;
      offset = 0;
      ++iov_count;
    }
    ssize_t n;
    do {
      n = ::writev(fd_, iov, static_cast<int>(iov_count));
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;  // EPIPE / ECONNRESET / ...
    }
    // Pop fully-written frames; remember the partial head, if any.
    std::size_t written = static_cast<std::size_t>(n);
    std::size_t frames_done = 0;
    while (written > 0 && !send_queue_.empty()) {
      const std::size_t head_left =
          send_queue_.front().size() - send_head_offset_;
      if (written >= head_left) {
        written -= head_left;
        send_queue_bytes_ -= send_queue_.front().size();
        send_queue_.pop_front();
        send_head_offset_ = 0;
        ++frames_done;
      } else {
        send_head_offset_ += written;
        written = 0;
      }
    }
    obs::hooks::tcp_batch_written(frames_done, static_cast<std::size_t>(n));
  }
  return true;
}

void TcpConnection::update_write_interest_locked() {
  const bool want_write = !send_queue_.empty();
  if (want_write == write_armed_) return;
  if (!started_.load(std::memory_order_acquire) ||
      dead_.load(std::memory_order_acquire)) {
    return;
  }
  write_armed_ = want_write;
  (void)loop_->modify(fd_, EPOLLIN | (want_write ? EPOLLOUT : 0u));
}

void TcpConnection::on_events(std::uint32_t events) {
  if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
    drain_readable();
    if (dead_.load(std::memory_order_acquire)) return;
  }
  if (events & EPOLLOUT) {
    bool fatal = false;
    {
      std::lock_guard lock(send_mutex_);
      if (!flush_locked()) {
        fatal = true;
      } else {
        update_write_interest_locked();
        obs::hooks::tcp_send_queue_depth(send_queue_bytes_);
      }
    }
    if (fatal) fail(Status(StatusCode::kClosed, "send failed"));
  }
}

void TcpConnection::drain_readable() {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      rx_buf_.insert(rx_buf_.end(), chunk, chunk + n);
      obs::hooks::tcp_bytes_received(static_cast<std::size_t>(n));
      // Parse every complete frame accumulated so far; partial frames stay
      // buffered until the next readiness event.
      while (rx_buf_.size() - rx_parsed_ >= 4) {
        std::uint32_t size = 0;
        for (int i = 0; i < 4; ++i) {
          size |= static_cast<std::uint32_t>(rx_buf_[rx_parsed_ + i])
                  << (8 * i);
        }
        if (size > kMaxFrame) {
          FRAME_LOG_ERROR(
              "TcpConnection: protocol violation: frame of %u bytes "
              "exceeds the %u-byte limit; closing",
              size, kMaxFrame);
          obs::hooks::tcp_protocol_error();
          fail(Status(StatusCode::kProtocolError,
                      "oversized frame: " + std::to_string(size) +
                          " bytes (limit " + std::to_string(kMaxFrame) +
                          ")"));
          return;
        }
        if (rx_buf_.size() - rx_parsed_ < 4 + static_cast<std::size_t>(size)) {
          break;
        }
        std::vector<std::uint8_t> frame(
            rx_buf_.begin() + static_cast<std::ptrdiff_t>(rx_parsed_ + 4),
            rx_buf_.begin() +
                static_cast<std::ptrdiff_t>(rx_parsed_ + 4 + size));
        rx_parsed_ += 4 + size;
        obs::hooks::tcp_frame_received(4 + static_cast<std::size_t>(size));
        if (on_frame_) on_frame_(std::move(frame));
        if (dead_.load(std::memory_order_acquire)) return;
      }
      if (rx_parsed_ > 0 && (rx_parsed_ >= rx_buf_.size() ||
                             rx_parsed_ > (64u * 1024u))) {
        rx_buf_.erase(rx_buf_.begin(),
                      rx_buf_.begin() + static_cast<std::ptrdiff_t>(rx_parsed_));
        rx_parsed_ = 0;
      }
      continue;
    }
    if (n == 0) {
      fail(Status(StatusCode::kClosed, "closed by peer"));
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    fail(Status(StatusCode::kClosed,
                "recv failed: " + std::string(std::strerror(errno))));
    return;
  }
}

void TcpConnection::fail(const Status& reason) { deregister_and_close(reason); }

void TcpConnection::deregister_and_close(const Status& reason) {
  if (dead_.exchange(true, std::memory_order_acq_rel)) return;
  closed_.store(true, std::memory_order_release);
  loop_->remove_sync(fd_);
  ::shutdown(fd_, SHUT_RDWR);
  // The fd itself is closed in the destructor, after the final
  // remove_sync, so a recycled descriptor can never alias a live
  // registration.
  if (on_close_) on_close_(reason);
}

void TcpConnection::close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    // Wake the reactor via EOF/HUP; it deregisters and fires on_close.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

std::size_t TcpConnection::send_queue_bytes() const {
  std::lock_guard lock(send_mutex_);
  return send_queue_bytes_;
}

void TcpConnection::set_send_queue_limit(std::size_t bytes) {
  std::lock_guard lock(send_mutex_);
  send_queue_limit_ = bytes;
}

// ------------------------------------------------------------------ listener

TcpListener::~TcpListener() { close(); }

Result<std::unique_ptr<TcpListener>> TcpListener::listen(
    std::uint16_t port, AcceptHandler on_accept, EpollLoop* loop) {
  if (loop == nullptr) loop = &EpollLoop::default_loop();
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status(StatusCode::kUnavailable, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  auto listener = std::unique_ptr<TcpListener>(new TcpListener());
  listener->fd_ = fd;
  listener->port_ = ntohs(addr.sin_port);
  listener->loop_ = loop;
  listener->on_accept_ = std::move(on_accept);
  const Status status = loop->add(
      fd, EPOLLIN,
      [raw = listener.get()](std::uint32_t ev) { raw->on_events(ev); });
  if (!status.is_ok()) {
    ::close(fd);
    listener->fd_ = -1;
    listener->closed_.store(true, std::memory_order_release);
    return status;
  }
  return listener;
}

void TcpListener::on_events(std::uint32_t) {
  for (;;) {
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (closed_.load(std::memory_order_acquire)) return;
      FRAME_LOG_WARN("TcpListener: accept failed: %s", std::strerror(errno));
      return;
    }
    set_nodelay(client);
    if (on_accept_) {
      on_accept_(
          std::unique_ptr<TcpConnection>(new TcpConnection(client, loop_)));
    } else {
      ::close(client);
    }
  }
}

void TcpListener::close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    if (fd_ >= 0) {
      loop_->remove_sync(fd_);
      ::close(fd_);
    }
  }
}

}  // namespace frame
