#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace frame {

namespace {

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------- connection

TcpConnection::~TcpConnection() {
  close();
  if (reader_.joinable()) reader_.join();
}

Result<std::unique_ptr<TcpConnection>> TcpConnection::connect(
    const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(StatusCode::kUnavailable, "socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status(StatusCode::kInvalid, "bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "connect() failed: " + std::string(std::strerror(errno)));
  }
  set_nodelay(fd);
  return std::unique_ptr<TcpConnection>(new TcpConnection(fd));
}

void TcpConnection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
  reader_ = std::thread([this] { reader_loop(); });
}

Status TcpConnection::send_frame(const std::vector<std::uint8_t>& frame) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kClosed, "connection closed");
  }
  std::uint8_t header[4];
  const auto size = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<std::uint8_t>(size >> (8 * i));
  }
  std::lock_guard lock(send_mutex_);
  auto send_all = [&](const std::uint8_t* data, std::size_t size_left) {
    while (size_left > 0) {
      const ssize_t n = ::send(fd_, data, size_left, MSG_NOSIGNAL);
      if (n <= 0) return false;
      data += n;
      size_left -= static_cast<std::size_t>(n);
    }
    return true;
  };
  if (!send_all(header, sizeof(header)) ||
      !send_all(frame.data(), frame.size())) {
    return Status(StatusCode::kClosed, "send failed");
  }
  return Status::ok();
}

void TcpConnection::close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
  }
}

bool TcpConnection::read_exact(std::uint8_t* dst, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::recv(fd_, dst, size, 0);
    if (n <= 0) return false;
    dst += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void TcpConnection::reader_loop() {
  constexpr std::uint32_t kMaxFrame = 1u << 20;
  while (!closed_.load(std::memory_order_acquire)) {
    std::uint8_t header[4];
    if (!read_exact(header, sizeof(header))) break;
    std::uint32_t size = 0;
    for (int i = 0; i < 4; ++i) {
      size |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    }
    if (size > kMaxFrame) break;
    std::vector<std::uint8_t> frame(size);
    if (size > 0 && !read_exact(frame.data(), size)) break;
    if (on_frame_) on_frame_(std::move(frame));
  }
  closed_.store(true, std::memory_order_release);
  if (on_close_) on_close_();
}

// ------------------------------------------------------------------ listener

TcpListener::~TcpListener() {
  close();
  if (acceptor_.joinable()) acceptor_.join();
}

Result<std::unique_ptr<TcpListener>> TcpListener::listen(
    std::uint16_t port, AcceptHandler on_accept) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(StatusCode::kUnavailable, "socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status(StatusCode::kUnavailable, "listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);

  auto listener = std::unique_ptr<TcpListener>(new TcpListener());
  listener->fd_ = fd;
  listener->port_ = ntohs(addr.sin_port);
  listener->on_accept_ = std::move(on_accept);
  listener->acceptor_ = std::thread([raw = listener.get()] {
    raw->accept_loop();
  });
  return listener;
}

void TcpListener::close() {
  bool expected = false;
  if (closed_.compare_exchange_strong(expected, true)) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
  }
}

void TcpListener::accept_loop() {
  while (!closed_.load(std::memory_order_acquire)) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) break;
    set_nodelay(client);
    if (on_accept_) {
      on_accept_(std::unique_ptr<TcpConnection>(new TcpConnection(client)));
    } else {
      ::close(client);
    }
  }
}

}  // namespace frame
