#include "net/wire.hpp"

#include "net/codec.hpp"
#include "net/crc32c.hpp"

namespace frame {

namespace {

constexpr std::uint8_t kMessageFlagRecovered = 0x1;
// Flags an optional trailing trace-context block (trace_id u64 + anchor i64
// + hop u8, 17 bytes) after the payload.  Absent (zero extra bytes) when
// the message carries no trace id, so tracing-off traffic is unchanged.
constexpr std::uint8_t kMessageFlagTraceCtx = 0x2;

bool type_carries_message(WireType type) {
  switch (type) {
    case WireType::kPublish:
    case WireType::kDeliver:
    case WireType::kReplicate:
    case WireType::kResend:
      return true;
    default:
      return false;
  }
}

/// Appends the CRC32C of everything written so far.
void seal(std::vector<std::uint8_t>& out) {
  Writer(out).u32(crc32c(out));
}

/// Checksum-verified frame body (tag + fields, checksum stripped), or
/// nullopt when the frame is too short or the CRC mismatches.
std::optional<std::span<const std::uint8_t>> body_of(
    std::span<const std::uint8_t> buf) {
  if (!frame_checksum_ok(buf)) return std::nullopt;
  return buf.first(buf.size() - kFrameChecksumSize);
}

}  // namespace

bool frame_checksum_ok(std::span<const std::uint8_t> buf) {
  if (buf.size() < kFrameChecksumSize + 1) return false;
  const auto body = buf.first(buf.size() - kFrameChecksumSize);
  Reader tail(buf.subspan(body.size()));
  return tail.u32() == crc32c(body);
}

Status validate_frame(std::span<const std::uint8_t> buf) {
  if (frame_checksum_ok(buf)) return Status::ok();
  return Status(StatusCode::kProtocolError,
                "frame checksum mismatch or truncated frame");
}

std::vector<std::uint8_t> encode_message_frame(WireType type,
                                               const Message& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + msg.payload_size);
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(msg.topic);
  w.u64(msg.seq);
  w.i64(msg.created_at);
  w.i64(msg.broker_arrival);
  w.i64(msg.dispatched_at);
  std::uint8_t flags = msg.recovered ? kMessageFlagRecovered : 0;
  if (msg.trace_id != 0) flags |= kMessageFlagTraceCtx;
  w.u8(flags);
  w.blob16(msg.payload.data(), msg.payload_size);
  if (msg.trace_id != 0) {
    w.u64(msg.trace_id);
    w.i64(msg.trace_anchor);
    w.u8(msg.hop);
  }
  seal(out);
  return out;
}

std::vector<std::uint8_t> encode_prune_frame(const PruneFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(WireType::kPrune));
  w.u32(frame.topic);
  w.u64(frame.seq);
  seal(out);
  return out;
}

std::vector<std::uint8_t> encode_subscribe_frame(const SubscribeFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(12);
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(WireType::kSubscribe));
  w.u32(frame.subscriber);
  w.u32(frame.topic);
  seal(out);
  return out;
}

std::vector<std::uint8_t> encode_hello_frame(const HelloFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(WireType::kHello));
  w.u32(frame.node);
  w.u8(frame.role);
  seal(out);
  return out;
}

std::vector<std::uint8_t> encode_control_frame(WireType type) {
  std::vector<std::uint8_t> out{static_cast<std::uint8_t>(type)};
  seal(out);
  return out;
}

std::optional<WireType> peek_type(std::span<const std::uint8_t> buf) {
  if (buf.empty()) return std::nullopt;
  return static_cast<WireType>(buf[0]);
}

std::optional<TopicId> peek_message_topic(std::span<const std::uint8_t> buf) {
  if (buf.size() < 1 + 4) return std::nullopt;
  if (!type_carries_message(static_cast<WireType>(buf[0]))) {
    return std::nullopt;
  }
  Reader r(buf.subspan(1, 4));
  const TopicId topic = r.u32();
  return r.ok() ? std::optional<TopicId>(topic) : std::nullopt;
}

std::optional<Message> decode_message_frame(std::span<const std::uint8_t> buf) {
  const auto body = body_of(buf);
  if (!body.has_value()) return std::nullopt;
  Reader r(*body);
  const auto type = static_cast<WireType>(r.u8());
  if (!type_carries_message(type)) return std::nullopt;
  Message msg;
  msg.topic = r.u32();
  msg.seq = r.u64();
  msg.created_at = r.i64();
  msg.broker_arrival = r.i64();
  msg.dispatched_at = r.i64();
  const std::uint8_t flags = r.u8();
  msg.recovered = (flags & kMessageFlagRecovered) != 0;
  const auto payload = r.blob16();
  if (!r.ok() || payload.size() > kMaxPayload) return std::nullopt;
  msg.set_payload(payload.data(), payload.size());
  if ((flags & kMessageFlagTraceCtx) != 0) {
    msg.trace_id = r.u64();
    msg.trace_anchor = r.i64();
    msg.hop = r.u8();
    if (!r.ok() || msg.trace_id == 0) return std::nullopt;
  }
  return msg;
}

std::optional<PruneFrame> decode_prune_frame(
    std::span<const std::uint8_t> buf) {
  const auto body = body_of(buf);
  if (!body.has_value()) return std::nullopt;
  Reader r(*body);
  if (static_cast<WireType>(r.u8()) != WireType::kPrune) return std::nullopt;
  PruneFrame frame;
  frame.topic = r.u32();
  frame.seq = r.u64();
  if (!r.ok()) return std::nullopt;
  return frame;
}

std::optional<SubscribeFrame> decode_subscribe_frame(
    std::span<const std::uint8_t> buf) {
  const auto body = body_of(buf);
  if (!body.has_value()) return std::nullopt;
  Reader r(*body);
  if (static_cast<WireType>(r.u8()) != WireType::kSubscribe) {
    return std::nullopt;
  }
  SubscribeFrame frame;
  frame.subscriber = r.u32();
  frame.topic = r.u32();
  if (!r.ok()) return std::nullopt;
  return frame;
}

std::optional<HelloFrame> decode_hello_frame(
    std::span<const std::uint8_t> buf) {
  const auto body = body_of(buf);
  if (!body.has_value()) return std::nullopt;
  Reader r(*body);
  if (static_cast<WireType>(r.u8()) != WireType::kHello) return std::nullopt;
  HelloFrame frame;
  frame.node = r.u32();
  frame.role = r.u8();
  if (!r.ok()) return std::nullopt;
  return frame;
}

}  // namespace frame
