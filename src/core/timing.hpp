// The paper's timing model: Lemmas 1 and 2, the admission test, and
// Proposition 1 (selective replication).  Section III-C/D.
//
// Terminology:
//  * "pseudo" relative deadlines are computed at configuration time and do
//    not include the observed publisher->broker latency ΔPB:
//        Dr' = (Ni + Li)·Ti − ΔBB − x          (replication)
//        Dd' = Di − ΔBS                         (dispatch)
//  * the Job Generator subtracts the per-message observed ΔPB = tp − tc at
//    run time to obtain the lemma deadlines Dr = Dr' − ΔPB, Dd = Dd' − ΔPB
//    and stamps each job with the absolute deadline tp + D.
#pragma once

#include "common/result.hpp"
#include "common/time.hpp"
#include "core/topic.hpp"

namespace frame {

/// Dr' = (Ni + Li)·Ti − ΔBB − x.  Returns kDurationInfinite for best-effort
/// topics (Li = ∞): such topics never need replication, hence their
/// replication deadline never constrains the system.
Duration replication_pseudo_deadline(const TopicSpec& spec,
                                     const TimingParams& params);

/// Dd' = Di − ΔBS, where ΔBS is the lower bound for the topic's destination.
Duration dispatch_pseudo_deadline(const TopicSpec& spec,
                                  const TimingParams& params);

/// Lemma 1: Dr = (Ni + Li)·Ti − ΔPB − ΔBB − x, using the configured ΔPB
/// bound.  For the per-message value, subtract the observed ΔPB from the
/// pseudo deadline instead.
Duration replication_deadline(const TopicSpec& spec,
                              const TimingParams& params);

/// Lemma 2: Dd = Di − ΔPB − ΔBS.
Duration dispatch_deadline(const TopicSpec& spec, const TimingParams& params);

/// Subtracts the observed per-message ΔPB from a pseudo deadline, keeping
/// infinities intact.
Duration apply_observed_delta_pb(Duration pseudo_deadline,
                                 Duration observed_delta_pb);

/// Proposition 1: replication of topic i may be suppressed when
/// Dd_i <= Dr_i (and the system meets Dd_i).  Best-effort topics never need
/// replication.  Equivalent test (paper, Section III-D):
/// replication is needed iff  x + ΔBB − ΔBS > (Ni + Li)·Ti − Di.
bool needs_replication(const TopicSpec& spec, const TimingParams& params);

/// Admission test (Section III-D.1): both Dr >= 0 and Dd >= 0 must hold.
/// A topic whose replication would be suppressed by Proposition 1 still
/// needs Dr >= 0 unless it is best-effort: Dd <= Dr together with Dd >= 0
/// already implies it.
Status admission_test(const TopicSpec& spec, const TimingParams& params);

/// The smallest Ni that makes Dr non-negative (the paper's Table 2 lists
/// this minimum per category).  Best-effort topics need no retention (0).
std::uint32_t min_retention_for_admission(const TopicSpec& spec,
                                          const TimingParams& params);

/// Laxity (deadline headroom) at job completion: the signed distance from
/// the execution instant to the absolute lemma deadline.  Positive means
/// the bound held with that much room to spare; negative is a Lemma 1/2
/// violation by that amount.  Infinite when either side is unknown or the
/// job carries no deadline (best-effort replication).  This is the value
/// the engines report to obs::hooks::{dispatch,replicate}_executed and the
/// quantity the SLO monitor's headroom gauges bin (obs/slo.hpp):
///   dispatch    laxity = (tp + Dd) − now   (Lemma 2:  Dd = Di − ΔPB − ΔBS)
///   replication laxity = (tp + Dr) − now   (Lemma 1:  Dr = (Ni+Li)·Ti −
///                                                     ΔPB − ΔBB − x)
constexpr Duration laxity(TimePoint absolute_deadline, TimePoint now) {
  if (absolute_deadline == kTimeNever || now == kTimeNever) {
    return kDurationInfinite;
  }
  return absolute_deadline - now;
}

/// Per-topic precomputed scheduling state, produced at configuration time
/// and consumed by the Job Generator on every arrival.
struct TopicTiming {
  Duration dispatch_pseudo_deadline = 0;
  Duration replication_pseudo_deadline = 0;
  bool replicate = false;  ///< after Proposition 1 (and policy) is applied
};

/// Computes TopicTiming for one topic.  `selective` enables Proposition 1;
/// when false (the FCFS baselines), every non-best-effort topic replicates.
TopicTiming compute_topic_timing(const TopicSpec& spec,
                                 const TimingParams& params, bool selective);

}  // namespace frame
