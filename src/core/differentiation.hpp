// Section III-D: applying the timing bounds to differentiate topics.
//
// These helpers reproduce the paper's five worked applications of
// Lemmas 1-2 and Proposition 1: the admission test, the deadline ordering
// across heterogeneous (Di, Li) topics, the effect of extra publisher
// retention, Di != Ti cases, and edge- vs cloud-bound differentiation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/timing.hpp"
#include "core/topic.hpp"

namespace frame {

/// One pseudo relative deadline in the global ordering: which topic, which
/// activity (dispatch or replicate), and its value.
struct DeadlineEntry {
  TopicId topic = kInvalidTopic;
  JobKind kind = JobKind::kDispatch;
  Duration pseudo_deadline = 0;
};

/// Computes the pseudo relative deadlines of every dispatch activity and of
/// every replication activity (for non-best-effort topics) and returns them
/// sorted ascending — the precedence order EDF induces under equal ΔPB.
/// Replication entries are included even for topics Proposition 1 would
/// suppress, because the ordering itself (Section III-D.2) is computed
/// before suppression is applied.
std::vector<DeadlineEntry> deadline_ordering(
    const std::vector<TopicSpec>& specs, const TimingParams& params);

/// Topics whose replication survives Proposition 1 (i.e. must replicate).
std::vector<TopicId> replication_set(const std::vector<TopicSpec>& specs,
                                     const TimingParams& params);

/// Returns a copy of `specs` with retention (Ni) increased by `extra` for
/// every topic that would otherwise need replication — the paper's FRAME+
/// transformation (Section III-D.3 / VI-A): a small retention increase that
/// removes the need for replication entirely.
std::vector<TopicSpec> with_extra_retention(
    const std::vector<TopicSpec>& specs, const TimingParams& params,
    std::uint32_t extra = 1);

/// Runs the admission test over a topic set; returns per-topic failures
/// (empty = all admitted).
struct AdmissionFailure {
  TopicId topic;
  std::string reason;
};
std::vector<AdmissionFailure> admit_all(const std::vector<TopicSpec>& specs,
                                        const TimingParams& params);

}  // namespace frame
