// Topic -> shard assignment for the sharded Primary hot path.
//
// Every topic maps to exactly one shard for the lifetime of the process,
// so per-topic admission and EDF pop order inside a shard are identical to
// the single-queue order restricted to that topic — the only ordering
// Lemmas 1 and 2 rely on (deadlines are per message, never cross-topic).
// The promotion-time dedup bitmap and retention replay route through the
// same mapping, which keeps each (topic, seq) bit owned by one shard.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <thread>

#include "common/types.hpp"

namespace frame {

/// Upper bound on shards a broker will run; obs mirrors this for its
/// per-shard instrument slots (hooks.cpp kMaxShardSeries).
inline constexpr std::size_t kMaxShards = 32;

/// splitmix64: cheap avalanche so dense topic ids 0..n-1 spread across
/// shards instead of landing modulo-adjacent.
inline std::uint64_t shard_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The consistent topic -> shard map.  `shards` == 1 puts everything on
/// shard 0 (today's single-queue behaviour).
inline std::size_t shard_of_topic(TopicId topic, std::size_t shards) {
  if (shards <= 1) return 0;
  return static_cast<std::size_t>(shard_hash(topic) % shards);
}

/// Resolves a configured shard count: nonzero is clamped to
/// [1, kMaxShards]; 0 means auto — the FRAME_SHARDS environment variable
/// when set (the test/CI matrix knob), otherwise hardware_concurrency
/// capped at 8 (more lanes than cores only adds contention).
inline std::size_t resolve_shard_count(std::size_t requested) {
  const auto clamp = [](long long n) -> std::size_t {
    if (n < 1) return 1;
    if (n > static_cast<long long>(kMaxShards)) return kMaxShards;
    return static_cast<std::size_t>(n);
  };
  if (requested != 0) return clamp(static_cast<long long>(requested));
  if (const char* env = std::getenv("FRAME_SHARDS")) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && parsed > 0) return clamp(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return clamp(static_cast<long long>(hw > 8 ? 8 : hw));
}

}  // namespace frame
