// Topic QoS specification (paper Section III).
//
// Every topic carries four QoS parameters:
//   Ti  (period)          minimum inter-creation time of its messages
//   Di  (deadline)        soft end-to-end latency bound, publisher->subscriber
//   Li  (loss tolerance)  max acceptable number of *consecutive* losses
//   Ni  (retention)       how many latest messages its publisher retains for
//                         re-sending to the Backup after a failover
// plus a destination (edge or cloud), which selects the broker->subscriber
// latency bound ΔBS used in the timing analysis.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace frame {

/// Li = kLossInfinite means best-effort delivery (the paper's Li = ∞).
inline constexpr std::uint32_t kLossInfinite = 0xffffffffu;

enum class Destination : std::uint8_t { kEdge = 0, kCloud = 1 };

std::string_view to_string(Destination destination);

struct TopicSpec {
  TopicId id = kInvalidTopic;
  Duration period = 0;             ///< Ti
  Duration deadline = 0;           ///< Di
  std::uint32_t loss_tolerance = 0;  ///< Li (kLossInfinite = best effort)
  std::uint32_t retention = 0;     ///< Ni
  Destination destination = Destination::kEdge;

  bool best_effort() const { return loss_tolerance == kLossInfinite; }
};

/// Deployment timing parameters the analysis depends on (Section III-A/B).
/// ΔBS is a per-destination *lower bound* obtained by measurement; using a
/// lower bound is what keeps Proposition 1 safe under cloud-latency
/// variation (Section III-D.5, Fig. 8).
struct TimingParams {
  Duration delta_pb = 0;        ///< ΔPB bound, publisher -> broker
  Duration delta_bs_edge = 0;   ///< ΔBS lower bound for edge subscribers
  Duration delta_bs_cloud = 0;  ///< ΔBS lower bound for cloud subscribers
  Duration delta_bb = 0;        ///< ΔBB, Primary -> Backup
  Duration failover_x = 0;      ///< x, publisher fail-over time

  Duration delta_bs(Destination destination) const {
    return destination == Destination::kEdge ? delta_bs_edge : delta_bs_cloud;
  }
};

/// The six topic categories of the paper's Table 2 (values in ms).
/// Categories 0-4 target edge subscribers; category 5 targets the cloud.
TopicSpec table2_spec(int category, TopicId id);

/// Number of categories defined by Table 2.
inline constexpr int kTable2Categories = 6;

}  // namespace frame
