// Configuration file support.
//
// FRAME "takes an input configuration" at initialisation (Section IV-A):
// per-topic Ni, Li, Ti and Di values plus the per-subscriber x and ΔBS.
// This parser reads that configuration from a simple INI-like text format
// so deployments can be described in files rather than code:
//
//   [timing]
//   delta_pb_ms       = 1
//   delta_bs_edge_ms  = 1
//   delta_bs_cloud_ms = 20
//   delta_bb_ms       = 0.05
//   failover_x_ms     = 50
//
//   [topic]
//   period_ms      = 50
//   deadline_ms    = 50
//   loss_tolerance = 0        ; or "inf" for best effort
//   retention      = 2
//   destination    = edge     ; or "cloud"
//   count          = 10       ; expands to this many topics
//
// Topic ids are assigned densely in file order.  '#' and ';' start
// comments.  Unknown keys are errors (catching typos beats ignoring them).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "core/topic.hpp"

namespace frame {

struct DeploymentConfig {
  TimingParams timing;
  std::vector<TopicSpec> topics;
  /// Parallel to `topics`: ordinal of the [topic] section each topic came
  /// from (a `count = N` section yields N topics sharing one group).
  std::vector<int> groups;
};

/// Parses the text of a configuration file.  On error, the status message
/// includes the offending line number.
Result<DeploymentConfig> parse_deployment_config(std::string_view text);

/// Reads and parses a configuration file from disk.
Result<DeploymentConfig> load_deployment_config(const std::string& path);

/// Renders a deployment back into the file format (round-trippable).
std::string format_deployment_config(const DeploymentConfig& config);

}  // namespace frame
