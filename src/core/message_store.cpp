#include "core/message_store.hpp"

namespace frame {

void MessageStore::configure(std::size_t topic_count) {
  rings_.clear();
  rings_.reserve(topic_count);
  for (std::size_t i = 0; i < topic_count; ++i) {
    rings_.emplace_back(capacity_);
  }
}

RingBuffer<StoredMessage>* MessageStore::ring(TopicId topic) {
  if (topic >= rings_.size()) return nullptr;
  return &rings_[topic];
}

const RingBuffer<StoredMessage>* MessageStore::ring(TopicId topic) const {
  if (topic >= rings_.size()) return nullptr;
  return &rings_[topic];
}

std::optional<StoredMessage> MessageStore::insert(const Message& msg) {
  auto* r = ring(msg.topic);
  if (r == nullptr) return std::nullopt;
  return r->push_back(StoredMessage{msg, false, false, false});
}

StoredMessage* MessageStore::find(TopicId topic, SeqNo seq) {
  auto* r = ring(topic);
  if (r == nullptr || r->empty()) return nullptr;
  // Fast path: within a topic seqs are normally consecutive, so the entry
  // sits at a computable offset from the ring front.
  const SeqNo front_seq = r->front().msg.seq;
  if (seq >= front_seq) {
    const std::size_t offset = static_cast<std::size_t>(seq - front_seq);
    if (offset < r->size() && r->at(offset).msg.seq == seq) {
      return &r->at(offset);
    }
  }
  // Slow path for gapped rings (retention resends after failover): scan
  // newest-first; rings are small (tens of entries).
  for (std::size_t i = r->size(); i-- > 0;) {
    if (r->at(i).msg.seq == seq) return &r->at(i);
  }
  return nullptr;
}

const StoredMessage* MessageStore::find(TopicId topic, SeqNo seq) const {
  return const_cast<MessageStore*>(this)->find(topic, seq);
}

std::size_t MessageStore::size() const {
  std::size_t total = 0;
  for (const auto& r : rings_) total += r.size();
  return total;
}

void MessageStore::clear() {
  for (auto& r : rings_) r.clear();
}

}  // namespace frame
