#include "core/topic.hpp"

#include <cassert>

namespace frame {

std::string_view to_string(Destination destination) {
  return destination == Destination::kEdge ? "edge" : "cloud";
}

TopicSpec table2_spec(int category, TopicId id) {
  assert(category >= 0 && category < kTable2Categories);
  TopicSpec spec;
  spec.id = id;
  switch (category) {
    case 0:
      spec = {id, milliseconds(50), milliseconds(50), 0, 2,
              Destination::kEdge};
      break;
    case 1:
      spec = {id, milliseconds(50), milliseconds(50), 3, 0,
              Destination::kEdge};
      break;
    case 2:
      spec = {id, milliseconds(100), milliseconds(100), 0, 1,
              Destination::kEdge};
      break;
    case 3:
      spec = {id, milliseconds(100), milliseconds(100), 3, 0,
              Destination::kEdge};
      break;
    case 4:
      spec = {id, milliseconds(100), milliseconds(100), kLossInfinite, 0,
              Destination::kEdge};
      break;
    case 5:
      spec = {id, milliseconds(500), milliseconds(500), 0, 1,
              Destination::kCloud};
      break;
    default:
      break;
  }
  return spec;
}

}  // namespace frame
