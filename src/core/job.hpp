// Jobs created by the Message Proxy's Job Generator (Section IV-A).
//
// Each message arrival yields one dispatching job and, when the topic's
// timing requires it, one replicating job.  During fault recovery the
// promoted Backup creates dispatching jobs that reference its Backup Buffer
// instead of the Message Buffer.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/time.hpp"
#include "common/types.hpp"

namespace frame {

enum class JobKind : std::uint8_t {
  kDispatch = 0,
  kReplicate = 1,
};

enum class JobSource : std::uint8_t {
  kMessageBuffer = 0,  ///< normal operation
  kBackupBuffer = 1,   ///< recovery dispatch on the promoted Backup
};

std::string_view to_string(JobKind kind);

struct Job {
  JobKind kind = JobKind::kDispatch;
  JobSource source = JobSource::kMessageBuffer;
  TopicId topic = kInvalidTopic;
  SeqNo seq = 0;
  TimePoint release = 0;   ///< tp: broker arrival of the referenced message
  TimePoint deadline = 0;  ///< absolute deadline (tp + relative deadline)
  std::uint64_t order = 0;  ///< arrival order: FIFO key and EDF tie-break
};

/// Compact key identifying the message a job refers to; used for
/// cancellation of pending replications (dispatch-replicate coordination).
constexpr std::uint64_t job_message_key(TopicId topic, SeqNo seq) {
  return (static_cast<std::uint64_t>(topic) << 40) ^
         (seq & ((1ull << 40) - 1));
}

}  // namespace frame
