#include "core/capacity.hpp"

#include <algorithm>

namespace frame {

double topic_utilization(const TopicSpec& spec, const TimingParams& params,
                         const DeliveryCostModel& costs, bool selective) {
  if (spec.period <= 0) return 0.0;
  const double rate = 1e9 / static_cast<double>(spec.period);
  const bool replicate =
      selective ? needs_replication(spec, params) : !spec.best_effort();
  double per_message = static_cast<double>(costs.dispatch);
  if (replicate) {
    per_message += static_cast<double>(costs.replicate) +
                   static_cast<double>(costs.coordination);
  }
  return rate * per_message / 1e9;  // core-seconds per second
}

CapacityReport analyze_capacity(const std::vector<TopicSpec>& specs,
                                const TimingParams& params,
                                const DeliveryCostModel& costs,
                                bool selective) {
  CapacityReport report;
  double replicated_rate = 0.0;
  double load = 0.0;
  for (const auto& spec : specs) {
    if (spec.period <= 0) continue;
    const double rate = 1e9 / static_cast<double>(spec.period);
    report.message_rate += rate;
    load += topic_utilization(spec, params, costs, selective);
    const bool replicate =
        selective ? needs_replication(spec, params) : !spec.best_effort();
    if (replicate) {
      ++report.replicated_topics;
      replicated_rate += rate;
    }
  }
  report.utilization = load / static_cast<double>(costs.delivery_cores);
  report.replicated_share =
      report.message_rate > 0 ? replicated_rate / report.message_rate : 0.0;
  report.schedulable = report.utilization <= 1.0;
  return report;
}

Status AdmissionController::admit(const TopicSpec& spec) {
  for (const auto& existing : admitted_) {
    if (existing.id == spec.id) {
      return Status(StatusCode::kInvalid, "topic id already admitted");
    }
  }
  const Status timing = admission_test(spec, params_);
  if (!timing.is_ok()) return timing;
  const double extra = topic_utilization(spec, params_, costs_, selective_) /
                       static_cast<double>(costs_.delivery_cores);
  if (utilization_ + extra > 1.0) {
    return Status(StatusCode::kRejected,
                  "delivery capacity exhausted: utilization would exceed 1");
  }
  utilization_ += extra;
  admitted_.push_back(spec);
  return Status::ok();
}

Status AdmissionController::release(TopicId topic) {
  const auto it =
      std::find_if(admitted_.begin(), admitted_.end(),
                   [&](const TopicSpec& spec) { return spec.id == topic; });
  if (it == admitted_.end()) {
    return Status(StatusCode::kNotFound, "topic not admitted");
  }
  utilization_ -= topic_utilization(*it, params_, costs_, selective_) /
                  static_cast<double>(costs_.delivery_cores);
  if (utilization_ < 0.0) utilization_ = 0.0;
  admitted_.erase(it);
  return Status::ok();
}

std::size_t AdmissionController::headroom(
    const std::vector<TopicSpec>& unit) const {
  double unit_load = 0.0;
  for (const auto& spec : unit) {
    const Status timing = admission_test(spec, params_);
    if (!timing.is_ok()) return 0;
    unit_load += topic_utilization(spec, params_, costs_, selective_) /
                 static_cast<double>(costs_.delivery_cores);
  }
  if (unit_load <= 0.0) return 0;
  const double slack = 1.0 - utilization_;
  if (slack <= 0.0) return 0;
  return static_cast<std::size_t>(slack / unit_load);
}

}  // namespace frame
