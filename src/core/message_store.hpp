// The Primary's Message Buffer (Section IV/V).
//
// Per-topic ring buffers of message copies, each carrying the coordination
// flags of Table 3 that belong to the Primary side: Dispatched and
// Replicated.  Entries are addressed by (topic, seq); because sequence
// numbers within a topic are consecutive, lookup is O(1) from the ring
// front.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ring_buffer.hpp"
#include "core/topic.hpp"
#include "net/message.hpp"

namespace frame {

struct StoredMessage {
  Message msg;
  bool dispatched = false;
  bool replicated = false;
  /// True while a replicate job for this copy may still be pending in the
  /// job queue; lets the Dispatch step cancel only jobs that exist.
  bool replicate_job_pending = false;
};

class MessageStore {
 public:
  /// `per_topic_capacity` bounds how many undelivered copies a topic can
  /// hold; an arrival evicting an undelivered copy is reported so callers
  /// can count drop-by-overwrite.
  explicit MessageStore(std::size_t per_topic_capacity = 64)
      : capacity_(per_topic_capacity) {}

  /// Declares topics [0, count).  Topic ids must be dense.
  void configure(std::size_t topic_count);

  std::size_t topic_count() const { return rings_.size(); }

  /// Inserts a copy of `msg`; returns the evicted entry if the topic ring
  /// was full.
  std::optional<StoredMessage> insert(const Message& msg);

  /// Entry lookup; nullptr when the copy is absent (never stored or already
  /// evicted).  The pointer is invalidated by the next insert to the topic.
  StoredMessage* find(TopicId topic, SeqNo seq);
  const StoredMessage* find(TopicId topic, SeqNo seq) const;

  /// Total entries across topics (O(topics); for tests/metrics).
  std::size_t size() const;

  /// Visits every stored entry, ascending topic, oldest first per topic.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& ring : rings_) {
      ring.for_each([&](StoredMessage& entry) { fn(entry); });
    }
  }

  void clear();

 private:
  RingBuffer<StoredMessage>* ring(TopicId topic);
  const RingBuffer<StoredMessage>* ring(TopicId topic) const;

  std::size_t capacity_;
  std::vector<RingBuffer<StoredMessage>> rings_;
};

}  // namespace frame
