// Capacity planning: utilisation-based schedulability analysis for the
// Message Delivery module.
//
// The paper's evaluation (Section VI) shows each configuration has a topic
// count beyond which the delivery module saturates and requirements start
// failing.  This module turns that observation into an a-priori analysis: a
// per-job cost model plus the per-topic replication decision yields the
// offered delivery utilisation, an EDF schedulability verdict (utilisation
// <= 1 on the delivery cores is sufficient for EDF with independent jobs),
// and the maximum Table-2-style workload a configuration can admit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/timing.hpp"
#include "core/topic.hpp"

namespace frame {

/// Per-job CPU costs of the delivery module (same quantities the simulator
/// charges; see sim::CostModel for the calibrated defaults).
struct DeliveryCostModel {
  Duration dispatch = microseconds_f(2.25);
  Duration replicate = microseconds(7);
  Duration coordination = microseconds(31);
  int delivery_cores = 2;
};

/// Offered load of one topic on the delivery module, in core-seconds per
/// second (i.e. utilisation of a single core).
double topic_utilization(const TopicSpec& spec, const TimingParams& params,
                         const DeliveryCostModel& costs, bool selective);

/// Aggregate analysis of a topic set under a configuration.
struct CapacityReport {
  double utilization = 0.0;        ///< offered load / total core capacity
  double replicated_share = 0.0;   ///< fraction of messages replicated
  double message_rate = 0.0;       ///< messages per second
  bool schedulable = false;        ///< utilisation <= 1 (EDF sufficient test)
  std::size_t replicated_topics = 0;
};

CapacityReport analyze_capacity(const std::vector<TopicSpec>& specs,
                                const TimingParams& params,
                                const DeliveryCostModel& costs,
                                bool selective);

/// Admission controller: tracks admitted topics, enforcing both the
/// per-topic timing admission test (Lemmas 1-2) and the aggregate
/// delivery-capacity bound.  This is the "admission test" of Section
/// III-D.1 promoted to a stateful front door.
class AdmissionController {
 public:
  AdmissionController(TimingParams params, DeliveryCostModel costs,
                      bool selective)
      : params_(params), costs_(costs), selective_(selective) {}

  /// Attempts to admit `spec`; on success the topic counts against the
  /// capacity budget.  Fails with kRejected and a reason otherwise.
  Status admit(const TopicSpec& spec);

  /// Removes a previously admitted topic, releasing its budget.
  Status release(TopicId topic);

  double utilization() const { return utilization_; }
  std::size_t admitted_count() const { return admitted_.size(); }
  const std::vector<TopicSpec>& admitted() const { return admitted_; }

  /// The largest multiple of `unit` (a template of topics, e.g. one of
  /// each Table-2 bulk category) that still fits next to the already
  /// admitted set.  Useful for "how many more sensors can this edge take".
  std::size_t headroom(const std::vector<TopicSpec>& unit) const;

 private:
  TimingParams params_;
  DeliveryCostModel costs_;
  bool selective_;
  std::vector<TopicSpec> admitted_;
  double utilization_ = 0.0;
};

}  // namespace frame
