#include "core/config_file.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace frame {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string_view strip_comment(std::string_view line) {
  const std::size_t pos = line.find_first_of("#;");
  if (pos != std::string_view::npos) line = line.substr(0, pos);
  return trim(line);
}

bool parse_double(std::string_view value, double& out) {
  try {
    std::size_t consumed = 0;
    const std::string text(value);
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

Status error_at(int line, const std::string& message) {
  return Status(StatusCode::kInvalid,
                "line " + std::to_string(line) + ": " + message);
}

/// Topic section under construction; flushed on section change / EOF.
struct PendingTopic {
  double period_ms = -1;
  double deadline_ms = -1;
  std::uint32_t loss_tolerance = 0;
  bool loss_set = false;
  std::uint32_t retention = 0;
  Destination destination = Destination::kEdge;
  std::size_t count = 1;
  int start_line = 0;
};

Status flush_topic(const PendingTopic& pending, TopicId& next_id,
                   std::vector<TopicSpec>& topics, std::vector<int>& groups,
                   int group) {
  if (pending.period_ms <= 0) {
    return error_at(pending.start_line, "topic needs a positive period_ms");
  }
  if (pending.deadline_ms <= 0) {
    return error_at(pending.start_line, "topic needs a positive deadline_ms");
  }
  if (!pending.loss_set) {
    return error_at(pending.start_line, "topic needs loss_tolerance");
  }
  for (std::size_t i = 0; i < pending.count; ++i) {
    TopicSpec spec;
    spec.id = next_id++;
    spec.period = milliseconds_f(pending.period_ms);
    spec.deadline = milliseconds_f(pending.deadline_ms);
    spec.loss_tolerance = pending.loss_tolerance;
    spec.retention = pending.retention;
    spec.destination = pending.destination;
    topics.push_back(spec);
    groups.push_back(group);
  }
  return Status::ok();
}

}  // namespace

Result<DeploymentConfig> parse_deployment_config(std::string_view text) {
  DeploymentConfig config;
  enum class Section { kNone, kTiming, kTopic };
  Section section = Section::kNone;
  PendingTopic pending;
  bool topic_open = false;
  TopicId next_id = 0;
  int group = 0;

  int line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    std::string_view raw =
        end == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;

    const std::string_view line = strip_comment(raw);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') return error_at(line_no, "unterminated section");
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (topic_open) {
        const Status flushed = flush_topic(pending, next_id, config.topics,
                                           config.groups, group++);
        if (!flushed.is_ok()) return flushed;
        topic_open = false;
      }
      if (name == "timing") {
        section = Section::kTiming;
      } else if (name == "topic") {
        section = Section::kTopic;
        pending = PendingTopic{};
        pending.start_line = line_no;
        topic_open = true;
      } else {
        return error_at(line_no, "unknown section [" + std::string(name) +
                                     "]");
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return error_at(line_no, "expected key = value");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    double number = 0;

    if (section == Section::kTiming) {
      if (!parse_double(value, number)) {
        return error_at(line_no, "bad number: " + std::string(value));
      }
      if (key == "delta_pb_ms") {
        config.timing.delta_pb = milliseconds_f(number);
      } else if (key == "delta_bs_edge_ms") {
        config.timing.delta_bs_edge = milliseconds_f(number);
      } else if (key == "delta_bs_cloud_ms") {
        config.timing.delta_bs_cloud = milliseconds_f(number);
      } else if (key == "delta_bb_ms") {
        config.timing.delta_bb = milliseconds_f(number);
      } else if (key == "failover_x_ms") {
        config.timing.failover_x = milliseconds_f(number);
      } else {
        return error_at(line_no, "unknown timing key: " + std::string(key));
      }
    } else if (section == Section::kTopic) {
      if (key == "destination") {
        if (value == "edge") {
          pending.destination = Destination::kEdge;
        } else if (value == "cloud") {
          pending.destination = Destination::kCloud;
        } else {
          return error_at(line_no,
                          "destination must be edge|cloud, got " +
                              std::string(value));
        }
        continue;
      }
      if (key == "loss_tolerance" && value == "inf") {
        pending.loss_tolerance = kLossInfinite;
        pending.loss_set = true;
        continue;
      }
      if (!parse_double(value, number)) {
        return error_at(line_no, "bad number: " + std::string(value));
      }
      if (key == "period_ms") {
        pending.period_ms = number;
      } else if (key == "deadline_ms") {
        pending.deadline_ms = number;
      } else if (key == "loss_tolerance") {
        if (number < 0) return error_at(line_no, "negative loss_tolerance");
        pending.loss_tolerance = static_cast<std::uint32_t>(number);
        pending.loss_set = true;
      } else if (key == "retention") {
        if (number < 0) return error_at(line_no, "negative retention");
        pending.retention = static_cast<std::uint32_t>(number);
      } else if (key == "count") {
        if (number < 1) return error_at(line_no, "count must be >= 1");
        pending.count = static_cast<std::size_t>(number);
      } else {
        return error_at(line_no, "unknown topic key: " + std::string(key));
      }
    } else {
      return error_at(line_no, "key outside any section");
    }
  }

  if (topic_open) {
    const Status flushed = flush_topic(pending, next_id, config.topics,
                                       config.groups, group);
    if (!flushed.is_ok()) return flushed;
  }
  return config;
}

Result<DeploymentConfig> load_deployment_config(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status(StatusCode::kNotFound, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_deployment_config(buffer.str());
}

std::string format_deployment_config(const DeploymentConfig& config) {
  std::ostringstream out;
  char buf[64];
  const auto ms = [&](Duration d) {
    std::snprintf(buf, sizeof(buf), "%g", to_millis(d));
    return std::string(buf);
  };
  out << "[timing]\n";
  out << "delta_pb_ms = " << ms(config.timing.delta_pb) << "\n";
  out << "delta_bs_edge_ms = " << ms(config.timing.delta_bs_edge) << "\n";
  out << "delta_bs_cloud_ms = " << ms(config.timing.delta_bs_cloud) << "\n";
  out << "delta_bb_ms = " << ms(config.timing.delta_bb) << "\n";
  out << "failover_x_ms = " << ms(config.timing.failover_x) << "\n";
  for (const auto& spec : config.topics) {
    out << "\n[topic]\n";
    out << "period_ms = " << ms(spec.period) << "\n";
    out << "deadline_ms = " << ms(spec.deadline) << "\n";
    if (spec.best_effort()) {
      out << "loss_tolerance = inf\n";
    } else {
      out << "loss_tolerance = " << spec.loss_tolerance << "\n";
    }
    out << "retention = " << spec.retention << "\n";
    out << "destination = "
        << (spec.destination == Destination::kEdge ? "edge" : "cloud")
        << "\n";
  }
  return out.str();
}

}  // namespace frame
