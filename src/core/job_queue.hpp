// The EDF Job Queue (Section IV-A) with a FIFO mode for the baselines.
//
// EDF mode orders jobs by absolute deadline (ties broken by arrival order);
// FIFO mode orders purely by arrival order, which is how the FCFS and FCFS−
// baselines process work.
//
// Dispatch-replicate coordination needs to cancel a pending replication when
// the corresponding message has already been dispatched (Table 3, Dispatch
// step 3 / Replicate step 1).  Cancellation is lazy: cancelled keys are
// recorded in a hash set and matching replicate jobs are dropped at pop
// time, keeping both cancel and pop O(log n).  A pending-replicate refcount
// bounds the cancelled set: cancelling a key whose replicate job already
// left the heap (popped by a concurrent worker lane, or never enqueued) is
// a no-op instead of an entry that nothing will ever erase.
#pragma once

#include <cstddef>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/job.hpp"
#include "obs/obs.hpp"

namespace frame {

enum class SchedulingPolicy : std::uint8_t {
  kEdf = 0,
  kFifo = 1,
};

class JobQueue {
 public:
  explicit JobQueue(SchedulingPolicy policy = SchedulingPolicy::kEdf)
      : policy_(policy) {}

  SchedulingPolicy policy() const { return policy_; }

  void push(Job job) {
    if (job.kind == JobKind::kReplicate) {
      ++pending_replicates_[job_message_key(job.topic, job.seq)];
    }
    heap_.push(HeapItem{policy_, std::move(job)});
    obs::hooks::job_queue_depth(heap_.size());
  }

  /// Removes and returns the next runnable job, skipping replicate jobs
  /// whose message key has been cancelled.
  std::optional<Job> pop();

  /// Next runnable job without removing it (skips cancelled ones).
  std::optional<Job> peek();

  /// Cancels any pending replicate job for (topic, seq).  Idempotent; safe
  /// to call when no such job exists — a no-op when no replicate job for
  /// the key is still queued (it was already popped, or never enqueued),
  /// so the cancelled set only ever holds keys a future pop will erase.
  void cancel_replication(TopicId topic, SeqNo seq) {
    const std::uint64_t key = job_message_key(topic, seq);
    if (pending_replicates_.find(key) == pending_replicates_.end()) return;
    cancelled_.insert(key);
  }

  bool empty() { return !peek().has_value(); }

  /// Jobs currently stored, including not-yet-skipped cancelled ones.
  std::size_t raw_size() const { return heap_.size(); }

  /// Number of replicate jobs dropped due to cancellation so far.
  std::uint64_t cancelled_drops() const { return cancelled_drops_; }

  /// Cancelled keys whose replicate job has not yet been dropped.  Bounded
  /// by the replicate jobs still in the heap (leak regression guard).
  std::size_t cancelled_size() const { return cancelled_.size(); }

  /// Message keys with at least one replicate job still queued.
  std::size_t pending_replicate_keys() const {
    return pending_replicates_.size();
  }

  void clear();

 private:
  struct HeapItem {
    SchedulingPolicy policy;
    Job job;
    bool operator<(const HeapItem& other) const {
      if (policy == SchedulingPolicy::kEdf) {
        if (job.deadline != other.job.deadline) {
          return job.deadline > other.job.deadline;  // min-heap on deadline
        }
      }
      return job.order > other.job.order;  // min-heap on arrival order
    }
  };

  bool drop_if_cancelled();
  void note_replicate_removed(const Job& job);

  SchedulingPolicy policy_;
  std::priority_queue<HeapItem> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  /// Replicate jobs still in the heap, by message key; keeps cancelled_
  /// bounded (cancel of an absent key is a no-op, removal erases both).
  std::unordered_map<std::uint64_t, std::uint32_t> pending_replicates_;
  std::uint64_t cancelled_drops_ = 0;
};

}  // namespace frame
