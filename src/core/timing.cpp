#include "core/timing.hpp"

#include <cstdint>

namespace frame {

namespace {

/// (Ni + Li)·Ti with saturation: Li = ∞ or overflow yields infinite.
Duration loss_window(const TopicSpec& spec) {
  if (spec.best_effort()) return kDurationInfinite;
  const auto factor = static_cast<std::int64_t>(spec.retention) +
                      static_cast<std::int64_t>(spec.loss_tolerance);
  const __int128 window =
      static_cast<__int128>(factor) * static_cast<__int128>(spec.period);
  if (window >= static_cast<__int128>(kDurationInfinite)) {
    return kDurationInfinite;
  }
  return static_cast<Duration>(window);
}

Duration subtract_saturating(Duration lhs, Duration rhs) {
  if (lhs == kDurationInfinite) return kDurationInfinite;
  return lhs - rhs;
}

}  // namespace

Duration replication_pseudo_deadline(const TopicSpec& spec,
                                     const TimingParams& params) {
  const Duration window = loss_window(spec);
  return subtract_saturating(window, params.delta_bb + params.failover_x);
}

Duration dispatch_pseudo_deadline(const TopicSpec& spec,
                                  const TimingParams& params) {
  return spec.deadline - params.delta_bs(spec.destination);
}

Duration replication_deadline(const TopicSpec& spec,
                              const TimingParams& params) {
  return subtract_saturating(replication_pseudo_deadline(spec, params),
                             params.delta_pb);
}

Duration dispatch_deadline(const TopicSpec& spec,
                           const TimingParams& params) {
  return dispatch_pseudo_deadline(spec, params) - params.delta_pb;
}

Duration apply_observed_delta_pb(Duration pseudo_deadline,
                                 Duration observed_delta_pb) {
  return subtract_saturating(pseudo_deadline, observed_delta_pb);
}

bool needs_replication(const TopicSpec& spec, const TimingParams& params) {
  if (spec.best_effort()) return false;
  // Proposition 1: suppression is sufficient when Dd <= Dr.  Both sides
  // share the −ΔPB term, so pseudo deadlines decide it.
  const Duration dd = dispatch_pseudo_deadline(spec, params);
  const Duration dr = replication_pseudo_deadline(spec, params);
  return dd > dr;
}

Status admission_test(const TopicSpec& spec, const TimingParams& params) {
  // Ti = ∞ (rare, time-critical messages, Section III-D.4) is modelled by a
  // huge period, never by a non-positive one.
  if (spec.period <= 0) {
    return Status(StatusCode::kInvalid, "topic period must be positive");
  }
  if (dispatch_deadline(spec, params) < 0) {
    return Status(StatusCode::kRejected,
                  "dispatch deadline negative: Di too small for "
                  "DeltaPB + DeltaBS");
  }
  const Duration dr = replication_deadline(spec, params);
  if (dr != kDurationInfinite && dr < 0) {
    return Status(StatusCode::kRejected,
                  "replication deadline negative: increase Ni or Li");
  }
  return Status::ok();
}

std::uint32_t min_retention_for_admission(const TopicSpec& spec,
                                          const TimingParams& params) {
  if (spec.best_effort()) return 0;
  // Need (Ni + Li)·Ti >= ΔPB + ΔBB + x.
  const Duration budget =
      params.delta_pb + params.delta_bb + params.failover_x;
  const std::int64_t needed =
      (budget + spec.period - 1) / spec.period;  // ceil division
  const std::int64_t ni =
      needed - static_cast<std::int64_t>(spec.loss_tolerance);
  return ni > 0 ? static_cast<std::uint32_t>(ni) : 0;
}

TopicTiming compute_topic_timing(const TopicSpec& spec,
                                 const TimingParams& params, bool selective) {
  TopicTiming timing;
  timing.dispatch_pseudo_deadline = dispatch_pseudo_deadline(spec, params);
  timing.replication_pseudo_deadline =
      replication_pseudo_deadline(spec, params);
  if (spec.best_effort()) {
    timing.replicate = false;
  } else if (selective) {
    timing.replicate = needs_replication(spec, params);
  } else {
    timing.replicate = true;
  }
  return timing;
}

}  // namespace frame
