#include "core/retention_buffer.hpp"

#include <algorithm>

namespace frame {

void RetentionBuffer::add_topic(TopicId topic, std::size_t retention) {
  rings_.emplace(topic, RingBuffer<Message>(retention));
}

void RetentionBuffer::retain(const Message& msg) {
  auto it = rings_.find(msg.topic);
  if (it == rings_.end()) return;
  it->second.push_back(msg);
}

std::vector<Message> RetentionBuffer::retained(TopicId topic) const {
  std::vector<Message> out;
  auto it = rings_.find(topic);
  if (it == rings_.end()) return out;
  out.reserve(it->second.size());
  it->second.for_each([&](const Message& msg) { out.push_back(msg); });
  return out;
}

std::vector<Message> RetentionBuffer::all_retained() const {
  std::vector<Message> out;
  for (const auto& [topic, ring] : rings_) {
    ring.for_each([&](const Message& msg) { out.push_back(msg); });
  }
  // Deterministic order: ascending topic, then sequence (the map itself is
  // unordered).
  std::sort(out.begin(), out.end(), [](const Message& a, const Message& b) {
    if (a.topic != b.topic) return a.topic < b.topic;
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace frame
