#include "core/job_queue.hpp"

#include "core/job.hpp"

namespace frame {

std::string_view to_string(JobKind kind) {
  return kind == JobKind::kDispatch ? "dispatch" : "replicate";
}

void JobQueue::note_replicate_removed(const Job& job) {
  const std::uint64_t key = job_message_key(job.topic, job.seq);
  const auto it = pending_replicates_.find(key);
  if (it == pending_replicates_.end()) return;
  if (--it->second == 0) {
    pending_replicates_.erase(it);
    // No replicate job for this key remains in the heap, so a cancelled
    // entry has nothing left to drop — erase it or it leaks forever.
    cancelled_.erase(key);
  }
}

bool JobQueue::drop_if_cancelled() {
  const Job& top = heap_.top().job;
  if (top.kind != JobKind::kReplicate) return false;
  const auto it = cancelled_.find(job_message_key(top.topic, top.seq));
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  const Job dropped = top;
  heap_.pop();
  note_replicate_removed(dropped);
  ++cancelled_drops_;
  obs::hooks::replication_cancelled_drop();
  // The drop changes the stored depth just like a pop does; without this
  // the depth gauge goes stale after cancelled-replication drops.
  obs::hooks::job_queue_depth(heap_.size());
  return true;
}

std::optional<Job> JobQueue::pop() {
  while (!heap_.empty()) {
    if (drop_if_cancelled()) continue;
    Job job = heap_.top().job;
    heap_.pop();
    if (job.kind == JobKind::kReplicate) note_replicate_removed(job);
    obs::hooks::job_queue_depth(heap_.size());
    return job;
  }
  return std::nullopt;
}

std::optional<Job> JobQueue::peek() {
  while (!heap_.empty()) {
    if (drop_if_cancelled()) continue;
    return heap_.top().job;
  }
  return std::nullopt;
}

void JobQueue::clear() {
  heap_ = {};
  cancelled_.clear();
  pending_replicates_.clear();
  obs::hooks::job_queue_depth(0);
}

}  // namespace frame
