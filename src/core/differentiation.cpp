#include "core/differentiation.hpp"

#include <algorithm>

namespace frame {

std::vector<DeadlineEntry> deadline_ordering(
    const std::vector<TopicSpec>& specs, const TimingParams& params) {
  std::vector<DeadlineEntry> entries;
  entries.reserve(specs.size() * 2);
  for (const auto& spec : specs) {
    entries.push_back(DeadlineEntry{spec.id, JobKind::kDispatch,
                                    dispatch_pseudo_deadline(spec, params)});
    if (!spec.best_effort()) {
      entries.push_back(
          DeadlineEntry{spec.id, JobKind::kReplicate,
                        replication_pseudo_deadline(spec, params)});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const DeadlineEntry& a, const DeadlineEntry& b) {
                     return a.pseudo_deadline < b.pseudo_deadline;
                   });
  return entries;
}

std::vector<TopicId> replication_set(const std::vector<TopicSpec>& specs,
                                     const TimingParams& params) {
  std::vector<TopicId> out;
  for (const auto& spec : specs) {
    if (needs_replication(spec, params)) out.push_back(spec.id);
  }
  return out;
}

std::vector<TopicSpec> with_extra_retention(
    const std::vector<TopicSpec>& specs, const TimingParams& params,
    std::uint32_t extra) {
  std::vector<TopicSpec> out = specs;
  for (auto& spec : out) {
    if (needs_replication(spec, params)) spec.retention += extra;
  }
  return out;
}

std::vector<AdmissionFailure> admit_all(const std::vector<TopicSpec>& specs,
                                        const TimingParams& params) {
  std::vector<AdmissionFailure> failures;
  for (const auto& spec : specs) {
    const Status status = admission_test(spec, params);
    if (!status.is_ok()) {
      failures.push_back(AdmissionFailure{spec.id, status.to_string()});
    }
  }
  return failures;
}

}  // namespace frame
