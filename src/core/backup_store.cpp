#include "core/backup_store.hpp"

#include "obs/obs.hpp"

namespace frame {

void BackupStore::configure(std::size_t topic_count) {
  rings_.clear();
  rings_.reserve(topic_count);
  for (std::size_t i = 0; i < topic_count; ++i) {
    rings_.emplace_back(capacity_);
  }
}

void BackupStore::insert(const Message& msg, TimePoint replica_arrival) {
  if (msg.topic >= rings_.size()) return;
  rings_[msg.topic].push_back(BackupEntry{msg, false, replica_arrival});
  obs::hooks::backup_replica_stored(msg.topic, msg.seq, replica_arrival,
                                    msg.trace_id);
}

bool BackupStore::prune(TopicId topic, SeqNo seq) {
  if (topic >= rings_.size()) return false;
  auto& ring = rings_[topic];
  for (std::size_t i = ring.size(); i-- > 0;) {
    if (ring.at(i).msg.seq == seq) {
      ring.at(i).discard = true;
      obs::hooks::backup_prune_applied(topic);
      return true;
    }
  }
  return false;
}

std::size_t BackupStore::live_count() const {
  std::size_t total = 0;
  for_each_live([&](const BackupEntry&) { ++total; });
  return total;
}

std::size_t BackupStore::size() const {
  std::size_t total = 0;
  for (const auto& ring : rings_) total += ring.size();
  return total;
}

std::size_t BackupStore::live_count(TopicId topic) const {
  if (topic >= rings_.size()) return 0;
  std::size_t total = 0;
  rings_[topic].for_each([&](const BackupEntry& entry) {
    if (!entry.discard) ++total;
  });
  return total;
}

void BackupStore::clear() {
  for (auto& ring : rings_) ring.clear();
}

}  // namespace frame
