// The publisher's Retention Buffer (Section III-B).
//
// A publisher retains the Ni latest messages it has sent to the Primary.
// When the publisher detects a Primary crash (after its fail-over time x),
// it redirects traffic to the Backup and re-sends every retained message.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace frame {

class RetentionBuffer {
 public:
  /// Registers a topic with retention depth Ni (may be zero: no retention).
  void add_topic(TopicId topic, std::size_t retention);

  /// Records a just-sent message; evicts the oldest beyond Ni.  Messages of
  /// unregistered topics are not retained.
  void retain(const Message& msg);

  /// All currently retained messages for `topic`, oldest first.
  std::vector<Message> retained(TopicId topic) const;

  /// All retained messages across topics (the failover resend set),
  /// oldest-first within each topic.
  std::vector<Message> all_retained() const;

  std::size_t topic_count() const { return rings_.size(); }

 private:
  std::unordered_map<TopicId, RingBuffer<Message>> rings_;
};

}  // namespace frame
