// The Backup Buffer (Sections IV-B, VI-C).
//
// Per-topic ring buffers of replicas held by the Backup broker.  Each entry
// carries the Discard flag of Table 3; the Primary sets it (via a prune
// request) once the original copy has been dispatched.  On promotion, the
// recovery pass dispatches only entries whose Discard flag is still false —
// this pruning is what decouples the recovery latency penalty from the
// buffer size (Section VI-C).
//
// The paper's evaluation sizes this ring at ten entries per topic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ring_buffer.hpp"
#include "core/topic.hpp"
#include "net/message.hpp"

namespace frame {

struct BackupEntry {
  Message msg;
  bool discard = false;
  TimePoint replica_arrival = 0;  ///< tb: when the Backup received the copy
};

class BackupStore {
 public:
  inline static constexpr std::size_t kDefaultPerTopicCapacity = 10;

  explicit BackupStore(
      std::size_t per_topic_capacity = kDefaultPerTopicCapacity)
      : capacity_(per_topic_capacity) {}

  void configure(std::size_t topic_count);

  std::size_t topic_count() const { return rings_.size(); }

  /// Stores a replica; evicts the oldest entry when the topic ring is full.
  void insert(const Message& msg, TimePoint replica_arrival);

  /// Prune request from the Primary: mark (topic, seq) Discard.  A prune
  /// for a copy that never arrived (or was evicted) records a pending
  /// prune no-op; returns whether an entry was marked.
  bool prune(TopicId topic, SeqNo seq);

  /// Visits entries that survived pruning (Discard == false), oldest first
  /// per topic, in ascending topic order.  Used by the recovery planner.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (const auto& ring : rings_) {
      ring.for_each([&](const BackupEntry& entry) {
        if (!entry.discard) fn(entry);
      });
    }
  }

  /// Total live (non-discarded) entries.
  std::size_t live_count() const;

  /// Total entries including discarded ones.
  std::size_t size() const;

  /// Entries per topic still live; for tests.
  std::size_t live_count(TopicId topic) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<RingBuffer<BackupEntry>> rings_;
};

}  // namespace frame
