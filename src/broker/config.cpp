#include "broker/config.hpp"

namespace frame {

std::string_view to_string(ConfigName name) {
  switch (name) {
    case ConfigName::kFrame:
      return "FRAME";
    case ConfigName::kFramePlus:
      return "FRAME+";
    case ConfigName::kFcfs:
      return "FCFS";
    case ConfigName::kFcfsMinus:
      return "FCFS-";
  }
  return "?";
}

BrokerConfig broker_config(ConfigName name) {
  BrokerConfig config;
  switch (name) {
    case ConfigName::kFrame:
    case ConfigName::kFramePlus:
      config.scheduling = SchedulingPolicy::kEdf;
      config.selective_replication = true;
      config.coordination = true;
      break;
    case ConfigName::kFcfs:
      config.scheduling = SchedulingPolicy::kFifo;
      config.selective_replication = false;
      config.coordination = true;
      break;
    case ConfigName::kFcfsMinus:
      config.scheduling = SchedulingPolicy::kFifo;
      config.selective_replication = false;
      config.coordination = false;
      break;
  }
  return config;
}

}  // namespace frame
