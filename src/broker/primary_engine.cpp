#include "broker/primary_engine.hpp"

#include <algorithm>
#include <cassert>

#include "obs/obs.hpp"
#include "obs/slo.hpp"

namespace frame {

namespace {
/// Remaining slack until an absolute deadline (core/timing.hpp laxity —
/// the headroom value the SLO monitor bins).
Duration slack_until(TimePoint deadline, TimePoint now) {
  return laxity(deadline, now);
}
}  // namespace

PrimaryEngine::PrimaryEngine(BrokerConfig config, std::vector<TopicSpec> specs,
                             TimingParams params)
    : config_(config),
      specs_(std::move(specs)),
      params_(params),
      store_(config.message_buffer_capacity),
      queue_(config.scheduling) {
  timings_.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    assert(specs_[i].id == static_cast<TopicId>(i) && "topic ids must be dense");
    timings_.push_back(compute_topic_timing(specs_[i], params_,
                                            config_.selective_replication));
  }
  subscribers_.resize(specs_.size());
  store_.configure(specs_.size());
  // Install the topic table in the deadline accountant so slack/loss hooks
  // can attribute to Li/Di.  Only when observability is live: the sim runs
  // tens of thousands of topics with obs off and must not pay the slots.
  if (obs::enabled()) {
    obs::accountant().configure(specs_);
    obs::slo().configure(specs_);
  }
}

void PrimaryEngine::subscribe(TopicId topic, NodeId subscriber) {
  if (topic >= subscribers_.size()) return;
  auto& subs = subscribers_[topic];
  if (std::find(subs.begin(), subs.end(), subscriber) == subs.end()) {
    subs.push_back(subscriber);
  }
}

void PrimaryEngine::generate_jobs(const Message& msg, TimePoint now,
                                  JobSource source, bool allow_replication) {
  const TopicTiming& timing = timings_[msg.topic];
  // The Job Generator subtracts the observed ΔPB = tp − tc from the pseudo
  // relative deadlines (Section IV-A) and stamps absolute deadlines tp + D.
  const Duration observed_delta_pb = now - msg.created_at;

  // Replicate job first: under FIFO ordering the baselines replicate and
  // then dispatch (Section VI-A); under EDF the deadline decides anyway.
  if (allow_replication && timing.replicate) {
    Job job;
    job.kind = JobKind::kReplicate;
    job.source = source;
    job.topic = msg.topic;
    job.seq = msg.seq;
    job.release = now;
    job.deadline = time_add(
        now, apply_observed_delta_pb(timing.replication_pseudo_deadline,
                                     observed_delta_pb));
    job.order = next_order_++;
    queue_.push(job);
    ++stats_.replicate_jobs_created;
    if (obs::enabled()) {
      obs::hooks::job_enqueue(msg.topic, msg.seq, now, /*replicate=*/true,
                              kDurationInfinite,
                              slack_until(job.deadline, now), msg.trace_id);
    }
    if (auto* entry = store_.find(msg.topic, msg.seq)) {
      entry->replicate_job_pending = true;
    }
  }

  Job job;
  job.kind = JobKind::kDispatch;
  job.source = source;
  job.topic = msg.topic;
  job.seq = msg.seq;
  job.release = now;
  job.deadline =
      time_add(now, apply_observed_delta_pb(timing.dispatch_pseudo_deadline,
                                            observed_delta_pb));
  job.order = next_order_++;
  queue_.push(job);
  ++stats_.dispatch_jobs_created;
  if (obs::enabled()) {
    obs::hooks::job_enqueue(msg.topic, msg.seq, now, /*replicate=*/false,
                            slack_until(job.deadline, now), kDurationInfinite,
                            msg.trace_id);
  }
}

void PrimaryEngine::on_publish(const Message& msg, TimePoint now,
                               bool allow_replication) {
  if (msg.topic >= specs_.size()) return;
  ++stats_.arrivals;
  if (obs::enabled()) {
    obs::hooks::proxy_admit(msg.topic, msg.seq, now, now - msg.created_at,
                            /*recovery=*/false, msg.trace_id);
  }
  Message stored = msg;
  stored.broker_arrival = now;
  if (auto evicted = store_.insert(stored)) {
    if (!evicted->dispatched) {
      ++stats_.overwritten_undelivered;
      obs::hooks::copy_dropped(evicted->msg.topic, evicted->msg.seq, now);
    }
  }
  generate_jobs(stored, now, JobSource::kMessageBuffer, allow_replication);
}

void PrimaryEngine::on_recovery_copy(const Message& msg, TimePoint now) {
  if (msg.topic >= specs_.size()) return;
  ++stats_.recovery_arrivals;
  if (obs::enabled()) {
    obs::hooks::proxy_admit(msg.topic, msg.seq, now, now - msg.created_at,
                            /*recovery=*/true, msg.trace_id);
  }
  Message stored = msg;
  stored.broker_arrival = now;
  stored.recovered = true;
  if (auto evicted = store_.insert(stored)) {
    if (!evicted->dispatched) {
      ++stats_.overwritten_undelivered;
      obs::hooks::copy_dropped(evicted->msg.topic, evicted->msg.seq, now);
    }
  }
  // Jobs reference the Backup Buffer and never create replication: the
  // promoted Backup has no Backup of its own (Section IV-A).
  generate_jobs(stored, now, JobSource::kBackupBuffer,
                /*allow_replication=*/false);
}

std::optional<Job> PrimaryEngine::next_job() { return queue_.pop(); }

DispatchEffect PrimaryEngine::execute_dispatch(const Job& job,
                                               TimePoint now) {
  DispatchEffect effect;
  StoredMessage* entry = store_.find(job.topic, job.seq);
  if (entry == nullptr) {
    ++stats_.stale_jobs;
    obs::hooks::copy_dropped(job.topic, job.seq, now);
    return effect;
  }
  // Table 3, Dispatch: (1) dispatch to the subscriber(s).
  effect.executed = true;
  effect.msg = entry->msg;
  effect.subscribers = subscribers_[job.topic];
  // (2) set Dispatched to True.
  entry->dispatched = true;
  ++stats_.dispatches_executed;
  if (obs::enabled()) {
    obs::hooks::dispatch_executed(job.topic, job.seq, now,
                                  slack_until(job.deadline, now),
                                  entry->msg.trace_id);
  }
  if (config_.coordination) {
    if (entry->replicated) {
      // (3) if Replicated, request the Backup to set Discard to True.
      effect.prune_backup = true;
      effect.coordinated = true;
      ++stats_.prune_requests;
    } else if (entry->replicate_job_pending) {
      // Section IV-B: cancel the pending replication job, if any.
      queue_.cancel_replication(job.topic, job.seq);
      entry->replicate_job_pending = false;
      effect.coordinated = true;
      ++stats_.replicate_jobs_cancelled;
    }
  }
  return effect;
}

ReplicateEffect PrimaryEngine::execute_replicate(const Job& job,
                                                 TimePoint now) {
  ReplicateEffect effect;
  StoredMessage* entry = store_.find(job.topic, job.seq);
  if (entry == nullptr) {
    ++stats_.stale_jobs;
    obs::hooks::copy_dropped(job.topic, job.seq, now);
    return effect;
  }
  entry->replicate_job_pending = false;
  // Table 3, Replicate: (1) if Dispatched is True, abort.
  if (config_.coordination && entry->dispatched) {
    effect.aborted_dispatched = true;
    ++stats_.replications_aborted;
    return effect;
  }
  // (2) replicate the message to the Backup; (3) set Replicated to True.
  effect.executed = true;
  effect.msg = entry->msg;
  entry->replicated = true;
  ++stats_.replications_executed;
  if (obs::enabled()) {
    obs::hooks::replicate_executed(job.topic, job.seq, now,
                                   slack_until(job.deadline, now),
                                   entry->msg.trace_id);
  }
  return effect;
}

std::vector<Message> PrimaryEngine::backup_sync_set() {
  std::vector<Message> sync;
  store_.for_each([&](StoredMessage& entry) {
    if (entry.dispatched) return;
    if (entry.msg.topic >= timings_.size()) return;
    if (!timings_[entry.msg.topic].replicate) return;
    entry.replicated = true;
    sync.push_back(entry.msg);
  });
  return sync;
}

}  // namespace frame
