// Broker configuration: the four configurations of the paper's evaluation
// expressed as policy knobs on one implementation (Section VI-A).
//
//   FRAME   EDF scheduling, Proposition-1 selective replication,
//           dispatch-replicate coordination.
//   FRAME+  same broker policies as FRAME; the *workload* additionally
//           raises Ni by one for the categories that would replicate,
//           which removes replication entirely (use
//           with_extra_retention()).
//   FCFS    no differentiation: FIFO handling, every non-best-effort topic
//           replicated (replicate before dispatch), coordination on.
//   FCFS-   FCFS without dispatch-replicate coordination.
#pragma once

#include <cstddef>
#include <string_view>

#include "core/backup_store.hpp"
#include "core/job_queue.hpp"

namespace frame {

struct BrokerConfig {
  SchedulingPolicy scheduling = SchedulingPolicy::kEdf;
  bool selective_replication = true;  ///< apply Proposition 1
  bool coordination = true;           ///< Table 3 dispatch-replicate coordination
  std::size_t message_buffer_capacity = 64;
  std::size_t backup_buffer_capacity = BackupStore::kDefaultPerTopicCapacity;
};

enum class ConfigName { kFrame, kFramePlus, kFcfs, kFcfsMinus };

std::string_view to_string(ConfigName name);

/// Broker policy preset for a named configuration.  FRAME+ shares FRAME's
/// broker policies; its difference is the workload retention bump.
BrokerConfig broker_config(ConfigName name);

/// True for configurations whose workload applies the +1 retention bump.
constexpr bool uses_retention_bump(ConfigName name) {
  return name == ConfigName::kFramePlus;
}

}  // namespace frame
