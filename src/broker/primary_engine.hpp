// The Primary broker's state machine: Message Proxy + Job Generator +
// EDF Job Queue + the Primary side of dispatch-replicate coordination
// (paper Sections IV-A and IV-B, Table 3).
//
// The engine is clock-agnostic and single-threaded by contract: a driver
// (the discrete-event simulator or the real-thread runtime) feeds it
// arrivals and pops/executes jobs, passing explicit timestamps.  All
// network and CPU effects are returned as value objects for the driver to
// realise, which keeps the paper's algorithms in exactly one place.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "broker/config.hpp"
#include "core/job.hpp"
#include "core/job_queue.hpp"
#include "core/message_store.hpp"
#include "core/timing.hpp"
#include "core/topic.hpp"
#include "net/message.hpp"

namespace frame {

/// Result of executing a dispatch job.
struct DispatchEffect {
  bool executed = false;  ///< false: referenced copy no longer in the buffer
  Message msg;
  std::vector<NodeId> subscribers;  ///< deliver to each of these
  bool prune_backup = false;  ///< coordination: tell Backup to set Discard
  bool coordinated = false;   ///< any coordination work happened (prune or
                              ///< replicate-job cancellation)
};

/// Result of executing a replicate job.
struct ReplicateEffect {
  bool executed = false;  ///< false: aborted (already dispatched) or stale
  bool aborted_dispatched = false;  ///< Table 3 Replicate step 1 fired
  Message msg;
};

class PrimaryEngine {
 public:
  /// `specs` must have dense ids 0..specs.size()-1.
  PrimaryEngine(BrokerConfig config, std::vector<TopicSpec> specs,
                TimingParams params);

  /// Registers a subscriber for a topic.  Multiple subscribers share one
  /// dispatch job per message (Section IV-A).
  void subscribe(TopicId topic, NodeId subscriber);

  const TopicSpec& spec(TopicId topic) const { return specs_[topic]; }
  const TopicTiming& timing(TopicId topic) const { return timings_[topic]; }
  std::size_t topic_count() const { return specs_.size(); }
  bool replicates(TopicId topic) const { return timings_[topic].replicate; }

  /// Message Proxy entry point: copies the message into the Message Buffer
  /// and runs the Job Generator (dispatch job, plus a replicate job unless
  /// suppressed).  `now` is tp, the broker arrival time.
  /// `allow_replication` is cleared by the promoted Backup, which has no
  /// Backup of its own to replicate to.
  void on_publish(const Message& msg, TimePoint now,
                  bool allow_replication = true);

  /// Recovery path (promoted Backup): same as an arrival, except the job
  /// references the Backup Buffer, no replication is created, and ΔPB
  /// reflects the recovery processing time (Section IV-A).
  void on_recovery_copy(const Message& msg, TimePoint now);

  /// Message Delivery: pops the next runnable job (EDF or FIFO order).
  std::optional<Job> next_job();
  bool has_jobs() { return !queue_.empty(); }
  std::size_t queued_jobs() const { return queue_.raw_size(); }

  /// Executes a dispatch job (Table 3, Dispatch row): marks Dispatched,
  /// requests a Backup prune if the copy was already replicated, and
  /// cancels the pending replicate job otherwise.  Coordination steps are
  /// skipped when the configuration disables them (FCFS-).
  /// `now` is the execution timestamp; drivers pass it so observability can
  /// account the remaining Lemma-2 slack (kTimeNever = unknown, no slack
  /// accounting).
  DispatchEffect execute_dispatch(const Job& job, TimePoint now = kTimeNever);

  /// Executes a replicate job (Table 3, Replicate row): aborts if the copy
  /// was already dispatched (coordination on), else marks Replicated and
  /// returns the replica to send.  `now` as in execute_dispatch (Lemma 1).
  ReplicateEffect execute_replicate(const Job& job,
                                    TimePoint now = kTimeNever);

  /// Backup reintegration: when a fresh Backup (re)joins, it must receive a
  /// copy of every not-yet-dispatched message of the replicating topics so
  /// that loss tolerance holds across a subsequent Primary crash.  Returns
  /// that sync set and marks the entries Replicated (their later dispatch
  /// will prune the new Backup as usual).
  std::vector<Message> backup_sync_set();

  // -- statistics ---------------------------------------------------------
  struct Stats {
    std::uint64_t arrivals = 0;
    std::uint64_t recovery_arrivals = 0;
    std::uint64_t dispatch_jobs_created = 0;
    std::uint64_t replicate_jobs_created = 0;
    std::uint64_t dispatches_executed = 0;
    std::uint64_t replications_executed = 0;
    std::uint64_t replications_aborted = 0;  ///< Table 3 Replicate step 1
    std::uint64_t replicate_jobs_cancelled = 0;
    std::uint64_t prune_requests = 0;
    std::uint64_t stale_jobs = 0;  ///< copy evicted before the job ran
    std::uint64_t overwritten_undelivered = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void generate_jobs(const Message& msg, TimePoint now, JobSource source,
                     bool allow_replication);

  BrokerConfig config_;
  std::vector<TopicSpec> specs_;
  TimingParams params_;
  std::vector<TopicTiming> timings_;
  std::vector<std::vector<NodeId>> subscribers_;  // per topic
  MessageStore store_;
  JobQueue queue_;
  std::uint64_t next_order_ = 0;
  Stats stats_;
};

}  // namespace frame
