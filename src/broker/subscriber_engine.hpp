// Subscriber-side accounting: duplicate suppression (recovered copies can
// arrive twice) plus the measurements the paper's evaluation reports —
// loss runs against the Li requirement, deadline success against Di, and
// per-message latency traces (Fig. 9).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "core/topic.hpp"
#include "net/message.hpp"

namespace frame {

/// One record of a unique (first-copy) delivery for a watched topic.
struct TraceSample {
  SeqNo seq = 0;
  TimePoint created_at = 0;
  Duration latency = 0;   ///< ts - tc (end to end)
  Duration delta_bs = 0;  ///< ts - td, the run-time ΔBS of Fig. 8
  bool recovered = false; ///< delivered via retention resend / recovery
};

/// Loss accounting over a ground-truth sequence range.
struct LossStats {
  std::uint64_t max_consecutive_losses = 0;
  std::uint64_t total_losses = 0;
  std::uint64_t expected = 0;
};

class SubscriberEngine {
 public:
  explicit SubscriberEngine(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  void add_topic(const TopicSpec& spec);

  /// Enables per-message trace recording for `topic` (Fig. 9 plots).
  void watch(TopicId topic);

  /// Deadline success is counted only for messages *created* inside this
  /// window (the paper's 60-second measuring phase).
  void set_measure_window(TimePoint start, TimePoint end);

  /// Processes a delivery at time `now` (= ts).  Returns true if this was
  /// the first copy of the message; duplicates are discarded (Section VI-C).
  bool on_deliver(const Message& msg, TimePoint now);

  bool subscribed(TopicId topic) const { return states_.contains(topic); }
  bool delivered(TopicId topic, SeqNo seq) const;

  std::uint64_t unique_count(TopicId topic) const;
  std::uint64_t duplicate_count(TopicId topic) const;
  std::uint64_t delivered_in_window(TopicId topic) const;
  std::uint64_t on_time_in_window(TopicId topic) const;

  /// Streaming latency statistics (ns) over in-window deliveries.
  const OnlineStats& latency_stats(TopicId topic) const;

  /// Loss stats for seqs in [first, last] (ground truth from the
  /// publisher).  Sequence numbers never created must not be passed.
  LossStats loss_stats(TopicId topic, SeqNo first, SeqNo last) const;

  const std::vector<TraceSample>& trace(TopicId topic) const;

  std::uint64_t total_unique() const { return total_unique_; }
  std::uint64_t total_duplicates() const { return total_duplicates_; }

 private:
  struct TopicState {
    TopicSpec spec;
    std::vector<std::uint64_t> seen;  ///< bitmap indexed by seq
    std::uint64_t unique = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delivered_in_window = 0;
    std::uint64_t on_time_in_window = 0;
    OnlineStats latency;  ///< in-window latencies, ns
    bool watched = false;
    std::vector<TraceSample> trace;
  };

  static bool test_and_set(std::vector<std::uint64_t>& bitmap, SeqNo seq);
  static bool test(const std::vector<std::uint64_t>& bitmap, SeqNo seq);

  NodeId id_;
  std::unordered_map<TopicId, TopicState> states_;
  TimePoint window_start_ = 0;
  TimePoint window_end_ = kTimeNever;
  std::uint64_t total_unique_ = 0;
  std::uint64_t total_duplicates_ = 0;
};

}  // namespace frame
