// Publisher proxy: creates message batches, retains the Ni latest messages
// per topic, and re-sends the retained set to the Backup after failover
// (paper Sections III-A/B).
//
// A publisher in the evaluation is a proxy for a collection of IIoT
// devices: all its topics share one period and each batch tick creates one
// message per topic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/retention_buffer.hpp"
#include "core/topic.hpp"
#include "net/message.hpp"

namespace frame {

class PublisherEngine {
 public:
  /// `topics` is this proxy's topic set; they should share `period`.
  PublisherEngine(NodeId id, std::vector<TopicSpec> topics, Duration period,
                  std::size_t payload_size = 16);

  NodeId id() const { return id_; }
  Duration period() const { return period_; }
  const std::vector<TopicSpec>& topics() const { return topics_; }

  /// One batch tick: creates one message per topic (tc = now), retaining
  /// each per its topic's Ni.
  std::vector<Message> create_batch(TimePoint now);

  /// Failover (Section III-B): once the publisher has detected the Primary
  /// crash (its fail-over time x after the crash), it sends all retained
  /// messages to the Backup.  Copies are flagged `recovered`.
  std::vector<Message> failover_resend() const;

  /// Last sequence number created per topic (0 = none yet); ground truth
  /// for loss accounting.
  SeqNo last_seq(TopicId topic) const;

  std::uint64_t messages_created() const { return messages_created_; }

 private:
  NodeId id_;
  std::vector<TopicSpec> topics_;
  Duration period_;
  std::size_t payload_size_;
  std::vector<SeqNo> next_seq_;  // parallel to topics_
  RetentionBuffer retention_;
  std::uint64_t messages_created_ = 0;
};

}  // namespace frame
