// Crash detection by periodic polling (Section IV-A): "The Backup tracks
// the status of its Primary via periodic polling, and would become a new
// Primary once it detected that its Primary had crashed."
//
// The detector is passive: the driver sends kPoll frames on its schedule,
// feeds replies in via on_reply(), and asks suspected() on each tick.  The
// publishers run the same logic with their own timeout x.
//
// Ordering contract (relied on by RuntimeBroker's detector loop and pinned
// by tests/broker/test_failure_detector.cpp):
//   * Before start(), suspected() is false at any time — an unarmed
//     detector never accuses.  start(now) counts as a proof of life, so
//     the earliest possible suspicion is start + period * miss + 1ns.
//   * on_reply() is monotone: a stale timestamp (older than the current
//     proof of life) never regresses the detector, so replaying a cached
//     last-reply time after start() is harmless.  on_reply() before
//     start() records the proof of life but still reports unsuspected
//     until armed.
//   * suspected() flips exactly when now - last_proof > period * miss,
//     and flips back if a fresh reply arrives later (a restarted peer
//     un-suspects itself; promotion is the caller's one-way decision).
//   * detection_bound() = period * (miss + 1) bounds the wall time from a
//     real crash to suspicion under the polling schedule: the crash can
//     land right after a poll answered (one period of grace) plus `miss`
//     unanswered periods.  It is the x to use in the paper's analysis.
#pragma once

#include "common/time.hpp"

namespace frame {

class PollingFailureDetector {
 public:
  /// `poll_period` is the probe interval; the peer is suspected after
  /// `miss_threshold` consecutive periods without a reply.
  PollingFailureDetector(Duration poll_period, int miss_threshold)
      : poll_period_(poll_period), miss_threshold_(miss_threshold) {}

  /// Arms the detector; `now` counts as the last proof of life.
  void start(TimePoint now) {
    last_reply_ = now;
    started_ = true;
  }

  void on_reply(TimePoint now) {
    if (now > last_reply_) last_reply_ = now;
  }

  bool suspected(TimePoint now) const {
    if (!started_) return false;
    return now - last_reply_ > poll_period_ * miss_threshold_;
  }

  Duration poll_period() const { return poll_period_; }

  /// Worst-case detection latency: the bound to use for the publisher
  /// fail-over time x in the timing analysis.
  Duration detection_bound() const {
    return poll_period_ * (miss_threshold_ + 1);
  }

 private:
  Duration poll_period_;
  int miss_threshold_;
  TimePoint last_reply_ = 0;
  bool started_ = false;
};

}  // namespace frame
