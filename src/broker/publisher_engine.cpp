#include "broker/publisher_engine.hpp"

#include "obs/obs.hpp"

namespace frame {

PublisherEngine::PublisherEngine(NodeId id, std::vector<TopicSpec> topics,
                                 Duration period, std::size_t payload_size)
    : id_(id),
      topics_(std::move(topics)),
      period_(period),
      payload_size_(payload_size),
      next_seq_(topics_.size(), 1) {
  for (const auto& spec : topics_) {
    retention_.add_topic(spec.id, spec.retention);
  }
}

std::vector<Message> PublisherEngine::create_batch(TimePoint now) {
  std::vector<Message> batch;
  batch.reserve(topics_.size());
  // Trace context is minted here, at the message origin, and only when
  // tracing is live: with obs off messages keep trace_id == 0 and the wire
  // codec emits zero extra bytes.  The anchor maps this process's
  // monotonic timeline onto the wall clock so dumps from other processes
  // can be stitched onto one axis.
  const bool tracing = obs::enabled();
  const std::int64_t anchor = tracing ? wall_now_ns() - now : 0;
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    Message msg =
        make_test_message(topics_[i].id, next_seq_[i]++, now, payload_size_);
    if (tracing) {
      msg.trace_id = obs::make_trace_id(id_, msg.topic, msg.seq);
      msg.trace_anchor = anchor;
    }
    retention_.retain(msg);
    obs::hooks::publish(msg.topic, msg.seq, now, msg.trace_id);
    batch.push_back(msg);
    ++messages_created_;
  }
  return batch;
}

std::vector<Message> PublisherEngine::failover_resend() const {
  std::vector<Message> out = retention_.all_retained();
  for (auto& msg : out) msg.recovered = true;
  return out;
}

SeqNo PublisherEngine::last_seq(TopicId topic) const {
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    if (topics_[i].id == topic) return next_seq_[i] - 1;
  }
  return 0;
}

}  // namespace frame
