#include "broker/publisher_engine.hpp"

#include "obs/obs.hpp"

namespace frame {

PublisherEngine::PublisherEngine(NodeId id, std::vector<TopicSpec> topics,
                                 Duration period, std::size_t payload_size)
    : id_(id),
      topics_(std::move(topics)),
      period_(period),
      payload_size_(payload_size),
      next_seq_(topics_.size(), 1) {
  for (const auto& spec : topics_) {
    retention_.add_topic(spec.id, spec.retention);
  }
}

std::vector<Message> PublisherEngine::create_batch(TimePoint now) {
  std::vector<Message> batch;
  batch.reserve(topics_.size());
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    Message msg =
        make_test_message(topics_[i].id, next_seq_[i]++, now, payload_size_);
    retention_.retain(msg);
    obs::hooks::publish(msg.topic, msg.seq, now);
    batch.push_back(msg);
    ++messages_created_;
  }
  return batch;
}

std::vector<Message> PublisherEngine::failover_resend() const {
  std::vector<Message> out = retention_.all_retained();
  for (auto& msg : out) msg.recovered = true;
  return out;
}

SeqNo PublisherEngine::last_seq(TopicId topic) const {
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    if (topics_[i].id == topic) return next_seq_[i] - 1;
  }
  return 0;
}

}  // namespace frame
