#include "broker/subscriber_engine.hpp"

#include "obs/obs.hpp"

namespace frame {

namespace {
const std::vector<TraceSample> kEmptyTrace;
const OnlineStats kEmptyStats;
}

void SubscriberEngine::add_topic(const TopicSpec& spec) {
  TopicState state;
  state.spec = spec;
  states_.emplace(spec.id, std::move(state));
}

void SubscriberEngine::watch(TopicId topic) {
  auto it = states_.find(topic);
  if (it != states_.end()) it->second.watched = true;
}

void SubscriberEngine::set_measure_window(TimePoint start, TimePoint end) {
  window_start_ = start;
  window_end_ = end;
}

bool SubscriberEngine::test_and_set(std::vector<std::uint64_t>& bitmap,
                                    SeqNo seq) {
  const std::size_t word = static_cast<std::size_t>(seq / 64);
  const std::uint64_t bit = 1ull << (seq % 64);
  if (word >= bitmap.size()) bitmap.resize(word + 1, 0);
  const bool was_set = (bitmap[word] & bit) != 0;
  bitmap[word] |= bit;
  return !was_set;
}

bool SubscriberEngine::test(const std::vector<std::uint64_t>& bitmap,
                            SeqNo seq) {
  const std::size_t word = static_cast<std::size_t>(seq / 64);
  if (word >= bitmap.size()) return false;
  return (bitmap[word] & (1ull << (seq % 64))) != 0;
}

bool SubscriberEngine::on_deliver(const Message& msg, TimePoint now) {
  auto it = states_.find(msg.topic);
  if (it == states_.end()) return false;
  TopicState& state = it->second;
  if (!test_and_set(state.seen, msg.seq)) {
    ++state.duplicates;
    ++total_duplicates_;
    return false;
  }
  ++state.unique;
  ++total_unique_;
  const Duration latency = now - msg.created_at;
  obs::hooks::delivered(msg.topic, msg.seq, now, latency, msg.trace_id);
  if (msg.created_at >= window_start_ && msg.created_at < window_end_) {
    ++state.delivered_in_window;
    if (latency <= state.spec.deadline) ++state.on_time_in_window;
    state.latency.add(static_cast<double>(latency));
  }
  if (state.watched) {
    const Duration delta_bs =
        msg.dispatched_at > 0 ? now - msg.dispatched_at : 0;
    state.trace.push_back(TraceSample{msg.seq, msg.created_at, latency,
                                      delta_bs, msg.recovered});
  }
  return true;
}

bool SubscriberEngine::delivered(TopicId topic, SeqNo seq) const {
  auto it = states_.find(topic);
  if (it == states_.end()) return false;
  return test(it->second.seen, seq);
}

std::uint64_t SubscriberEngine::unique_count(TopicId topic) const {
  auto it = states_.find(topic);
  return it == states_.end() ? 0 : it->second.unique;
}

std::uint64_t SubscriberEngine::duplicate_count(TopicId topic) const {
  auto it = states_.find(topic);
  return it == states_.end() ? 0 : it->second.duplicates;
}

std::uint64_t SubscriberEngine::delivered_in_window(TopicId topic) const {
  auto it = states_.find(topic);
  return it == states_.end() ? 0 : it->second.delivered_in_window;
}

std::uint64_t SubscriberEngine::on_time_in_window(TopicId topic) const {
  auto it = states_.find(topic);
  return it == states_.end() ? 0 : it->second.on_time_in_window;
}

LossStats SubscriberEngine::loss_stats(TopicId topic, SeqNo first,
                                       SeqNo last) const {
  LossStats stats;
  if (last < first) return stats;
  stats.expected = last - first + 1;
  auto it = states_.find(topic);
  std::uint64_t run = 0;
  for (SeqNo seq = first; seq <= last; ++seq) {
    const bool got = it != states_.end() && test(it->second.seen, seq);
    if (got) {
      run = 0;
    } else {
      ++run;
      ++stats.total_losses;
      if (run > stats.max_consecutive_losses) {
        stats.max_consecutive_losses = run;
      }
    }
  }
  return stats;
}

const OnlineStats& SubscriberEngine::latency_stats(TopicId topic) const {
  auto it = states_.find(topic);
  return it == states_.end() ? kEmptyStats : it->second.latency;
}

const std::vector<TraceSample>& SubscriberEngine::trace(TopicId topic) const {
  auto it = states_.find(topic);
  return it == states_.end() ? kEmptyTrace : it->second.trace;
}

}  // namespace frame
