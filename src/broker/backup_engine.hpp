// The Backup broker's state machine during fault-free operation: it stores
// replicas, applies prune requests, and on promotion hands the pruned
// recovery set to a fresh Primary engine (paper Sections IV-A/B).
#pragma once

#include <cstdint>
#include <vector>

#include "broker/config.hpp"
#include "core/backup_store.hpp"
#include "net/message.hpp"

namespace frame {

class BackupEngine {
 public:
  explicit BackupEngine(const BrokerConfig& config)
      : store_(config.backup_buffer_capacity) {}

  void configure(std::size_t topic_count) { store_.configure(topic_count); }

  /// Replica arrival from the Primary.  `now` is tb.
  void on_replica(const Message& msg, TimePoint now) {
    store_.insert(msg, now);
    ++stats_.replicas_received;
  }

  /// Prune request: the original copy was dispatched, set Discard.
  void on_prune(TopicId topic, SeqNo seq) {
    ++stats_.prunes_received;
    if (store_.prune(topic, seq)) ++stats_.prunes_applied;
  }

  /// Promotion (Section IV-A, fault recovery): returns the recovery set —
  /// every copy whose Discard flag is still false — oldest-first per topic.
  /// The store is cleared; the caller feeds the set to the new Primary
  /// engine as recovery copies.
  std::vector<Message> promote() {
    std::vector<Message> recovery;
    store_.for_each_live(
        [&](const BackupEntry& entry) { recovery.push_back(entry.msg); });
    stats_.recovered = recovery.size();
    stats_.skipped_discarded = store_.size() - recovery.size();
    store_.clear();
    return recovery;
  }

  const BackupStore& store() const { return store_; }

  struct Stats {
    std::uint64_t replicas_received = 0;
    std::uint64_t prunes_received = 0;
    std::uint64_t prunes_applied = 0;
    std::uint64_t recovered = 0;
    std::uint64_t skipped_discarded = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  BackupStore store_;
  Stats stats_;
};

}  // namespace frame
