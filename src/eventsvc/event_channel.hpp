// The event channel: assembly of proxies and middle stages (paper Fig. 5).
//
// Two operating modes mirror the figure:
//   * Classic (Fig. 5a): Supplier Proxies -> Subscription & Filtering ->
//     Event Correlation -> Dispatching -> Consumer Proxies.
//   * FRAME (Fig. 5b): Supplier Proxies -> intake hook (FRAME's Message
//     Proxy); delivery happens later when FRAME's Message Delivery module
//     calls deliver_to(), which invokes the Consumer Proxies' push.
//
// The Supplier/Consumer proxy interfaces are identical in both modes — the
// property that made the paper's integration possible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "eventsvc/correlation.hpp"
#include "eventsvc/dispatching.hpp"
#include "eventsvc/event.hpp"
#include "eventsvc/filtering.hpp"
#include "eventsvc/proxies.hpp"

namespace frame::eventsvc {

class EventChannel {
 public:
  /// `dispatcher` serves the classic path; pass a SynchronousDispatcher for
  /// deterministic inline delivery.
  explicit EventChannel(std::unique_ptr<Dispatcher> dispatcher);
  ~EventChannel();

  EventChannel(const EventChannel&) = delete;
  EventChannel& operator=(const EventChannel&) = delete;

  // -- SupplierAdmin -------------------------------------------------------
  /// Returns the proxy a supplier pushes its events into.
  ProxyPushConsumer& obtain_push_consumer(SupplierId supplier);

  // -- ConsumerAdmin -------------------------------------------------------
  /// Returns the proxy that pushes to consumer `consumer`; connect a
  /// callback on it to start receiving.
  ProxyPushSupplier& obtain_push_supplier(NodeId consumer);

  /// Classic-path subscription: consumer receives events matching `filter`,
  /// at dispatch priority `priority` (0 = highest).
  void subscribe(NodeId consumer, Filter filter, std::size_t priority = 0);

  /// Optional classic-path correlation for a consumer (conjunction or
  /// disjunction over patterns).  Replaces plain filtering for the
  /// consumer.
  void set_correlation(NodeId consumer, CorrelationSpec spec,
                       std::size_t priority = 0);

  // -- FRAME integration (Fig. 5b) ----------------------------------------
  /// Replaces the middle stages: every supplier push goes to `hook` and the
  /// classic path is bypassed.
  using IntakeHook = std::function<void(const Event&)>;
  void set_intake_hook(IntakeHook hook);

  /// Direct delivery through a Consumer Proxy, used by FRAME's Message
  /// Delivery module.
  void deliver_to(NodeId consumer, const Event& event);

  /// Blocks until the dispatcher has drained (classic path only).
  void drain();

  struct Stats {
    std::uint64_t pushed = 0;
    std::uint64_t filtered_out = 0;
    std::uint64_t delivered = 0;
  };
  Stats stats() const;

 private:
  struct ConsumerState {
    std::unique_ptr<ProxyPushSupplier> proxy;
    Filter filter;
    std::unique_ptr<Correlator> correlator;
    std::size_t priority = 0;
  };

  void on_supplier_push(const Event& event);

  std::unique_ptr<Dispatcher> dispatcher_;
  mutable std::mutex mutex_;
  std::unordered_map<SupplierId, std::unique_ptr<ProxyPushConsumer>>
      suppliers_;
  std::unordered_map<NodeId, ConsumerState> consumers_;
  IntakeHook intake_hook_;
  Stats stats_;
};

}  // namespace frame::eventsvc
