#include "eventsvc/dispatching.hpp"

namespace frame::eventsvc {

ThreadPoolDispatcher::ThreadPoolDispatcher(std::size_t threads,
                                           std::size_t lanes)
    : lanes_(lanes == 0 ? 1 : lanes) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPoolDispatcher::~ThreadPoolDispatcher() { shutdown(); }

void ThreadPoolDispatcher::dispatch(std::size_t priority, DispatchWork work) {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    if (priority >= lanes_.size()) priority = lanes_.size() - 1;
    lanes_[priority].push_back(std::move(work));
  }
  work_cv_.notify_one();
}

bool ThreadPoolDispatcher::queues_empty_locked() const {
  for (const auto& lane : lanes_) {
    if (!lane.empty()) return false;
  }
  return true;
}

void ThreadPoolDispatcher::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock,
                [&] { return (queues_empty_locked() && in_flight_ == 0) ||
                             stop_; });
}

void ThreadPoolDispatcher::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPoolDispatcher::worker_loop() {
  std::unique_lock lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] { return stop_ || !queues_empty_locked(); });
    if (stop_) return;
    DispatchWork work;
    for (auto& lane : lanes_) {  // highest-priority lane first
      if (!lane.empty()) {
        work = std::move(lane.front());
        lane.pop_front();
        break;
      }
    }
    ++in_flight_;
    lock.unlock();
    work();
    lock.lock();
    --in_flight_;
    if (queues_empty_locked() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace frame::eventsvc
