// Subscription & Filtering module (TAO event channel stage 1).
//
// Consumers subscribe with a set of (source, type) patterns; kAnySupplier /
// kAnyType act as wildcards.  An event passes a consumer's filter when any
// pattern matches.
#pragma once

#include <cstddef>
#include <vector>

#include "eventsvc/event.hpp"

namespace frame::eventsvc {

struct SubscriptionPattern {
  SupplierId source = kAnySupplier;
  EventType type = kAnyType;

  bool matches(const EventHeader& header) const {
    const bool source_ok = source == kAnySupplier || source == header.source;
    const bool type_ok = type == kAnyType || type == header.type;
    return source_ok && type_ok;
  }
};

class Filter {
 public:
  Filter() = default;
  explicit Filter(std::vector<SubscriptionPattern> patterns)
      : patterns_(std::move(patterns)) {}

  void add(SubscriptionPattern pattern) { patterns_.push_back(pattern); }

  /// An empty filter matches nothing (a consumer must subscribe).
  bool matches(const EventHeader& header) const {
    for (const auto& pattern : patterns_) {
      if (pattern.matches(header)) return true;
    }
    return false;
  }

  std::size_t pattern_count() const { return patterns_.size(); }

 private:
  std::vector<SubscriptionPattern> patterns_;
};

}  // namespace frame::eventsvc
