// Supplier and Consumer proxies (the TAO event channel's outer modules).
//
// FRAME preserves exactly these interfaces (paper Fig. 5): suppliers push
// events into a ProxyPushConsumer obtained from the SupplierAdmin;
// consumers receive events through a ProxyPushSupplier obtained from the
// ConsumerAdmin.  The channel wires the proxies to whichever middle stages
// are configured (classic filtering/correlation/dispatching, or FRAME's
// Message Proxy + Message Delivery).
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "eventsvc/event.hpp"

namespace frame::eventsvc {

/// Supplier-side proxy: the object a supplier pushes events into.
class ProxyPushConsumer {
 public:
  using PushHook = std::function<void(const Event&)>;

  ProxyPushConsumer(SupplierId supplier, PushHook hook)
      : supplier_(supplier), hook_(std::move(hook)) {}

  SupplierId supplier() const { return supplier_; }

  /// Entry point for supplier traffic.  FRAME attaches its Message Proxy
  /// here ("a hook method within the push method of the Supplier Proxies
  /// module", Section V).
  void push(const Event& event) {
    if (hook_) hook_(event);
  }

  void disconnect() { hook_ = nullptr; }
  bool connected() const { return static_cast<bool>(hook_); }

 private:
  SupplierId supplier_;
  PushHook hook_;
};

/// Consumer-side proxy: the channel pushes matching events to it, and it
/// forwards them to the attached consumer callback.
class ProxyPushSupplier {
 public:
  using ConsumerCallback = std::function<void(const Event&)>;

  explicit ProxyPushSupplier(NodeId consumer) : consumer_(consumer) {}

  NodeId consumer() const { return consumer_; }

  void connect(ConsumerCallback callback) { callback_ = std::move(callback); }
  void disconnect() { callback_ = nullptr; }
  bool connected() const { return static_cast<bool>(callback_); }

  /// Invoked by the channel's delivery stage.
  void push(const Event& event) {
    if (callback_) callback_(event);
  }

 private:
  NodeId consumer_;
  ConsumerCallback callback_;
};

}  // namespace frame::eventsvc
