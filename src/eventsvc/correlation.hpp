// Event Correlation module (TAO event channel stage 2).
//
// The original TAO event service supports simple logical correlations
// (Section V of the paper: "Prior to our work, the TAO real-time event
// service only supported simple event correlations (logical conjunction
// and disjunction)").  This module reproduces that capability:
//
//  * Disjunction: deliver as soon as any pattern of the set matches.
//  * Conjunction: buffer matching events until every pattern of the set has
//    been seen at least once, then deliver the collected group and reset.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "eventsvc/event.hpp"
#include "eventsvc/filtering.hpp"

namespace frame::eventsvc {

enum class CorrelationKind : std::uint8_t { kDisjunction = 0, kConjunction = 1 };

struct CorrelationSpec {
  CorrelationKind kind = CorrelationKind::kDisjunction;
  std::vector<SubscriptionPattern> patterns;
};

/// Per-consumer correlator.  offer() returns the group of events to deliver
/// (possibly empty when a conjunction is still incomplete).
class Correlator {
 public:
  explicit Correlator(CorrelationSpec spec) : spec_(std::move(spec)) {
    pending_.resize(spec_.patterns.size());
    seen_.assign(spec_.patterns.size(), false);
  }

  const CorrelationSpec& spec() const { return spec_; }

  std::vector<Event> offer(const Event& event) {
    std::vector<Event> out;
    if (spec_.kind == CorrelationKind::kDisjunction) {
      for (const auto& pattern : spec_.patterns) {
        if (pattern.matches(event.header)) {
          out.push_back(event);
          break;
        }
      }
      return out;
    }
    // Conjunction: latch the newest event per pattern slot.
    bool matched = false;
    for (std::size_t i = 0; i < spec_.patterns.size(); ++i) {
      if (spec_.patterns[i].matches(event.header)) {
        pending_[i] = event;
        seen_[i] = true;
        matched = true;
      }
    }
    if (!matched) return out;
    for (const bool seen : seen_) {
      if (!seen) return out;
    }
    out = std::move(pending_);
    pending_.clear();
    pending_.resize(spec_.patterns.size());
    seen_.assign(spec_.patterns.size(), false);
    return out;
  }

 private:
  CorrelationSpec spec_;
  std::vector<Event> pending_;
  std::vector<bool> seen_;
};

}  // namespace frame::eventsvc
