#include "eventsvc/event_channel.hpp"

namespace frame::eventsvc {

EventChannel::EventChannel(std::unique_ptr<Dispatcher> dispatcher)
    : dispatcher_(std::move(dispatcher)) {}

EventChannel::~EventChannel() = default;

ProxyPushConsumer& EventChannel::obtain_push_consumer(SupplierId supplier) {
  std::lock_guard lock(mutex_);
  auto it = suppliers_.find(supplier);
  if (it == suppliers_.end()) {
    auto proxy = std::make_unique<ProxyPushConsumer>(
        supplier, [this](const Event& event) { on_supplier_push(event); });
    it = suppliers_.emplace(supplier, std::move(proxy)).first;
  }
  return *it->second;
}

ProxyPushSupplier& EventChannel::obtain_push_supplier(NodeId consumer) {
  std::lock_guard lock(mutex_);
  auto it = consumers_.find(consumer);
  if (it == consumers_.end()) {
    ConsumerState state;
    state.proxy = std::make_unique<ProxyPushSupplier>(consumer);
    it = consumers_.emplace(consumer, std::move(state)).first;
  }
  return *it->second.proxy;
}

void EventChannel::subscribe(NodeId consumer, Filter filter,
                             std::size_t priority) {
  obtain_push_supplier(consumer);
  std::lock_guard lock(mutex_);
  auto& state = consumers_[consumer];
  state.filter = std::move(filter);
  state.correlator.reset();
  state.priority = priority;
}

void EventChannel::set_correlation(NodeId consumer, CorrelationSpec spec,
                                   std::size_t priority) {
  obtain_push_supplier(consumer);
  std::lock_guard lock(mutex_);
  auto& state = consumers_[consumer];
  state.correlator = std::make_unique<Correlator>(std::move(spec));
  state.priority = priority;
}

void EventChannel::set_intake_hook(IntakeHook hook) {
  std::lock_guard lock(mutex_);
  intake_hook_ = std::move(hook);
}

void EventChannel::deliver_to(NodeId consumer, const Event& event) {
  ProxyPushSupplier* proxy = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto it = consumers_.find(consumer);
    if (it == consumers_.end()) return;
    proxy = it->second.proxy.get();
    ++stats_.delivered;
  }
  proxy->push(event);
}

void EventChannel::drain() {
  if (dispatcher_) dispatcher_->drain();
}

EventChannel::Stats EventChannel::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void EventChannel::on_supplier_push(const Event& event) {
  IntakeHook hook;
  {
    std::lock_guard lock(mutex_);
    ++stats_.pushed;
    hook = intake_hook_;
  }
  if (hook) {
    // FRAME mode (Fig. 5b): the Message Proxy takes over from here.
    hook(event);
    return;
  }
  // Classic mode (Fig. 5a): filtering -> correlation -> dispatching.
  struct Delivery {
    ProxyPushSupplier* proxy;
    std::size_t priority;
    Event event;
  };
  std::vector<Delivery> deliveries;
  {
    std::lock_guard lock(mutex_);
    for (auto& [consumer, state] : consumers_) {
      if (state.correlator != nullptr) {
        for (auto& grouped : state.correlator->offer(event)) {
          deliveries.push_back(
              Delivery{state.proxy.get(), state.priority, std::move(grouped)});
        }
      } else if (state.filter.matches(event.header)) {
        deliveries.push_back(Delivery{state.proxy.get(), state.priority, event});
      } else if (state.filter.pattern_count() > 0) {
        ++stats_.filtered_out;
      }
    }
    stats_.delivered += deliveries.size();
  }
  for (auto& delivery : deliveries) {
    auto* proxy = delivery.proxy;
    dispatcher_->dispatch(delivery.priority,
                          [proxy, event = std::move(delivery.event)] {
                            proxy->push(event);
                          });
  }
}

}  // namespace frame::eventsvc
