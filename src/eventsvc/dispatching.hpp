// Dispatching module (TAO event channel stage 3).
//
// The TAO real-time event service dispatches events to consumers through
// preemption-priority lanes served by a thread pool.  Two implementations
// are provided:
//   * SynchronousDispatcher - runs the delivery inline (deterministic,
//     used by tests and by single-threaded hosts);
//   * ThreadPoolDispatcher  - N worker threads draining priority lanes
//     (highest lane first, FIFO within a lane).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace frame::eventsvc {

/// A unit of delivery work: deliver one event to one consumer proxy.
using DispatchWork = std::function<void()>;

class Dispatcher {
 public:
  virtual ~Dispatcher() = default;

  /// Enqueues `work` at `priority` (0 = highest lane).
  virtual void dispatch(std::size_t priority, DispatchWork work) = 0;

  /// Blocks until all queued work has run (no-op for synchronous).
  virtual void drain() = 0;
};

class SynchronousDispatcher final : public Dispatcher {
 public:
  void dispatch(std::size_t priority, DispatchWork work) override {
    (void)priority;
    work();
  }
  void drain() override {}
};

class ThreadPoolDispatcher final : public Dispatcher {
 public:
  ThreadPoolDispatcher(std::size_t threads, std::size_t lanes);
  ~ThreadPoolDispatcher() override;

  ThreadPoolDispatcher(const ThreadPoolDispatcher&) = delete;
  ThreadPoolDispatcher& operator=(const ThreadPoolDispatcher&) = delete;

  void dispatch(std::size_t priority, DispatchWork work) override;
  void drain() override;
  void shutdown();

 private:
  void worker_loop();
  bool queues_empty_locked() const;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::deque<DispatchWork>> lanes_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace frame::eventsvc
