// Event model for the real-time event service substrate.
//
// This library is a from-scratch stand-in for the TAO real-time event
// service the paper builds on (Harrison/Levine/Schmidt, "The Design and
// Performance of a Real-Time CORBA Event Service"): typed events flow from
// suppliers through an event channel (subscription & filtering, optional
// correlation, dispatching) to consumers.  FRAME replaces the channel's
// middle modules (paper Fig. 5) while keeping the supplier/consumer proxy
// interfaces intact.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace frame::eventsvc {

using SupplierId = std::uint32_t;
using EventType = std::uint32_t;

inline constexpr SupplierId kAnySupplier = 0xffffffffu;
inline constexpr EventType kAnyType = 0xffffffffu;

/// Fixed header carried by every event (source + type drive filtering).
struct EventHeader {
  SupplierId source = 0;
  EventType type = 0;
  TimePoint creation_time = 0;
};

struct Event {
  EventHeader header;
  std::vector<std::uint8_t> payload;
};

}  // namespace frame::eventsvc
