// Time representation shared by the simulator and the real-thread runtime.
//
// Both harnesses express time as a signed 64-bit count of nanoseconds since
// an arbitrary origin (simulation start / runtime start).  Using one scalar
// type keeps the broker engines clock-agnostic: the simulator hands them
// virtual timestamps, the runtime hands them steady_clock readings rebased
// to its start.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace frame {

/// Nanoseconds since the origin of the driving clock.
using TimePoint = std::int64_t;

/// A span of time in nanoseconds.
using Duration = std::int64_t;

inline constexpr TimePoint kTimeZero = 0;
inline constexpr Duration kDurationInfinite =
    std::numeric_limits<Duration>::max();
inline constexpr TimePoint kTimeNever =
    std::numeric_limits<TimePoint>::max();

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t us) { return us * 1'000; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr Duration seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Fractional-millisecond durations (the paper quotes e.g. ΔBB = 0.05 ms).
constexpr Duration milliseconds_f(double ms) {
  return static_cast<Duration>(ms * 1e6);
}
constexpr Duration microseconds_f(double us) {
  return static_cast<Duration>(us * 1e3);
}

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1e9; }
constexpr double to_millis(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_micros(Duration d) { return static_cast<double>(d) / 1e3; }

/// Saturating addition: adding anything to "never"/"infinite" stays there.
constexpr TimePoint time_add(TimePoint t, Duration d) {
  if (t == kTimeNever || d == kDurationInfinite) return kTimeNever;
  return t + d;
}

/// Formats a duration as a human-readable string ("12.5ms", "3.2s", ...).
std::string format_duration(Duration d);

/// Wall-clock nanoseconds since the Unix epoch.  Only used to *anchor*
/// monotonic timelines across processes (trace stitching); never drives
/// deadlines or scheduling, which stay on the monotonic clock.
inline std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall clock used by the real-thread runtime, rebased so that the
/// first reading in a process is near zero.
class MonotonicClock {
 public:
  MonotonicClock() : origin_(std::chrono::steady_clock::now()) {}

  TimePoint now() const {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace frame
