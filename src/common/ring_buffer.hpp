// Fixed-capacity ring buffer.
//
// The paper implements the Message Buffer, Backup Buffer and Retention
// Buffer as ring buffers (Section V).  This is a single-threaded ring: the
// broker engines are single-threaded state machines, and the runtime wraps
// them behind explicit queues, so no internal synchronisation is needed.
//
// Overwrite semantics: push_back() on a full ring evicts the oldest entry
// and reports the eviction, matching a retention buffer that keeps only the
// latest Ni messages.
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace frame {

template <typename T>
class RingBuffer {
 public:
  /// Creates a ring holding at most `capacity` items.  A zero capacity is
  /// legal and models a publisher with no retention (Ni = 0): every push
  /// immediately "evicts" the pushed element.
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  /// Appends `value`.  Returns the evicted oldest element if the ring was
  /// full (or the value itself when capacity is zero).
  std::optional<T> push_back(T value) {
    if (capacity_ == 0) return std::optional<T>(std::move(value));
    std::optional<T> evicted;
    if (size_ == capacity_) {
      evicted.emplace(std::move(slots_[head_]));
      head_ = next(head_);
      --size_;
    }
    slots_[tail_] = std::move(value);
    tail_ = next(tail_);
    ++size_;
    return evicted;
  }

  /// Removes and returns the oldest element; empty rings return nullopt.
  std::optional<T> pop_front() {
    if (size_ == 0) return std::nullopt;
    std::optional<T> out(std::move(slots_[head_]));
    head_ = next(head_);
    --size_;
    return out;
  }

  /// Oldest element (index 0) through newest (index size()-1).
  T& at(std::size_t index) {
    assert(index < size_);
    return slots_[(head_ + index) % slots_.size()];
  }
  const T& at(std::size_t index) const {
    assert(index < size_);
    return slots_[(head_ + index) % slots_.size()];
  }

  T& front() { return at(0); }
  const T& front() const { return at(0); }
  T& back() { return at(size_ - 1); }
  const T& back() const { return at(size_ - 1); }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

  /// Applies `fn` to every element, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < size_; ++i) fn(at(i));
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn(at(i));
  }

 private:
  std::size_t next(std::size_t i) const {
    return (i + 1) % slots_.size();
  }

  std::vector<T> slots_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace frame
