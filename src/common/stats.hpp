// Online statistics used by the metrics collectors and bench harnesses:
// streaming mean/variance, percentile extraction, fixed-bin histograms, and
// the 95% confidence intervals the paper reports for each measurement.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace frame {

/// Welford streaming mean / variance / min / max.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Half-width of the 95% confidence interval of the mean, using the
  /// normal approximation (the paper reports 95% CIs over 10 runs).
  double ci95_half_width() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; supports exact percentiles.  Used where sample
/// counts are bounded (per-topic traces, per-run summaries).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// Exact percentile with linear interpolation.  `p` is clamped to
  /// [0, 100]; a NaN `p` reads as 0 (the minimum).
  double percentile(double p) {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    p = std::isnan(p) ? 0.0 : std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double min() {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    return samples_.front();
  }
  double max() {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    return samples_.back();
  }
  double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  const std::vector<double>& raw() const { return samples_; }
  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    if (std::isnan(x)) return;  // NaN orders into no bin
    std::size_t bin = 0;
    const double span = hi_ - lo_;
    if (span > 0.0) {
      const double pos =
          (x - lo_) / span * static_cast<double>(counts_.size());
      // Clamp in the double domain: casting an out-of-range double
      // (including +/-inf) to an integer is undefined behaviour.
      const double clamped =
          std::clamp(pos, 0.0, static_cast<double>(counts_.size() - 1));
      bin = static_cast<std::size_t>(clamped);
    }
    // A degenerate range (lo == hi) counts everything in bin 0.
    ++counts_[bin];
    ++total_;
  }

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }

  /// Adds `other`'s counts bin-by-bin.  Only meaningful for histograms
  /// with the same [lo, hi) range and bin count (the per-shard metric
  /// aggregation case); mismatched layouts are merged positionally over
  /// the common prefix rather than resampled.
  void merge(const Histogram& other) {
    const std::size_t n = std::min(counts_.size(), other.counts_.size());
    for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }
  double bin_low(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace frame
