// Deterministic pseudo-random number generation for the simulator and the
// workload generators.  Experiments are reproducible given a seed; the
// confidence intervals reported by the benches come from varying the seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace frame {

/// SplitMix64, used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator: small, fast, and statistically strong enough for
/// latency jitter and workload phasing.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d4ee7a3c0ffee01ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box-Muller (one value per call; simple and fine for
  /// latency jitter volumes).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = next_double();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace frame
