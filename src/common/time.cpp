#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace frame {

std::string format_duration(Duration d) {
  char buf[48];
  const double abs = std::abs(static_cast<double>(d));
  if (d == kDurationInfinite) {
    return "inf";
  }
  if (abs >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / 1e9);
  } else if (abs >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(d) / 1e6);
  } else if (abs >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(d) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace frame
