// Blocking bounded MPMC queue used by the real-thread runtime to hand work
// between the proxy thread, the delivery pool, and publisher threads.
//
// A mutex + condition-variable queue is deliberately chosen over a lock-free
// design: runtime throughput targets are modest (the performance study runs
// in the deterministic simulator), and the CV queue has simple, verifiable
// shutdown semantics.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/time.hpp"

namespace frame {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Waits up to `timeout` for an item.
  std::optional<T> pop_for(Duration timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout),
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Wakes all waiters; subsequent pushes fail, pops drain remaining items.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace frame
