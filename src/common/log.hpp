// Minimal leveled logger.
//
// The simulator runs millions of events per second, so logging must be
// cheap when disabled: level checks are a single relaxed atomic load and
// message formatting is deferred behind the check.
#pragma once

#include <atomic>
#include <cstdio>
#include <string_view>
#include <utility>

namespace frame {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}

inline void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >=
         detail::g_log_level.load(std::memory_order_relaxed);
}

inline std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "     ";
  }
}

template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[%.*s] ", 5, level_tag(level).data());
  std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  std::fputc('\n', stderr);
}

inline void log(LogLevel level, const char* msg) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[%.*s] %s\n", 5, level_tag(level).data(), msg);
}

#define FRAME_LOG_DEBUG(...) ::frame::log(::frame::LogLevel::kDebug, __VA_ARGS__)
#define FRAME_LOG_INFO(...) ::frame::log(::frame::LogLevel::kInfo, __VA_ARGS__)
#define FRAME_LOG_WARN(...) ::frame::log(::frame::LogLevel::kWarn, __VA_ARGS__)
#define FRAME_LOG_ERROR(...) ::frame::log(::frame::LogLevel::kError, __VA_ARGS__)

}  // namespace frame
