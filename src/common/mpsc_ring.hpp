// Bounded lock-free ring for the Primary's shard hand-off: many producer
// threads (bus endpoint handlers, publishers racing a promotion) push raw
// frames, one shard lane drains them.  Dmitry Vyukov's bounded MPMC queue,
// so it also tolerates several lanes of the same shard popping — the
// per-cell sequence number decides ownership with one CAS per operation,
// no locks and no unbounded spinning on either side.
//
// Unlike common/ring_buffer.hpp (single-threaded, overwrite-oldest), a
// full ring REJECTS the push: the admission path must see backpressure
// rather than silently dropping an accepted publish.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <utility>
#include <vector>

namespace frame {

template <typename T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Multi-producer push; false when the ring is full.  `value` is moved
  /// from only on success, so a caller seeing backpressure can retry with
  /// the same object.
  bool try_push(T& value) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed value
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Rvalue convenience (drops the value on a full ring).
  bool try_push(T&& value) {
    T local = std::move(value);
    return try_push(local);
  }

  /// Consumer pop; empty optional when no value is ready.  Safe from
  /// multiple threads (Vyukov MPMC), though FRAME serialises the poppers
  /// of one shard under that shard's mutex to keep admission order.
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // the cell has not been published yet
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(cell->value));
    cell->value = T{};  // drop any heap payload before the slot is reused
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  /// Approximate occupancy (racy by nature; exact when quiescent).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const { return size() == 0; }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  // Not std::hardware_destructive_interference_size: its value is an ABI
  // hazard and GCC warns on every include.  64 covers x86-64 and common
  // ARM parts; being wrong only costs a false-sharing stall.
  static constexpr std::size_t kCacheLine = 64;

  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producers
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer
};

}  // namespace frame
