// Build provenance of the linked frame library.
//
// The bench harness must not publish numbers from a debug or sanitizer
// build, and it cannot trust its own translation unit's flags: a bench
// binary compiled -O2 can still link engine code compiled -O0.  These
// functions are defined in build_info.cpp, so they report the flags the
// *library* was actually compiled with -- link against the release-forced
// `frame_release` and they say "release"; link against a debug tree and
// they say so.
#pragma once

namespace frame {

struct BuildInfo {
  const char* build_type;  ///< "release" (NDEBUG) or "debug"
  bool optimized;          ///< __OPTIMIZE__ was set (-O1 or higher)
  const char* sanitizer;   ///< "none", "address", "thread" or "undefined"
};

/// Flags the linked frame library was compiled with.
BuildInfo library_build_info();

/// True iff the linked library is bench-grade: NDEBUG, optimized, and no
/// sanitizer.  The bench harness refuses to emit gated JSON otherwise.
bool bench_grade_build();

}  // namespace frame
