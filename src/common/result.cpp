#include "common/result.hpp"

namespace frame {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kRejected:
      return "rejected";
    case StatusCode::kCapacity:
      return "capacity";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kInvalid:
      return "invalid";
    case StatusCode::kClosed:
      return "closed";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kProtocolError:
      return "protocol-error";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out{frame::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace frame
