// Lightweight status/error reporting for hot paths and module boundaries.
//
// Per the C++ Core Guidelines (E.*), exceptions are reserved for truly
// exceptional conditions; the messaging hot path and the transports report
// expected failures (full buffers, closed connections, rejected admission)
// through Status / Result values instead.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace frame {

enum class StatusCode {
  kOk = 0,
  kRejected,       // admission test failed
  kCapacity,       // buffer or queue full
  kNotFound,       // unknown topic / connection / entry
  kInvalid,        // malformed input (bad frame, bad config)
  kClosed,         // endpoint no longer available (crashed / shut down)
  kUnavailable,    // transient: try again later
  kProtocolError,  // peer violated the wire protocol (e.g. oversized frame)
  kInternal,       // invariant violation escaped into release build
};

std::string_view to_string(StatusCode code);

/// A status with an optional human-readable detail message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-status.  Empty value implies a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.is_ok() && "OK result must carry a value");
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(value_.has_value());
    return *value_;
  }
  const T& value() const {
    assert(value_.has_value());
    return *value_;
  }
  T&& take() {
    assert(value_.has_value());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace frame
