// Fundamental identifier types used across the FRAME libraries.
#pragma once

#include <cstdint>

namespace frame {

/// Identifies a message topic.  The paper uses "message" and "topic"
/// interchangeably; a topic is the unit of QoS specification.
using TopicId = std::uint32_t;

/// Per-topic monotonically increasing message sequence number, starting at 1.
/// Subscribers use it for duplicate suppression and loss-run accounting.
using SeqNo = std::uint64_t;

/// Identifies a host/actor in a deployment (publisher, broker, subscriber).
using NodeId = std::uint32_t;

inline constexpr TopicId kInvalidTopic = 0xffffffffu;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

}  // namespace frame
