#include "common/build_info.hpp"

#include <cstring>

namespace frame {

namespace {

const char* detect_sanitizer() {
  // FRAME_SANITIZE_NAME is injected by CMake for all FRAME_SANITIZE builds
  // (it is the only way to see standalone UBSan, which defines no macro);
  // the compiler macros are the fallback for hand-rolled builds.
#ifdef FRAME_SANITIZE_NAME
  if (std::strlen(FRAME_SANITIZE_NAME) > 0) return FRAME_SANITIZE_NAME;
#endif
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#endif
#endif
  return "none";
}

}  // namespace

BuildInfo library_build_info() {
  BuildInfo info;
#ifdef NDEBUG
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
#ifdef __OPTIMIZE__
  info.optimized = true;
#else
  info.optimized = false;
#endif
  info.sanitizer = detect_sanitizer();
  return info;
}

bool bench_grade_build() {
  const BuildInfo info = library_build_info();
  return std::strcmp(info.build_type, "release") == 0 && info.optimized &&
         std::strcmp(info.sanitizer, "none") == 0;
}

}  // namespace frame
