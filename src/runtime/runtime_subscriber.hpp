// Real-thread subscriber host: receives kDeliver frames from whichever
// broker is currently Primary and feeds the shared SubscriberEngine
// accounting (dedup, loss runs, deadline checks).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "broker/subscriber_engine.hpp"
#include "common/time.hpp"
#include "net/bus.hpp"
#include "net/wire.hpp"
#include "obs/obs.hpp"

namespace frame::runtime {

class RuntimeSubscriber {
 public:
  RuntimeSubscriber(Bus& bus, const MonotonicClock& clock, NodeId node)
      : clock_(clock),
        node_(node),
        engine_(std::make_unique<SubscriberEngine>(node)) {
    bus.register_endpoint(node, [this](NodeId, std::vector<std::uint8_t> f) {
      on_frame(std::move(f));
    });
  }

  void add_topic(const TopicSpec& spec) {
    std::lock_guard lock(mutex_);
    engine_->add_topic(spec);
  }

  void watch(TopicId topic) {
    std::lock_guard lock(mutex_);
    engine_->watch(topic);
  }

  std::uint64_t unique_count(TopicId topic) const {
    std::lock_guard lock(mutex_);
    return engine_->unique_count(topic);
  }

  std::uint64_t total_unique() const {
    std::lock_guard lock(mutex_);
    return engine_->total_unique();
  }

  std::uint64_t total_duplicates() const {
    std::lock_guard lock(mutex_);
    return engine_->total_duplicates();
  }

  LossStats loss_stats(TopicId topic, SeqNo first, SeqNo last) const {
    std::lock_guard lock(mutex_);
    return engine_->loss_stats(topic, first, last);
  }

  std::vector<TraceSample> trace(TopicId topic) const {
    std::lock_guard lock(mutex_);
    return engine_->trace(topic);
  }

  bool delivered(TopicId topic, SeqNo seq) const {
    std::lock_guard lock(mutex_);
    return engine_->delivered(topic, seq);
  }

  /// Inbound frames rejected by the CRC32C gate before any decode.
  std::uint64_t corrupt_frames() const {
    return corrupt_frames_.load(std::memory_order_relaxed);
  }

 private:
  void on_frame(std::vector<std::uint8_t> frame) {
    obs::ThreadNodeScope node_scope(node_);
    if (!frame_checksum_ok(frame)) {
      corrupt_frames_.fetch_add(1, std::memory_order_relaxed);
      obs::hooks::wire_corrupt_frame(node_);
      return;
    }
    if (peek_type(frame) != WireType::kDeliver) return;
    if (auto msg = decode_message_frame(frame)) {
      std::lock_guard lock(mutex_);
      engine_->on_deliver(*msg, clock_.now());
    }
  }

  const MonotonicClock& clock_;
  NodeId node_;
  mutable std::mutex mutex_;
  std::unique_ptr<SubscriberEngine> engine_;
  std::atomic<std::uint64_t> corrupt_frames_{0};
};

}  // namespace frame::runtime
