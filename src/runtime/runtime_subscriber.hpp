// Real-thread subscriber host: receives kDeliver frames from whichever
// broker is currently Primary and feeds the shared SubscriberEngine
// accounting (dedup, loss runs, deadline checks).
#pragma once

#include <memory>
#include <mutex>

#include "broker/subscriber_engine.hpp"
#include "common/time.hpp"
#include "net/bus.hpp"
#include "net/wire.hpp"

namespace frame::runtime {

class RuntimeSubscriber {
 public:
  RuntimeSubscriber(Bus& bus, const MonotonicClock& clock, NodeId node)
      : clock_(clock), engine_(std::make_unique<SubscriberEngine>(node)) {
    bus.register_endpoint(node, [this](NodeId, std::vector<std::uint8_t> f) {
      on_frame(std::move(f));
    });
  }

  void add_topic(const TopicSpec& spec) {
    std::lock_guard lock(mutex_);
    engine_->add_topic(spec);
  }

  void watch(TopicId topic) {
    std::lock_guard lock(mutex_);
    engine_->watch(topic);
  }

  std::uint64_t unique_count(TopicId topic) const {
    std::lock_guard lock(mutex_);
    return engine_->unique_count(topic);
  }

  std::uint64_t total_unique() const {
    std::lock_guard lock(mutex_);
    return engine_->total_unique();
  }

  std::uint64_t total_duplicates() const {
    std::lock_guard lock(mutex_);
    return engine_->total_duplicates();
  }

  LossStats loss_stats(TopicId topic, SeqNo first, SeqNo last) const {
    std::lock_guard lock(mutex_);
    return engine_->loss_stats(topic, first, last);
  }

  std::vector<TraceSample> trace(TopicId topic) const {
    std::lock_guard lock(mutex_);
    return engine_->trace(topic);
  }

  bool delivered(TopicId topic, SeqNo seq) const {
    std::lock_guard lock(mutex_);
    return engine_->delivered(topic, seq);
  }

 private:
  void on_frame(std::vector<std::uint8_t> frame) {
    if (peek_type(frame) != WireType::kDeliver) return;
    if (auto msg = decode_message_frame(frame)) {
      std::lock_guard lock(mutex_);
      engine_->on_deliver(*msg, clock_.now());
    }
  }

  const MonotonicClock& clock_;
  mutable std::mutex mutex_;
  std::unique_ptr<SubscriberEngine> engine_;
};

}  // namespace frame::runtime
